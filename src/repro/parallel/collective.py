"""Collective communication numerics.

The timing of collectives is modelled in :class:`repro.hardware.Cluster`;
this module supplies the *numerics*: synchronous data-parallel training
all-reduces (averages) gradients across replicas every step.  Weighted
averaging supports Dynamic Batch Sizing, where workers contribute gradients
computed over different local batch sizes and the correct aggregate weights
each contribution by its sample count.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def allreduce_average(
    arrays: Sequence[np.ndarray], weights: Sequence[float] | None = None
) -> np.ndarray:
    """Weighted element-wise average of per-worker arrays.

    Equivalent to ring all-reduce followed by division — done directly since
    all replicas live in one process.  ``weights`` default to uniform.
    """
    if not arrays:
        raise ValueError("allreduce needs at least one array")
    shapes = {a.shape for a in arrays}
    if len(shapes) != 1:
        raise ValueError(f"mismatched shapes in allreduce: {shapes}")
    if weights is None:
        return np.mean(arrays, axis=0)
    w = np.asarray(weights, dtype=np.float64)
    if w.size != len(arrays) or np.any(w < 0) or w.sum() == 0:
        raise ValueError("weights must be non-negative and sum > 0")
    w = w / w.sum()
    out = np.zeros_like(arrays[0])
    for wi, arr in zip(w, arrays):
        out += wi * arr
    return out


def allreduce_gradients(
    models: Sequence, weights: Sequence[float] | None = None
) -> None:
    """Average ``.grad`` across replicas, in place, parameter by parameter.

    All models must have identical parameter trees (same names/shapes) —
    the synchronous data-parallel invariant.
    """
    named = [dict(m.named_parameters()) for m in models]
    # Reduce in replica-0 insertion order, never set order: set iteration is
    # salted per process, and per-step gradient traces (bucket fill order,
    # numerics observers) must be byte-stable across processes.
    keys = list(named[0])
    for other in named[1:]:
        if other.keys() != named[0].keys():
            raise ValueError("replicas have mismatched parameter trees")
    for key in keys:
        grads = []
        for params in named:
            p = params[key]
            if p.grad is None:
                raise ValueError(f"replica missing gradient for {key!r}")
            grads.append(p.grad)
        avg = allreduce_average(grads, weights)
        for params in named:
            params[key].grad = avg.copy()
