"""Pluggable collective cost models.

The Replayer's Eq. (6) recurrence needs one number per bucket: how long the
synchronous all-reduce of ``nbytes`` takes on the cluster.  Historically that
was hard-wired to a flat ring priced by the slowest NIC; this module makes
the algorithm a parameter:

* :class:`FlatRingModel` — the legacy model, kept as the **default**: a
  single ring over all K workers, bottlenecked by the slowest link
  (delegates to :meth:`Cluster.allreduce_time` so results stay bit-identical
  to the pre-topology code);
* :class:`HierarchicalModel` — intra-node reduce-scatter, inter-node ring
  over one rank per node, intra-node all-gather: the NCCL-style schedule
  that keeps the bulk of the traffic on NVLink/PCIe and sends only
  ``1/m``-sized shards across the slow network;
* :class:`TreeModel` — binomial reduce + broadcast trees: ``O(log K)``
  latency steps, full-buffer bandwidth per step (wins for small buffers on
  high-latency links);
* :class:`CompressedMultiHopModel` — the hierarchical schedule carrying
  QSGD-compressed gradients (DynamiQ-style): the wire moves
  :func:`~repro.quant.qsgd.compressed_nbytes` and each of the three phase
  boundaries pays one codec pass.  Uncompressed (level 0 / ``bits=None``)
  it prices **exactly** like :class:`HierarchicalModel` — the parity rung.

All models are pure functions of ``(cluster topology, nbytes[, bits])`` —
they plug into :func:`repro.core.replayer.simulate_global_dfg`, the
Replayer, and the DBS comm terms via ``collective_model=`` parameters, and
are selectable by name through :func:`resolve_collective_model`.
:meth:`CollectiveModel.allreduce_time_bits` is the compression-aware entry
point: ``bits=None`` (or >= 32) delegates to the plain
:meth:`~CollectiveModel.allreduce_time` with no intermediate arithmetic,
so uncompressed pricing stays bit-identical on every model.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING, Union

from repro.quant.qsgd import codec_seconds, compressed_nbytes

if TYPE_CHECKING:
    from repro.hardware.cluster import Cluster


class CollectiveModel(abc.ABC):
    """Cost model for one synchronous all-reduce over a cluster."""

    #: Registry/display name ("flat", "hierarchical", "tree").
    name: str = "abstract"

    @abc.abstractmethod
    def allreduce_time(self, cluster: "Cluster", nbytes: float) -> float:
        """Seconds to all-reduce one buffer of ``nbytes`` across all ranks."""

    def allreduce_time_bits(
        self, cluster: "Cluster", nbytes: int, bits: int | None = None
    ) -> float:
        """Compression-aware pricing of one all-reduce.

        ``bits=None`` or >= 32 returns :meth:`allreduce_time` *verbatim* —
        the level-0 parity contract (no float op may differ from the
        uncompressed path).  Below 32 the generic model moves the packed
        payload and pays one encode plus one decode pass; schedules that
        re-quantize per hop override this (see
        :class:`CompressedMultiHopModel`).
        """
        if bits is None or bits >= 32:
            return self.allreduce_time(cluster, nbytes)
        wire = compressed_nbytes(nbytes, bits)
        return self.allreduce_time(cluster, wire) + 2.0 * codec_seconds(
            nbytes, bits
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FlatRingModel(CollectiveModel):
    """Single ring over all workers, priced by the slowest link.

    This is the pre-topology model and the default everywhere; it delegates
    to :meth:`Cluster.allreduce_time` so the float operations — and
    therefore every downstream plan, fingerprint, and cached artifact — are
    bit-identical to the legacy code path.
    """

    name = "flat"

    def allreduce_time(self, cluster: "Cluster", nbytes: float) -> float:
        return cluster.allreduce_time(nbytes)


def _hierarchical_time(cluster: "Cluster", nbytes: float) -> float:
    """The three-phase hierarchical schedule's arithmetic, shared verbatim
    by :class:`HierarchicalModel` and :class:`CompressedMultiHopModel` so
    the two cannot drift by a single float operation (the compressed
    model's level-0 rung must price exactly like hierarchical)."""
    if cluster.size <= 1:
        return 0.0
    topo = cluster.topology
    nodes = topo.nodes
    p = len(nodes)

    intra_phase = 0.0
    for node in nodes:
        m = node.size
        if m <= 1:
            continue
        link = node.intra_link
        t = (m - 1) / m * nbytes / link.bandwidth + (m - 1) * link.latency
        intra_phase = max(intra_phase, t)
    total = 2.0 * intra_phase  # reduce-scatter + all-gather

    if p > 1:
        shard = nbytes / min(node.size for node in nodes)
        bw = topo.min_uplink_bandwidth()
        lat = topo.max_uplink_latency()
        total += 2.0 * (p - 1) / p * shard / bw + 2.0 * (p - 1) * lat
    return total


class HierarchicalModel(CollectiveModel):
    """Three-phase hierarchical all-reduce over the node grouping.

    1. **Intra-node reduce-scatter** — each node ring-reduce-scatters the
       buffer over its intra link, leaving each of its ``m`` ranks a reduced
       ``1/m`` shard: ``(m-1)/m * n / bw_intra + (m-1) * alpha_intra``.
       Nodes proceed concurrently; the phase ends when the slowest finishes.
    2. **Inter-node ring** — one rank per node all-reduces its shard with
       its peers over the uplinks: ``2 (p-1)/p * shard / bw_up + 2 (p-1) *
       alpha_up``, where ``shard = n / min(m)`` (unequal nodes are limited
       by the coarsest shardable fraction) and the ring is bottlenecked by
       the slowest uplink.
    3. **Intra-node all-gather** — the mirror of phase 1.

    Degenerate cases fall out naturally: one multi-rank node costs exactly a
    ring over its intra link; all-single-rank nodes cost exactly a flat ring
    over the uplinks.
    """

    name = "hierarchical"

    def allreduce_time(self, cluster: "Cluster", nbytes: float) -> float:
        return _hierarchical_time(cluster, nbytes)


class TreeModel(CollectiveModel):
    """Binomial reduce tree followed by a broadcast tree.

    ``2 ceil(log2 K)`` rounds, each moving the full buffer across the
    topology's bottleneck link: ``2 ceil(log2 K) * (alpha + n / bw)``.
    Latency scales logarithmically in K (vs. linearly for rings) at the cost
    of no bandwidth sharding — the classic small-buffer / high-latency
    trade.
    """

    name = "tree"

    def allreduce_time(self, cluster: "Cluster", nbytes: float) -> float:
        k = cluster.size
        if k <= 1:
            return 0.0
        topo = cluster.topology
        rounds = math.ceil(math.log2(k))
        step = topo.max_latency() + nbytes / topo.bottleneck_bandwidth()
        return 2.0 * rounds * step


class CompressedMultiHopModel(CollectiveModel):
    """Hierarchical all-reduce over QSGD-compressed gradients (DynamiQ).

    The three-phase hierarchical schedule with the buffer packed to
    ``bits`` per element on every hop: the wire moves
    :func:`~repro.quant.qsgd.compressed_nbytes` and each of the three
    phase boundaries (quantize before the intra reduce-scatter,
    re-quantize the reduced shards before the inter ring, re-quantize
    before the intra all-gather) pays one
    :func:`~repro.quant.qsgd.codec_seconds` pass over the uncompressed
    payload.  Uncompressed (``bits=None`` / >= 32) it reuses
    ``_hierarchical_time`` verbatim — bit-identical to
    :class:`HierarchicalModel`, the level-0 parity rung.
    """

    name = "compressed_multihop"

    #: Compressed hop boundaries of the three-phase schedule, each paying
    #: one re-quantization pass.
    HOPS = 3

    def allreduce_time(self, cluster: "Cluster", nbytes: float) -> float:
        return _hierarchical_time(cluster, nbytes)

    def allreduce_time_bits(
        self, cluster: "Cluster", nbytes: int, bits: int | None = None
    ) -> float:
        if bits is None or bits >= 32:
            return self.allreduce_time(cluster, nbytes)
        wire = compressed_nbytes(nbytes, bits)
        return _hierarchical_time(cluster, wire) + self.HOPS * codec_seconds(
            nbytes, bits
        )


#: Name -> model class, the selection vocabulary for CLIs/benchmarks/sweeps.
#: Append-only (RPR005): names feed request fingerprints and persisted
#: artifacts, so entries may be added at the end but never re-keyed.
COLLECTIVE_MODELS: dict[str, type[CollectiveModel]] = {
    FlatRingModel.name: FlatRingModel,
    HierarchicalModel.name: HierarchicalModel,
    TreeModel.name: TreeModel,
    CompressedMultiHopModel.name: CompressedMultiHopModel,
}


def resolve_collective_model(
    model: Union[CollectiveModel, str, None],
) -> CollectiveModel:
    """Normalize a model spec: ``None`` -> the flat-ring default, a name ->
    its registered class, an instance -> itself."""
    if model is None:
        return FlatRingModel()
    if isinstance(model, CollectiveModel):
        return model
    if isinstance(model, str):
        if model not in COLLECTIVE_MODELS:
            raise ValueError(
                f"unknown collective model {model!r}; available: "
                f"{sorted(COLLECTIVE_MODELS)}; a custom model must be "
                f"passed as a CollectiveModel instance, not a name"
            )
        return COLLECTIVE_MODELS[model]()
    raise TypeError(
        f"collective model must be None, a name, or a CollectiveModel, "
        f"got {type(model).__name__}"
    )
