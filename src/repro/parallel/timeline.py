"""Timeline rendering — Fig. 6's CUDA/COMM waterfall as text.

The paper's Fig. 6 shows per-device CUDA and COMM stream occupancy for
uniform precision vs QSync, highlighting the waiting-time saving.  This
module renders :class:`TimelineEvent` lists as fixed-width ASCII waterfalls
and computes the waiting-time statistics quoted in the caption.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # runtime import would cycle: core.replayer -> parallel
    from repro.core.replayer import SimulationResult, TimelineEvent


def render_timeline(
    events: list["TimelineEvent"], width: int = 80, merge_ranks: bool = True
) -> str:
    """ASCII waterfall: one row per (device, stream), time left to right.

    ``#`` = busy, ``.`` = idle.  Same-device ranks are merged onto one row
    pair (they execute near-identically) unless ``merge_ranks=False``.

    Events map to half-open cell ranges ``[floor(start/t_end*width),
    ceil(end/t_end*width))`` so an event never bleeds a full extra cell into
    its successor, and every event is guaranteed at least one cell however
    narrow the rendering.  Rows order by (device, rank, stream) with the
    rank compared *numerically* — ``T4#2`` sorts before ``T4#10``, and
    streams of one worker always stay adjacent.
    """
    if not events:
        return "(empty timeline)"
    t_end = max(e.end for e in events)
    if t_end <= 0:
        return "(zero-length timeline)"
    rows: dict[tuple[str, int, str], list["TimelineEvent"]] = defaultdict(list)
    for e in events:
        rank = -1 if merge_ranks else e.rank
        rows[(e.device, rank, e.stream)].append(e)

    lines = [f"timeline: {t_end * 1e3:.2f} ms total, '#'=busy '.'=idle"]
    for (device, rank, stream), evs in sorted(rows.items()):
        cells = ["."] * width
        for e in evs:
            lo = min(int(e.start / t_end * width), width - 1)
            hi = min(max(math.ceil(e.end / t_end * width), lo + 1), width)
            for i in range(lo, hi):
                cells[i] = "#"
        row_name = device if rank < 0 else f"{device}#{rank}"
        label = f"{row_name:>8s}/{stream:<4s}"
        lines.append(f"{label} |{''.join(cells)}|")
    return "\n".join(lines)


def timeline_summary(sim: "SimulationResult") -> dict[str, float]:
    """Waiting-time statistics of a simulated iteration.

    ``wait`` per device = time between local compute finishing and the last
    collective completing — the synchronization bubble QSync shrinks.
    """
    waits = sim.comm_wait_time
    return {
        "iteration_ms": sim.iteration_time * 1e3,
        "max_wait_ms": max(waits.values()) * 1e3 if waits else 0.0,
        "total_wait_ms": sum(waits.values()) * 1e3 if waits else 0.0,
    }
