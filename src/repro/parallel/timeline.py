"""Timeline rendering — Fig. 6's CUDA/COMM waterfall as text.

The paper's Fig. 6 shows per-device CUDA and COMM stream occupancy for
uniform precision vs QSync, highlighting the waiting-time saving.  This
module renders :class:`TimelineEvent` lists as fixed-width ASCII waterfalls
and computes the waiting-time statistics quoted in the caption.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.replayer import SimulationResult, TimelineEvent


def render_timeline(
    events: list[TimelineEvent], width: int = 80, merge_ranks: bool = True
) -> str:
    """ASCII waterfall: one row per (device, stream), time left to right.

    ``#`` = busy, ``.`` = idle.  Same-device ranks are merged onto one row
    pair (they execute near-identically) unless ``merge_ranks=False``.
    """
    if not events:
        return "(empty timeline)"
    t_end = max(e.end for e in events)
    if t_end <= 0:
        return "(zero-length timeline)"
    rows: dict[tuple, list[TimelineEvent]] = defaultdict(list)
    for e in events:
        key = (e.device, e.stream) if merge_ranks else (f"{e.device}#{e.rank}", e.stream)
        rows[key].append(e)

    lines = [f"timeline: {t_end * 1e3:.2f} ms total, '#'=busy '.'=idle"]
    for (device, stream), evs in sorted(rows.items()):
        cells = ["."] * width
        for e in evs:
            lo = int(e.start / t_end * (width - 1))
            hi = max(int(e.end / t_end * (width - 1)), lo)
            for i in range(lo, hi + 1):
                cells[i] = "#"
        label = f"{device:>8s}/{stream:<4s}"
        lines.append(f"{label} |{''.join(cells)}|")
    return "\n".join(lines)


def timeline_summary(sim: SimulationResult) -> dict[str, float]:
    """Waiting-time statistics of a simulated iteration.

    ``wait`` per device = time between local compute finishing and the last
    collective completing — the synchronization bubble QSync shrinks.
    """
    waits = sim.comm_wait_time
    return {
        "iteration_ms": sim.iteration_time * 1e3,
        "max_wait_ms": max(waits.values()) * 1e3 if waits else 0.0,
        "total_wait_ms": sum(waits.values()) * 1e3 if waits else 0.0,
    }
