"""Synchronous data-parallel training over hybrid devices.

* :mod:`repro.parallel.collective` — exact all-reduce numerics (gradient
  averaging) + the ring cost model shared with :mod:`repro.hardware`.
* :mod:`repro.parallel.ddp` — the hybrid mixed-precision DDP trainer: one
  model replica per simulated worker, each with its own per-operator
  precision plan and local batch, synchronized every step.  This is where
  the paper's training semantics (Proposition 1's unbiasedness, BN's local
  statistics, DBS's batch-size effects) actually execute.
* :mod:`repro.parallel.comm_model` — pluggable collective *cost* models
  (flat ring, hierarchical, tree) consumed by the Replayer's Eq. (6).
* :mod:`repro.parallel.timeline` — render Fig. 6-style stream waterfalls.
"""

from repro.parallel.collective import allreduce_average, allreduce_gradients
from repro.parallel.comm_model import (
    COLLECTIVE_MODELS,
    CollectiveModel,
    FlatRingModel,
    HierarchicalModel,
    TreeModel,
    resolve_collective_model,
)
from repro.parallel.ddp import DataParallelTrainer, WorkerConfig
from repro.parallel.timeline import render_timeline, timeline_summary

__all__ = [
    "allreduce_average",
    "allreduce_gradients",
    "COLLECTIVE_MODELS",
    "CollectiveModel",
    "FlatRingModel",
    "HierarchicalModel",
    "TreeModel",
    "resolve_collective_model",
    "DataParallelTrainer",
    "WorkerConfig",
    "render_timeline",
    "timeline_summary",
]
