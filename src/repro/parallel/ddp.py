"""Hybrid mixed-precision synchronous data-parallel training.

One :class:`DataParallelTrainer` owns K model replicas (one per simulated
worker).  Each step:

1. every worker runs forward/backward on its *local* batch under its *own*
   per-operator precision plan (quantization noise streams are worker-
   independent — Proposition 1's unbiasedness then makes the averaged
   gradient unbiased);
2. gradients are all-reduced (weighted by local batch size, which matters
   for Dynamic Batch Sizing);
3. every worker's optimizer applies the identical averaged gradient, so
   replicas stay bit-identical in their FP32 master weights.

BatchNorm running statistics are intentionally **not** synchronized (the
paper discusses sync-BN as a costly alternative, Sec. II-A); evaluation uses
worker 0's statistics, reproducing the DBS degradation mechanism.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.common.dtypes import Precision
from repro.common.rng import derive_seed
from repro.parallel.collective import allreduce_gradients
from repro.tensor import Tensor, functional as F
from repro.tensor.modules import Module
from repro.tensor.qmodules import QuantizedOp
from repro.train.data import Dataset
from repro.train.loop import TrainResult, evaluate
from repro.train.optim import Optimizer


@dataclasses.dataclass
class WorkerConfig:
    """One simulated worker's training identity."""

    rank: int
    device_name: str
    batch_size: int
    #: Module path -> precision (missing = FP32).
    plan: dict[str, Precision] = dataclasses.field(default_factory=dict)
    rounding: str = "stochastic"


class DataParallelTrainer:
    """Synchronous DDP across heterogeneous (simulated) workers.

    Parameters
    ----------
    model_factory:
        ``(seed) -> Module``; every replica is built with the same seed and
        then force-synchronized from replica 0's state.
    workers:
        Per-worker configs (batch size, precision plan).
    optimizer_factory:
        ``(model) -> Optimizer``; one optimizer per replica (their updates
        coincide because gradients do).
    seed:
        Master seed; per-worker quantization-noise streams derive from it.
    """

    def __init__(
        self,
        model_factory: Callable[[int], Module],
        workers: list[WorkerConfig],
        optimizer_factory: Callable[[Module], Optimizer],
        seed: int = 0,
    ) -> None:
        if not workers:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.seed = seed
        self.replicas: list[Module] = [model_factory(seed) for _ in workers]
        state = self.replicas[0].state_arrays()
        for replica in self.replicas[1:]:
            replica.load_state_arrays(state)
        for cfg, replica in zip(workers, self.replicas):
            QuantizedOp.install_plan(
                replica,
                cfg.plan,
                seed=derive_seed(seed, "worker", cfg.rank),
                rounding=cfg.rounding,
            )
        self.optimizers = [optimizer_factory(m) for m in self.replicas]

    # ------------------------------------------------------------------
    @property
    def batch_sizes(self) -> list[int]:
        return [w.batch_size for w in self.workers]

    def step(self, shards: list[tuple[np.ndarray, np.ndarray]]) -> float:
        """One synchronous training step; returns the global-batch mean loss.

        Per-worker losses are means over *local* shards, so the aggregate
        must weight each by its shard's sample count — exactly the weighting
        the gradient all-reduce uses.  An unweighted mean would over-count
        small-batch workers under Dynamic Batch Sizing.
        """
        if len(shards) != len(self.replicas):
            raise ValueError(
                f"{len(shards)} shards for {len(self.replicas)} workers"
            )
        losses = []
        shard_sizes = []
        for (xb, yb), replica, opt in zip(shards, self.replicas, self.optimizers):
            opt.zero_grad()
            if np.issubdtype(np.asarray(xb).dtype, np.integer):
                logits = replica(xb)
            else:
                logits = replica(Tensor(xb))
            loss = F.cross_entropy(logits, yb)
            loss.backward()
            losses.append(loss.item())
            shard_sizes.append(float(len(yb)))
        # Weight by the *actual* shard sizes for gradients and loss alike:
        # per-worker means recombine into exact global-batch means even on
        # ragged tail shards (in-repo sharding always fills to the
        # configured batch sizes, where the two coincide).
        allreduce_gradients(self.replicas, weights=shard_sizes)
        for opt in self.optimizers:
            opt.step()
        return float(np.average(losses, weights=shard_sizes))

    # ------------------------------------------------------------------
    def train(
        self,
        dataset: Dataset,
        epochs: int,
        metric: str = "top1",
        scheduler_factory=None,
        eval_replica: int = 0,
    ) -> TrainResult:
        """Full training run; evaluates after each epoch on one replica."""
        rng = np.random.default_rng(derive_seed(self.seed, "data"))
        schedulers = (
            [scheduler_factory(opt) for opt in self.optimizers]
            if scheduler_factory
            else []
        )
        losses: list[float] = []
        history: list[float] = []
        for _ in range(epochs):
            for shards in dataset.shard_batches(self.batch_sizes, rng, epochs=1):
                losses.append(self.step(shards))
                for sch in schedulers:
                    sch.step()
            history.append(
                evaluate(self.replicas[eval_replica], dataset, metric=metric)
            )
        return TrainResult(
            final_accuracy=history[-1] if history else 0.0,
            best_accuracy=max(history) if history else 0.0,
            history=history,
            losses=losses,
        )

    # ------------------------------------------------------------------
    def replicas_synchronized(self) -> bool:
        """True iff all replicas' master weights are bit-identical —
        the synchronous-training invariant, property-tested."""
        ref = self.replicas[0].state_arrays()
        for replica in self.replicas[1:]:
            for name, arr in replica.state_arrays().items():
                if not np.array_equal(ref[name], arr):
                    return False
        return True
