"""Full-size model graphs with the paper's benchmark shapes.

Every builder returns a validated :class:`PrecisionDAG` whose operator FLOPs,
weight shapes and activation shapes match the reference architectures at the
paper's training configurations (ImageNet 224×224 for conv nets; SQuAD-style
seq 384 for BERT, SWAG-style seq 128 for RoBERTa).  The numbers drive the
Predictor's latency/memory estimates; the DAG structure (residual adds,
attention fan-out) drives the Cost Mapper's cascade logic.

Sanity anchors (checked in tests): ResNet50 has 52 conv precision-adjustable
operators and BERT-base has 73 linear ones — the counts the paper quotes when
sizing the search space (Sec. II-B).
"""

from __future__ import annotations

from typing import Callable

from repro.graph.dag import PrecisionDAG
from repro.graph.ops import (
    OperatorSpec,
    OpKind,
    conv2d_flops,
    elementwise_flops,
    linear_flops,
)


class _GraphBuilder:
    """Incremental DAG construction with shape bookkeeping."""

    def __init__(self, input_shape: tuple[int, ...]) -> None:
        self.dag = PrecisionDAG()
        self.dag.add_op(
            OperatorSpec("input", OpKind.INPUT, output_shape=input_shape)
        )
        self._shapes: dict[str, tuple[int, ...]] = {"input": input_shape}

    def shape(self, name: str) -> tuple[int, ...]:
        return self._shapes[name]

    def add(
        self,
        name: str,
        kind: OpKind,
        inputs: list[str],
        output_shape: tuple[int, ...],
        weight_shape: tuple[int, ...] | None = None,
        flops: float = 0.0,
        block: str | None = None,
    ) -> str:
        self.dag.add_op(
            OperatorSpec(
                name,
                kind,
                output_shape=output_shape,
                weight_shape=weight_shape,
                flops=flops,
                block=block,
            ),
            inputs=inputs,
        )
        self._shapes[name] = output_shape
        return name

    # ------------------------------------------------------------------
    # common layer idioms
    # ------------------------------------------------------------------
    def conv(
        self,
        name: str,
        src: str,
        out_c: int,
        k: int,
        stride: int = 1,
        pad: int | None = None,
        block: str | None = None,
    ) -> str:
        n, in_c, h, w = self.shape(src)
        pad = k // 2 if pad is None else pad
        oh = (h + 2 * pad - k) // stride + 1
        ow = (w + 2 * pad - k) // stride + 1
        return self.add(
            name,
            OpKind.CONV2D,
            [src],
            (n, out_c, oh, ow),
            weight_shape=(out_c, in_c, k, k),
            flops=conv2d_flops(n, in_c, out_c, oh, ow, k, k),
            block=block,
        )

    def bn(self, name: str, src: str, block: str | None = None) -> str:
        shape = self.shape(src)
        return self.add(
            name, OpKind.BATCHNORM, [src], shape,
            flops=2 * elementwise_flops(shape), block=block,
        )

    def relu(self, name: str, src: str, block: str | None = None) -> str:
        shape = self.shape(src)
        return self.add(
            name, OpKind.RELU, [src], shape,
            flops=elementwise_flops(shape), block=block,
        )

    def maxpool(self, name: str, src: str, k: int = 2, stride: int | None = None,
                block: str | None = None) -> str:
        stride = stride or k
        n, c, h, w = self.shape(src)
        return self.add(
            name, OpKind.MAXPOOL, [src], (n, c, h // stride, w // stride),
            flops=elementwise_flops(self.shape(src)), block=block,
        )

    def linear(
        self, name: str, src: str, out_features: int, block: str | None = None
    ) -> str:
        shape = self.shape(src)
        in_features = shape[-1]
        tokens = 1
        for d in shape[:-1]:
            tokens *= d
        return self.add(
            name,
            OpKind.LINEAR,
            [src],
            shape[:-1] + (out_features,),
            weight_shape=(out_features, in_features),
            flops=linear_flops(tokens, in_features, out_features),
            block=block,
        )


# ---------------------------------------------------------------------------
# VGG16 / VGG16BN
# ---------------------------------------------------------------------------

_VGG16_CFG: list[int | str] = [
    64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
    512, 512, 512, "M", 512, 512, 512, "M",
]


def vgg16_graph(
    batch_size: int = 128,
    image_size: int = 224,
    num_classes: int = 1000,
    batch_norm: bool = False,
) -> PrecisionDAG:
    """VGG16 (optionally with BN), ImageNet configuration."""
    b = _GraphBuilder((batch_size, 3, image_size, image_size))
    prev = "input"
    conv_idx = 0
    stage = 0
    for item in _VGG16_CFG:
        if item == "M":
            prev = b.maxpool(f"pool{stage}", prev, 2)
            stage += 1
            continue
        blk = f"stage{stage}"
        prev = b.conv(f"features.conv{conv_idx}", prev, int(item), 3, block=blk)
        if batch_norm:
            prev = b.bn(f"features.bn{conv_idx}", prev, block=blk)
        prev = b.relu(f"features.relu{conv_idx}", prev, block=blk)
        conv_idx += 1
    n, c, h, w = b.shape(prev)
    prev = b.add("flatten", OpKind.FLATTEN, [prev], (n, c * h * w))
    prev = b.linear("classifier.fc0", prev, 4096, block="classifier")
    prev = b.relu("classifier.relu0", prev, block="classifier")
    prev = b.linear("classifier.fc1", prev, 4096, block="classifier")
    prev = b.relu("classifier.relu1", prev, block="classifier")
    prev = b.linear("classifier.fc2", prev, num_classes, block="classifier")
    b.add("loss", OpKind.LOSS, [prev], (1,))
    b.dag.validate()
    return b.dag


def vgg16bn_graph(batch_size: int = 128, image_size: int = 224,
                  num_classes: int = 1000) -> PrecisionDAG:
    """VGG16 with batch normalization."""
    return vgg16_graph(batch_size, image_size, num_classes, batch_norm=True)


# ---------------------------------------------------------------------------
# ResNet50
# ---------------------------------------------------------------------------


def resnet50_graph(
    batch_size: int = 128, image_size: int = 224, num_classes: int = 1000
) -> PrecisionDAG:
    """ResNet50 bottleneck architecture, ImageNet configuration.

    52 adjustable convs + 1 FC: stem (1) + 16 bottlenecks × 3 + 4 downsample
    projections = 53 convs total; the paper's "52 Conv2D operators" counts
    the quantizable convs excluding the FP32-pinned stem.
    """
    b = _GraphBuilder((batch_size, 3, image_size, image_size))
    prev = b.conv("stem.conv", "input", 64, 7, stride=2, pad=3, block="stem")
    prev = b.bn("stem.bn", prev, block="stem")
    prev = b.relu("stem.relu", prev, block="stem")
    prev = b.maxpool("stem.pool", prev, 2)

    stages = [
        ("layer1", 3, 64, 256, 1),
        ("layer2", 4, 128, 512, 2),
        ("layer3", 6, 256, 1024, 2),
        ("layer4", 3, 512, 2048, 2),
    ]
    for stage_name, blocks, width, out_c, first_stride in stages:
        for i in range(blocks):
            blk = f"{stage_name}.{i}"
            stride = first_stride if i == 0 else 1
            identity = prev
            x = b.conv(f"{blk}.conv1", prev, width, 1, stride=1, pad=0, block=blk)
            x = b.bn(f"{blk}.bn1", x, block=blk)
            x = b.relu(f"{blk}.relu1", x, block=blk)
            x = b.conv(f"{blk}.conv2", x, width, 3, stride=stride, pad=1, block=blk)
            x = b.bn(f"{blk}.bn2", x, block=blk)
            x = b.relu(f"{blk}.relu2", x, block=blk)
            x = b.conv(f"{blk}.conv3", x, out_c, 1, stride=1, pad=0, block=blk)
            x = b.bn(f"{blk}.bn3", x, block=blk)
            if i == 0:
                identity = b.conv(
                    f"{blk}.downsample", identity, out_c, 1, stride=stride,
                    pad=0, block=blk,
                )
                identity = b.bn(f"{blk}.downsample_bn", identity, block=blk)
            x = b.add(
                f"{blk}.add", OpKind.ADD, [x, identity], b.shape(x),
                flops=elementwise_flops(b.shape(x)), block=blk,
            )
            prev = b.relu(f"{blk}.relu3", x, block=blk)

    n, c, h, w = b.shape(prev)
    prev = b.add(
        "avgpool", OpKind.AVGPOOL, [prev], (n, c),
        flops=elementwise_flops((n, c, h, w)),
    )
    prev = b.linear("fc", prev, num_classes, block="head")
    b.add("loss", OpKind.LOSS, [prev], (1,))
    b.dag.validate()
    return b.dag


# ---------------------------------------------------------------------------
# BERT / RoBERTa
# ---------------------------------------------------------------------------


def _transformer_graph(
    prefix: str,
    batch_size: int,
    seq_len: int,
    hidden: int,
    layers: int,
    heads: int,
    vocab: int,
    head_outputs: int,
) -> PrecisionDAG:
    b = _GraphBuilder((batch_size, seq_len))
    prev = b.add(
        "embeddings",
        OpKind.EMBEDDING,
        ["input"],
        (batch_size, seq_len, hidden),
        weight_shape=(vocab, hidden),
        flops=elementwise_flops((batch_size, seq_len, hidden)),
    )
    tokens = batch_size * seq_len
    head_dim = hidden // heads
    for i in range(layers):
        blk = f"encoder.{i}"
        ln1 = b.add(
            f"{blk}.ln1", OpKind.LAYERNORM, [prev],
            (batch_size, seq_len, hidden),
            flops=4 * elementwise_flops((batch_size, seq_len, hidden)), block=blk,
        )
        q = b.linear(f"{blk}.attn.q", ln1, hidden, block=blk)
        k = b.linear(f"{blk}.attn.k", ln1, hidden, block=blk)
        v = b.linear(f"{blk}.attn.v", ln1, hidden, block=blk)
        scores = b.add(
            f"{blk}.attn.scores", OpKind.MATMUL, [q, k],
            (batch_size, heads, seq_len, seq_len),
            flops=2.0 * batch_size * heads * seq_len * seq_len * head_dim,
            block=blk,
        )
        probs = b.add(
            f"{blk}.attn.softmax", OpKind.SOFTMAX, [scores],
            (batch_size, heads, seq_len, seq_len),
            flops=4 * elementwise_flops((batch_size, heads, seq_len, seq_len)),
            block=blk,
        )
        ctx = b.add(
            f"{blk}.attn.context", OpKind.MATMUL, [probs, v],
            (batch_size, seq_len, hidden),
            flops=2.0 * batch_size * heads * seq_len * seq_len * head_dim,
            block=blk,
        )
        attn_out = b.linear(f"{blk}.attn.out", ctx, hidden, block=blk)
        res1 = b.add(
            f"{blk}.add1", OpKind.ADD, [attn_out, prev],
            (batch_size, seq_len, hidden),
            flops=elementwise_flops((batch_size, seq_len, hidden)), block=blk,
        )
        ln2 = b.add(
            f"{blk}.ln2", OpKind.LAYERNORM, [res1],
            (batch_size, seq_len, hidden),
            flops=4 * elementwise_flops((batch_size, seq_len, hidden)), block=blk,
        )
        fc1 = b.linear(f"{blk}.mlp.fc1", ln2, hidden * 4, block=blk)
        act = b.add(
            f"{blk}.mlp.gelu", OpKind.GELU, [fc1],
            (batch_size, seq_len, hidden * 4),
            flops=8 * elementwise_flops((batch_size, seq_len, hidden * 4)),
            block=blk,
        )
        fc2 = b.linear(f"{blk}.mlp.fc2", act, hidden, block=blk)
        prev = b.add(
            f"{blk}.add2", OpKind.ADD, [fc2, res1],
            (batch_size, seq_len, hidden),
            flops=elementwise_flops((batch_size, seq_len, hidden)), block=blk,
        )
    head = b.linear(f"{prefix}.head", prev, head_outputs, block="head")
    b.add("loss", OpKind.LOSS, [head], (1,))
    b.dag.validate()
    return b.dag


def bert_graph(batch_size: int = 12, seq_len: int = 384) -> PrecisionDAG:
    """BERT-base for SQuAD QA: 12 layers, hidden 768, QA span head.

    73 adjustable linears: 12 layers × 6 (q/k/v/out/fc1/fc2) + 1 head —
    matching the paper's search-space arithmetic (3^73, Sec. II-B).
    """
    return _transformer_graph(
        "qa", batch_size, seq_len, hidden=768, layers=12, heads=12,
        vocab=30_522, head_outputs=2,
    )


def roberta_graph(batch_size: int = 16, seq_len: int = 128) -> PrecisionDAG:
    """RoBERTa-base for SWAG multiple choice: 12 layers, hidden 768."""
    return _transformer_graph(
        "mc", batch_size, seq_len, hidden=768, layers=12, heads=12,
        vocab=50_265, head_outputs=1,
    )


#: Name -> builder, for the experiment harnesses.
MODEL_GRAPHS: dict[str, Callable[..., PrecisionDAG]] = {
    "vgg16": vgg16_graph,
    "vgg16bn": vgg16bn_graph,
    "resnet50": resnet50_graph,
    "bert": bert_graph,
    "roberta": roberta_graph,
}
