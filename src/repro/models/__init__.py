"""Model zoo.

Two parallel families:

* :mod:`repro.models.catalog` — *graph builders* producing
  :class:`~repro.graph.dag.PrecisionDAG` s with the real shapes/FLOPs of the
  paper's benchmark models (ResNet50, VGG16, VGG16BN, BERT, RoBERTa).  These
  feed the Predictor/Allocator — no numerics, just structure and cost facts.
* :mod:`repro.models.trainable` — *executable* scaled-down counterparts
  built on :mod:`repro.tensor`, used wherever real training must run
  (indicator statistics, accuracy tables).  Their adjustable-operator layout
  mirrors the big models one-to-one in kind and ordering.
"""

from repro.models.catalog import (
    MODEL_GRAPHS,
    bert_graph,
    resnet50_graph,
    roberta_graph,
    vgg16_graph,
)
from repro.models.trainable import (
    MiniConvNet,
    MiniResNet,
    MiniTransformer,
    make_mini_model,
    mini_model_graph,
)

__all__ = [
    "vgg16_graph",
    "resnet50_graph",
    "bert_graph",
    "roberta_graph",
    "MODEL_GRAPHS",
    "MiniConvNet",
    "MiniResNet",
    "MiniTransformer",
    "make_mini_model",
    "mini_model_graph",
]
