"""Executable scaled-down counterparts of the benchmark models.

These run real hybrid mixed-precision training on :mod:`repro.tensor`.  Each
mini-model's precision-adjustable operators mirror the kind/order of its
full-size sibling, and :func:`mini_model_graph` emits a
:class:`PrecisionDAG` whose adjustable node names equal the model's module
paths — so a plan computed by the Allocator on the graph installs directly
onto the executable model.
"""

from __future__ import annotations

import numpy as np

from repro.graph.dag import PrecisionDAG
from repro.graph.ops import (
    OperatorSpec,
    OpKind,
    conv2d_flops,
    elementwise_flops,
    linear_flops,
)
from repro.tensor import functional as F
from repro.tensor.modules import (
    BatchNorm2d,
    Conv2d,
    Embedding,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    TransformerBlock,
)
from repro.tensor.tensor import Tensor


class MiniConvNet(Module):
    """VGG-style plain conv stack (with or without BN).

    Default: 5 convs over 16×16 inputs — the smallest net that still shows
    BN's batch-size sensitivity and depth-dependent quantization sensitivity.
    """

    def __init__(
        self,
        in_channels: int = 3,
        widths: tuple[int, ...] = (16, 16, 32, 32, 64),
        num_classes: int = 10,
        image_size: int = 16,
        batch_norm: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.batch_norm = batch_norm
        self.image_size = image_size
        self.in_channels = in_channels
        self.widths = widths
        layers: list[Module] = []
        c = in_channels
        size = image_size
        # Pool after every second conv while the map stays >= 4x4.
        for i, w in enumerate(widths):
            layers.append(Conv2d(c, w, 3, padding=1, bias=not batch_norm, seed=seed + i))
            if batch_norm:
                layers.append(BatchNorm2d(w))
            layers.append(ReLU())
            if i % 2 == 1 and size >= 8:
                layers.append(MaxPool2d(2))
                size //= 2
            c = w
        layers.append(GlobalAvgPool2d())
        self.features = Sequential(*layers)
        self.classifier = Linear(c, num_classes, seed=seed + 100)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))


class _ResidualBlock(Module):
    def __init__(self, in_c: int, out_c: int, seed: int) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_c, out_c, 3, padding=1, bias=False, seed=seed)
        self.bn1 = BatchNorm2d(out_c)
        self.conv2 = Conv2d(out_c, out_c, 3, padding=1, bias=False, seed=seed + 1)
        self.bn2 = BatchNorm2d(out_c)
        self.proj: Conv2d | None = None
        if in_c != out_c:
            self.proj = Conv2d(in_c, out_c, 1, bias=False, seed=seed + 2)

    def forward(self, x: Tensor) -> Tensor:
        identity = x if self.proj is None else self.proj(x)
        out = F.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return F.relu(out + identity)


class MiniResNet(Module):
    """Three residual blocks over 16×16 inputs (ResNet50 analogue)."""

    def __init__(
        self,
        in_channels: int = 3,
        widths: tuple[int, ...] = (16, 32, 64),
        num_classes: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.stem = Conv2d(in_channels, widths[0], 3, padding=1, bias=False, seed=seed)
        self.stem_bn = BatchNorm2d(widths[0])
        self.block0 = _ResidualBlock(widths[0], widths[0], seed=seed + 10)
        self.block1 = _ResidualBlock(widths[0], widths[1], seed=seed + 20)
        self.block2 = _ResidualBlock(widths[1], widths[2], seed=seed + 30)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(widths[2], num_classes, seed=seed + 40)

    def forward(self, x: Tensor) -> Tensor:
        x = F.relu(self.stem_bn(self.stem(x)))
        x = self.block0(x)
        x = self.block1(x)
        x = self.block2(x)
        return self.fc(self.pool(x))


class MiniTransformer(Module):
    """Tiny encoder for sequence classification (BERT/RoBERTa analogue)."""

    def __init__(
        self,
        vocab_size: int = 64,
        dim: int = 32,
        num_heads: int = 4,
        num_layers: int = 2,
        num_classes: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.embed = Embedding(vocab_size, dim, seed=seed)
        self.blocks = Sequential(
            *[TransformerBlock(dim, num_heads, seed=seed + 50 * i) for i in range(num_layers)]
        )
        self.head = Linear(dim, num_classes, seed=seed + 999)

    def forward(self, tokens: np.ndarray) -> Tensor:
        x = self.embed(tokens)
        x = self.blocks(x)
        pooled = x.mean(axis=1)  # mean-pool over sequence
        return self.head(pooled)


# ---------------------------------------------------------------------------
# factory + graph mirror
# ---------------------------------------------------------------------------

MINI_MODELS = {
    "mini_vgg": lambda seed=0: MiniConvNet(batch_norm=False, seed=seed),
    "mini_vggbn": lambda seed=0: MiniConvNet(batch_norm=True, seed=seed),
    "mini_resnet": lambda seed=0: MiniResNet(seed=seed),
    "mini_bert": lambda seed=0: MiniTransformer(num_classes=4, seed=seed),
    # 6-layer variant: Table III's "Half-BertLayer1,3,5" config needs depth.
    "mini_bert6": lambda seed=0: MiniTransformer(
        num_layers=6, num_classes=4, seed=seed
    ),
    "mini_roberta": lambda seed=0: MiniTransformer(
        vocab_size=96, num_layers=3, num_classes=4, seed=seed
    ),
}


def make_mini_model(name: str, seed: int = 0) -> Module:
    """Instantiate a mini model by registry name."""
    if name not in MINI_MODELS:
        raise KeyError(f"unknown mini model {name!r}; available: {sorted(MINI_MODELS)}")
    return MINI_MODELS[name](seed=seed)


def mini_model_graph(
    name: str,
    batch_size: int = 32,
    width_scale: int = 1,
    spatial_scale: int = 1,
) -> PrecisionDAG:
    """PrecisionDAG mirror of a mini model.

    Adjustable node names equal the executable model's module paths, so a
    plan computed on the graph installs directly via
    :meth:`QuantizedOp.install_plan`.

    ``width_scale``/``spatial_scale`` inflate channel/feature widths and
    spatial/sequence extents *of the graph only*: topology and names stay
    identical to the executable model, while FLOPs and memory reach
    production scale.  This is how the reproduction splits the paper's
    experiments across its two fidelity axes (DESIGN.md §4): latency and
    memory decisions are made against realistic shapes; accuracy is measured
    on the laptop-scale executable twin, with the plan transferred by name.
    """
    model = make_mini_model(name)
    if isinstance(model, MiniConvNet):
        return _convnet_graph(model, batch_size, width_scale, spatial_scale)
    if isinstance(model, MiniResNet):
        return _resnet_graph(model, batch_size, width_scale, spatial_scale)
    if isinstance(model, MiniTransformer):
        return _transformer_mini_graph(model, batch_size, width_scale, spatial_scale)
    raise TypeError(f"no graph mirror for {type(model).__name__}")


def _convnet_graph(
    model: MiniConvNet, batch: int, width_scale: int = 1, spatial_scale: int = 1
) -> PrecisionDAG:
    dag = PrecisionDAG()
    logical_size = model.image_size  # drives pool placement (matches model)
    size = model.image_size * spatial_scale  # drives shapes/FLOPs
    c = model.in_channels
    dag.add_op(OperatorSpec("input", OpKind.INPUT, (batch, c, size, size)))
    prev = "input"
    layer_idx = 0
    for i, w_base in enumerate(model.widths):
        w = w_base * width_scale
        blk = f"convblock{i}"
        name = f"features.{layer_idx}"
        dag.add_op(
            OperatorSpec(
                name, OpKind.CONV2D, (batch, w, size, size),
                weight_shape=(w, c, 3, 3),
                flops=conv2d_flops(batch, c, w, size, size, 3, 3), block=blk,
            ),
            inputs=[prev],
        )
        prev = name
        layer_idx += 1
        if model.batch_norm:
            bn_name = f"features.bn{i}"
            dag.add_op(
                OperatorSpec(
                    bn_name, OpKind.BATCHNORM, (batch, w, size, size),
                    flops=2 * elementwise_flops((batch, w, size, size)), block=blk,
                ),
                inputs=[prev],
            )
            prev = bn_name
            layer_idx += 1
        relu_name = f"features.relu{i}"
        dag.add_op(
            OperatorSpec(
                relu_name, OpKind.RELU, (batch, w, size, size),
                flops=elementwise_flops((batch, w, size, size)), block=blk,
            ),
            inputs=[prev],
        )
        prev = relu_name
        layer_idx += 1
        if i % 2 == 1 and logical_size >= 8:
            pool_name = f"features.pool{i}"
            logical_size //= 2
            size //= 2
            dag.add_op(
                OperatorSpec(
                    pool_name, OpKind.MAXPOOL, (batch, w, size, size),
                    flops=elementwise_flops((batch, w, size * 2, size * 2)),
                ),
                inputs=[prev],
            )
            prev = pool_name
            layer_idx += 1
        c = w
    dag.add_op(
        OperatorSpec("features.gap", OpKind.AVGPOOL, (batch, c),
                     flops=elementwise_flops((batch, c, size, size))),
        inputs=[prev],
    )
    dag.add_op(
        OperatorSpec(
            "classifier", OpKind.LINEAR, (batch, 10),
            weight_shape=(10, c), flops=linear_flops(batch, c, 10), block="head",
        ),
        inputs=["features.gap"],
    )
    dag.add_op(OperatorSpec("loss", OpKind.LOSS, (1,)), inputs=["classifier"])
    dag.validate()
    return dag


def _graph_names_for_convnet(model: MiniConvNet) -> list[str]:
    """Module paths of adjustable ops in layer order (tests rely on this)."""
    names = []
    idx = 0
    size = model.image_size
    for i in range(len(model.widths)):
        names.append(f"features.{idx}")
        idx += 1  # conv
        if model.batch_norm:
            idx += 1
        idx += 1  # relu
        if i % 2 == 1 and size >= 8:
            idx += 1
            size //= 2
    names.append("classifier")
    return names


def _resnet_graph(
    model: MiniResNet, batch: int, width_scale: int = 1, spatial_scale: int = 1
) -> PrecisionDAG:
    dag = PrecisionDAG()
    size = 16 * spatial_scale
    w0 = model.stem.out_channels * width_scale
    w1 = model.block1.conv1.out_channels * width_scale
    w2 = model.block2.conv1.out_channels * width_scale
    dag.add_op(OperatorSpec("input", OpKind.INPUT, (batch, model.stem.in_channels, size, size)))

    def conv(name, src, in_c, out_c, k, blk):
        dag.add_op(
            OperatorSpec(
                name, OpKind.CONV2D, (batch, out_c, size, size),
                weight_shape=(out_c, in_c, k, k),
                flops=conv2d_flops(batch, in_c, out_c, size, size, k, k), block=blk,
            ),
            inputs=[src],
        )
        return name

    def simple(name, kind, src, c, blk=None, extra_inputs=()):
        dag.add_op(
            OperatorSpec(
                name, kind, (batch, c, size, size),
                flops=elementwise_flops((batch, c, size, size)), block=blk,
            ),
            inputs=[src, *extra_inputs],
        )
        return name

    prev = conv("stem", "input", model.stem.in_channels, w0, 3, "stem")
    prev = simple("stem_bn", OpKind.BATCHNORM, prev, w0, "stem")
    prev = simple("stem_relu", OpKind.RELU, prev, w0, "stem")

    blocks = [("block0", w0, w0), ("block1", w0, w1), ("block2", w1, w2)]
    for blk, in_c, out_c in blocks:
        identity = prev
        x = conv(f"{blk}.conv1", prev, in_c, out_c, 3, blk)
        x = simple(f"{blk}.bn1", OpKind.BATCHNORM, x, out_c, blk)
        x = simple(f"{blk}.relu1", OpKind.RELU, x, out_c, blk)
        x = conv(f"{blk}.conv2", x, out_c, out_c, 3, blk)
        x = simple(f"{blk}.bn2", OpKind.BATCHNORM, x, out_c, blk)
        if in_c != out_c:
            identity = conv(f"{blk}.proj", prev, in_c, out_c, 1, blk)
        x = simple(f"{blk}.add", OpKind.ADD, x, out_c, blk, extra_inputs=(identity,))
        prev = simple(f"{blk}.relu2", OpKind.RELU, x, out_c, blk)

    dag.add_op(
        OperatorSpec("pool", OpKind.AVGPOOL, (batch, w2),
                     flops=elementwise_flops((batch, w2, size, size))),
        inputs=[prev],
    )
    dag.add_op(
        OperatorSpec("fc", OpKind.LINEAR, (batch, 10), weight_shape=(10, w2),
                     flops=linear_flops(batch, w2, 10), block="head"),
        inputs=["pool"],
    )
    dag.add_op(OperatorSpec("loss", OpKind.LOSS, (1,)), inputs=["fc"])
    dag.validate()
    return dag


def _transformer_mini_graph(
    model: MiniTransformer, batch: int, width_scale: int = 1, spatial_scale: int = 1
) -> PrecisionDAG:
    dim = model.head.in_features * width_scale
    seq = 16 * spatial_scale
    heads = model.blocks.layers[0].attn.num_heads
    head_dim = dim // heads
    vocab = model.embed.table.shape[0]
    dag = PrecisionDAG()
    dag.add_op(OperatorSpec("input", OpKind.INPUT, (batch, seq)))
    dag.add_op(
        OperatorSpec("embed", OpKind.EMBEDDING, (batch, seq, dim),
                     weight_shape=(vocab, dim)),
        inputs=["input"],
    )
    prev = "embed"
    tokens = batch * seq

    def lin(name, src, out_f, blk, in_f=dim):
        dag.add_op(
            OperatorSpec(
                name, OpKind.LINEAR, (batch, seq, out_f),
                weight_shape=(out_f, in_f),
                flops=linear_flops(tokens, in_f, out_f), block=blk,
            ),
            inputs=[src],
        )
        return name

    def simple(name, kind, src, shape, blk, extra_inputs=(), flops=None):
        dag.add_op(
            OperatorSpec(
                name, kind, shape,
                flops=flops if flops is not None else elementwise_flops(shape),
                block=blk,
            ),
            inputs=[src, *extra_inputs],
        )
        return name

    shape3 = (batch, seq, dim)
    for i in range(len(model.blocks.layers)):
        blk = f"blocks.{i}"
        ln1 = simple(f"{blk}.ln1", OpKind.LAYERNORM, prev, shape3, blk)
        q = lin(f"{blk}.attn.q_proj", ln1, dim, blk)
        k = lin(f"{blk}.attn.k_proj", ln1, dim, blk)
        v = lin(f"{blk}.attn.v_proj", ln1, dim, blk)
        scores = simple(
            f"{blk}.attn.scores", OpKind.MATMUL, q, (batch, heads, seq, seq), blk,
            extra_inputs=(k,), flops=2.0 * batch * heads * seq * seq * head_dim,
        )
        probs = simple(f"{blk}.attn.softmax", OpKind.SOFTMAX, scores,
                       (batch, heads, seq, seq), blk)
        ctx = simple(
            f"{blk}.attn.context", OpKind.MATMUL, probs, shape3, blk,
            extra_inputs=(v,), flops=2.0 * batch * heads * seq * seq * head_dim,
        )
        out = lin(f"{blk}.attn.out_proj", ctx, dim, blk)
        res1 = simple(f"{blk}.add1", OpKind.ADD, out, shape3, blk, extra_inputs=(prev,))
        ln2 = simple(f"{blk}.ln2", OpKind.LAYERNORM, res1, shape3, blk)
        fc1 = lin(f"{blk}.fc1", ln2, dim * 4, blk)
        act = simple(f"{blk}.gelu", OpKind.GELU, fc1, (batch, seq, dim * 4), blk)
        fc2 = lin(f"{blk}.fc2", act, dim, blk, in_f=dim * 4)
        prev = simple(f"{blk}.add2", OpKind.ADD, fc2, shape3, blk, extra_inputs=(res1,))

    dag.add_op(
        OperatorSpec("meanpool", OpKind.AVGPOOL, (batch, dim)),
        inputs=[prev],
    )
    n_classes = model.head.out_features
    dag.add_op(
        OperatorSpec("head", OpKind.LINEAR, (batch, n_classes),
                     weight_shape=(n_classes, dim),
                     flops=linear_flops(batch, dim, n_classes), block="head"),
        inputs=["meanpool"],
    )
    dag.add_op(OperatorSpec("loss", OpKind.LOSS, (1,)), inputs=["head"])
    dag.validate()
    return dag
