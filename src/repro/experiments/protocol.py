"""Shared end-to-end protocol for Tables IV/V/VI.

Splits each method's evaluation across the reproduction's two fidelity axes
(DESIGN.md §4):

* **throughput** — predicted by the Replayer on the production-scale graph
  mirror (realistic shapes, datasheet-calibrated devices);
* **accuracy** — measured by really training the executable mini model under
  the method's precision plan / batch-size split, with the plan transferred
  from the graph by operator name.

Methods: ORACLE (all-FP32), DBS (FP32 + speed-proportional local batches),
UP (uniform lowest-fitting precision on inference GPUs), QSYNC (allocator
plan).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.baselines import dbs_batch_sizes
from repro.common.dtypes import Precision
from repro.core.allocator import AllocatorConfig
from repro.hardware.cluster import Cluster
from repro.models import make_mini_model, mini_model_graph
from repro.parallel import DataParallelTrainer, WorkerConfig
from repro.profiling import MemoryModel, collect_model_stats
from repro.session import PlanRequest, PlanSession
from repro.tensor import Tensor, functional as F
from repro.train import SGD, Adam, Dataset

#: Production-scale graph settings per mini model (shapes reach the regime
#: where the paper's memory/throughput pressures are active).
GRAPH_SCALE: dict[str, dict] = {
    "mini_vgg": dict(width_scale=16, spatial_scale=4),
    "mini_vggbn": dict(width_scale=16, spatial_scale=4),
    "mini_resnet": dict(width_scale=24, spatial_scale=4),
    "mini_bert": dict(width_scale=24, spatial_scale=8),
    "mini_roberta": dict(width_scale=24, spatial_scale=8),
}


def find_pressure_batch(
    model_name: str, device_memory: int, start: int = 64, cap: int = 4096
) -> int:
    """Smallest batch (on a ~1.2x ladder, 32-aligned) whose FP32 footprint
    exceeds ``device_memory`` — the hybrid-training regime where the
    inference GPU cannot hold the training GPU's configuration at full
    precision, while lower precisions still fit.  The fine ladder matters:
    overshooting would push even INT8 past ClusterB's cap."""
    mm = MemoryModel()
    batch = start
    while batch <= cap:
        dag = mini_model_graph(model_name, batch_size=batch, **GRAPH_SCALE[model_name])
        if mm.estimate(dag).total > device_memory:
            return batch
        batch = int(-(-batch * 1.2 // 32) * 32)  # ceil to a multiple of 32
    return cap


@dataclasses.dataclass
class MethodPlan:
    """Everything a method needs to be trained and timed."""

    name: str
    #: Per-rank precision plans for the executable model (module paths).
    plans: dict[int, dict[str, Precision]]
    #: Per-rank local batch sizes for the executable run.
    batch_sizes: list[int]
    #: Predicted iterations/second at production scale.
    throughput: float | None


def prepare_methods(
    model_name: str,
    cluster: Cluster,
    graph_batch: int,
    exec_batch_per_worker: int,
    stats: dict | None = None,
    loss: str = "ce",
    allocator_config: AllocatorConfig | None = None,
    session: PlanSession | None = None,
) -> dict[str, MethodPlan]:
    """Build ORACLE/DBS/UP/QSYNC plans + predicted throughputs.

    UP and QSYNC run as planner strategies on one :class:`PlanSession`
    (pass a shared ``session`` to amortize profiling across tables); the
    FP32 baseline replayer for ORACLE/DBS comes from the same session's
    context, so the whole method set profiles each device type once.
    """
    scale = GRAPH_SCALE[model_name]
    session = session or PlanSession()
    if stats is None:
        stats = collect_executable_stats(model_name, loss=loss)
    # gamma uses the executable local batch (the accuracy axis), not the
    # production graph batch — hence the explicit batch_size.
    request = PlanRequest(
        model=model_name,
        model_kwargs=dict(batch_size=graph_batch, **scale),
        cluster=cluster,
        loss=loss,
        batch_size=exec_batch_per_worker,
        stats=stats,
        config=allocator_config,
        profile_repeats=2,
    )
    ctx = session.prepare(request)
    template, replayer = ctx.template, ctx.replayer
    k = cluster.size
    uniform_batches = [exec_batch_per_worker] * k

    # ---- ORACLE: all FP32 everywhere (throughput not defined in-paper).
    oracle = MethodPlan("ORACLE", {w.rank: {} for w in cluster.workers},
                        uniform_batches, None)
    fp32_sim = replayer.simulate()

    # ---- DBS: FP32, local batches proportional to per-sample speed.
    per_sample = [
        fp32_sim.per_device_compute[w.rank] / graph_batch for w in cluster.workers
    ]
    global_exec = exec_batch_per_worker * k
    dbs_batches = dbs_batch_sizes(global_exec, per_sample)
    # Predicted iteration: balanced compute + the FP32 collective tail.
    dbs_graph_batches = dbs_batch_sizes(graph_batch * k, per_sample)
    dbs_compute = max(
        t * b for t, b in zip(per_sample, dbs_graph_batches)
    )
    comm = sum(
        replayer.collective_model.allreduce_time(cluster, b.nbytes)
        for b in replayer.local_dfg(0).buckets
    )
    dbs_iter = dbs_compute + comm
    dbs = MethodPlan("DBS", {w.rank: {} for w in cluster.workers},
                     dbs_batches, 1.0 / dbs_iter)

    # ---- UP: uniform lowest-fitting precision on inference workers.
    up_out = session.plan(dataclasses.replace(request, strategy="uniform"))
    up_plans: dict[int, dict[str, Precision]] = {}
    for w in cluster.workers:
        if w.is_inference:
            gp = up_out.plan.for_device(w.device.name)
            up_plans[w.rank] = _weighted_only(template, gp)
        else:
            up_plans[w.rank] = {}
    up = MethodPlan("UP", up_plans, uniform_batches,
                    up_out.simulation.throughput)

    # ---- QSYNC: the allocator's quantization-minimized plan.
    qs_out = session.plan(dataclasses.replace(request, strategy="qsync"))
    qs_plans: dict[int, dict[str, Precision]] = {}
    for w in cluster.workers:
        if w.is_inference:
            gp = qs_out.plan.for_device(w.device.name)
            qs_plans[w.rank] = _weighted_only(template, gp)
        else:
            qs_plans[w.rank] = {}
    qsync = MethodPlan("QSync", qs_plans, uniform_batches,
                       qs_out.simulation.throughput)

    return {"ORACLE": oracle, "DBS": dbs, "UP": up, "QSync": qsync}


def _weighted_only(dag, graph_plan: dict[str, Precision]) -> dict[str, Precision]:
    """Keep only weighted adjustable ops (installable module paths)."""
    return {
        op: prec
        for op, prec in graph_plan.items()
        if dag.spec(op).has_weight and prec is not Precision.FP32
    }


def collect_executable_stats(model_name: str, loss: str = "ce", iterations: int = 20):
    """Profile indicator statistics on the executable mini model (the paper's
    first-50-iterations running mean, at reduced batch)."""
    from repro.common import new_rng
    from repro.train.data import make_image_classification, make_token_classification

    model = make_mini_model(model_name, seed=0)
    rng = new_rng(1234)
    if model_name.startswith(("mini_bert", "mini_roberta")):
        vocab = model.embed.table.shape[0]
        ds = make_token_classification(
            n_train=512, n_test=32, vocab_size=vocab, seed=7
        )
    else:
        ds = make_image_classification(n_train=512, n_test=32, seed=7)

    def data_iter():
        while True:
            for xb, yb in ds.batches(16, rng, epochs=1):
                yield xb if np.issubdtype(xb.dtype, np.integer) else Tensor(xb), yb

    def loss_fn(m, x, y):
        logits = m(x) if not isinstance(x, Tensor) else m(x)
        return F.cross_entropy(logits, y)

    return collect_model_stats(model, data_iter(), loss_fn, iterations=iterations)


def run_method_training(
    model_name: str,
    method: MethodPlan,
    cluster: Cluster,
    dataset: Dataset,
    epochs: int,
    seed: int,
    optimizer: str = "sgd",
    lr: float = 0.05,
    metric: str = "top1",
) -> float:
    """Train the executable model under one method's plan; returns accuracy."""
    workers = [
        WorkerConfig(
            rank=w.rank,
            device_name=w.device.name,
            batch_size=method.batch_sizes[w.rank],
            plan=method.plans[w.rank],
        )
        for w in cluster.workers
    ]
    if optimizer == "sgd":
        def opt_factory(m):
            return SGD(m, lr=lr, momentum=0.9)
    else:
        def opt_factory(m):
            return Adam(m, lr=lr)
    trainer = DataParallelTrainer(
        model_factory=lambda s: make_mini_model(model_name, seed=s),
        workers=workers,
        optimizer_factory=opt_factory,
        seed=seed,
    )
    result = trainer.train(dataset, epochs=epochs, metric=metric)
    return result.final_accuracy
