"""Command-line experiment runner.

Usage::

    python -m repro.experiments.runner table3
    python -m repro.experiments.runner all --full
    python -m repro.experiments.runner fig6 --show-extras
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate QSync's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="full-scale protocol (more models/seeds/epochs; slow)",
    )
    parser.add_argument(
        "--show-extras", action="store_true",
        help="also print textual extras (timelines, traces)",
    )
    args = parser.parse_args(argv)

    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for eid in ids:
        if eid not in EXPERIMENTS:
            parser.error(f"unknown experiment {eid!r}")
        t0 = time.time()
        result = run_experiment(eid, quick=not args.full)
        print(result.formatted())
        if args.show_extras:
            for key, value in result.extras.items():
                if isinstance(value, str):
                    print(f"\n--- extras[{key}] ---\n{value}")
        print(f"({time.time() - t0:.1f}s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
