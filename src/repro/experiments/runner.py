"""Command-line experiment sweep runner.

Expands the requested experiments into sweep cells (one per experiment x
model variant x protocol), executes them with the cache-aware
:class:`~repro.experiments.sweep.SweepRunner`, and prints each cell's
table.  Re-running a sweep replays cached cells from the artifact store
(``--out``, default ``.qsync-artifacts/``) and only recomputes cells whose
fingerprinted inputs changed.

Usage::

    python -m repro.experiments.runner table3
    python -m repro.experiments.runner all --jobs 4
    python -m repro.experiments.runner all --full --no-cache
    python -m repro.experiments.runner all --filter table2 --list
    python -m repro.experiments.runner fig6 --show-extras
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.artifacts import ArtifactStore
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.sweep import ScenarioGrid, SweepRunner


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate QSync's tables and figures (cached, parallel).",
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    protocol = parser.add_mutually_exclusive_group()
    protocol.add_argument(
        "--quick", action="store_true",
        help="quick protocol (default: fewer models/seeds/epochs)",
    )
    protocol.add_argument(
        "--full", action="store_true",
        help="full-scale protocol (more models/seeds/epochs; slow)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run up to N cells in parallel worker processes (default 1)",
    )
    parser.add_argument(
        "--filter", default=None, metavar="SUBSTR",
        help="only run cells whose id contains SUBSTR (e.g. 'table2:BERT')",
    )
    parser.add_argument(
        "--out", default=".qsync-artifacts", metavar="DIR",
        help="artifact store directory (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell; neither read nor write the store",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_cells",
        help="print the expanded cells and their fingerprints, then exit",
    )
    parser.add_argument(
        "--show-extras", action="store_true",
        help="also print textual extras (timelines, traces)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for eid in ids:
        if eid not in EXPERIMENTS:
            parser.error(f"unknown experiment {eid!r}")

    grid = ScenarioGrid(ids, protocols=("full",) if args.full else ("quick",))
    cells = grid.cells(filter=args.filter)
    if not cells:
        parser.error(f"no cells match filter {args.filter!r}")

    if args.list_cells:
        for cell in cells:
            print(f"{cell.cell_id}  {cell.fingerprint()}")
        return 0

    store = None if args.no_cache else ArtifactStore(args.out)
    runner = SweepRunner(store=store, jobs=args.jobs, use_cache=not args.no_cache)

    def _print_outcome(outcome) -> None:
        # Streamed as cells finish, so long sweeps show per-cell progress.
        if outcome.status == "failed":
            print(f"== {outcome.cell_id}: FAILED ==")
            print(outcome.error)
            return
        print(outcome.result.formatted())
        if args.show_extras:
            for key, value in outcome.result.extras.items():
                if isinstance(value, str):
                    print(f"\n--- extras[{key}] ---\n{value}")
        print(f"({outcome.elapsed:.1f}s, {outcome.status})\n", flush=True)

    report = runner.run(cells, on_outcome=_print_outcome)
    print(report.summary())
    return 0 if not report.failed else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
