"""Table III — replay accuracy.

Three BERT precision configurations (all linears to FP16; all linears to
INT8; encoder layers 1/3/5 to FP16), each predicted by:

* **QSync** — the cast-aware Replayer;
* **w/o cost mapper (Dpro)** — pure-op-cost replay, no casts/cascade;

against the **ground truth** fine-grained event simulator (5 averaged
iterations, per DESIGN.md §4.1).  The paper reports QSync < 5 % error with
Dpro substantially worse on cast-heavy configs.
"""

from __future__ import annotations

from repro.baselines import DproReplayer
from repro.common.dtypes import Precision
from repro.common.units import GBPS
from repro.core.simulator import GroundTruthSimulator
from repro.experiments.base import ExperimentResult
from repro.hardware import T4
from repro.hardware.cluster import Cluster, Worker
from repro.session import PlanRequest, PlanSession


#: 6-layer scaled mini-BERT so "layers 1,3,5" exist.  Sweep scenario axes
#: derive this table's cache-key model set and graph configuration from
#: here, so edits re-key cached artifacts.
MODEL_NAME = "mini_bert6"
GRAPH_KW = {"batch_size": 12, "width_scale": 24, "spatial_scale": 8}


def _configs(dag):
    """The three Table III precision configurations."""
    linears = [
        op for op in dag.adjustable_ops()
        if dag.spec(op).has_weight
    ]
    half_linears = {op: Precision.FP16 for op in linears}
    int_linears = {op: Precision.INT8 for op in linears}
    target_blocks = ("blocks.0.", "blocks.2.", "blocks.4.")
    half_layers = {
        op: Precision.FP16
        for op in linears
        if op.startswith(target_blocks)
    }
    return {
        "Half-Linears": half_linears,
        "INT-Linears": int_linears,
        "Half-BertLayer1,3,5": half_layers,
    }


def run(quick: bool = True) -> ExperimentResult:
    # A homogeneous 2xT4 communication group (the paper traces comm on small
    # homogeneous sub-sets, Sec. IV-B): both workers carry the quantized
    # configuration, so the mixed-precision execution *is* the critical path
    # the predictors must get right.
    cluster = Cluster(
        name="2xT4",
        workers=tuple(
            Worker(rank=r, device=T4, link_bandwidth=32 * GBPS) for r in range(2)
        ),
    )
    # 6-layer scaled mini-BERT so "layers 1,3,5" exist; dim 768, seq 128.
    ctx = PlanSession().prepare(
        PlanRequest(
            model=MODEL_NAME, model_kwargs=GRAPH_KW, cluster=cluster,
            profile_repeats=3,
        )
    )
    replayer, backends = ctx.replayer, ctx.backends
    dag_inf = replayer.dags[1]
    gt_iters = 3 if quick else 5

    rows = []
    for label, plan in _configs(dag_inf).items():
        for rank in (0, 1):
            replayer.apply_plan(
                rank, {op: Precision.FP32 for op in dag_inf.adjustable_ops()}
            )
            replayer.apply_plan(rank, plan)

        truth = GroundTruthSimulator(
            cluster, replayer.dags, backends, seed=0
        ).run(iterations=gt_iters).iteration_time
        qsync_est = replayer.simulate().iteration_time
        dpro_est = DproReplayer(
            cluster, replayer.dags,
            {r: replayer.mappers[r].catalog for r in replayer.mappers},
        ).simulate().iteration_time

        rows.append([label, "Ground Truth", f"{truth * 1e3:.2f}", "/"])
        rows.append([
            label, "w/o cost mapper (Dpro)", f"{dpro_est * 1e3:.2f}",
            f"{abs(dpro_est - truth) / truth * 100:.1f}%",
        ])
        rows.append([
            label, "QSync", f"{qsync_est * 1e3:.2f}",
            f"{abs(qsync_est - truth) / truth * 100:.1f}%",
        ])

    return ExperimentResult(
        experiment_id="table3",
        title="Replay accuracy (per-iteration latency prediction vs ground truth)",
        headers=["Config", "Method", "Est. (ms)", "Err"],
        rows=rows,
        paper=[
            ["Half-Linears", "Ground Truth", "474.83", "/"],
            ["Half-Linears", "w/o cost mapper (Dpro)", "427.50", "8±0.3%"],
            ["Half-Linears", "QSync", "474.52", "3.5±0.5%"],
            ["INT-Linears", "Ground Truth", "548.46", "/"],
            ["INT-Linears", "w/o cost mapper (Dpro)", "462.73", "13±1.9%"],
            ["INT-Linears", "QSync", "537.55", "2±0.1%"],
            ["Half-BertLayer1,3,5", "Ground Truth", "787.02", "/"],
            ["Half-BertLayer1,3,5", "w/o cost mapper (Dpro)", "765.55", "3±0.7%"],
            ["Half-BertLayer1,3,5", "QSync", "781.50", "1±0.7%"],
        ],
        notes=(
            "Absolute latencies differ (BERT-base on real T4s vs the scaled "
            "mini graph on the analytical substrate); the shape to check: "
            "QSync error < 5% on every config, Dpro worst on INT-Linears "
            "(largest casting share), mildest on the partial-FP16 config."
        ),
    )
