"""Experiment harnesses — one per table/figure of the paper's evaluation.

Every harness returns an :class:`ExperimentResult` whose rows mirror the
paper's artifact, plus the paper-reported values for side-by-side reading.
``quick=True`` shrinks seeds/epochs for CI-speed runs; the benchmarks under
``benchmarks/`` call these with quick settings and assert the qualitative
*shape* (who wins, where crossovers fall).

Registry:

======== ==========================================================
table1   Device capability (Table I)
table2   Indicator quality vs Random/Hessian (Table II)
table3   Replay accuracy vs Dpro (Table III)
table4   ClusterA end-to-end: accuracy + throughput (Table IV)
table5   ClusterB end-to-end (Table V)
table6   Fine-tuning tasks (Table VI)
fig4     Operator cost composition (Fig. 4)
fig6     Training timeline UP vs QSync (Fig. 6)
fig7     Backend optimizations: MinMax + fusion (Fig. 7)
fig8     Indicator rank trace over early training (Fig. 8)
======== ==========================================================
"""

from repro.experiments.artifacts import ArtifactStore
from repro.experiments.base import ExperimentResult, format_table
from repro.experiments.registry import (
    EXPERIMENTS,
    SCENARIOS,
    ScenarioAxes,
    Variant,
    get_experiment,
    run_experiment,
)
from repro.experiments.sweep import (
    CellOutcome,
    ScenarioCell,
    ScenarioGrid,
    SweepReport,
    SweepRunner,
)

__all__ = [
    "ExperimentResult",
    "format_table",
    "EXPERIMENTS",
    "SCENARIOS",
    "ScenarioAxes",
    "Variant",
    "get_experiment",
    "run_experiment",
    "ArtifactStore",
    "CellOutcome",
    "ScenarioCell",
    "ScenarioGrid",
    "SweepReport",
    "SweepRunner",
]
