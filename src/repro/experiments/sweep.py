"""Parallel, cache-aware experiment sweeps.

QSync's evaluation is a grid — methods x models x cluster presets x
protocols (Tables I-VI, Figs. 4-8).  This module turns that grid into
independent, deterministically-seeded *cells* and executes them with
failure isolation, optional process parallelism, and a content-addressed
artifact cache:

* :class:`ScenarioGrid` expands the :data:`~repro.experiments.registry.SCENARIOS`
  axes into :class:`ScenarioCell`\\ s (one per experiment x model variant x
  protocol);
* :class:`SweepRunner` executes cells serially or via a
  ``ProcessPoolExecutor``, timing each cell and converting per-cell crashes
  into ``failed`` outcomes instead of aborting the sweep;
* results are cached in an :class:`~repro.experiments.artifacts.ArtifactStore`
  keyed on each cell's :meth:`~ScenarioCell.fingerprint` — a stable digest
  of the cell's code-independent inputs (model graph structure
  fingerprints, cluster preset, protocol, seed), so a repeated sweep
  replays from disk and only recomputes cells whose inputs changed.

Both execution paths round-trip results through the JSON payload the store
writes, so a cached replay, a serial run, and a parallel run all yield
identical :class:`~repro.experiments.base.ExperimentResult` objects and
byte-identical artifacts.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import functools
import time
import traceback

# repro: allow RPR002 perf_counter feeds SweepReport progress timings only;
# they are reporting-side and never enter artifacts, fingerprints or keys
# (PR 2: artifact bytes are deterministic, no timings inside).
from typing import Any, Iterable, Sequence

from repro.common.stable_hash import stable_digest, stable_mod
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.base import ExperimentResult, jsonable
from repro.experiments.registry import EXPERIMENTS, SCENARIOS, run_experiment

PROTOCOLS = ("quick", "full")


@functools.lru_cache(maxsize=None)
def model_structure_fingerprint(model_name: str) -> int:
    """Structure fingerprint of a catalog model's graph.

    ``model_name`` is either a mini-model registry name (``mini_vggbn``)
    or a full-scale builder stem (``resnet50`` for
    :func:`repro.models.catalog.resnet50_graph`).  Built at a canonical
    batch size: the fingerprint witnesses the *catalog topology* (ops,
    kinds, shapes, wiring) — a catalog change that reshapes the model
    re-keys every cell touching it.  Experiment-side graph parameters
    (scales, builder kwargs) are covered separately via
    ``ScenarioAxes.config``; other experiment-code changes are by design
    *not* part of the cache key — recompute with ``--no-cache`` or bump
    ``artifacts.ARTIFACT_FORMAT`` after changing experiment logic.
    """
    from repro.models import catalog, mini_model_graph
    from repro.models.trainable import MINI_MODELS

    if model_name in MINI_MODELS:
        dag = mini_model_graph(model_name, batch_size=16)
    else:
        builder = getattr(catalog, f"{model_name}_graph", None)
        if builder is None:
            raise KeyError(
                f"unknown model {model_name!r}: neither a mini-model registry "
                f"name nor a repro.models.catalog '<name>_graph' builder"
            )
        dag = builder(batch_size=16)
    return dag.structure_fingerprint()


@functools.lru_cache(maxsize=None)
def _experiment_accepts_seed(experiment_id: str) -> bool:
    """Whether the experiment's ``run`` takes an explicit ``seed`` kwarg.

    Cells forward their derived seed only to experiments that consume it —
    and only then does the seed participate in the cache fingerprint, so a
    different grid base seed never re-keys (and recomputes) cells whose
    results it cannot change.
    """
    import inspect

    try:
        params = inspect.signature(EXPERIMENTS[experiment_id]).parameters
    except (KeyError, TypeError, ValueError):
        return False
    return "seed" in params


@dataclasses.dataclass(frozen=True)
class ScenarioCell:
    """One independently executable point of the sweep grid."""

    experiment_id: str
    protocol: str
    models: tuple[str, ...]
    cluster: str
    seed: int
    variant: str = ""
    kwargs: tuple[tuple[str, Any], ...] = ()
    #: Experiment-declared code-independent configuration (graph scales,
    #: builder kwargs) — see ``ScenarioAxes.config``.
    config: tuple = ()

    @property
    def cell_id(self) -> str:
        parts = [self.experiment_id]
        if self.variant:
            parts.append(self.variant)
        parts.append(self.protocol)
        return ":".join(parts)

    def run_kwargs(self) -> dict[str, Any]:
        out = {"quick": self.protocol == "quick", **dict(self.kwargs)}
        if _experiment_accepts_seed(self.experiment_id):
            out.setdefault("seed", self.seed)
        return out

    def execute(self) -> ExperimentResult:
        """Run the underlying experiment (no caching at this level)."""
        return run_experiment(self.experiment_id, **self.run_kwargs())

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """JSON-safe cell descriptor (recorded inside artifacts)."""

        def best_effort(value: Any) -> Any:
            # kwargs/config may hold values canonical_encode accepts but
            # JSON cannot (enums); degrade to repr rather than crash the
            # store write for metadata that is informational only.
            try:
                return jsonable(value)
            except TypeError:
                return repr(value)

        return {
            "experiment_id": self.experiment_id,
            "protocol": self.protocol,
            "variant": self.variant,
            "models": list(self.models),
            "cluster": self.cluster,
            "seed": self.seed,
            "kwargs": best_effort(self.kwargs),
            "config": best_effort(self.config),
        }

    def fingerprint_inputs(self) -> dict[str, Any]:
        """The code-independent inputs the cache key digests."""
        return {
            "experiment": self.experiment_id,
            "protocol": self.protocol,
            "variant": self.variant,
            "cluster": self.cluster,
            # Only a *consumed* seed may move the cache key; see
            # _experiment_accepts_seed.
            "seed": self.seed if _experiment_accepts_seed(self.experiment_id) else None,
            "kwargs": self.kwargs,
            "config": self.config,
            "graphs": {
                name: model_structure_fingerprint(name) for name in self.models
            },
        }

    def fingerprint(self) -> str:
        """Stable content address of this cell (hex digest).

        Identical across processes and ``PYTHONHASHSEED`` values — the
        soundness condition for the artifact cache.
        """
        return stable_digest(self.fingerprint_inputs())


class ScenarioGrid:
    """Expands the scenario axes into deterministic cells.

    Parameters
    ----------
    experiments:
        Experiment ids to include (default: every registered experiment).
    protocols:
        Which protocol axes to expand (subset of ``("quick", "full")``).
    seed:
        Base seed; each cell derives its own seed from
        ``(base, experiment, variant, protocol)`` so cells are independent
        yet reproducible.  The derived seed is forwarded to (and
        fingerprinted for) experiments whose ``run`` accepts a ``seed``
        parameter; seed-blind experiments keep their cache keys.
    """

    def __init__(
        self,
        experiments: Sequence[str] | None = None,
        protocols: Sequence[str] = ("quick",),
        seed: int = 0,
    ) -> None:
        ids = sorted(EXPERIMENTS) if experiments is None else list(experiments)
        for eid in ids:
            if eid not in EXPERIMENTS:
                raise KeyError(
                    f"unknown experiment {eid!r}; available: {sorted(EXPERIMENTS)}"
                )
            if eid not in SCENARIOS:
                raise KeyError(f"experiment {eid!r} has no scenario axes")
        for protocol in protocols:
            if protocol not in PROTOCOLS:
                raise ValueError(
                    f"unknown protocol {protocol!r}; expected one of {PROTOCOLS}"
                )
        self.experiments = tuple(ids)
        self.protocols = tuple(protocols)
        self.seed = seed

    def cells(self, filter: str | None = None) -> list[ScenarioCell]:
        """The grid's cells, optionally filtered by ``cell_id`` substring."""
        out: list[ScenarioCell] = []
        for eid in self.experiments:
            axes = SCENARIOS[eid]
            for protocol in self.protocols:
                for variant in axes.variants(protocol):
                    cell = ScenarioCell(
                        experiment_id=eid,
                        protocol=protocol,
                        models=variant.models,
                        cluster=axes.cluster,
                        seed=stable_mod(
                            (self.seed, eid, variant.label, protocol), 2**31 - 1
                        ),
                        variant=variant.label,
                        kwargs=variant.kwargs,
                        config=axes.config,
                    )
                    if filter is None or filter in cell.cell_id:
                        out.append(cell)
        return out


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _execute_cell(cell: ScenarioCell) -> tuple[dict[str, Any] | None, str | None, float]:
    """Run one cell; module-level so worker processes can unpickle it.

    Returns ``(result_payload, error, elapsed_seconds)`` — exactly one of
    payload/error is set.  Exceptions never propagate: a crashing cell must
    not take down its worker (or, serially, the rest of the sweep).
    """
    t0 = time.perf_counter()
    try:
        payload = cell.execute().to_json_dict()
        return payload, None, time.perf_counter() - t0
    except Exception:  # noqa: BLE001 - failure isolation is the contract
        return None, traceback.format_exc(), time.perf_counter() - t0


@dataclasses.dataclass
class CellOutcome:
    """What happened to one cell during a sweep."""

    cell: ScenarioCell
    fingerprint: str  # empty when the run bypassed the store (no-cache)
    status: str  # "cached" | "computed" | "failed"
    elapsed: float
    result: ExperimentResult | None = None
    error: str | None = None
    artifact: Any = None  # Path when the store persisted this cell

    @property
    def cell_id(self) -> str:
        return self.cell.cell_id


@dataclasses.dataclass
class SweepReport:
    """Aggregate outcome of one :meth:`SweepRunner.run`."""

    outcomes: list[CellOutcome]
    wall_seconds: float
    jobs: int

    def _with_status(self, status: str) -> list[CellOutcome]:
        return [o for o in self.outcomes if o.status == status]

    @property
    def cached(self) -> list[CellOutcome]:
        return self._with_status("cached")

    @property
    def computed(self) -> list[CellOutcome]:
        return self._with_status("computed")

    @property
    def failed(self) -> list[CellOutcome]:
        return self._with_status("failed")

    def summary(self) -> str:
        return (
            f"{len(self.outcomes)} cells: {len(self.computed)} computed, "
            f"{len(self.cached)} cached, {len(self.failed)} failed "
            f"({self.wall_seconds:.1f}s, jobs={self.jobs})"
        )


class SweepRunner:
    """Executes sweep cells with caching, timing, and failure isolation.

    Fingerprints are computed and artifacts are read/written in the parent
    process; workers only ever compute, so the store sees one writer per
    artifact and no cross-process coordination is needed.
    """

    def __init__(
        self,
        store: ArtifactStore | None = None,
        jobs: int = 1,
        use_cache: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.store = store
        self.jobs = jobs
        self.use_cache = use_cache and store is not None

    def run(
        self,
        cells: Iterable[ScenarioCell],
        on_outcome: Any = None,
    ) -> SweepReport:
        """Execute ``cells``; ``on_outcome(outcome)`` streams each
        :class:`CellOutcome` as it is produced (completion order under
        ``jobs > 1``) so long sweeps show progress before the report."""
        cells = list(cells)
        t0 = time.perf_counter()
        # Fingerprinting builds model graphs; skip it entirely when the
        # store is bypassed — nothing would read the keys.
        fingerprints = (
            [cell.fingerprint() for cell in cells]
            if self.use_cache
            else [""] * len(cells)
        )
        outcomes: list[CellOutcome | None] = [None] * len(cells)

        def emit(outcome: CellOutcome) -> CellOutcome:
            if on_outcome is not None:
                on_outcome(outcome)
            return outcome

        pending: list[int] = []
        for i, (cell, fp) in enumerate(zip(cells, fingerprints)):
            cached = self.store.load(cell, fp) if self.use_cache else None
            if cached is not None:
                outcomes[i] = emit(CellOutcome(
                    cell, fp, "cached", 0.0, result=cached,
                    artifact=self.store.path_for(cell, fp),
                ))
            else:
                pending.append(i)

        if self.jobs > 1 and len(pending) > 1:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending))
            ) as pool:
                futures = {
                    pool.submit(_execute_cell, cells[i]): i for i in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    i = futures[future]
                    retried_after = None
                    try:
                        executed = future.result()
                    except Exception as exc:  # noqa: BLE001
                        # A worker died *hard* (OOM kill, segfault) —
                        # _execute_cell only isolates Python exceptions.
                        # Hard deaths are often environmental (a memory
                        # spike, a killed container child), not the cell's
                        # fault: retry the cell once serially in the parent
                        # before recording a failure, and remember the
                        # crash so the outcome discloses the retry.
                        retried_after = f"worker crashed: {exc!r}"
                        executed = _execute_cell(cells[i])
                    outcomes[i] = emit(
                        self._finish(
                            cells[i],
                            fingerprints[i],
                            executed,
                            retried_after=retried_after,
                        )
                    )
        else:
            for i in pending:
                outcomes[i] = emit(
                    self._finish(cells[i], fingerprints[i], _execute_cell(cells[i]))
                )

        done = [o for o in outcomes if o is not None]
        assert len(done) == len(cells)
        return SweepReport(done, time.perf_counter() - t0, self.jobs)

    def _finish(
        self,
        cell: ScenarioCell,
        fingerprint: str,
        executed: tuple[dict[str, Any] | None, str | None, float],
        retried_after: str | None = None,
    ) -> CellOutcome:
        payload, error, elapsed = executed
        if error is not None:
            if retried_after is not None:
                error = (
                    f"{retried_after}\nserial retry also failed:\n{error}"
                )
            return CellOutcome(cell, fingerprint, "failed", elapsed, error=error)
        # Serial and parallel runs both round-trip through the JSON payload,
        # so cached replays can never diverge from fresh computations.
        result = ExperimentResult.from_json_dict(payload)
        artifact = None
        if self.use_cache:  # no-cache runs neither read nor write the store
            artifact = self.store.save(cell, payload, fingerprint)
        if retried_after is not None:
            # Disclose the recovery on the in-memory result only — after
            # the store write, so retried and first-try artifacts stay
            # byte-identical.
            result.extras["sweep_retry"] = {"first_error": retried_after}
        return CellOutcome(
            cell, fingerprint, "computed", elapsed, result=result, artifact=artifact
        )
