"""Topology-aware collectives — flat ring vs hierarchical vs tree.

Not a paper table: this experiment quantifies what the flat single-
bottleneck ring model (the pre-topology default, kept for parity) leaves on
the table on multi-node clusters.  For each registered multi-node preset it
builds one Replayer and prices the same gradient buckets under every
collective model, reporting per-iteration latency and the pure all-reduce
share.  Sec. IV-B's observation — communication cost is topology-shaped —
is the reproduction target: hierarchical must beat flat wherever nodes have
fast intra fabrics, while flat stays exactly the legacy model.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.hardware.cluster import (
    Cluster,
    make_cloud_edge_cluster,
    make_cluster_a_multinode,
    make_cluster_b_multinode,
)
from repro.parallel.comm_model import COLLECTIVE_MODELS
from repro.session import PlanRequest, PlanSession

#: Graph mirror priced on every preset.  Sweep scenario axes derive this
#: experiment's cache-key model set and configuration from these constants
#: (both protocols' kwargs), so edits re-key cached artifacts.
MODEL_NAME = "mini_bert"
GRAPH_KW = {"batch_size": 8, "width_scale": 16, "spatial_scale": 8}
QUICK_GRAPH_KW = {**GRAPH_KW, "width_scale": 8, "spatial_scale": 4}

#: Multi-node preset axis: CLUSTER_PRESETS names -> (builder, quick-protocol
#: shrink kwargs).  Quick keeps every preset genuinely multi-node (the
#: hierarchical-beats-flat shape must survive the shrink).
PRESET_BUILDERS = {
    "cluster_a_2x8+2x8": (make_cluster_a_multinode, dict(gpus_per_node=2)),
    "cluster_b_2x8+2x8": (make_cluster_b_multinode, dict(gpus_per_node=2)),
    "cloud_edge_4+2x2": (
        make_cloud_edge_cluster,
        dict(n_cloud_gpus=2, gpus_per_edge_node=1),
    ),
}
PRESETS = tuple(PRESET_BUILDERS)


def build_preset(name: str, quick: bool = True) -> Cluster:
    """Instantiate one preset at the protocol's scale."""
    builder, quick_kwargs = PRESET_BUILDERS[name]
    return builder(**quick_kwargs) if quick else builder()


def price_collectives(
    cluster: Cluster,
    quick: bool = True,
    profile_repeats: int | None = None,
    session: PlanSession | None = None,
) -> tuple[dict[str, dict[str, float]], list]:
    """Price one cluster's gradient buckets under every collective model.

    The single measurement procedure shared by this experiment's rows and
    ``benchmarks.bench_comm``'s JSON payload (so the two can never drift):
    one Replayer per cluster, then per registered model a simulate plus the
    per-bucket all-reduce total.  Returns ``(per-model stats, buckets)``.
    Pass a shared ``session`` to reuse device-type catalogs across presets
    (V100/T4 repeat across the multi-node clusters).
    """
    graph_kw = QUICK_GRAPH_KW if quick else GRAPH_KW
    if profile_repeats is None:
        profile_repeats = 1 if quick else 2
    ctx = (session or PlanSession()).prepare(
        PlanRequest(
            model=MODEL_NAME, model_kwargs=graph_kw, cluster=cluster,
            profile_repeats=profile_repeats,
        )
    )
    replayer = ctx.replayer
    buckets = replayer.local_dfg(0).buckets
    results: dict[str, dict[str, float]] = {}
    for name, model_cls in COLLECTIVE_MODELS.items():
        model = model_cls()
        replayer.collective_model = model
        sim = replayer.simulate()
        results[name] = {
            "iteration_seconds": sim.iteration_time,
            "allreduce_seconds": sum(
                model.allreduce_time(cluster, b.nbytes) for b in buckets
            ),
            "max_comm_wait_seconds": max(sim.comm_wait_time.values()),
        }
    return results, buckets


def run(
    quick: bool = True, presets: tuple[str, ...] | None = None
) -> ExperimentResult:
    presets = PRESETS if presets is None else tuple(presets)

    session = PlanSession()  # shared: device types repeat across presets
    rows = []
    extras: dict[str, object] = {}
    for preset in presets:
        cluster = build_preset(preset, quick=quick)
        models, buckets = price_collectives(cluster, quick=quick, session=session)
        flat_ms = models["flat"]["iteration_seconds"] * 1e3
        for model_name, stats in models.items():
            iteration_ms = stats["iteration_seconds"] * 1e3
            rows.append([
                preset,
                model_name,
                f"{stats['allreduce_seconds'] * 1e3:.3f}",
                f"{iteration_ms:.3f}",
                f"{flat_ms / iteration_ms:.2f}x",
            ])
        extras[preset] = {
            "workers": cluster.size,
            "nodes": cluster.n_nodes,
            "buckets": len(buckets),
            "grad_bytes": sum(b.nbytes for b in buckets),
        }

    return ExperimentResult(
        experiment_id="comm",
        title="Collective cost models across multi-node presets",
        headers=["Preset", "Collective", "Allreduce (ms)", "Iter (ms)", "vs flat"],
        rows=rows,
        notes=(
            "flat = legacy single-bottleneck ring (the parity default); "
            "hierarchical = intra-node reduce-scatter, inter-node ring, "
            "intra-node all-gather; tree = binomial reduce+broadcast.  The "
            "shape to check: hierarchical strictly below flat on every "
            "multi-node preset (fast intra fabrics absorb 2(m-1)/m of the "
            "traffic), tree competitive only at high latency / small "
            "buffers."
        ),
        extras=extras,
    )
