"""Fig. 4 — cost composition of an operator.

For VGG16's second-to-last conv and a BERT attention linear on T4, split
each precision's per-iteration cost into:

* ``cvt_cost`` — forward casting (input + weight quantization);
* ``cpt_cost`` — pure forward+backward kernel execution;
* ``bp_cost``  — additional backward casting.

The paper's figure shows FP32 as 100 % compute, with casting shares growing
as precision drops (INT8's cvt share largest).
"""

from __future__ import annotations

from repro.backend import LPBackend
from repro.common.dtypes import Precision
from repro.experiments.base import ExperimentResult
from repro.graph.ops import OperatorSpec, OpKind, conv2d_flops, linear_flops
from repro.hardware import T4


def _operators() -> dict[str, tuple[OperatorSpec, int]]:
    """(spec, input_elems) for the two probe operators, batch 64 / 32."""
    conv = OperatorSpec(
        "vgg16.conv12", OpKind.CONV2D, (64, 512, 14, 14),
        weight_shape=(512, 512, 3, 3),
        flops=conv2d_flops(64, 512, 512, 14, 14, 3, 3),
    )
    linear = OperatorSpec(
        "bert.attn.linear", OpKind.LINEAR, (32 * 128, 768),
        weight_shape=(768, 768),
        flops=linear_flops(32 * 128, 768, 768),
    )
    return {
        "conv": (conv, 64 * 512 * 14 * 14),
        "linear": (linear, 32 * 128 * 768),
    }


def run(quick: bool = True) -> ExperimentResult:
    backend = LPBackend(T4, dequant_fusion=False)  # figure shows raw costs
    rows = []
    for op_label, (spec, input_elems) in _operators().items():
        for prec in (Precision.FP32, Precision.FP16, Precision.INT8):
            cpt = backend.op_forward_time(spec, prec, input_elems)
            cpt += backend.op_backward_time(spec, prec, input_elems)
            if prec is Precision.FP32:
                cvt = 0.0
                bp = 0.0
            else:
                cvt = backend.cast_time(Precision.FP32, prec, input_elems)
                cvt += backend.cast_time(Precision.FP32, prec, spec.weight_elems)
                # Backward-side casts: gradient enters/leaves in the
                # backward format; INT8 additionally dequantizes outputs.
                bp = backend.cast_time(
                    Precision.FP32,
                    Precision.FP16 if prec is Precision.INT8 else prec,
                    spec.output_elems,
                )
                if prec is Precision.INT8:
                    bp += backend.cast_time(Precision.INT8, Precision.FP32,
                                            spec.output_elems)
            total = cvt + cpt + bp
            rows.append([
                f"{op_label}{prec.bits}",
                f"{cvt / total * 100:.1f}%",
                f"{cpt / total * 100:.1f}%",
                f"{bp / total * 100:.1f}%",
            ])

    return ExperimentResult(
        experiment_id="fig4",
        title="Cost composition of an operator on T4 (cvt / cpt / bp shares)",
        headers=["Kernel", "cvt_cost", "cpt_cost", "bp_cost"],
        rows=rows,
        paper=[
            ["linear32", "0%", "100.0%", "0%"],
            ["linear16", "31.6%", "68.4%", "0%"],
            ["linear8", "44.2%", "33.8%", "22.0%"],
            ["conv32", "0%", "100.0%", "0%"],
            ["conv16", "7.7%", "92.3%", "0%"],
            ["conv8", "23.5%", "61.9%", "14.5%"],
        ],
        notes=(
            "Shape to check: FP32 is pure compute; casting share grows as "
            "precision drops and is larger for the linear (lower arithmetic "
            "intensity) than the conv; INT8 adds a backward casting share."
        ),
    )
