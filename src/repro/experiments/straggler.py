"""Straggler scenarios — schedule policies under deterministic slowdowns.

Not a paper table: QSync assumes every device runs at its profiled speed,
but hybrid clusters drift — an inference GPU picks up a serving burst, an
edge node throttles, a link degrades (the ACE-Sync setting).  This
experiment injects seed-derived :class:`~repro.engine.Perturbation`\\ s into
the discrete-event engine and measures how iteration time degrades under
each registered schedule policy.

The reproduction targets are *shapes*, pinned by the engine tests and the
``bench_engine`` smoke:

* synchronous data parallelism tracks the slowest rank — iteration time is
  bounded below by the perturbed straggler's compute time and grows
  monotonically with the straggler factor;
* DDP overlap never loses to blocking sync — hiding collectives behind the
  backward pass can only help, straggler or not;
* perturbations are ``PYTHONHASHSEED``-stable: every factor derives from
  :func:`repro.common.rng.derive_seed`, so one seed means one timeline.
"""

from __future__ import annotations

from repro.common.rng import derive_seed
from repro.engine import Perturbation
from repro.engine.policy import SCHEDULE_POLICIES
from repro.experiments.base import ExperimentResult
from repro.session import PlanRequest, PlanSession

#: Graph mirror under test.  Sweep scenario axes derive this experiment's
#: cache-key model set and configuration from these constants (both
#: protocols' kwargs, the factor ladder, the policy list), so edits re-key
#: cached artifacts.
MODEL_NAME = "mini_bert"
GRAPH_KW = {"batch_size": 8, "width_scale": 16, "spatial_scale": 8}
QUICK_GRAPH_KW = {**GRAPH_KW, "width_scale": 8, "spatial_scale": 4}
CLUSTER_PRESET = "cluster_a_4+4"

#: Straggler compute multipliers evaluated per policy (1.0 = only the
#: ambient jitter/drift below).
FACTORS = (1.0, 1.5, 2.0, 4.0)
#: Ambient perturbation around the straggler: every rank up to 2 % slow,
#: every bucket's collective up to 10 % over its priced duration.
COMPUTE_JITTER = 0.02
BANDWIDTH_DRIFT = 0.10


def run(
    quick: bool = True,
    seed: int = 0,
    session: PlanSession | None = None,
) -> ExperimentResult:
    graph_kw = QUICK_GRAPH_KW if quick else GRAPH_KW
    ctx = (session or PlanSession()).prepare(
        PlanRequest(
            model=MODEL_NAME,
            model_kwargs=graph_kw,
            cluster=CLUSTER_PRESET,
            profile_repeats=1 if quick else 2,
        )
    )
    replayer = ctx.replayer
    clean = replayer.simulate()
    # Slow down the highest-ranked (inference, already-slowest-NIC) worker.
    # Ranks are identities, possibly non-contiguous (PR 5) — select by rank
    # value, not by position in the worker tuple.
    straggler_rank = max(w.rank for w in ctx.cluster.workers)

    rows = []
    extras: dict[str, object] = {
        "straggler_rank": straggler_rank,
        "clean_iteration_seconds": clean.iteration_time,
    }
    for factor in FACTORS:
        pert = Perturbation(
            seed=derive_seed(seed, "straggler", factor),
            compute_jitter=COMPUTE_JITTER,
            bandwidth_drift=BANDWIDTH_DRIFT,
            stragglers={straggler_rank: factor},
        )
        # The slowest rank's perturbed compute time is the floor no
        # synchronous schedule can beat.
        slowest_bound = max(
            pert.perturb_local(replayer.local_dfg(w.rank)).compute_time
            for w in ctx.cluster.workers
        )
        for policy in SCHEDULE_POLICIES:
            sim = replayer.simulate(schedule_policy=policy, perturbation=pert)
            rows.append([
                policy,
                f"{factor:g}x",
                f"{sim.iteration_time * 1e3:.3f}",
                f"{sim.iteration_time / clean.iteration_time:.2f}x",
                "yes" if sim.iteration_time >= slowest_bound else "NO",
            ])
        extras[f"factor_{factor:g}"] = {
            "slowest_rank_bound_seconds": slowest_bound,
            "perturbation": pert.describe(),
        }

    return ExperimentResult(
        experiment_id="straggler",
        title="Schedule policies under deterministic straggler perturbations",
        headers=[
            "Policy", "Straggler", "Iter (ms)", "vs clean", "Tracks slowest",
        ],
        rows=rows,
        notes=(
            "Seed-derived perturbations on ClusterA: one inference rank is "
            "slowed by the straggler factor on top of ambient compute "
            "jitter and bandwidth drift.  Shapes to check: iteration time "
            "is bounded below by the perturbed slowest rank's compute time "
            "('tracks slowest'), grows with the factor, and ddp_overlap "
            "never loses to blocking_sync."
        ),
        extras=extras,
    )
