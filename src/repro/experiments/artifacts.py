"""Content-addressed artifact store for experiment results.

Each sweep cell's :class:`~repro.experiments.base.ExperimentResult` is
written to ``<root>/<experiment_id>/<fingerprint>.json``, where the
fingerprint is a :func:`repro.common.stable_hash.stable_digest` over the
cell's code-independent inputs (graph structure fingerprints, cluster
preset, protocol, seed — see :meth:`ScenarioCell.fingerprint`).  Re-running
a sweep therefore replays cached cells and recomputes only cells whose
inputs changed — the experiments-layer analogue of the incremental replay
engine's cross-DAG caches.

Artifact bytes are deterministic: sorted keys, fixed indentation, no
timings or host metadata inside the file.  A parallel sweep and a serial
sweep of the same grid write byte-identical artifacts (pinned by
``tests/test_sweep.py``), and writes are atomic (temp file + ``os.replace``)
so concurrent workers can never expose a torn artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.experiments.base import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.sweep import ScenarioCell

#: On-disk schema version; bump to invalidate every cached artifact at once.
#: 2: PlanSession adoption — fig6's QSync leg now shares the UP leg's
#: repeats=2 catalogs instead of re-profiling at the legacy default of 3.
#: 3: shared DFG assembly — ground-truth/Dpro bucket readiness now anchors
#: zero-backward-cost weighted ops to the nearest *preceding* backward node
#: (the Cost Mapper rule) instead of the end of the stream, which can move
#: Table III-family numbers.
ARTIFACT_FORMAT = 3


class ArtifactStore:
    """Filesystem-backed, content-addressed cache of experiment results."""

    def __init__(self, root: str | os.PathLike = ".qsync-artifacts") -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    def path_for(self, cell: "ScenarioCell", fingerprint: str | None = None) -> Path:
        fingerprint = fingerprint or cell.fingerprint()
        return self.root / cell.experiment_id / f"{fingerprint}.json"

    def load(
        self, cell: "ScenarioCell", fingerprint: str | None = None
    ) -> ExperimentResult | None:
        """Cached result for ``cell``, or ``None`` on miss.

        Unreadable or mismatched artifacts (truncated writes from a killed
        process, stale schema) are treated as misses, never as errors — the
        cache must only ever cost a recomputation.
        """
        path = self.path_for(cell, fingerprint)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if doc.get("format") != ARTIFACT_FORMAT:
            return None
        if doc.get("fingerprint") != (fingerprint or cell.fingerprint()):
            return None
        try:
            return ExperimentResult.from_json_dict(doc["result"])
        except (KeyError, TypeError):
            return None

    def save(
        self,
        cell: "ScenarioCell",
        result_payload: dict[str, Any],
        fingerprint: str | None = None,
    ) -> Path:
        """Atomically write one cell's result payload; returns the path."""
        fingerprint = fingerprint or cell.fingerprint()
        path = self.path_for(cell, fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "format": ARTIFACT_FORMAT,
            "fingerprint": fingerprint,
            "cell": cell.describe(),
            "result": result_payload,
        }
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(text)
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Path]:
        """All artifact files currently in the store."""
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(self.root.glob("*/*.json")))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def clear(self) -> int:
        """Delete every artifact (and any ``*.tmp.*`` partial left behind by
        an interrupted :meth:`save`); returns how many artifacts were
        removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        if self.root.is_dir():
            for partial in self.root.glob("*/*.tmp.*"):
                partial.unlink()
        return removed
