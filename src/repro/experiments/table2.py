"""Table II — indicator performance.

Protocol (Sec. VII-A1): pick which operators to quantize using each
indicator and compare the resulting *final accuracy* after real training:

* **ClusterA** — floating-point plans (FP16), QSync's variance indicator vs
  the Random indicator;
* **ClusterB** — fixed-point plans (INT8) at a fixed compression ratio
  (emulating "60 % maximum compression"), QSync vs the Hessian indicator.

Selection rule shared by every indicator: quantize the ``k`` ops with the
*smallest* sensitivity (keep the most sensitive ones high-precision), where
``k`` is fixed per trial so all indicators quantize the same number of ops.
Accuracy is measured by the hybrid DDP trainer (training GPUs FP32,
inference GPUs carrying the plan), ``seeds`` repetitions.
"""

from __future__ import annotations

from repro.baselines import HessianIndicator, RandomIndicator, hessian_top_eigenvalues
from repro.common.dtypes import Precision
from repro.common.rng import new_rng
from repro.core.indicator import VarianceIndicator, gamma_for_loss
from repro.experiments.base import ExperimentResult, mean_std
from repro.experiments.protocol import collect_executable_stats, run_method_training
from repro.experiments.protocol import MethodPlan
from repro.models import make_mini_model, mini_model_graph
from repro.tensor import Tensor, functional as F
from repro.train.data import make_image_classification, make_token_classification


MODELS = {
    "ResNet50": ("mini_resnet", "image", "sgd", 0.05, "top1"),
    "VGG16BN": ("mini_vggbn", "image", "sgd", 0.05, "top1"),
    "BERT": ("mini_bert", "token", "adam", 2e-3, "f1"),
    "RoBERTa": ("mini_roberta", "token", "adam", 2e-3, "f1"),
}


def _dataset(kind: str, model_name: str, quick: bool):
    n_train = 768 if quick else 2048
    if kind == "image":
        return make_image_classification(n_train=n_train, n_test=256, seed=3)
    vocab = make_mini_model(model_name).embed.table.shape[0]
    return make_token_classification(
        n_train=n_train, n_test=256, vocab_size=vocab, seed=3
    )


def _plan_from_indicator(indicator, ops: list[str], k: int, precision: Precision):
    """Quantize the k least-sensitive ops at ``precision``."""
    scored = sorted(ops, key=lambda op: indicator.omega(op, precision))
    return {op: precision for op in scored[:k]}


def _train_with_plan(model_name, plan, dataset, cluster_size, epochs, seed,
                     optimizer, lr, metric):
    plans = {0: {}, 1: {}, 2: plan, 3: plan}
    plans = {r: plans.get(r, {}) for r in range(cluster_size)}
    method = MethodPlan("trial", plans, [16] * cluster_size, None)

    class _FakeWorker:
        def __init__(self, rank):
            self.rank = rank
            self.device = type("D", (), {"name": "V100" if rank < 2 else "T4"})()

    class _FakeCluster:
        workers = [_FakeWorker(r) for r in range(cluster_size)]

    return run_method_training(
        model_name, method, _FakeCluster(), dataset, epochs=epochs, seed=seed,
        optimizer=optimizer, lr=lr, metric=metric,
    )


def run(quick: bool = True, models: list[str] | None = None,
        seeds: int | None = None) -> ExperimentResult:
    seeds = seeds or (1 if quick else 3)
    epochs = 3 if quick else 6
    model_list = models or (["VGG16BN", "BERT"] if quick else list(MODELS))
    cluster_size = 4

    rows = []
    for display in model_list:
        model_name, kind, optimizer, lr, metric = MODELS[display]
        dag = mini_model_graph(model_name, batch_size=16)
        weighted = [op for op in dag.adjustable_ops() if dag.spec(op).has_weight]
        k = max(len(weighted) // 2, 1)
        stats = collect_executable_stats(model_name, iterations=10 if quick else 30)
        gamma = gamma_for_loss("ce", 16)
        qsync_ind = VarianceIndicator(dag, stats, gamma)
        dataset = _dataset(kind, model_name, quick)

        # ---- ClusterA: FP16 plans, QSync vs Random.
        rand_ind = RandomIndicator(weighted, seed=11)
        for method_name, indicator in (("QSync", qsync_ind), ("Random", rand_ind)):
            plan = _plan_from_indicator(indicator, weighted, k, Precision.FP16)
            accs = [
                _train_with_plan(model_name, plan, dataset, cluster_size,
                                 epochs, seed, optimizer, lr, metric)
                for seed in range(seeds)
            ]
            rows.append([display, "ClusterA", method_name, mean_std(accs)])

        # ---- ClusterB: INT8 plans at fixed compression, QSync vs Hessian.
        model = make_mini_model(model_name, seed=0)
        rng = new_rng(5)
        if kind == "image":
            xb = Tensor(rng.normal(size=(16, 3, 16, 16)))
            yb = rng.integers(0, 10, size=16)
        else:
            vocab = model.embed.table.shape[0]
            xb = rng.integers(0, vocab, size=(16, 16))
            yb = rng.integers(0, 4, size=16)
        eigs = hessian_top_eigenvalues(
            model, lambda m: F.cross_entropy(m(xb), yb),
            power_iters=3 if quick else 8, seed=0,
        )
        hess_ind = HessianIndicator(eigs, stats)
        for method_name, indicator in (("QSync", qsync_ind), ("Hess", hess_ind)):
            plan = _plan_from_indicator(indicator, weighted, k, Precision.INT8)
            accs = [
                _train_with_plan(model_name, plan, dataset, cluster_size,
                                 epochs, seed, optimizer, lr, metric)
                for seed in range(seeds)
            ]
            rows.append([display, "ClusterB", method_name, mean_std(accs)])

    return ExperimentResult(
        experiment_id="table2",
        title="Indicator performance (final accuracy under indicator-selected plans)",
        headers=["Model", "Cluster", "Method", "Final Accuracy"],
        rows=rows,
        paper=[
            ["ResNet50", "ClusterA", "QSync", "76.77±0.43%"],
            ["ResNet50", "ClusterA", "Random", "76.53±0.53%"],
            ["ResNet50", "ClusterB", "QSync", "76.67±0.59%"],
            ["ResNet50", "ClusterB", "Hess", "76.00±0.43%"],
            ["VGG16BN", "ClusterA", "QSync", "74.77±0.12%"],
            ["VGG16BN", "ClusterA", "Random", "74.12±0.88%"],
            ["VGG16BN", "ClusterB", "QSync", "74.27±0.06%"],
            ["VGG16BN", "ClusterB", "Hess", "73.36±0.63%"],
            ["BERT", "ClusterA", "QSync", "87.41±0.05%"],
            ["BERT", "ClusterA", "Random", "87.39±0.19%"],
            ["BERT", "ClusterB", "QSync", "87.44±0.20%"],
            ["BERT", "ClusterB", "Hess", "87.34±0.11%"],
            ["RoBERTa", "ClusterA", "QSync", "83.59±0.11%"],
            ["RoBERTa", "ClusterA", "Random", "83.61±0.15%"],
            ["RoBERTa", "ClusterB", "QSync", "82.94±0.12%"],
            ["RoBERTa", "ClusterB", "Hess", "82.71±0.31%"],
        ],
        notes=(
            "Shape to check: QSync's indicator >= baseline in most cells, "
            "with the clearest margins in ClusterB (fixed-point) where the "
            "Hessian sees only weight curvature — mirroring the paper's "
            "explanation of its ClusterB advantage.  Deltas are small on "
            "fine-tune-style tasks, as in the paper."
        ),
    )
