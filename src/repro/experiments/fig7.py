"""Fig. 7 — backend optimization effects.

(a) Quantization (MinMax) overhead, vanilla vs optimized kernel, for a
    (64, 56, 56) tensor at base batch 64 scaled 1x-5x (paper: 16-20 %
    reduction, growing with batch).

(b) Extra end-to-end overhead of INT8 relative to FP16 on a ResNet50-scale
    training iteration at batch 256, BARE backend (no fusion, vanilla
    MinMax) vs Optimized, on T4 and A10 (paper: ~10 % -> ~5 %).
"""

from __future__ import annotations

from repro.backend import LPBackend
from repro.common.dtypes import Precision
from repro.experiments.base import ExperimentResult
from repro.hardware import A10, T4

#: Full-scale graph builder stem used by panel (b).  Sweep scenario axes
#: derive this figure's cache-key model set from here.
GRAPH_MODEL = "resnet50"


def _iteration_time(backend: LPBackend, dag, precision: Precision) -> float:
    """Sum of per-op fwd+bwd + casting under a uniform weighted-op plan."""
    total = 0.0
    for name in dag.topo_order():
        spec = dag.spec(name)
        input_elems = sum(dag.spec(p).output_elems for p in dag.predecessors(name))
        if spec.has_weight and spec.is_adjustable:
            prec = precision
            total += backend.cast_time(Precision.FP32, prec, input_elems)
            total += backend.cast_time(Precision.FP32, prec, spec.weight_elems)
            if prec is Precision.INT8:
                total += backend.cast_time(Precision.INT8, Precision.FP32,
                                           spec.output_elems)
        else:
            prec = Precision.FP16 if backend.device.supports(Precision.FP16) else Precision.FP32
            if not backend.device.supports(prec):
                prec = Precision.FP32
        if spec.flops > 0:
            total += backend.op_forward_time(spec, prec, input_elems)
            total += backend.op_backward_time(spec, prec, input_elems)
    return total


def run(quick: bool = True) -> ExperimentResult:
    rows = []

    # ---- (a) full quantization pipeline (MinMax + scale + quantize),
    # vanilla vs optimized kernels, 1x-5x batch.
    base_elems = 64 * 56 * 56
    vanilla_be = LPBackend(T4, optimized_minmax=False)
    opt_be = LPBackend(T4, optimized_minmax=True)
    for mult in range(1, 6):
        elems = mult * base_elems
        vanilla = vanilla_be.cast_time(Precision.FP32, Precision.INT8, elems,
                                       rows=mult * 64)
        optimized = opt_be.cast_time(Precision.FP32, Precision.INT8, elems,
                                     rows=mult * 64)
        rows.append([
            "fig7a", f"{mult}x", f"{vanilla * 1e6:.1f}us", f"{optimized * 1e6:.1f}us",
            f"-{(1 - optimized / vanilla) * 100:.0f}%",
        ])

    # ---- (b) INT8-vs-FP16 extra overhead, BARE vs Optimized, on the real
    # ResNet50 graph at batch 256 (the paper's configuration) — arithmetic
    # intensity matters here, so the mini-model mirror is not a substitute.
    from repro.models import catalog

    dag = getattr(catalog, f"{GRAPH_MODEL}_graph")(
        batch_size=256 if not quick else 128
    )
    for device in (T4, A10):
        bare = LPBackend(device, dequant_fusion=False, optimized_minmax=False)
        opt = LPBackend(device, dequant_fusion=True, optimized_minmax=True)
        t16 = _iteration_time(opt, dag, Precision.FP16)
        t8_bare = _iteration_time(bare, dag, Precision.INT8)
        t8_opt = _iteration_time(opt, dag, Precision.INT8)
        rows.append([
            "fig7b", device.name,
            f"+{(t8_bare / t16 - 1) * 100:.1f}% (BARE)",
            f"+{(t8_opt / t16 - 1) * 100:.1f}% (Optimized)",
            f"fp16={t16 * 1e3:.1f}ms",
        ])

    return ExperimentResult(
        experiment_id="fig7",
        title="Backend optimizations: (a) MinMax kernel, (b) INT8 extra overhead vs FP16",
        headers=["Panel", "Config", "Baseline", "Optimized", "Delta"],
        rows=rows,
        paper=[
            ["fig7a", "1x-5x", "vanilla", "optimized", "-16..20%"],
            ["fig7b", "T4", "+10% (BARE)", "+5% (Optimized)", "-"],
            ["fig7b", "A10", "+~10% (BARE)", "+~5% (Optimized)", "-"],
        ],
        notes=(
            "Shape to check: (a) the optimized MinMax is uniformly faster "
            "with the gap growing with tensor size; (b) optimization roughly "
            "halves INT8's extra overhead relative to FP16 on both devices."
        ),
    )
