"""Tables IV, V, VI — end-to-end training: accuracy + throughput.

Each row trains the executable mini model under one method's plan (real
hybrid mixed-precision DDP) and pairs it with the Replayer's predicted
throughput at production scale — the protocol of
:mod:`repro.experiments.protocol`.
"""

from __future__ import annotations

from repro.core.allocator import AllocatorConfig
from repro.experiments.base import ExperimentResult, mean_std
from repro.experiments.protocol import (
    find_pressure_batch,
    prepare_methods,
    run_method_training,
)
from repro.hardware import T4, make_cluster_a, make_cluster_b
from repro.models import make_mini_model
from repro.session import PlanSession
from repro.train.data import make_image_classification, make_token_classification

#: ClusterB memory ratio used by the reproduction.  The paper uses 30 %;
#: our activation-memory anatomy compresses INT8 ~2.7x vs FP32 (the paper's
#: backend compresses harder), so the equivalent "INT8-fits-FP16-doesn't"
#: regime sits at ~42 % — recorded as a substitution in DESIGN.md §4.
CLUSTER_B_RATIO = 0.42

#: display name -> graph/model catalog name per table, with the quick-mode
#: subset.  Single source of truth: the sweep engine's scenario axes
#: (``registry.SCENARIOS``) derive cache-key model sets from these, so
#: changing a table's model set here automatically re-keys its cached
#: artifacts.
TABLE4_MODELS = {
    "ResNet50": "mini_resnet", "VGG16": "mini_vgg", "VGG16BN": "mini_vggbn",
}
TABLE4_QUICK = ("VGG16BN",)
TABLE5_MODELS = {"ResNet50": "mini_resnet", "VGG16BN": "mini_vggbn"}
TABLE5_QUICK = ("VGG16BN",)
TABLE6_MODELS = {"BERT": "mini_bert", "RoBERTa": "mini_roberta"}
TABLE6_QUICK = ("BERT",)

_PAPER_TABLE4 = [
    ["ResNet50", "ORACLE", "76.93±0.20%", "—"],
    ["ResNet50", "DBS", "76.13±0.05%", "0.40"],
    ["ResNet50", "UP", "76.50±0.26%", "0.45"],
    ["ResNet50", "QSync", "76.77±0.43%", "0.45"],
    ["VGG16", "ORACLE", "70.43±0.06%", "—"],
    ["VGG16", "DBS", "69.83±0.15%", "0.17"],
    ["VGG16", "UP", "69.76±0.06%", "0.20"],
    ["VGG16", "QSync", "70.33±0.06%", "0.20"],
    ["VGG16BN", "ORACLE", "74.46±0.07%", "—"],
    ["VGG16BN", "DBS", "73.93±0.15%", "0.32"],
    ["VGG16BN", "UP", "73.80±0.10%", "0.38"],
    ["VGG16BN", "QSync", "74.77±0.12%", "0.38"],
]

_PAPER_TABLE5 = [
    ["ResNet50", "ORACLE", "76.93±0.20%", "—"],
    ["ResNet50", "DBS", "76.40±0.10%", "0.40"],
    ["ResNet50", "UP", "76.36±0.20%", "0.40"],
    ["ResNet50", "QSync", "76.67±0.59%", "0.45"],
    ["VGG16BN", "ORACLE", "74.46±0.07%", "—"],
    ["VGG16BN", "DBS", "73.93±0.15%", "0.32"],
    ["VGG16BN", "UP", "73.23±0.13%", "0.38"],
    ["VGG16BN", "QSync", "74.26±0.06%", "0.38"],
]

_PAPER_TABLE6 = [
    ["BERT", "ORACLE", "87.49±0.08%", "—"],
    ["BERT", "DBS", "87.52±0.20%", "1.68"],
    ["BERT", "UP", "87.28±0.28%", "1.78"],
    ["BERT", "QSync", "87.41±0.05%", "1.78"],
    ["RoBERTa", "ORACLE", "83.95±0.05%", "—"],
    ["RoBERTa", "DBS", "83.73±0.21%", "1.10"],
    ["RoBERTa", "UP", "83.46±0.09%", "1.34"],
    ["RoBERTa", "QSync", "83.59±0.11%", "1.34"],
]


def _run_table(
    experiment_id: str,
    title: str,
    model_map: dict[str, str],
    cluster_factory,
    paper,
    quick: bool,
    seeds: int | None,
    optimizer: str = "sgd",
    lr: float = 0.05,
    metric: str = "top1",
    kind: str = "image",
    fine_tune: bool = False,
) -> ExperimentResult:
    seeds = seeds or (1 if quick else 3)
    epochs = 3 if quick else 6
    n_train = 768 if quick else 2048
    cluster = cluster_factory(2, 2) if not quick else cluster_factory(1, 1)

    # One session per table: cast-cost fits (per device type) are shared
    # across the table's models; catalogs are per model structure.
    session = PlanSession()
    rows = []
    for display, model_name in model_map.items():
        if kind == "image":
            dataset = make_image_classification(n_train=n_train, n_test=256, seed=3)
        else:
            vocab = make_mini_model(model_name).embed.table.shape[0]
            dataset = make_token_classification(
                n_train=n_train, n_test=256, vocab_size=vocab, seed=3
            )
        graph_batch = find_pressure_batch(model_name, T4.memory_bytes)
        methods = prepare_methods(
            model_name, cluster, graph_batch, exec_batch_per_worker=16,
            allocator_config=AllocatorConfig(max_recovery_steps=200 if quick else 10_000),
            session=session,
        )
        for name in ("ORACLE", "DBS", "UP", "QSync"):
            method = methods[name]
            accs = [
                run_method_training(
                    model_name, method, cluster, dataset, epochs=epochs,
                    seed=seed, optimizer=optimizer, lr=lr, metric=metric,
                )
                for seed in range(seeds)
            ]
            tp = "—" if method.throughput is None else f"{method.throughput:.2f}"
            rows.append([display, name, mean_std(accs), tp])

    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["Model", "Method", "Final Accuracy", "Throughput (it/s)"],
        rows=rows,
        paper=paper,
        notes=(
            "Shape to check — accuracy: ORACLE >= QSync >= UP, with DBS "
            "below QSync for from-scratch BN models; throughput: "
            "QSync ≈ UP > DBS.  Absolute it/s reflect the simulated "
            "substrate at production-scale shapes."
        ),
    )


def run_table4(quick: bool = True, seeds: int | None = None) -> ExperimentResult:
    return _run_table(
        "table4",
        "From-scratch training on ClusterA",
        TABLE4_MODELS
        if not quick
        else {d: TABLE4_MODELS[d] for d in TABLE4_QUICK},
        make_cluster_a,
        _PAPER_TABLE4,
        quick,
        seeds,
    )


def run_table5(quick: bool = True, seeds: int | None = None) -> ExperimentResult:
    def factory(t, i):
        return make_cluster_b(t, i, memory_ratio=CLUSTER_B_RATIO)

    return _run_table(
        "table5",
        f"From-scratch training on ClusterB (T4 memory x{CLUSTER_B_RATIO})",
        TABLE5_MODELS
        if not quick
        else {d: TABLE5_MODELS[d] for d in TABLE5_QUICK},
        factory,
        _PAPER_TABLE5,
        quick,
        seeds,
    )


def run_table6(quick: bool = True, seeds: int | None = None) -> ExperimentResult:
    return _run_table(
        "table6",
        "Fine-tuning tasks on ClusterA (transformers, Adam)",
        TABLE6_MODELS
        if not quick
        else {d: TABLE6_MODELS[d] for d in TABLE6_QUICK},
        make_cluster_a,
        _PAPER_TABLE6,
        quick,
        seeds,
        optimizer="adam",
        lr=2e-3,
        metric="f1",
        kind="token",
        fine_tune=True,
    )
