"""Joint precision + gradient-compression planning — the ``compress`` sweep.

Not a paper table: this experiment quantifies what QSGD gradient
compression adds *on top of* QSync's precision allocation on the
multi-node presets.  For each preset it plans twice with one shared
session: plain ``qsync`` under the hierarchical collective (the
uncompressed reference) and ``qsync+qsgd`` under the compressed multi-hop
collective, which climbs the per-bucket compression ladder inside a
variance budget of :data:`LOSS_BUDGET` times the precision plan's own
indicator loss.  The reproduction target: on comm-bound multi-node
presets the all-reduce total drops by >= 2x while the added gradient-sync
variance stays inside the budget — and an empty ladder (level 0 only)
stays bit-identical to plain ``qsync``.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.comm import (
    GRAPH_KW,
    MODEL_NAME,
    PRESETS,
    QUICK_GRAPH_KW,
    build_preset,
)
from repro.hardware.cluster import Cluster
from repro.quant.qsgd import CompressionConfig
from repro.session import PlanRequest, PlanSession

#: Variance budget as a fraction of the precision plan's indicator loss —
#: the sweep's headline constraint ("<= 1% loss increase").  Scenario axes
#: fingerprint this, so retuning it re-keys cached artifacts.
LOSS_BUDGET = 0.01


def compress_preset(
    cluster: Cluster,
    quick: bool = True,
    profile_repeats: int | None = None,
    session: PlanSession | None = None,
    loss_budget: float = LOSS_BUDGET,
) -> dict:
    """Plan one preset uncompressed and compressed, return the comparison.

    The single measurement procedure shared by this experiment's rows and
    ``benchmarks.bench_compress``'s JSON payload (so the two can never
    drift): one session, a ``qsync``/hierarchical reference plan, then a
    ``qsync+qsgd``/compressed-multi-hop plan whose
    :class:`~repro.core.compression.CompressionReport` carries the
    all-reduce totals and the variance ledger.
    """
    graph_kw = QUICK_GRAPH_KW if quick else GRAPH_KW
    if profile_repeats is None:
        profile_repeats = 1 if quick else 2
    session = session or PlanSession()
    base = dict(
        model=MODEL_NAME,
        model_kwargs=graph_kw,
        cluster=cluster,
        profile_repeats=profile_repeats,
    )
    baseline = session.plan(
        PlanRequest(strategy="qsync", collective_model="hierarchical", **base)
    )
    compressed = session.plan(
        PlanRequest(
            strategy="qsync+qsgd",
            collective_model="compressed_multihop",
            compression=CompressionConfig(loss_budget=loss_budget),
            **base,
        )
    )
    creport = compressed.compression
    assert creport is not None  # qsync+qsgd always attaches its report
    base_iter = baseline.report.final_simulation.iteration_time
    comp_iter = compressed.report.final_simulation.iteration_time
    # The budget is loss_budget * base_loss, so the realized indicator-loss
    # increase is added/budget * loss_budget (0 when the budget is empty).
    base_loss = creport.variance_budget / loss_budget if loss_budget > 0 else 0.0
    loss_increase = creport.added_variance / base_loss if base_loss > 0 else 0.0
    return {
        "levels": list(creport.levels),
        "baseline_allreduce_seconds": creport.base_allreduce_seconds,
        "compressed_allreduce_seconds": creport.compressed_allreduce_seconds,
        "allreduce_speedup": creport.allreduce_speedup,
        "baseline_iteration_seconds": base_iter,
        "compressed_iteration_seconds": comp_iter,
        "iteration_speedup": base_iter / max(comp_iter, 1e-12),
        "added_variance": creport.added_variance,
        "variance_budget": creport.variance_budget,
        "loss_increase_fraction": loss_increase,
        "within_budget": creport.added_variance <= creport.variance_budget,
    }


def run(
    quick: bool = True, presets: tuple[str, ...] | None = None
) -> ExperimentResult:
    presets = PRESETS if presets is None else tuple(presets)

    session = PlanSession()  # shared: device types repeat across presets
    rows = []
    extras: dict[str, object] = {}
    for preset in presets:
        cluster = build_preset(preset, quick=quick)
        stats = compress_preset(cluster, quick=quick, session=session)
        rows.append([
            preset,
            "".join(f"L{lvl}" for lvl in stats["levels"]),
            f"{stats['baseline_allreduce_seconds'] * 1e3:.3f}",
            f"{stats['compressed_allreduce_seconds'] * 1e3:.3f}",
            f"{stats['allreduce_speedup']:.2f}x",
            f"{stats['iteration_speedup']:.2f}x",
            f"{stats['loss_increase_fraction'] * 100:.4f}%",
        ])
        extras[preset] = {
            "workers": cluster.size,
            "nodes": cluster.n_nodes,
            **stats,
        }

    return ExperimentResult(
        experiment_id="compress",
        title="QSGD gradient compression on top of precision plans",
        headers=[
            "Preset",
            "Levels",
            "Allreduce FP32 (ms)",
            "Allreduce QSGD (ms)",
            "Allreduce cut",
            "Iter speedup",
            "Loss increase",
        ],
        rows=rows,
        notes=(
            "Baseline = qsync under the hierarchical collective; compressed "
            "= qsync+qsgd under the compressed multi-hop collective with a "
            f"{LOSS_BUDGET:.0%} indicator-loss budget.  The shape to check: "
            "a >= 2x all-reduce cut on comm-bound multi-node presets with "
            "the loss increase inside the budget; an empty ladder stays "
            "bit-identical to plain qsync."
        ),
        extras=extras,
    )
