"""Shared experiment plumbing."""

from __future__ import annotations

import dataclasses
import numbers
from typing import Any, Sequence


@dataclasses.dataclass
class ExperimentResult:
    """One reproduced table/figure.

    Attributes
    ----------
    experiment_id:
        Registry key (``table4``, ``fig7``, ...).
    title:
        Human-readable description, matching the paper's caption.
    headers:
        Column names of :attr:`rows`.
    rows:
        The reproduced data, one list per table row.
    paper:
        The corresponding numbers the paper reports (same header order
        where applicable) — for side-by-side comparison, not for scoring:
        absolute values differ by construction (simulated substrate,
        synthetic data); *orderings* are the reproduction target.
    notes:
        Free-form commentary: substitutions, scale choices, observed shape.
    extras:
        Arbitrary artifacts (timelines, traces) keyed by name.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    paper: list[list[Any]] = dataclasses.field(default_factory=list)
    notes: str = ""
    extras: dict[str, Any] = dataclasses.field(default_factory=dict)

    def formatted(self) -> str:
        out = [f"== {self.experiment_id}: {self.title} =="]
        out.append(format_table(self.headers, self.rows))
        if self.paper:
            out.append("-- paper reported --")
            out.append(format_table(self.headers, self.paper))
        if self.notes:
            out.append(f"notes: {self.notes}")
        return "\n".join(out)

    def column(self, header: str) -> list[Any]:
        """Extract one column of the measured rows by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def row_by(self, header: str, value) -> list[Any]:
        """First measured row whose ``header`` column equals ``value``."""
        idx = self.headers.index(header)
        for row in self.rows:
            if row[idx] == value:
                return row
        raise KeyError(f"no row with {header}={value!r}")

    # ------------------------------------------------------------------
    # JSON round trip (the artifact store's on-disk format)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot.

        Tables, paper rows and notes round-trip losslessly (tuples become
        lists, numpy scalars become Python numbers).  ``extras`` are
        best-effort: entries that cannot be represented as JSON (live
        simulation objects, ndarrays) are replaced by a deterministic
        marker string so serial and parallel sweep workers serialize to
        identical bytes.
        """
        extras: dict[str, Any] = {}
        for key, value in self.extras.items():
            try:
                extras[str(key)] = jsonable(value)
            except TypeError:
                extras[str(key)] = (
                    f"<extra dropped: {type(value).__name__} is not "
                    f"JSON-serializable>"
                )
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": jsonable(self.headers),
            "rows": jsonable(self.rows),
            "paper": jsonable(self.paper),
            "notes": self.notes,
            "extras": extras,
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_json_dict`."""
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            paper=[list(row) for row in payload.get("paper", [])],
            notes=payload.get("notes", ""),
            extras=dict(payload.get("extras", {})),
        )


def jsonable(value: Any) -> Any:
    """Canonical JSON form of a value tree: tuples -> lists, numpy scalars
    -> Python numbers, mapping keys -> strings.  Raises ``TypeError`` on
    anything else so callers can decide to drop it."""
    if value is None or isinstance(value, (str, bool)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width text table."""

    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def mean_std(values: Sequence[float]) -> str:
    """``mean±std`` string like the paper's accuracy cells."""
    import numpy as np

    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 1:
        return f"{arr[0] * 100:.2f}%"
    return f"{arr.mean() * 100:.2f}±{arr.std() * 100:.2f}%"
