"""Table I — capability of different devices.

The paper's table lists datasheet peaks; we add the *sustained* throughput
the LP-PyTorch autotuner realizes on a large GEMM, which is what the cost
model actually uses.
"""

from __future__ import annotations

from repro.backend import LPBackend
from repro.common.dtypes import Precision
from repro.common.units import GB, TFLOPS
from repro.experiments.base import ExperimentResult
from repro.graph.ops import OperatorSpec, OpKind
from repro.hardware import DEVICE_REGISTRY


def run(quick: bool = True) -> ExperimentResult:
    ref = OperatorSpec(
        "ref_gemm", OpKind.LINEAR, (4096, 4096), weight_shape=(4096, 4096),
        flops=2.0 * 4096 * 4096 * 4096,
    )
    rows = []
    for name in ("T4", "V100", "A10", "A100"):
        dev = DEVICE_REGISTRY[name]
        backend = LPBackend(dev)
        cells = [name]
        for prec in (Precision.FP32, Precision.FP16, Precision.INT8):
            if not dev.supports(prec):
                cells.append("/")
                cells.append("/")
                continue
            peak = dev.peak_flops[prec] / TFLOPS
            t = backend.op_forward_time(ref, prec, 4096 * 4096)
            sustained = ref.flops / t / TFLOPS
            cells.append(f"{peak:.1f}")
            cells.append(f"{sustained:.1f}")
        cells.append(f"{dev.memory_bytes // GB}G")
        rows.append(cells)

    return ExperimentResult(
        experiment_id="table1",
        title="Capability of different devices (datasheet peak vs tuned sustained TFLOPS)",
        headers=[
            "GPU", "FP32 peak", "FP32 sust", "FP16 peak", "FP16 sust",
            "INT8 peak", "INT8 sust", "Memory",
        ],
        rows=rows,
        paper=[
            ["T4", "8.1", "-", "65", "-", "130", "-", "16G"],
            ["V100", "15.7", "-", "125", "-", "/", "/", "32G"],
        ],
        notes=(
            "Peaks match the datasheets the paper cites; sustained values "
            "come from the autotuned kernel-efficiency model and stay below "
            "peak, as on real hardware.  V100 correctly lacks INT8."
        ),
    )
