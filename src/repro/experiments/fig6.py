"""Fig. 6 — training timeline of VGG16BN on ClusterA: UP vs QSync.

Renders the CUDA/COMM stream waterfall of one simulated iteration under the
uniform-precision plan and under QSync's plan, and quantifies the waiting
time (the bubble between an inference GPU finishing its compute and the
collective completing) that QSync's precision recovery reclaims.
"""

from __future__ import annotations

from repro.baselines import uniform_precision_plan
from repro.common.dtypes import Precision
from repro.core.qsync import qsync_plan, build_replayer
from repro.experiments.base import ExperimentResult
from repro.experiments.protocol import GRAPH_SCALE, find_pressure_batch
from repro.hardware import T4, make_cluster_a
from repro.models import mini_model_graph
from repro.parallel import render_timeline, timeline_summary


#: Sweep scenario axes derive this figure's cache-key model set from here.
MODEL_NAME = "mini_vggbn"


def run(quick: bool = True) -> ExperimentResult:
    model_name = MODEL_NAME
    batch = find_pressure_batch(model_name, T4.memory_bytes)
    builder = lambda: mini_model_graph(
        model_name, batch_size=batch, **GRAPH_SCALE[model_name]
    )
    cluster = make_cluster_a(1, 1) if quick else make_cluster_a(2, 2)

    # --- UP timeline.
    replayer, _ = build_replayer(builder, cluster, profile_repeats=2)
    template = replayer.dags[cluster.inference_workers[0].rank]
    up = uniform_precision_plan(template, cluster.inference_workers[0].device)
    for w in cluster.inference_workers:
        replayer.apply_plan(w.rank, up)
    up_sim = replayer.simulate(collect_timeline=True)
    up_stats = timeline_summary(up_sim)

    # --- QSync timeline.
    _plan, report = qsync_plan(builder, cluster, loss="ce")
    qs_sim = report.final_simulation
    qs_stats = timeline_summary(qs_sim)

    rows = [
        ["UP", f"{up_stats['iteration_ms']:.1f}",
         f"{up_stats['max_wait_ms']:.1f}", f"{up_stats['total_wait_ms']:.1f}"],
        ["QSync", f"{qs_stats['iteration_ms']:.1f}",
         f"{qs_stats['max_wait_ms']:.1f}", f"{qs_stats['total_wait_ms']:.1f}"],
    ]

    waterfall = (
        "--- Uniform precision ---\n"
        + render_timeline(up_sim.timeline)
        + "\n--- QSync ---\n"
        + render_timeline(qs_sim.timeline)
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Training timeline of VGG16BN on ClusterA (UP vs QSync)",
        headers=["Method", "iteration (ms)", "max wait (ms)", "total wait (ms)"],
        rows=rows,
        notes=(
            "Shape to check: under UP the fully-accelerated T4 idles waiting "
            "for the V100 before each collective; QSync recovers precision "
            "until that waiting time is spent on higher-precision compute "
            "instead — same iteration latency, less idle.  Full waterfalls "
            "in extras['waterfall']."
        ),
        extras={"waterfall": waterfall, "up_sim": up_sim, "qsync_sim": qs_sim},
    )
