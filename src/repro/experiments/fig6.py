"""Fig. 6 — training timeline of VGG16BN on ClusterA: UP vs QSync.

Renders the CUDA/COMM stream waterfall of one simulated iteration under the
uniform-precision plan and under QSync's plan, and quantifies the waiting
time (the bubble between an inference GPU finishing its compute and the
collective completing) that QSync's precision recovery reclaims.

Both methods run as planner strategies on one :class:`PlanSession`, so the
per-device-type catalogs and cast models are profiled once and shared —
the legacy harness profiled the cluster twice (once per method).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.protocol import GRAPH_SCALE, find_pressure_batch
from repro.hardware import T4, make_cluster_a
from repro.parallel import render_timeline, timeline_summary
from repro.session import PlanRequest, PlanSession


#: Sweep scenario axes derive this figure's cache-key model set from here.
MODEL_NAME = "mini_vggbn"


def run(quick: bool = True) -> ExperimentResult:
    model_name = MODEL_NAME
    batch = find_pressure_batch(model_name, T4.memory_bytes)
    cluster = make_cluster_a(1, 1) if quick else make_cluster_a(2, 2)

    session = PlanSession()
    request = PlanRequest(
        model=model_name,
        model_kwargs=dict(batch_size=batch, **GRAPH_SCALE[model_name]),
        cluster=cluster,
        loss="ce",
        profile_repeats=2,
    )
    outcomes = session.compare(request, strategies=("uniform", "qsync"))
    up_sim = outcomes["uniform"].simulation
    qs_sim = outcomes["qsync"].simulation
    up_stats = timeline_summary(up_sim)
    qs_stats = timeline_summary(qs_sim)

    rows = [
        ["UP", f"{up_stats['iteration_ms']:.1f}",
         f"{up_stats['max_wait_ms']:.1f}", f"{up_stats['total_wait_ms']:.1f}"],
        ["QSync", f"{qs_stats['iteration_ms']:.1f}",
         f"{qs_stats['max_wait_ms']:.1f}", f"{qs_stats['total_wait_ms']:.1f}"],
    ]

    waterfall = (
        "--- Uniform precision ---\n"
        + render_timeline(up_sim.timeline)
        + "\n--- QSync ---\n"
        + render_timeline(qs_sim.timeline)
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Training timeline of VGG16BN on ClusterA (UP vs QSync)",
        headers=["Method", "iteration (ms)", "max wait (ms)", "total wait (ms)"],
        rows=rows,
        notes=(
            "Shape to check: under UP the fully-accelerated T4 idles waiting "
            "for the V100 before each collective; QSync recovers precision "
            "until that waiting time is spent on higher-precision compute "
            "instead — same iteration latency, less idle.  Full waterfalls "
            "in extras['waterfall']."
        ),
        extras={"waterfall": waterfall, "up_sim": up_sim, "qsync_sim": qs_sim},
    )
