"""Experiment registry and runner."""

from __future__ import annotations

from typing import Callable

from repro.experiments.base import ExperimentResult
from repro.experiments import fig4, fig6, fig7, fig8, table1, table2, table3
from repro.experiments.table456 import run_table4, run_table5, run_table6

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "fig4": fig4.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]


def run_experiment(experiment_id: str, quick: bool = True, **kwargs) -> ExperimentResult:
    """Run one experiment and return its result (printing is the caller's
    job; see ``examples/`` and ``benchmarks/``)."""
    return get_experiment(experiment_id)(quick=quick, **kwargs)
