"""Experiment registry, scenario axes, and the single-experiment runner."""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.experiments import (
    churn,
    comm,
    compress,
    fig4,
    fig6,
    fig7,
    fig8,
    straggler,
    table1,
    table2,
    table3,
    table456,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.table456 import run_table4, run_table5, run_table6

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "fig4": fig4.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "comm": comm.run,
    "straggler": straggler.run,
    "churn": churn.run,
    "compress": compress.run,
}


@dataclasses.dataclass(frozen=True)
class Variant:
    """One expansion of an experiment along its model axis.

    ``kwargs`` (a tuple of key/value pairs, kept hashable so cells can be
    cached and pickled) are forwarded to the experiment's ``run`` — e.g.
    table2 takes ``models=("VGG16BN",)`` to evaluate one model per cell.
    """

    label: str = ""
    models: tuple[str, ...] = ()
    kwargs: tuple[tuple[str, Any], ...] = ()


@dataclasses.dataclass(frozen=True)
class ScenarioAxes:
    """Code-independent coordinates of one experiment's evaluation grid.

    ``cluster`` names the hardware preset the experiment evaluates on (it
    participates in sweep-cell fingerprints, so renaming a preset or
    changing which preset an experiment uses invalidates its cached
    artifacts).  ``models`` are graph-catalog names whose structure
    fingerprints anchor the cache key.  ``quick``/``full`` optionally
    override the variant list per protocol; by default there is a single
    anonymous variant covering :attr:`models`.
    """

    cluster: str
    models: tuple[str, ...] = ()
    quick: tuple[Variant, ...] | None = None
    full: tuple[Variant, ...] | None = None
    #: Extra code-independent configuration (graph scales, builder kwargs)
    #: fingerprinted into every cell of this experiment.  Populate it from
    #: constants the experiment itself reads, so a parameter edit re-keys
    #: the cached artifacts that depend on it.
    config: tuple = ()

    def variants(self, protocol: str) -> tuple[Variant, ...]:
        if protocol not in ("quick", "full"):
            raise ValueError(f"unknown protocol {protocol!r}")
        chosen = self.quick if protocol == "quick" else self.full
        if chosen is None:
            return (Variant("", self.models),)
        return chosen


def _table2_variants(displays: tuple[str, ...]) -> tuple[Variant, ...]:
    return tuple(
        Variant(display, (table2.MODELS[display][0],), (("models", (display,)),))
        for display in displays
    )


def _scale_config(models) -> tuple:
    """Production-graph scale settings for ``models``, as fingerprint input."""
    from repro.experiments.protocol import GRAPH_SCALE

    return tuple(
        (name, tuple(sorted(GRAPH_SCALE[name].items())))
        for name in sorted(set(models))
    )


def _table_axes(cluster: str, models: dict[str, str], quick: tuple[str, ...]) -> ScenarioAxes:
    return ScenarioAxes(
        cluster=cluster,
        quick=(Variant("", tuple(models[d] for d in quick)),),
        full=(Variant("", tuple(models.values())),),
        config=_scale_config(models.values()),
    )


#: Scenario axes per experiment — the grid the sweep engine expands.  Model
#: sets are derived from the experiment modules' own declarations (the
#: single source of truth), so changing which models an experiment
#: evaluates automatically re-keys its cached artifacts.
SCENARIOS: dict[str, ScenarioAxes] = {
    "table1": ScenarioAxes(cluster="device-registry:T4+V100+A10+A100"),
    "table2": ScenarioAxes(
        cluster="hybrid4:2xV100+2xT4",
        quick=_table2_variants(("VGG16BN", "BERT")),
        full=_table2_variants(tuple(table2.MODELS)),
        # Per-model training config (kind, optimizer, lr, metric) — edits
        # to table2.MODELS re-key the cached artifacts that read them.
        config=tuple(sorted(table2.MODELS.items())),
    ),
    "table3": ScenarioAxes(
        cluster="2xT4@32GBps",
        models=(table3.MODEL_NAME,),
        config=tuple(sorted(table3.GRAPH_KW.items())),
    ),
    "table4": _table_axes(
        "ClusterA", table456.TABLE4_MODELS, table456.TABLE4_QUICK
    ),
    "table5": _table_axes(
        f"ClusterB@x{table456.CLUSTER_B_RATIO}",
        table456.TABLE5_MODELS,
        table456.TABLE5_QUICK,
    ),
    "table6": _table_axes(
        "ClusterA", table456.TABLE6_MODELS, table456.TABLE6_QUICK
    ),
    "fig4": ScenarioAxes(cluster="T4"),
    "fig6": ScenarioAxes(
        cluster="ClusterA(1+1|2+2)",
        models=(fig6.MODEL_NAME,),
        config=_scale_config((fig6.MODEL_NAME,)),
    ),
    # fig7b sums per-op costs over the full-scale ResNet50 graph.
    "fig7": ScenarioAxes(cluster="T4+A10", models=(fig7.GRAPH_MODEL,)),
    "fig8": ScenarioAxes(
        cluster="single-device",
        models=tuple(model for _, model, _ in fig8.TRACE_CONFIGS),
    ),
    # One cell per multi-node cluster preset: the preset name rides in the
    # variant kwargs, so each preset is an independent sweep axis whose
    # cached artifacts re-key when the preset list or graph config changes.
    # Straggler/drift scenarios on the discrete-event engine: the factor
    # ladder, policy list, and both protocols' graph kwargs are read from
    # the experiment module itself, so edits re-key cached artifacts; the
    # derived cell seed rides in (run takes a ``seed`` kwarg) because the
    # perturbations consume it.
    "straggler": ScenarioAxes(
        cluster=straggler.CLUSTER_PRESET,
        models=(straggler.MODEL_NAME,),
        config=(
            tuple(sorted(straggler.GRAPH_KW.items())),
            tuple(sorted(straggler.QUICK_GRAPH_KW.items())),
            straggler.FACTORS,
            straggler.COMPUTE_JITTER,
            straggler.BANDWIDTH_DRIFT,
        ),
    ),
    # Elastic-membership churn on the cloud-edge preset: one cell per trace
    # (the trace name rides in the variant kwargs), with the quorum,
    # iteration budgets, and both protocols' graph kwargs fingerprinted
    # from the experiment module; the cell seed rides in (run takes a
    # ``seed`` kwarg) because the trace generators consume it.
    "churn": ScenarioAxes(
        cluster=churn.CLUSTER_PRESET,
        quick=tuple(
            Variant(trace, (churn.MODEL_NAME,), (("traces", (trace,)),))
            for trace in churn.TRACES
        ),
        full=tuple(
            Variant(trace, (churn.MODEL_NAME,), (("traces", (trace,)),))
            for trace in churn.TRACES
        ),
        config=(
            tuple(sorted(churn.GRAPH_KW.items())),
            tuple(sorted(churn.QUICK_GRAPH_KW.items())),
            churn.ITERATIONS,
            churn.FULL_ITERATIONS,
            churn.QUORUM,
        ),
    ),
    "comm": ScenarioAxes(
        cluster="multinode:" + "+".join(comm.PRESETS),
        quick=tuple(
            Variant(preset, (comm.MODEL_NAME,), (("presets", (preset,)),))
            for preset in comm.PRESETS
        ),
        full=tuple(
            Variant(preset, (comm.MODEL_NAME,), (("presets", (preset,)),))
            for preset in comm.PRESETS
        ),
        config=(
            tuple(sorted(comm.GRAPH_KW.items())),
            tuple(sorted(comm.QUICK_GRAPH_KW.items())),
        ),
    ),
    # QSGD compression on the same multi-node preset axis as `comm` (one
    # cell per preset, the preset name riding in the variant kwargs); the
    # loss budget and both protocols' graph kwargs are fingerprinted from
    # the experiment module, so retuning the budget re-keys cached cells.
    "compress": ScenarioAxes(
        cluster="multinode:" + "+".join(comm.PRESETS),
        quick=tuple(
            Variant(preset, (comm.MODEL_NAME,), (("presets", (preset,)),))
            for preset in comm.PRESETS
        ),
        full=tuple(
            Variant(preset, (comm.MODEL_NAME,), (("presets", (preset,)),))
            for preset in comm.PRESETS
        ),
        config=(
            tuple(sorted(comm.GRAPH_KW.items())),
            tuple(sorted(comm.QUICK_GRAPH_KW.items())),
            compress.LOSS_BUDGET,
        ),
    ),
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]


def run_experiment(experiment_id: str, quick: bool = True, **kwargs) -> ExperimentResult:
    """Run one experiment and return its result (printing is the caller's
    job; see ``examples/`` and ``benchmarks/``)."""
    return get_experiment(experiment_id)(quick=quick, **kwargs)
