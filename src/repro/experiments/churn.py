"""Elastic-membership scenarios — churn traces over the cloud-edge cluster.

Not a paper table: QSync plans for a fixed hybrid cluster, but the
cloud-edge deployments it targets (the ACE-Sync setting, PAPERS.md) lose
and regain workers mid-run.  This experiment drives seed-derived
:class:`~repro.hardware.events.ClusterEvent` traces through
:func:`~repro.engine.simulate_with_churn` and measures how the
epoch-segmented run degrades — and how cheap each membership boundary is
(re-plan profiling events must stay zero on already-profiled device
types).

Shapes to check, pinned by ``tests/test_elastic.py``:

* every boundary re-plan over warm profiles costs **zero** new profiling
  events (both device types are profiled by the clean pre-pass);
* a ``degrade`` segment never beats the clean iteration time (slowing a
  rank cannot help synchronous training), while ``leave`` segments may run
  *faster* — shedding the WAN-attached edge stragglers shrinks the
  synchronous critical path;
* traces are ``PYTHONHASHSEED``-stable — every rank pick, time, and factor
  derives from :func:`repro.common.rng.derive_seed`;
* the ``collapse`` trace crosses the quorum and is reported as a graceful
  :class:`~repro.common.errors.QuorumLostError` row, never a crash.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import QuorumLostError
from repro.common.rng import derive_seed, new_rng
from repro.engine import simulate_with_churn
from repro.experiments.base import ExperimentResult
from repro.hardware.cluster import Cluster, get_cluster_preset
from repro.hardware.events import ClusterEvent
from repro.session import PlanRequest, PlanSession

#: Graph mirror under test.  Sweep scenario axes derive this experiment's
#: cache-key model set and configuration from these constants (both
#: protocols' kwargs, the trace list, the quorum), so edits re-key cached
#: artifacts.
MODEL_NAME = "mini_bert"
GRAPH_KW = {"batch_size": 8, "width_scale": 16, "spatial_scale": 8}
QUICK_GRAPH_KW = {**GRAPH_KW, "width_scale": 8, "spatial_scale": 4}
#: The ACE-Sync habitat: one A100 cloud node + T4 edge nodes over a WAN.
CLUSTER_PRESET = "cloud_edge_4+2x2"

#: Iteration budget of one segmented run.
ITERATIONS = 24
FULL_ITERATIONS = 60
#: Minimum surviving membership: the cloud node must stay whole.  The
#: ``collapse`` trace deliberately crosses this.
QUORUM = 4


def _edge_ranks(cluster: Cluster) -> list[int]:
    return [w.rank for w in cluster.workers if w.device.name == "T4"]


def _cloud_ranks(cluster: Cluster) -> list[int]:
    return [w.rank for w in cluster.workers if w.device.name != "T4"]


def _edge_flap(
    cluster: Cluster, seed: int, run_s: float
) -> tuple[ClusterEvent, ...]:
    """One edge worker drops out and rejoins later in the run."""
    rng = new_rng(seed)
    edges = _edge_ranks(cluster)
    rank = edges[int(rng.integers(len(edges)))]
    worker = {w.rank: w for w in cluster.workers}[rank]
    t_leave = run_s * float(0.2 + 0.1 * rng.uniform())
    t_join = run_s * float(0.6 + 0.1 * rng.uniform())
    return (
        ClusterEvent(t_leave, "leave", rank),
        ClusterEvent(
            t_join,
            "join",
            rank,
            device=worker.device,
            link_bandwidth=worker.link_bandwidth,
        ),
    )


def _rolling_degrade(
    cluster: Cluster, seed: int, run_s: float
) -> tuple[ClusterEvent, ...]:
    """Two edge workers throttle at staggered times (no membership change)."""
    rng = new_rng(seed)
    edges = _edge_ranks(cluster)
    picks = sorted(
        int(r) for r in rng.choice(edges, size=min(2, len(edges)), replace=False)
    )
    events = []
    t = run_s * 0.25
    for rank in picks:
        factor = float(1.5 + 1.5 * rng.uniform())
        events.append(ClusterEvent(t, "degrade", rank, factor=factor))
        t += run_s * 0.25
    return tuple(events)


def _shrink(
    cluster: Cluster, seed: int, run_s: float
) -> tuple[ClusterEvent, ...]:
    """Edge workers leave one by one; the cloud node (= quorum) survives."""
    rng = new_rng(seed)
    edges = _edge_ranks(cluster)
    t = run_s * float(0.15 + 0.05 * rng.uniform())
    step = (run_s * 0.7) / max(1, len(edges))
    events = []
    for rank in edges:
        events.append(ClusterEvent(t, "leave", rank))
        t += step
    return tuple(events)


def _collapse(
    cluster: Cluster, seed: int, run_s: float
) -> tuple[ClusterEvent, ...]:
    """Edge then cloud workers leave in quick succession — crosses the quorum.

    Timestamps stay in the first fifth of the run on purpose: leaves *speed
    up* the survivors, so a tail-loaded trace can finish its iteration
    budget before the breaking leave falls due and whether the quorum row
    appears becomes a seed lottery.  Front-loaded, the breaking leave lands
    while most of the budget is still ahead for every seed.
    """
    rng = new_rng(seed)
    t = run_s * float(0.05 + 0.05 * rng.uniform())
    step = run_s * 0.02
    events = []
    doomed = _edge_ranks(cluster) + _cloud_ranks(cluster)[: max(1, QUORUM // 2)]
    for rank in doomed:
        events.append(ClusterEvent(t, "leave", rank))
        t += step
    return tuple(events)


#: Named, seed-derived churn trace generators:
#: ``(cluster, derived seed, run seconds) -> events``.  The names are sweep
#: axes (see ``registry.SCENARIOS["churn"]``) — renaming one re-keys its
#: cached artifacts.
TRACES: dict[str, Callable[[Cluster, int, float], tuple[ClusterEvent, ...]]] = {
    "edge_flap": _edge_flap,
    "rolling_degrade": _rolling_degrade,
    "shrink": _shrink,
    "collapse": _collapse,
}


def run(
    quick: bool = True,
    seed: int = 0,
    traces: tuple[str, ...] | None = None,
    session: PlanSession | None = None,
) -> ExperimentResult:
    graph_kw = QUICK_GRAPH_KW if quick else GRAPH_KW
    iterations = ITERATIONS if quick else FULL_ITERATIONS
    session = session or PlanSession()
    request = PlanRequest(
        model=MODEL_NAME,
        model_kwargs=graph_kw,
        cluster=CLUSTER_PRESET,
        profile_repeats=1 if quick else 2,
    )
    cluster = get_cluster_preset(CLUSTER_PRESET)

    # Clean pre-pass: profiles both device types once and anchors the
    # simulated run length the trace generators scale their timestamps to.
    clean = session.prepare(request).replayer.simulate()
    run_s = iterations * clean.iteration_time

    rows = []
    extras: dict[str, object] = {
        "cluster": cluster.describe(),
        "quorum": QUORUM,
        "iterations": iterations,
        "clean_iteration_seconds": clean.iteration_time,
    }
    for name in traces if traces is not None else tuple(TRACES):
        events = TRACES[name](cluster, derive_seed(seed, "churn", name), run_s)
        profile_before = session.stats.profile_events
        try:
            segrun = simulate_with_churn(
                session, request, events, iterations, quorum=QUORUM
            )
        except QuorumLostError as err:
            rows.append([
                name, str(len(events)), "-", "-", "-", f"quorum lost ({QUORUM})",
            ])
            extras[f"trace_{name}"] = {
                "events": [e.describe() for e in events],
                "quorum_lost": str(err),
            }
            continue
        new_profiling = session.stats.profile_events - profile_before
        mean_vs_clean = segrun.mean_iteration_s / clean.iteration_time
        rows.append([
            name,
            str(len(events)),
            str(segrun.n_segments),
            f"{segrun.simulated_s * 1e3:.2f}",
            f"{mean_vs_clean:.2f}x",
            "0" if new_profiling == 0 else f"RE-PROFILED({new_profiling})",
        ])
        extras[f"trace_{name}"] = {
            "events": [e.describe() for e in events],
            "segments": [seg.describe() for seg in segrun.segments],
            "unapplied": [e.describe() for e in segrun.unapplied_events],
            "new_profile_events": new_profiling,
        }

    return ExperimentResult(
        experiment_id="churn",
        title="Elastic membership: churn traces, incremental re-planning",
        headers=[
            "Trace", "Events", "Segments", "Simulated (ms)", "vs clean",
            "New profiling",
        ],
        rows=rows,
        notes=(
            "Seed-derived churn traces on the cloud-edge cluster, replayed "
            "as epoch-segmented runs with an incremental re-plan at every "
            "membership boundary.  Shapes to check: 'New profiling' stays 0 "
            "(both device types are warm after the clean pre-pass), degrade "
            "segments run no faster than clean (leaves may — shedding slow "
            "edge workers shortens the synchronous critical path), and the "
            "collapse trace reports a graceful quorum-lost row."
        ),
        extras=extras,
    )
