"""Fig. 8 — relative indicator rank over the first training updates.

Trains MiniBERT (linears) and MiniResNet (convs) while recording
per-iteration indicator statistics; after each update the ops are re-ranked
by their Omega at the lowest precision.  The paper's observation: per-layer
ranks fluctuate but the relative ordering is remarkably stable, justifying
the run-50-iterations-then-freeze protocol.
"""

from __future__ import annotations

import numpy as np

from repro.common.dtypes import Precision
from repro.common.rng import new_rng
from repro.core.indicator import VarianceIndicator, gamma_for_loss
from repro.experiments.base import ExperimentResult
from repro.models import make_mini_model, mini_model_graph
from repro.profiling.stats import StatsRecorder, install_recorder
from repro.tensor import Tensor, functional as F
from repro.train import SGD, Adam
from repro.train.data import make_image_classification, make_token_classification


#: (display, catalog model, traced precision) per panel.  Sweep scenario
#: axes derive this figure's cache-key model set from here.
TRACE_CONFIGS = (
    ("BERT", "mini_bert", Precision.FP16),
    ("ResNet50", "mini_resnet", Precision.INT8),
)


def _rank_trace(model_name: str, iterations: int, precision: Precision,
                seed: int = 0) -> tuple[list[str], list[dict[str, int]]]:
    """Per-iteration relative ranks of every weighted adjustable op."""
    model = make_mini_model(model_name, seed=seed)
    dag = mini_model_graph(model_name, batch_size=16)
    rng = new_rng(seed)
    if model_name.startswith(("mini_bert", "mini_roberta")):
        vocab = model.embed.table.shape[0]
        ds = make_token_classification(n_train=512, n_test=32, vocab_size=vocab, seed=2)
        opt = Adam(model, lr=2e-3)
    else:
        ds = make_image_classification(n_train=512, n_test=32, seed=2)
        opt = SGD(model, lr=0.05, momentum=0.9)

    gamma = gamma_for_loss("ce", 16)
    traces: list[dict[str, int]] = []
    ops: list[str] = []
    batches = ds.batches(16, rng, epochs=max(1, iterations // (512 // 16) + 1))
    for it, (xb, yb) in enumerate(batches):
        if it >= iterations:
            break
        # Fresh recorder per iteration: instantaneous statistics, not the
        # running mean (the figure traces per-update values).
        recorder = StatsRecorder()
        install_recorder(model, recorder)
        opt.zero_grad()
        x = xb if np.issubdtype(np.asarray(xb).dtype, np.integer) else Tensor(xb)
        loss = F.cross_entropy(model(x), yb)
        loss.backward()
        opt.step()
        indicator = VarianceIndicator(dag, recorder.snapshot(), gamma)
        ranks = indicator.relative_ranks(precision)
        ops = sorted(ranks)
        traces.append(ranks)
        # Remove instrumentation before the next iteration re-instruments.
        from repro.tensor.qmodules import QuantizedOp

        for path, mod in QuantizedOp.adjustable_modules(model).items():
            mod.forward = type(mod).forward.__get__(mod)
    return ops, traces


def _stability(traces: list[dict[str, int]]) -> float:
    """Mean Spearman correlation between consecutive iterations' rankings."""
    from scipy.stats import spearmanr

    ops = sorted(traces[0])
    corrs = []
    for a, b in zip(traces, traces[1:]):
        ra = [a[o] for o in ops]
        rb = [b[o] for o in ops]
        corrs.append(spearmanr(ra, rb).statistic)
    return float(np.mean(corrs))


def run(quick: bool = True) -> ExperimentResult:
    iterations = 15 if quick else 45
    rows = []
    extras = {}
    for display, model_name, precision in TRACE_CONFIGS:
        ops, traces = _rank_trace(model_name, iterations, precision)
        stability = _stability(traces)
        first = traces[0]
        last = traces[-1]
        from scipy.stats import spearmanr

        first_last = float(
            spearmanr([first[o] for o in ops], [last[o] for o in ops]).statistic
        )
        rows.append([
            display, len(ops), iterations, f"{stability:.3f}", f"{first_last:.3f}",
        ])
        extras[f"{display}_trace"] = traces
    return ExperimentResult(
        experiment_id="fig8",
        title="Relative indicator rank stability over early training updates",
        headers=[
            "Model", "ops", "iterations",
            "consecutive-rank corr", "first-vs-last corr",
        ],
        rows=rows,
        notes=(
            "Shape to check: both correlations close to 1 — ranks fluctuate "
            "but the ordering is stable, validating the paper's use of the "
            "first-50-iteration running mean as a frozen indicator.  Raw "
            "per-iteration rank trajectories in extras."
        ),
        extras=extras,
    )
