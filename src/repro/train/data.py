"""Synthetic datasets (the ImageNet/SQuAD/SWAG substitution, DESIGN.md §4).

Design goals: deterministic given a seed; hard enough that training takes
multiple epochs and final accuracy sits well below 100 % (so accuracy
*deltas* between precision policies are measurable); structured like the
original modality (spatially-correlated class patterns for images,
positional token patterns for sequences).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.common.rng import new_rng


@dataclasses.dataclass
class Dataset:
    """An in-memory supervised dataset with a train/test split."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int

    @property
    def n_train(self) -> int:
        return len(self.train_y)

    def batches(self, batch_size: int, rng: np.random.Generator, epochs: int = 1):
        """Yield shuffled (x, y) minibatches for ``epochs`` passes."""
        n = self.n_train
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n - batch_size + 1, batch_size):
                idx = order[start : start + batch_size]
                yield self.train_x[idx], self.train_y[idx]

    def shard_batches(
        self,
        batch_sizes: list[int],
        rng: np.random.Generator,
        epochs: int = 1,
    ):
        """Yield per-worker batch lists with *heterogeneous* local sizes.

        Each yield is ``[(x_0, y_0), ..., (x_{K-1}, y_{K-1})]`` where worker
        ``k`` receives ``batch_sizes[k]`` samples — the Dynamic Batch Sizing
        data path.  The global batch is one contiguous shuffled slice, so
        uniform and DBS runs consume identical sample streams.
        """
        global_batch = int(np.sum(batch_sizes))
        n = self.n_train
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n - global_batch + 1, global_batch):
                idx = order[start : start + global_batch]
                shards = []
                offset = 0
                for bs in batch_sizes:
                    sel = idx[offset : offset + bs]
                    shards.append((self.train_x[sel], self.train_y[sel]))
                    offset += bs
                yield shards


def make_image_classification(
    n_train: int = 2048,
    n_test: int = 512,
    num_classes: int = 10,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 1.0,
    template_amplitude: float = 0.12,
    seed: int = 0,
) -> Dataset:
    """Images whose class is encoded by a low-frequency spatial template.

    Each class has a random smooth template; samples are template + strong
    white noise + random global contrast.  The default amplitude/noise ratio
    puts a linear probe at ~65 % and small conv nets at ~70-85 % — enough
    headroom that precision-policy accuracy deltas are measurable.
    """
    rng = new_rng(seed)
    # Smooth class templates: random low-res pattern upsampled blockwise.
    low = 4
    templates = template_amplitude * rng.normal(size=(num_classes, channels, low, low))
    reps = image_size // low
    templates = np.repeat(np.repeat(templates, reps, axis=2), reps, axis=3)

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        y = rng.integers(0, num_classes, size=n)
        contrast = rng.uniform(0.7, 1.3, size=(n, 1, 1, 1))
        x = templates[y] * contrast + noise * rng.normal(
            size=(n, channels, image_size, image_size)
        )
        return x.astype(np.float64), y

    train_x, train_y = sample(n_train)
    test_x, test_y = sample(n_test)
    return Dataset(train_x, train_y, test_x, test_y, num_classes)


def make_token_classification(
    n_train: int = 2048,
    n_test: int = 512,
    num_classes: int = 4,
    seq_len: int = 16,
    vocab_size: int = 64,
    signal_tokens: int = 3,
    noise_swap_prob: float = 0.35,
    seed: int = 0,
) -> Dataset:
    """Token sequences whose class is a positional co-occurrence pattern.

    Each class plants ``signal_tokens`` specific tokens at specific
    positions; the rest of the sequence is uniform noise, and each signal
    token is independently replaced by noise with ``noise_swap_prob`` — the
    sequence-classification proxy for the paper's fine-tuning tasks.
    """
    rng = new_rng(seed)
    positions = np.stack(
        [rng.choice(seq_len, size=signal_tokens, replace=False) for _ in range(num_classes)]
    )
    tokens = rng.integers(0, vocab_size, size=(num_classes, signal_tokens))

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        y = rng.integers(0, num_classes, size=n)
        x = rng.integers(0, vocab_size, size=(n, seq_len))
        keep = rng.random((n, signal_tokens)) > noise_swap_prob
        rows = np.arange(n)
        for j in range(signal_tokens):
            pos = positions[y, j]
            planted = np.where(keep[:, j], tokens[y, j], x[rows, pos])
            x[rows, pos] = planted
        return x, y

    train_x, train_y = sample(n_train)
    test_x, test_y = sample(n_test)
    return Dataset(train_x, train_y, test_x, test_y, num_classes)
