"""Evaluation metrics: top-1 accuracy and macro F1 (the paper reports top-1
for classification and F1 for fine-tuning, calling both "accuracy")."""

from __future__ import annotations

import numpy as np


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the label."""
    preds = np.argmax(logits, axis=-1)
    return float(np.mean(preds == np.asarray(labels)))


def f1_macro(logits: np.ndarray, labels: np.ndarray) -> float:
    """Macro-averaged F1 over the classes present in ``labels``."""
    preds = np.argmax(logits, axis=-1)
    labels = np.asarray(labels)
    scores = []
    for cls in np.unique(labels):
        tp = float(np.sum((preds == cls) & (labels == cls)))
        fp = float(np.sum((preds == cls) & (labels != cls)))
        fn = float(np.sum((preds != cls) & (labels == cls)))
        denom = 2 * tp + fp + fn
        scores.append(2 * tp / denom if denom > 0 else 0.0)
    return float(np.mean(scores))
