"""Learning-rate schedules.

The paper stresses that all compared methods share "the same basic training
configurations (such as the total number of epochs, and the learning rate
scheduler)" — these schedules are those shared configurations.
"""

from __future__ import annotations

import math

from repro.train.optim import Optimizer


class _Schedule:
    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self._step = 0

    def step(self) -> None:
        self._step += 1
        self.optimizer.lr = self.lr_at(self._step)

    def lr_at(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class CosineSchedule(_Schedule):
    """Cosine decay to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        t = min(step / self.total_steps, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * t))


class StepSchedule(_Schedule):
    """Multiply lr by ``gamma`` every ``period`` steps."""

    def __init__(self, optimizer: Optimizer, period: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.period)


class WarmupSchedule(_Schedule):
    """Linear warmup into a wrapped schedule (or constant lr)."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, after: _Schedule | None = None):
        super().__init__(optimizer)
        if warmup_steps <= 0:
            raise ValueError("warmup_steps must be positive")
        self.warmup_steps = warmup_steps
        self.after = after

    def lr_at(self, step: int) -> float:
        if step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        if self.after is not None:
            return self.after.lr_at(step - self.warmup_steps)
        return self.base_lr
