"""Optimizers (FP32 master weights, as in the paper's training setups)."""

from __future__ import annotations

import numpy as np

from repro.tensor.modules import Module


class Optimizer:
    """Base: holds parameter references and a mutable learning rate."""

    def __init__(self, model: Module, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(model.parameters())
        self.lr = float(lr)

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """SGD with momentum and weight decay — the conv-net recipe (Sec. VII)."""

    def __init__(
        self,
        model: Module,
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(model, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.lr * v


class Adam(Optimizer):
    """Adam — the transformer fine-tuning recipe (Sec. VII)."""

    def __init__(
        self,
        model: Module,
        lr: float,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(model, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad**2
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
