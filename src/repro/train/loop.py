"""Training loops: single-worker reference and evaluation helpers.

The multi-worker (DDP) loop lives in :mod:`repro.parallel.ddp`; this module
provides the ORACLE path (plain FP32 single-stream training on the full
global batch semantics) and shared evaluation.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.tensor import Tensor, functional as F, no_grad
from repro.tensor.modules import Module
from repro.train.data import Dataset
from repro.train.metrics import f1_macro, top1_accuracy
from repro.train.optim import Optimizer


@dataclasses.dataclass
class TrainResult:
    """Outcome of one training run."""

    final_accuracy: float
    best_accuracy: float
    history: list[float]
    losses: list[float]


def _forward(model: Module, x: np.ndarray) -> Tensor:
    if np.issubdtype(np.asarray(x).dtype, np.integer):
        return model(x)  # token models take raw integer arrays
    return model(Tensor(x))


def evaluate(
    model: Module, dataset: Dataset, metric: str = "top1", batch_size: int = 128
) -> float:
    """Accuracy of ``model`` on the test split."""
    model.eval()
    fn = top1_accuracy if metric == "top1" else f1_macro
    logits_all = []
    with no_grad():
        for start in range(0, len(dataset.test_y), batch_size):
            xb = dataset.test_x[start : start + batch_size]
            logits_all.append(_forward(model, xb).numpy())
    model.train()
    logits = np.concatenate(logits_all, axis=0)
    return fn(logits, dataset.test_y)


def train_single(
    model: Module,
    dataset: Dataset,
    optimizer: Optimizer,
    epochs: int,
    batch_size: int,
    seed: int = 0,
    metric: str = "top1",
    scheduler=None,
) -> TrainResult:
    """Plain single-worker training (the ORACLE configuration)."""
    rng = np.random.default_rng(seed)
    losses: list[float] = []
    history: list[float] = []
    for epoch in range(epochs):
        for xb, yb in dataset.batches(batch_size, rng, epochs=1):
            optimizer.zero_grad()
            loss = F.cross_entropy(_forward(model, xb), yb)
            loss.backward()
            optimizer.step()
            if scheduler is not None:
                scheduler.step()
            losses.append(loss.item())
        history.append(evaluate(model, dataset, metric=metric))
    return TrainResult(
        final_accuracy=history[-1] if history else 0.0,
        best_accuracy=max(history) if history else 0.0,
        history=history,
        losses=losses,
    )
