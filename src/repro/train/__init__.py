"""Training substrate: optimizers, schedulers, synthetic data, metrics."""

from repro.train.optim import SGD, Adam, Optimizer
from repro.train.schedulers import CosineSchedule, StepSchedule, WarmupSchedule
from repro.train.data import (
    Dataset,
    make_image_classification,
    make_token_classification,
)
from repro.train.metrics import top1_accuracy, f1_macro
from repro.train.loop import TrainResult, evaluate, train_single

__all__ = [
    "SGD",
    "Adam",
    "Optimizer",
    "CosineSchedule",
    "StepSchedule",
    "WarmupSchedule",
    "Dataset",
    "make_image_classification",
    "make_token_classification",
    "top1_accuracy",
    "f1_macro",
    "TrainResult",
    "evaluate",
    "train_single",
]
