"""Training substrate: optimizers, schedulers, synthetic data, metrics."""

from repro.train.data import (
    Dataset,
    make_image_classification,
    make_token_classification,
)
from repro.train.loop import TrainResult, evaluate, train_single
from repro.train.metrics import f1_macro, top1_accuracy
from repro.train.optim import SGD, Adam, Optimizer
from repro.train.schedulers import CosineSchedule, StepSchedule, WarmupSchedule

__all__ = [
    "SGD",
    "Adam",
    "Optimizer",
    "CosineSchedule",
    "StepSchedule",
    "WarmupSchedule",
    "Dataset",
    "make_image_classification",
    "make_token_classification",
    "top1_accuracy",
    "f1_macro",
    "TrainResult",
    "evaluate",
    "train_single",
]
