"""MinMax collection — the scaling-factor statistics kernel (Sec. VI).

Tensor-wise fixed-point quantization needs the tensor's min/max to compute
the scaling factor.  The paper found the naive implementation underutilizes
the GPU and replaced it with a two-step scheme:

1. row-wise statistics with a constant thread count per block, reduced by a
   warp-level primitive (one streaming pass over the data);
2. a second, tiny kernel reducing the per-row results to tensor scalars.

Both strategies are modelled (cost) *and* implemented (numerics).  The cost
gap reproduces Fig. 7(a): the vanilla path re-reads the tensor once per
reduction stage while the optimized path is single-pass plus a negligible
tail kernel.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.hardware.device import DeviceSpec


def compute_minmax(x: np.ndarray, optimized: bool = True) -> tuple[float, float]:
    """Tensor-wise (min, max); both strategies are numerically identical.

    The "optimized" flag switches the computation structure (row-wise
    partials then reduce vs direct full reduction) so tests can assert the
    refactoring does not change results.
    """
    flat = x.reshape(-1) if x.ndim == 1 else x.reshape(x.shape[0], -1)
    if optimized and flat.ndim == 2:
        row_min = flat.min(axis=1)  # step 1: row-wise statistics
        row_max = flat.max(axis=1)
        return float(row_min.min()), float(row_max.max())  # step 2: tail kernel
    return float(x.min()), float(x.max())


@dataclasses.dataclass(frozen=True)
class MinMaxKernel:
    """Latency model of the two MinMax strategies on a device.

    Attributes
    ----------
    device:
        Target device (bandwidth + launch overhead).
    optimized:
        Whether the two-step warp-primitive kernel is used.
    """

    device: DeviceSpec
    optimized: bool = True

    #: Vanilla: one fused aminmax pass but with poor occupancy for large
    #: inputs (grid-wide atomics serialize the tail), plus a tree of small
    #: reduction kernels.
    _VANILLA_PASSES: float = 1.0
    _VANILLA_TAIL_LAUNCHES: int = 4
    _VANILLA_INEFFICIENCY: float = 1.55  # atomics / partial-occupancy factor

    #: Optimized: one fused streaming pass (min+max together) + tiny kernel.
    _OPT_PASSES: float = 1.0
    _OPT_TAIL_LAUNCHES: int = 1

    def time(self, nbytes: float, rows: int = 1) -> float:
        """Seconds to collect tensor-wise min/max of an ``nbytes`` tensor."""
        bw = self.device.effective_bandwidth
        launch = self.device.kernel_launch_overhead
        if self.optimized:
            stream = self._OPT_PASSES * nbytes / bw
            # Row-partials buffer: 8 bytes (min+max) per row, read+write.
            tail = 16.0 * max(rows, 1) / bw
            return stream + tail + (1 + self._OPT_TAIL_LAUNCHES) * launch
        stream = self._VANILLA_PASSES * nbytes / bw * self._VANILLA_INEFFICIENCY
        return stream + (1 + self._VANILLA_TAIL_LAUNCHES) * launch

    def speedup_vs_vanilla(self, nbytes: float, rows: int = 1) -> float:
        """Optimized-over-vanilla latency ratio (< 1 means faster)."""
        vanilla = dataclasses.replace(self, optimized=False)
        return self.time(nbytes, rows) / vanilla.time(nbytes, rows)
