"""Dequantization fusion (Sec. VI).

Fixed-point kernels accumulate in INT32 and must dequantize before the next
operator.  Unfused, that is a separate elementwise kernel (read INT32, write
FP); LP-PyTorch fuses it "into the operator kernel at the epilogue level,
i.e. before copying the accumulator result into the shared memory", which
removes the extra global-memory round trip entirely.
"""

from __future__ import annotations

from repro.hardware.device import DeviceSpec
from repro.quant.fixed_point import Granularity


def dequant_cost(
    device: DeviceSpec,
    output_elems: int,
    fused: bool,
    granularity: Granularity = Granularity.LAYER,
) -> float:
    """Seconds spent dequantizing one INT8 op's output.

    Unfused: a full elementwise pass — read 4-byte INT32 accumulator, write
    4-byte FP32, plus (for channel-wise) a scale-vector read that is
    negligible but keeps the granularity distinction observable.  Fused: the
    epilogue applies the scale in-register; only the kernel-launch saving is
    counted (zero extra cost).
    """
    if fused:
        return 0.0
    bw = device.effective_bandwidth
    bytes_moved = output_elems * (4 + 4)
    if granularity is Granularity.CHANNEL:
        bytes_moved *= 1.02  # scale-vector traffic, slightly worse locality
    return bytes_moved / bw + device.kernel_launch_overhead
