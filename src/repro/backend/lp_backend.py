"""The LP-PyTorch device facade.

One :class:`LPBackend` per device: it owns the autotuner, the security
wrapper and the MinMax/fusion configuration, and exposes the *measurement*
surface the profiler runs against — per-operator execution times and casting
times, via a roofline model (``max(compute, memory)`` + launch overhead)
using the tuned kernel efficiencies.

Two access styles:

* ``*_time`` — the deterministic analytical latency (the "true" mean);
* ``measure_*`` — the same latency with multiplicative run-to-run jitter,
  which is what profiling and the ground-truth simulator consume.  The
  Replayer's fitted cost models therefore predict noisy reality from noisy
  profiles, exactly the estimation problem the paper's predictor solves.
"""

from __future__ import annotations

from repro.backend.autotune import AutoTuner
from repro.backend.fusion import dequant_cost
from repro.backend.minmax import MinMaxKernel
from repro.backend.wrapper import SecurityWrapper
from repro.common.dtypes import Precision
from repro.common.errors import UnsupportedPrecisionError
from repro.common.rng import derive_seed, new_rng
from repro.graph.ops import WEIGHTED_KINDS, OperatorSpec, OpKind
from repro.hardware.device import DeviceSpec


def gemm_problem(spec: OperatorSpec) -> tuple[int, int, int]:
    """Map an operator to its implied GEMM (M, N, K)."""
    if spec.kind is OpKind.CONV2D:
        out_c, in_c, kh, kw = spec.weight_shape
        n = spec.output_shape[0]
        oh, ow = spec.output_shape[2], spec.output_shape[3]
        return (n * oh * ow, out_c, in_c * kh * kw)
    if spec.kind is OpKind.LINEAR:
        out_f, in_f = spec.weight_shape
        tokens = spec.output_elems // out_f if out_f else 1
        return (tokens, out_f, in_f)
    if spec.kind is OpKind.MATMUL:
        # FLOPs = 2 M N K; output is (…, M, N).
        m, n = spec.output_shape[-2], spec.output_shape[-1]
        batch = max(spec.output_elems // (m * n), 1)
        k = max(int(spec.flops / (2.0 * batch * m * n)), 1)
        return (batch * m, n, k)
    # Elementwise: a degenerate 1-wide GEMM, never tuned with tensor cores.
    return (spec.output_elems, 1, 1)


class LPBackend:
    """Measurement surface of one device's kernel stack."""

    def __init__(
        self,
        device: DeviceSpec,
        dequant_fusion: bool = True,
        optimized_minmax: bool = True,
        measurement_noise: float = 0.01,
        seed: int = 0,
    ) -> None:
        self.device = device
        self.dequant_fusion = dequant_fusion
        self.tuner = AutoTuner(device.arch, seed=seed)
        self.wrapper = SecurityWrapper(device.arch)
        self.minmax = MinMaxKernel(device, optimized=optimized_minmax)
        self.measurement_noise = measurement_noise
        self.seed = seed

    # ------------------------------------------------------------------
    # pure operator execution (cpt_cost in Fig. 4)
    # ------------------------------------------------------------------
    def _effective_flops(self, spec: OperatorSpec, precision: Precision) -> float:
        """Tuned, wrapper-adjusted sustained FLOP/s for this op."""
        problem = gemm_problem(spec)
        call = self.wrapper.wrap(spec.kind, precision, problem)
        if call.use_tensor_cores or spec.kind not in WEIGHTED_KINDS:
            tuned = self.tuner.tune(spec.kind, precision, call.padded_problem)
            eff = tuned.efficiency / (1.0 + call.padding_waste)
            return self.device.flops_at(precision) * eff
        # SIMT fallback for a weighted op: runs near FP32 SIMT rates.
        fp32_peak = self.device.flops_at(Precision.FP32)
        return fp32_peak * 0.55

    def op_forward_time(
        self, spec: OperatorSpec, precision: Precision, input_elems: int
    ) -> float:
        """Forward latency via roofline: max(compute roof, memory roof)."""
        if not self.device.supports(precision):
            raise UnsupportedPrecisionError(
                f"{self.device.name} does not support {precision.value}"
            )
        if spec.flops <= 0:
            return 0.0
        sustained = self._effective_flops(spec, precision)
        compute = spec.flops / sustained
        nbytes = (
            input_elems * precision.nbytes
            + spec.weight_elems * precision.nbytes
            + spec.output_elems * precision.nbytes
        )
        memory = nbytes / self.device.effective_bandwidth
        return max(compute, memory) + self.device.kernel_launch_overhead

    def op_backward_time(
        self, spec: OperatorSpec, forward_precision: Precision, input_elems: int
    ) -> float:
        """Backward latency.

        Fixed-point kernels backpropagate in FP16 (footnote 2); weighted ops
        run two GEMMs (grad-input, grad-weight) hence ~2x FLOPs.
        """
        bwd_prec = (
            Precision.FP16
            if forward_precision is Precision.INT8
            else forward_precision
        )
        if spec.flops <= 0:
            return 0.0
        sustained = self._effective_flops(spec, bwd_prec)
        compute = spec.backward_flops() / sustained
        nbytes = 2.0 * (
            input_elems + spec.weight_elems + spec.output_elems
        ) * bwd_prec.nbytes
        memory = nbytes / self.device.effective_bandwidth
        launches = 2 if spec.kind in WEIGHTED_KINDS else 1
        return max(compute, memory) + launches * self.device.kernel_launch_overhead

    # ------------------------------------------------------------------
    # casting (cvt_cost / bp_cost in Fig. 4)
    # ------------------------------------------------------------------
    def cast_time(
        self,
        src: Precision,
        dst: Precision,
        elems: int,
        rows: int = 1,
    ) -> float:
        """One tensor cast between precisions.

        fp<->fp: a streaming elementwise kernel.
        fp->int8: MinMax collection + scale computation + quantize pass.
        int8->fp: dequantize pass — eliminated when fusion is on.
        """
        if src is dst or elems <= 0:
            return 0.0
        bw = self.device.effective_bandwidth
        launch = self.device.kernel_launch_overhead
        if src.is_floating_point and dst.is_floating_point:
            nbytes = elems * (src.nbytes + dst.nbytes)
            return nbytes / bw + launch
        if dst.is_fixed_point:
            src_bytes = float(elems * src.nbytes)
            collect = self.minmax.time(src_bytes, rows=rows)
            scale = launch  # tiny scalar kernel for the scaling factor
            quantize = (elems * (src.nbytes + dst.nbytes)) / bw + launch
            return collect + scale + quantize
        # fixed -> float: dequantization
        return dequant_cost(self.device, elems, fused=self.dequant_fusion)

    # ------------------------------------------------------------------
    # noisy measurements
    # ------------------------------------------------------------------
    def _jitter(self, *key) -> float:
        rng = new_rng(derive_seed(self.seed, "measure", *key))
        return float(1.0 + self.measurement_noise * rng.standard_normal())

    def measure_op_forward(
        self, spec: OperatorSpec, precision: Precision, input_elems: int, rep: int = 0
    ) -> float:
        return self.op_forward_time(spec, precision, input_elems) * self._jitter(
            spec.name, precision.value, "fwd", rep
        )

    def measure_op_backward(
        self, spec: OperatorSpec, precision: Precision, input_elems: int, rep: int = 0
    ) -> float:
        return self.op_backward_time(spec, precision, input_elems) * self._jitter(
            spec.name, precision.value, "bwd", rep
        )

    def measure_cast(
        self, src: Precision, dst: Precision, elems: int, rows: int = 1, rep: int = 0
    ) -> float:
        return self.cast_time(src, dst, elems, rows) * self._jitter(
            src.value, dst.value, elems, rep
        )
