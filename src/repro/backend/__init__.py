"""LP-PyTorch — the low-precision backend (Sec. VI), simulated.

The real LP-PyTorch bridges PyTorch operators to templated CUTLASS/CuDNN
kernels.  Here the same architecture is reproduced at the model level:

* :mod:`repro.backend.kernels` — kernel templates (ThreadblockShape /
  WarpShape / InstructionShape) with an analytical efficiency function per
  GPU architecture ("Multi-Level Abstraction").
* :mod:`repro.backend.autotune` — selects the best template per
  (device, op kind, precision, problem shape) — workflow step 6.
* :mod:`repro.backend.minmax` — the two-step row-wise MinMax collection
  kernel vs the vanilla multi-pass reduction ("Minmax Optimization").
* :mod:`repro.backend.fusion` — dequantization folded into the kernel
  epilogue ("Dequantization Fusion").
* :mod:`repro.backend.wrapper` — the "Front-end Security Wrapper": tensor-
  core shape checks with SIMT fallback.
* :mod:`repro.backend.lp_backend` — the facade the profiler measures
  against.
"""

from repro.backend.autotune import AutoTuner, TunedKernel
from repro.backend.fusion import dequant_cost
from repro.backend.kernels import KernelRegistry, KernelTemplate, kernel_efficiency
from repro.backend.lp_backend import LPBackend
from repro.backend.minmax import MinMaxKernel, compute_minmax
from repro.backend.wrapper import SecurityWrapper, check_tensor_core_compat

__all__ = [
    "KernelTemplate",
    "KernelRegistry",
    "kernel_efficiency",
    "AutoTuner",
    "TunedKernel",
    "MinMaxKernel",
    "compute_minmax",
    "dequant_cost",
    "check_tensor_core_compat",
    "SecurityWrapper",
    "LPBackend",
]
