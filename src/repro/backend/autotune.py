"""Kernel autotuning — workflow step 6 ("the mixed-precision backend then
configures the low-precision kernel by selecting the best device-optimized
configuration").

The tuner enumerates :class:`KernelRegistry` candidates, "measures" each via
the analytical efficiency model plus a small deterministic measurement jitter
(so tuning is a real argmax over noisy observations, not a table lookup), and
caches the winner per (arch, kind, precision, problem-bucket).
"""

from __future__ import annotations

import dataclasses
import math

from repro.backend.kernels import KernelRegistry, KernelTemplate, kernel_efficiency
from repro.common.dtypes import Precision
from repro.common.rng import derive_seed, new_rng
from repro.graph.ops import OpKind


@dataclasses.dataclass(frozen=True)
class TunedKernel:
    """Tuning result: the chosen template and its realized efficiency."""

    template: KernelTemplate
    efficiency: float
    candidates_tried: int


def _bucket(problem: tuple[int, int, int]) -> tuple[int, int, int]:
    """Round problem dims to powers of two: tuning reuse across near-equal
    shapes, exactly like shape-bucketed kernel caches in real autotuners."""
    return tuple(2 ** int(math.ceil(math.log2(max(d, 1)))) for d in problem)


class AutoTuner:
    """Per-device kernel selection with caching.

    Parameters
    ----------
    arch:
        Device architecture tag (``sm70``/``sm75``/``sm80``).
    measurement_noise:
        Std-dev of the multiplicative jitter applied to each simulated
        measurement; models run-to-run variance of real benchmarking.
    seed:
        Jitter stream seed (derived per candidate, so results are stable).
    """

    def __init__(self, arch: str, measurement_noise: float = 0.015, seed: int = 0) -> None:
        self.arch = arch
        self.measurement_noise = measurement_noise
        self.seed = seed
        self._cache: dict[tuple, TunedKernel] = {}

    def tune(
        self, kind: OpKind, precision: Precision, problem: tuple[int, int, int]
    ) -> TunedKernel:
        """Pick the best template for a GEMM-shaped problem (M, N, K)."""
        key = (kind, precision, _bucket(problem))
        if key in self._cache:
            return self._cache[key]

        candidates = KernelRegistry.candidates(self.arch, kind, precision)
        best: tuple[float, KernelTemplate] | None = None
        for template in candidates:
            true_eff = kernel_efficiency(self.arch, kind, precision, template, problem)
            rng = new_rng(derive_seed(self.seed, self.arch, kind.value,
                                      precision.value, template.label))
            measured = true_eff * (1.0 + self.measurement_noise * rng.standard_normal())
            if best is None or measured > best[0]:
                best = (measured, template)
        assert best is not None, "registry always returns >= 1 candidate"
        result = TunedKernel(
            template=best[1],
            efficiency=float(
                kernel_efficiency(self.arch, kind, precision, best[1], problem)
            ),
            candidates_tried=len(candidates),
        )
        self._cache[key] = result
        return result

    def cache_size(self) -> int:
        return len(self._cache)
