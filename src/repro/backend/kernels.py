"""Kernel templates and their analytical efficiency model.

LP-PyTorch "templates each kernel as a combination of hardware-specific
configuration and kernel abstractions ... such as ThreadblockShape, WarpShape
and InstructionShape" (Sec. VI).  A :class:`KernelTemplate` is one such
configuration; :func:`kernel_efficiency` maps (template, problem, precision,
arch) to the fraction of the device's peak FLOPs the kernel realizes.

The efficiency model captures the effects that make tuning worthwhile:

* **tile quantization** — threadblock tiles that don't divide the problem
  waste compute on ragged edges;
* **occupancy** — too-large tiles limit resident blocks, too-small tiles
  underutilize tensor cores;
* **instruction match** — tensor-core instructions need matching precision
  and an arch that has them (sm70 has FP16 HMMA; INT8 IMMA needs sm75+);
  otherwise the kernel falls back to SIMT rates.
"""

from __future__ import annotations

import dataclasses
import math

from repro.common.dtypes import Precision
from repro.common.errors import KernelConfigError
from repro.graph.ops import OpKind

#: Architectures with tensor cores per precision.
TENSOR_CORE_SUPPORT: dict[str, frozenset[Precision]] = {
    "sm70": frozenset({Precision.FP16}),
    "sm75": frozenset({Precision.FP16, Precision.INT8}),
    "sm80": frozenset({Precision.FP16, Precision.INT8}),
    "simt": frozenset(),
}

#: Realizable fraction of datasheet peak for a well-tuned GEMM-like kernel.
#: INT8 *training* kernels realize far less of their inference-oriented peak
#: (NHWC-only layouts, per-channel scale epilogues, INT32 accumulation) —
#: the reason the paper observes "full INT8 training is typically slower
#: than FP16" before its backend optimizations.
_BASE_EFFICIENCY: dict[Precision, float] = {
    Precision.FP32: 0.62,
    Precision.FP16: 0.48,
    Precision.INT8: 0.25,
}

#: SIMT fallback rates relative to FP32 peak (dp4a-style INT8 ~ 1x FP32).
_SIMT_RELATIVE: dict[Precision, float] = {
    Precision.FP32: 0.62,
    Precision.FP16: 0.60,  # half2 packed math, barely beats FP32 on SIMT
    Precision.INT8: 0.55,
}


@dataclasses.dataclass(frozen=True)
class KernelTemplate:
    """One instantiable kernel configuration.

    Shapes are (M, N, K) tiles in the CUTLASS convention.
    """

    threadblock: tuple[int, int, int]
    warp: tuple[int, int, int]
    instruction: tuple[int, int, int]
    stages: int = 2
    use_tensor_cores: bool = True

    def __post_init__(self) -> None:
        for tb, wp in zip(self.threadblock, self.warp):
            if tb % wp:
                raise KernelConfigError(
                    f"warp tile {self.warp} does not divide threadblock "
                    f"{self.threadblock}"
                )
        if self.use_tensor_cores:
            for wp, ins in zip(self.warp, self.instruction):
                if wp % ins:
                    raise KernelConfigError(
                        f"instruction {self.instruction} does not divide warp "
                        f"{self.warp}"
                    )
        if self.stages < 2 or self.stages > 6:
            raise KernelConfigError(f"pipeline stages {self.stages} out of range")

    @property
    def label(self) -> str:
        tb = "x".join(map(str, self.threadblock))
        return f"tb{tb}_s{self.stages}{'_tc' if self.use_tensor_cores else '_simt'}"


#: Candidate templates per architecture (a realistic, small CUTLASS subset).
_TC_INSTR = {
    "sm70": (8, 8, 4),   # Volta HMMA
    "sm75": (16, 8, 8),  # Turing HMMA/IMMA
    "sm80": (16, 8, 16),  # Ampere
}


def _make_candidates(arch: str) -> list[KernelTemplate]:
    simt = KernelTemplate(
        threadblock=(128, 128, 8), warp=(32, 64, 8), instruction=(1, 1, 1),
        stages=2, use_tensor_cores=False,
    )
    if arch not in _TC_INSTR:
        return [simt]
    instr = _TC_INSTR[arch]
    tc: list[KernelTemplate] = []
    for tb, wp, stages in [
        ((64, 64, 32), (32, 32, 32), 2),
        ((128, 64, 32), (64, 32, 32), 2),
        ((128, 128, 32), (64, 64, 32), 3),
        ((256, 128, 32), (64, 64, 32), 3),
        ((128, 256, 64), (64, 64, 64), 4),
    ]:
        # Warp tiles must be instruction-divisible; these presets are.
        if all(w % i == 0 for w, i in zip(wp, instr)):
            tc.append(
                KernelTemplate(threadblock=tb, warp=wp, instruction=instr, stages=stages)
            )
    return tc + [simt]


class KernelRegistry:
    """Per-architecture template catalog."""

    _cache: dict[str, list[KernelTemplate]] = {}

    @classmethod
    def candidates(
        cls, arch: str, kind: OpKind, precision: Precision
    ) -> list[KernelTemplate]:
        """Templates eligible for (arch, op kind, precision).

        Non-GEMM ops only have the SIMT elementwise path; GEMM-like ops get
        tensor-core templates when the arch supports the precision.
        """
        if arch not in cls._cache:
            cls._cache[arch] = _make_candidates(arch)
        all_cands = cls._cache[arch]
        if kind not in (OpKind.CONV2D, OpKind.LINEAR, OpKind.MATMUL):
            return [c for c in all_cands if not c.use_tensor_cores]
        if precision in TENSOR_CORE_SUPPORT.get(arch, frozenset()):
            return all_cands
        return [c for c in all_cands if not c.use_tensor_cores]


def _tile_utilization(problem: tuple[int, int, int], tile: tuple[int, int, int]) -> float:
    """Fraction of tile compute doing useful work (quantization waste)."""
    util = 1.0
    for p, t in zip(problem, tile):
        padded = math.ceil(p / t) * t
        util *= p / padded
    return util


def _occupancy_factor(template: KernelTemplate, problem: tuple[int, int, int]) -> float:
    """Penalty for launching too few threadblocks to fill the device."""
    m, n, _ = problem
    tb_m, tb_n, _ = template.threadblock
    blocks = math.ceil(m / tb_m) * math.ceil(n / tb_n)
    # ~80 SMs want >= ~2 blocks each; saturate smoothly below that.
    target = 160.0
    return min(1.0, 0.25 + 0.75 * blocks / target)


def kernel_efficiency(
    arch: str,
    kind: OpKind,
    precision: Precision,
    template: KernelTemplate,
    problem: tuple[int, int, int],
) -> float:
    """Realized fraction of the *precision's datasheet peak*.

    SIMT fallbacks are expressed relative to the precision's own peak so the
    caller can always multiply by ``device.flops_at(precision)``: e.g. FP16
    SIMT on sm70 realizes ``0.60 * fp32_peak / fp16_peak`` of the FP16 peak.
    """
    if template.use_tensor_cores:
        if precision not in TENSOR_CORE_SUPPORT.get(arch, frozenset()):
            raise KernelConfigError(
                f"{arch} has no tensor-core path for {precision.value}"
            )
        base = _BASE_EFFICIENCY[precision]
        stage_bonus = 1.0 + 0.03 * (template.stages - 2)
        eff = base * stage_bonus
    else:
        # SIMT: compute runs at ~FP32 rates regardless of nominal precision;
        # express as a fraction of this precision's peak.
        rel = _SIMT_RELATIVE[precision]
        eff = rel  # scaled vs own peak by the caller through peak ratios
        if precision is not Precision.FP32:
            # Approximate: SIMT low-precision achieves ~FP32-peak-level
            # throughput, which is a small fraction of the tensor-core peak.
            eff = rel * 0.15
    eff *= _tile_utilization(problem, template.threadblock)
    eff *= _occupancy_factor(template, problem)
    return float(min(eff, 0.95))
