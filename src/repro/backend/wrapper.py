"""Front-end security wrapper (Sec. VI).

"Tensorized kernels can have strict requirements for memory access patterns
and input data precisions, e.g. TensorCore has restrictions on input tensor
dimensions.  We wrap kernel calls with security checks and handling."

The wrapper validates a problem against tensor-core alignment rules and
either accepts it, pads it (with the padding waste reported), or falls back
to the SIMT kernel.
"""

from __future__ import annotations

import dataclasses
import math

from repro.backend.kernels import TENSOR_CORE_SUPPORT
from repro.common.dtypes import Precision
from repro.graph.ops import OpKind

#: Minimum dimension alignment for tensor-core MMA operands.
_ALIGNMENT: dict[Precision, int] = {
    Precision.FP16: 8,
    Precision.INT8: 16,
}


def check_tensor_core_compat(
    problem: tuple[int, int, int], precision: Precision, arch: str
) -> bool:
    """True iff (M, N, K) meets the arch's tensor-core alignment rules."""
    if precision not in TENSOR_CORE_SUPPORT.get(arch, frozenset()):
        return False
    align = _ALIGNMENT.get(precision)
    if align is None:
        return False
    # K and N must be aligned (operand leading dimensions); M may be ragged.
    _, n, k = problem
    return n % align == 0 and k % align == 0


@dataclasses.dataclass(frozen=True)
class WrappedCall:
    """Decision record for one kernel invocation."""

    use_tensor_cores: bool
    padded_problem: tuple[int, int, int]
    padding_waste: float  # fraction of extra FLOPs introduced by padding


class SecurityWrapper:
    """Validates and adapts kernel calls before dispatch.

    Policy (mirrors LP-PyTorch's wrap function): aligned problems dispatch
    straight to tensor cores; misaligned ones are padded when the waste is
    small, otherwise dropped to SIMT.
    """

    def __init__(self, arch: str, max_padding_waste: float = 0.125) -> None:
        self.arch = arch
        self.max_padding_waste = max_padding_waste

    def wrap(
        self, kind: OpKind, precision: Precision,
        problem: tuple[int, int, int],
    ) -> WrappedCall:
        if kind not in (OpKind.CONV2D, OpKind.LINEAR, OpKind.MATMUL):
            return WrappedCall(False, problem, 0.0)
        if precision not in TENSOR_CORE_SUPPORT.get(self.arch, frozenset()):
            return WrappedCall(False, problem, 0.0)
        if check_tensor_core_compat(problem, precision, self.arch):
            return WrappedCall(True, problem, 0.0)

        align = _ALIGNMENT[precision]
        m, n, k = problem
        padded = (m, math.ceil(n / align) * align, math.ceil(k / align) * align)
        orig = float(m) * n * k
        waste = (float(padded[0]) * padded[1] * padded[2] - orig) / orig
        if waste <= self.max_padding_waste:
            return WrappedCall(True, padded, waste)
        return WrappedCall(False, problem, 0.0)
