"""The common result shape every planner strategy returns.

A :class:`PlanOutcome` bundles the three artifacts a what-if query wants —
the precision plan, the final simulation, and the operator-facing
:class:`QSyncReport` — regardless of whether the strategy was QSync's
allocator, a baseline indicator swap, or a prediction-only baseline.  One
shape means ``session.compare`` can tabulate all strategies without
per-baseline adapters.
"""

from __future__ import annotations

import dataclasses

from repro.core.allocator import AllocationReport, precision_counts
from repro.core.compression import CompressionReport
from repro.core.plan import PrecisionPlan
from repro.core.qsync import QSyncReport
from repro.core.replayer import SimulationResult


@dataclasses.dataclass
class PlanOutcome:
    """What one planner strategy produced for one request."""

    #: Registry name of the strategy that produced this outcome.
    strategy: str
    #: Per-device-type precision assignments (empty = all FP32).
    plan: PrecisionPlan
    #: Simulation of the final configuration (timeline collected).
    simulation: SimulationResult
    #: Operator-facing report; allocator strategies carry real recovery
    #: diagnostics, passive strategies a zero-recovery snapshot.
    report: QSyncReport
    #: Gradient-compression diagnostics — only the compression-aware
    #: strategies (``qsync+qsgd``) populate this; ``None`` elsewhere.
    compression: CompressionReport | None = None

    def summary(self) -> str:
        return f"[{self.strategy}] {self.report.summary()}"


def passive_allocation_report(
    plan: PrecisionPlan, simulation: SimulationResult
) -> AllocationReport:
    """An :class:`AllocationReport` for strategies that run no recovery
    loop (uniform, dpro): every throughput field is the final simulation's
    and the precision counts simply describe the plan."""
    counts = precision_counts(plan.assignments)
    return AllocationReport(
        t_min=simulation.throughput,
        initial_throughput=simulation.throughput,
        final_throughput=simulation.throughput,
        recovery_attempts=0,
        recovery_accepted=0,
        initial_counts=dict(counts),
        final_counts=dict(counts),
    )
