"""Planner strategies — pluggable implementations of "produce a plan".

Every strategy consumes the same :class:`~repro.session.session.PlanContext`
(cluster, per-rank replayer, profiled stats, gamma) and returns the same
:class:`~repro.session.outcome.PlanOutcome`, which is what lets
``session.compare`` run the paper's whole baseline table through one code
path.  The registry is ordered and fixed at import time so comparison
tables iterate deterministically.

Strategies
----------
``qsync``
    The paper's allocator (fastest-feasible init + max-heap recovery) with
    the variance indicator — or the request's indicator override.
``uniform``
    Uniform Precision (UP): one lowest-fitting precision per inference
    device type (Sec. VII baselines).
``dpro``
    Dpro-style prediction [35]: no plan search; replays the all-FP32
    configuration without cast/cascade modelling (Table III's baseline).
``hessian``
    The allocator driven by the HAWQ-v3-style Hessian indicator [8]
    (Gauss–Newton curvature proxy at graph scale).
``random``
    The allocator driven by the random indicator of Sec. VII-A1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.baselines.dpro import DproReplayer
from repro.baselines.hessian import HessianIndicator, structural_eigenvalues
from repro.baselines.random_ind import RandomIndicator
from repro.baselines.uniform import uniform_precision_plan
from repro.common.dtypes import Precision
from repro.core.allocator import Allocator
from repro.core.indicator import VarianceIndicator
from repro.core.plan import PrecisionPlan
from repro.core.qsync import QSyncReport
from repro.session.outcome import PlanOutcome, passive_allocation_report

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.session import PlanContext


class Planner(Protocol):
    """The strategy interface: one context in, one outcome out."""

    name: str

    def plan(self, ctx: "PlanContext") -> PlanOutcome:
        ...


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Planner] = {}


def register_planner(planner: Planner) -> Planner:
    """Register a strategy instance under its ``name`` (insertion order is
    the canonical comparison order)."""
    if planner.name in _REGISTRY:
        raise ValueError(f"planner {planner.name!r} is already registered")
    _REGISTRY[planner.name] = planner
    return planner


def available_strategies() -> tuple[str, ...]:
    """Registered strategy names, in canonical (registration) order."""
    return tuple(_REGISTRY)


def get_planner(name: str) -> Planner:
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown planner strategy {name!r}; available: "
            f"{', '.join(available_strategies())}"
        )
    return _REGISTRY[name]


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _report(ctx: "PlanContext", allocation, simulation) -> QSyncReport:
    return QSyncReport(
        cluster=ctx.cluster.describe(),
        model_summary=ctx.template.summary(),
        allocation=allocation,
        final_simulation=simulation,
    )


def _make_indicator(ctx: "PlanContext", dag, choice):
    """Build one device type's indicator from a name, a legacy factory, or
    ``None`` (the variance default)."""
    if callable(choice) and not isinstance(choice, str):
        return choice(dag, ctx.stats, ctx.gamma)
    if choice in (None, "variance"):
        return VarianceIndicator(dag, ctx.stats, ctx.gamma)
    if choice == "random":
        return RandomIndicator(list(dag.adjustable_ops()), seed=ctx.request.seed)
    if choice == "hessian":
        return HessianIndicator(structural_eigenvalues(dag, ctx.stats), ctx.stats)
    raise ValueError(
        f"unknown indicator {choice!r}; available: variance, hessian, random "
        f"(or a (dag, stats, gamma) factory)"
    )


# ---------------------------------------------------------------------------
# allocator-backed strategies (qsync / hessian / random)
# ---------------------------------------------------------------------------


class AllocatorPlanner:
    """The paper's allocation pipeline, parameterized by indicator.

    ``indicator_override=None`` (the ``qsync`` strategy) honors the
    request's indicator choice; the baseline strategies pin theirs.
    """

    def __init__(self, name: str, indicator_override: str | None = None) -> None:
        self.name = name
        self.indicator_override = indicator_override

    def check_request(self, request) -> None:
        """Fail loudly (and before profiling) instead of silently ignoring
        an indicator that this strategy pins."""
        if (
            self.indicator_override is not None
            and request.indicator not in (None, self.indicator_override)
        ):
            raise ValueError(
                f"strategy {self.name!r} pins indicator "
                f"{self.indicator_override!r} but the request asks for "
                f"{request.indicator!r}; use strategy='qsync' with an "
                f"indicator override instead"
            )

    def plan(self, ctx: "PlanContext") -> PlanOutcome:
        request = ctx.request
        cluster = ctx.cluster
        replayer = ctx.replayer
        choice = self.indicator_override or request.indicator

        amp_mode = request.config is not None and request.config.amp_mode
        indicator_workers = (
            cluster.workers if amp_mode else cluster.inference_workers
        )
        indicators = {}
        for w in indicator_workers:
            if w.device.name not in indicators:
                dag = replayer.dags[w.rank]
                indicators[w.device.name] = _make_indicator(ctx, dag, choice)

        allocator = Allocator(replayer, indicators, config=request.config)
        plan, alloc_report = allocator.allocate()
        final = replayer.simulate(collect_timeline=True)
        return PlanOutcome(
            strategy=self.name,
            plan=plan,
            simulation=final,
            report=_report(ctx, alloc_report, final),
        )


# ---------------------------------------------------------------------------
# uniform precision (UP)
# ---------------------------------------------------------------------------


class UniformPlanner:
    """Uniform lowest-fitting precision per inference device type."""

    name = "uniform"

    def plan(self, ctx: "PlanContext") -> PlanOutcome:
        replayer = ctx.replayer
        assignments: dict[str, dict[str, Precision]] = {}
        for w in ctx.cluster.inference_workers:
            tname = w.device.name
            if tname not in assignments:
                assignments[tname] = uniform_precision_plan(
                    replayer.dags[w.rank],
                    w.device,
                    memory_model=replayer.memory_model,
                )
            replayer.apply_plan(w.rank, assignments[tname])
        sim = replayer.simulate(collect_timeline=True)
        plan = PrecisionPlan(assignments=assignments)
        return PlanOutcome(
            strategy=self.name,
            plan=plan,
            simulation=sim,
            report=_report(ctx, passive_allocation_report(plan, sim), sim),
        )


# ---------------------------------------------------------------------------
# Dpro prediction baseline
# ---------------------------------------------------------------------------


class DproPlanner:
    """Prediction-only baseline: no plan search, cast-blind replay of the
    all-FP32 configuration (what Table III isolates)."""

    name = "dpro"

    def plan(self, ctx: "PlanContext") -> PlanOutcome:
        replayer = ctx.replayer
        catalogs = {rank: m.catalog for rank, m in replayer.mappers.items()}
        dpro = DproReplayer(
            ctx.cluster,
            replayer.dags,
            catalogs,
            collective_model=replayer.collective_model,
        )
        sim = dpro.simulate()
        plan = PrecisionPlan(assignments={})
        return PlanOutcome(
            strategy=self.name,
            plan=plan,
            simulation=sim,
            report=_report(ctx, passive_allocation_report(plan, sim), sim),
        )


register_planner(AllocatorPlanner("qsync"))
register_planner(UniformPlanner())
register_planner(DproPlanner())
register_planner(AllocatorPlanner("hessian", indicator_override="hessian"))
register_planner(AllocatorPlanner("random", indicator_override="random"))
