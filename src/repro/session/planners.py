"""Planner strategies — pluggable implementations of "produce a plan".

Every strategy consumes the same :class:`~repro.session.session.PlanContext`
(cluster, per-rank replayer, profiled stats, gamma) and returns the same
:class:`~repro.session.outcome.PlanOutcome`, which is what lets
``session.compare`` run the paper's whole baseline table through one code
path.  The registry is ordered and fixed at import time so comparison
tables iterate deterministically.

Strategies
----------
``qsync``
    The paper's allocator (fastest-feasible init + max-heap recovery) with
    the variance indicator — or the request's indicator override.
``uniform``
    Uniform Precision (UP): one lowest-fitting precision per inference
    device type (Sec. VII baselines).
``dpro``
    Dpro-style prediction [35]: no plan search; replays the all-FP32
    configuration without cast/cascade modelling (Table III's baseline).
``hessian``
    The allocator driven by the HAWQ-v3-style Hessian indicator [8]
    (Gauss–Newton curvature proxy at graph scale).
``random``
    The allocator driven by the random indicator of Sec. VII-A1.
``qsync+qsgd``
    The joint precision + gradient-compression planner: the ``qsync``
    allocation followed by a budgeted greedy ascent over per-bucket QSGD
    compression levels (:mod:`repro.core.compression`), trading all-reduce
    time against the Indicator's gradient-sync variance term.  With the
    ladder pinned to ``(0,)`` it is bit-identical to ``qsync``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.baselines.dpro import DproReplayer
from repro.baselines.hessian import HessianIndicator, structural_eigenvalues
from repro.baselines.random_ind import RandomIndicator
from repro.baselines.uniform import uniform_precision_plan
from repro.common.dtypes import Precision
from repro.core.allocator import Allocator
from repro.core.compression import allocate_compression
from repro.core.indicator import VarianceIndicator
from repro.core.plan import PrecisionPlan
from repro.core.qsync import QSyncReport
from repro.quant.qsgd import CompressionConfig, level_bits
from repro.session.outcome import PlanOutcome, passive_allocation_report

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.session import PlanContext


class Planner(Protocol):
    """The strategy interface: one context in, one outcome out."""

    name: str

    def plan(self, ctx: "PlanContext") -> PlanOutcome:
        ...


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Planner] = {}


def register_planner(planner: Planner) -> Planner:
    """Register a strategy instance under its ``name`` (insertion order is
    the canonical comparison order)."""
    if planner.name in _REGISTRY:
        raise ValueError(f"planner {planner.name!r} is already registered")
    _REGISTRY[planner.name] = planner
    return planner


def available_strategies() -> tuple[str, ...]:
    """Registered strategy names, in canonical (registration) order."""
    return tuple(_REGISTRY)


def get_planner(name: str) -> Planner:
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown planner strategy {name!r}; available: "
            f"{', '.join(available_strategies())}"
        )
    return _REGISTRY[name]


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _report(ctx: "PlanContext", allocation, simulation) -> QSyncReport:
    return QSyncReport(
        cluster=ctx.cluster.describe(),
        model_summary=ctx.template.summary(),
        allocation=allocation,
        final_simulation=simulation,
    )


def _make_indicator(ctx: "PlanContext", dag, choice):
    """Build one device type's indicator from a name, a legacy factory, or
    ``None`` (the variance default)."""
    if callable(choice) and not isinstance(choice, str):
        return choice(dag, ctx.stats, ctx.gamma)
    if choice in (None, "variance"):
        return VarianceIndicator(dag, ctx.stats, ctx.gamma)
    if choice == "random":
        return RandomIndicator(list(dag.adjustable_ops()), seed=ctx.request.seed)
    if choice == "hessian":
        return HessianIndicator(structural_eigenvalues(dag, ctx.stats), ctx.stats)
    raise ValueError(
        f"unknown indicator {choice!r}; available: variance, hessian, random "
        f"(or a (dag, stats, gamma) factory)"
    )


# ---------------------------------------------------------------------------
# allocator-backed strategies (qsync / hessian / random)
# ---------------------------------------------------------------------------


class AllocatorPlanner:
    """The paper's allocation pipeline, parameterized by indicator.

    ``indicator_override=None`` (the ``qsync`` strategy) honors the
    request's indicator choice; the baseline strategies pin theirs.
    """

    def __init__(self, name: str, indicator_override: str | None = None) -> None:
        self.name = name
        self.indicator_override = indicator_override

    def check_request(self, request) -> None:
        """Fail loudly (and before profiling) instead of silently ignoring
        an indicator that this strategy pins."""
        if (
            self.indicator_override is not None
            and request.indicator not in (None, self.indicator_override)
        ):
            raise ValueError(
                f"strategy {self.name!r} pins indicator "
                f"{self.indicator_override!r} but the request asks for "
                f"{request.indicator!r}; use strategy='qsync' with an "
                f"indicator override instead"
            )

    def _build_indicators(self, ctx: "PlanContext") -> dict:
        """One indicator per participating device type (shared with the
        compression-aware subclass so both see identical instances)."""
        request = ctx.request
        replayer = ctx.replayer
        choice = self.indicator_override or request.indicator
        amp_mode = request.config is not None and request.config.amp_mode
        indicator_workers = (
            ctx.cluster.workers if amp_mode else ctx.cluster.inference_workers
        )
        indicators = {}
        for w in indicator_workers:
            if w.device.name not in indicators:
                dag = replayer.dags[w.rank]
                indicators[w.device.name] = _make_indicator(ctx, dag, choice)
        return indicators

    def plan(self, ctx: "PlanContext") -> PlanOutcome:
        request = ctx.request
        replayer = ctx.replayer
        indicators = self._build_indicators(ctx)
        allocator = Allocator(replayer, indicators, config=request.config)
        plan, alloc_report = allocator.allocate()
        final = replayer.simulate(collect_timeline=True)
        return PlanOutcome(
            strategy=self.name,
            plan=plan,
            simulation=final,
            report=_report(ctx, alloc_report, final),
        )


class CompressedAllocatorPlanner(AllocatorPlanner):
    """``qsync`` allocation + per-bucket QSGD compression (the joint axis).

    Runs the exact precision allocation of :class:`AllocatorPlanner`, then
    climbs the compression ladder bucket-by-bucket under a variance budget
    of ``loss_budget`` times the precision plan's own indicator loss
    (:func:`repro.core.compression.allocate_compression`), installs the
    chosen levels on the replayer, and re-simulates.  When every bucket
    stays at level 0 — an empty budget, a ``(0,)`` ladder, or no move that
    saves time — the outcome's plan dict and simulation are bit-identical
    to the plain ``qsync`` strategy on every dispatch tier.
    """

    def plan(self, ctx: "PlanContext") -> PlanOutcome:
        request = ctx.request
        replayer = ctx.replayer
        indicators = self._build_indicators(ctx)
        allocator = Allocator(replayer, indicators, config=request.config)
        plan, alloc_report = allocator.allocate()

        cconf = request.compression or CompressionConfig()
        # Budget: the compression axis may add at most `loss_budget` of the
        # indicator loss the precision plan already pays.  An all-FP32 plan
        # (base loss 0) yields budget 0 — conservatively uncompressed.
        base_loss = 0.0
        for tname, ops in plan.assignments.items():
            indicator = indicators.get(tname)
            if indicator is None:
                continue
            for op, prec in ops.items():
                base_loss += indicator.omega(op, prec)
        budget = cconf.loss_budget * base_loss

        # The gradient-sync variance term always comes from the variance
        # indicator (Proposition 2's machinery): baseline indicators rank
        # ops but do not model gradient-quantization variance.
        ref_rank = min(replayer.dags)
        sync_indicator = VarianceIndicator(
            replayer.dags[ref_rank], dict(ctx.stats), ctx.gamma
        )
        buckets = replayer.local_dfg(ref_rank).buckets
        bucket_variances = [
            {
                lvl: sum(
                    sync_indicator.gradient_sync_variance(op, level_bits(lvl))
                    for op in bucket.ops
                )
                for lvl in cconf.levels
            }
            for bucket in buckets
        ]
        levels, creport = allocate_compression(
            replayer, bucket_variances, budget, levels=cconf.levels
        )
        replayer.set_bucket_compression(levels)
        plan.bucket_compression = replayer.bucket_compression

        final = replayer.simulate(collect_timeline=True)
        return PlanOutcome(
            strategy=self.name,
            plan=plan,
            simulation=final,
            report=_report(ctx, alloc_report, final),
            compression=creport,
        )


# ---------------------------------------------------------------------------
# uniform precision (UP)
# ---------------------------------------------------------------------------


class UniformPlanner:
    """Uniform lowest-fitting precision per inference device type."""

    name = "uniform"

    def plan(self, ctx: "PlanContext") -> PlanOutcome:
        replayer = ctx.replayer
        assignments: dict[str, dict[str, Precision]] = {}
        for w in ctx.cluster.inference_workers:
            tname = w.device.name
            if tname not in assignments:
                assignments[tname] = uniform_precision_plan(
                    replayer.dags[w.rank],
                    w.device,
                    memory_model=replayer.memory_model,
                )
            replayer.apply_plan(w.rank, assignments[tname])
        sim = replayer.simulate(collect_timeline=True)
        plan = PrecisionPlan(assignments=assignments)
        return PlanOutcome(
            strategy=self.name,
            plan=plan,
            simulation=sim,
            report=_report(ctx, passive_allocation_report(plan, sim), sim),
        )


# ---------------------------------------------------------------------------
# Dpro prediction baseline
# ---------------------------------------------------------------------------


class DproPlanner:
    """Prediction-only baseline: no plan search, cast-blind replay of the
    all-FP32 configuration (what Table III isolates)."""

    name = "dpro"

    def plan(self, ctx: "PlanContext") -> PlanOutcome:
        replayer = ctx.replayer
        catalogs = {rank: m.catalog for rank, m in replayer.mappers.items()}
        dpro = DproReplayer(
            ctx.cluster,
            replayer.dags,
            catalogs,
            collective_model=replayer.collective_model,
        )
        sim = dpro.simulate()
        plan = PrecisionPlan(assignments={})
        return PlanOutcome(
            strategy=self.name,
            plan=plan,
            simulation=sim,
            report=_report(ctx, passive_allocation_report(plan, sim), sim),
        )


register_planner(AllocatorPlanner("qsync"))
register_planner(UniformPlanner())
register_planner(DproPlanner())
register_planner(AllocatorPlanner("hessian", indicator_override="hessian"))
register_planner(AllocatorPlanner("random", indicator_override="random"))
register_planner(CompressedAllocatorPlanner("qsync+qsgd"))
