"""`PlanSession` — the front door of the Fig. 3 pipeline.

A session owns the expensive artifacts of planning (operator cost
catalogs, cast-cost fits, synthesized statistics, template DAGs, keyed by
stable fingerprints in a :class:`ProfileStore`) and amortizes them across
what-if queries: different protocols, collective models, and planner
strategies on the same hardware re-profile nothing.

::

    session = PlanSession()
    request = PlanRequest(model="vgg16", model_kwargs={"batch_size": 32},
                          cluster="cluster_a_4+4")
    outcome = session.plan(request)                 # profiles once
    table = session.compare(request)                # all strategies, warm

``prepare`` exposes the intermediate :class:`PlanContext` (replayer,
backends, stats) for callers that drive the replayer directly — the
experiment harnesses and the ground-truth comparisons.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Mapping, Sequence, Union

from repro.backend.lp_backend import LPBackend
from repro.core.indicator import gamma_for_loss
from repro.core.replayer import Replayer
from repro.engine.perturbation import Perturbation
from repro.graph.dag import PrecisionDAG
from repro.hardware.cluster import Cluster
from repro.hardware.events import ClusterEvent, MembershipDelta, apply_events
from repro.profiling.stats import OperatorStats
from repro.session.outcome import PlanOutcome
from repro.session.planners import available_strategies, get_planner
from repro.session.profiles import ProfileStore, SessionStats, resolve_backends
from repro.session.request import PlanRequest


@dataclasses.dataclass
class PlanContext:
    """Everything a planner strategy needs, fully resolved.

    Built fresh per query (per-rank DAGs are mutable search state), but
    the expensive members — catalogs, cast models, stats — come from the
    session's :class:`ProfileStore` when the fingerprints match.
    """

    request: PlanRequest
    session: "PlanSession"
    cluster: Cluster
    template: PrecisionDAG
    replayer: Replayer
    backends: dict[int, LPBackend]
    stats: Mapping[str, OperatorStats]
    batch_size: int
    gamma: float


@dataclasses.dataclass
class ReplanOutcome:
    """Result of one incremental :meth:`PlanSession.replan` step.

    Carries the new plan, the context it was planned in (chain it into the
    next ``replan`` call as membership keeps changing), and the evidence of
    incrementality: how many profiling events the re-plan paid for
    (``0`` whenever every surviving device type was already profiled) and
    how many device-type DFG cache entries were adopted from the pre-churn
    replayer.
    """

    outcome: PlanOutcome
    context: "PlanContext"
    delta: MembershipDelta
    events: tuple[ClusterEvent, ...]
    new_profile_events: int
    adopted_dfg_types: int

    @property
    def plan(self):
        return self.outcome.plan

    @property
    def simulation(self):
        return self.outcome.simulation


class PlanSession:
    """Strategy-pluggable planning over a reusable profiling context.

    Parameters
    ----------
    profile_seed:
        Seed of the default per-rank :class:`LPBackend` measurement noise
        (``0`` matches the legacy ``build_replayer`` default — keep it to
        stay bit-identical with the historical entry points).
    profiles:
        The artifact store to plan against.  ``None`` builds a private
        in-memory :class:`ProfileStore`; the serving layer passes a
        :class:`repro.service.PersistentProfileStore` here so catalogs,
        cast fits, and synthesized stats survive the process.
    """

    def __init__(
        self, profile_seed: int = 0, profiles: ProfileStore | None = None
    ) -> None:
        self.profile_seed = profile_seed
        self.profiles = ProfileStore() if profiles is None else profiles
        #: The context of the most recent ``plan``/``replan`` call — the
        #: natural first argument of :meth:`replan` for callers that used
        #: the one-shot :meth:`plan` API.
        self.last_context: PlanContext | None = None

    @property
    def stats(self) -> SessionStats:
        """Reuse counters (``stats.profile_events`` must not grow on a warm
        plan call over known device types)."""
        return self.profiles.stats

    # ------------------------------------------------------------------
    def prepare(self, request: PlanRequest) -> PlanContext:
        """Resolve a request into a ready-to-plan context.

        Fresh per-rank DAGs and a fresh :class:`Replayer` every time (the
        allocator mutates them); per-device-type catalogs and cast models
        from the store whenever their fingerprints have been seen.
        """
        self.profiles.stats.prepare_calls += 1
        cluster = request.resolve_cluster()
        template = self.profiles.template_for(
            request.model_cache_key(), request.build_template
        )
        builder: Callable[[], PrecisionDAG] = template.copy
        backends = resolve_backends(
            cluster, request.backends, seed=self.profile_seed
        )

        dags = {w.rank: builder() for w in cluster.workers}
        by_type_catalog: dict[str, object] = {}
        by_type_cast: dict[str, object] = {}
        catalogs = {}
        cast_calcs = {}
        for w in cluster.workers:
            tname = w.device.name
            if tname not in by_type_catalog:
                backend = backends[w.rank]
                by_type_catalog[tname] = self.profiles.catalog_for(
                    dags[w.rank], w.device, backend, request.profile_repeats
                )
                by_type_cast[tname] = self.profiles.cast_calc_for(backend)
            catalogs[w.rank] = by_type_catalog[tname]
            cast_calcs[w.rank] = by_type_cast[tname]

        replayer = Replayer(
            cluster,
            dags,
            catalogs,
            cast_calcs,
            optimizer_slots=request.optimizer_slots,
            collective_model=request.collective_model,
            schedule_policy=request.schedule_policy,
            perturbation=request.perturbation,
            use_kernel=request.use_kernel,
        )

        if request.batch_size is not None:
            batch_size = request.batch_size
        else:
            batch_size = int(template.spec(template.root()).output_shape[0])
        if request.stats is not None:
            stats = request.stats
        else:
            stats = self.profiles.stats_for(template, request.seed)
        gamma = gamma_for_loss(request.loss, batch_size)

        return PlanContext(
            request=request,
            session=self,
            cluster=cluster,
            template=template,
            replayer=replayer,
            backends=backends,
            stats=stats,
            batch_size=batch_size,
            gamma=gamma,
        )

    # ------------------------------------------------------------------
    def plan(self, request: PlanRequest) -> PlanOutcome:
        """Run one request through its strategy; returns the common
        :class:`PlanOutcome` (plan + simulation + report)."""
        planner = get_planner(request.strategy)  # fail before any work
        check = getattr(planner, "check_request", None)
        if check is not None:
            check(request)
        ctx = self.prepare(request)
        self.profiles.stats.plan_calls += 1
        self.last_context = ctx
        return planner.plan(ctx)

    # ------------------------------------------------------------------
    def replan(
        self,
        ctx: Union[PlanContext, PlanRequest],
        events: Sequence[ClusterEvent],
        quorum: int = 1,
    ) -> ReplanOutcome:
        """Incrementally re-plan after cluster membership events.

        Folds ``events`` into the context's cluster
        (:func:`~repro.hardware.events.apply_events`), composes ``degrade``
        events into the request's :class:`Perturbation`, and re-runs the
        request's strategy on the surviving membership — against this
        session's *warm* :class:`ProfileStore`, so already-profiled device
        types cost zero new profiling events, and (when ``ctx`` is a
        :class:`PlanContext`) with the pre-churn replayer's device-type DFG
        caches adopted, so only the changed ranks' DFGs are re-derived.

        With zero events the returned outcome is bit-identical to the
        original ``plan()`` — the parity oracle pinned by
        ``tests/test_bench_churn.py``.

        Raises
        ------
        QuorumLostError
            When a ``leave`` drops membership below ``quorum``.
        ValueError
            On an inconsistent event batch, before any work.
        """
        if isinstance(ctx, PlanContext):
            request = ctx.request
            cluster = ctx.cluster
            old_replayer: Replayer | None = ctx.replayer
        elif isinstance(ctx, PlanRequest):
            request = ctx
            cluster = ctx.resolve_cluster()
            old_replayer = None
        else:
            raise ValueError(
                f"ctx must be a PlanContext or PlanRequest, got "
                f"{type(ctx).__name__}"
            )
        planner = get_planner(request.strategy)  # fail before any work
        events = tuple(events)
        new_cluster, delta = apply_events(cluster, events, quorum=quorum)

        changes: dict = {}
        if new_cluster is not cluster:
            changes["cluster"] = new_cluster
            if request.backends:
                # Explicit backends for departed ranks would fail the
                # stray-rank check; survivors keep theirs.
                surviving_ranks = {w.rank for w in new_cluster.workers}
                kept = {
                    r: b
                    for r, b in request.backends.items()
                    if r in surviving_ranks
                }
                changes["backends"] = kept or None
        if delta.degraded:
            base = request.perturbation or Perturbation()
            changes["perturbation"] = base.with_degradations(delta.degraded)
        new_request = (
            dataclasses.replace(request, **changes) if changes else request
        )

        check = getattr(planner, "check_request", None)
        if check is not None:
            check(new_request)
        profile_before = self.profiles.stats.profile_events
        new_ctx = self.prepare(new_request)
        adopted = 0
        if old_replayer is not None:
            adopted = new_ctx.replayer.adopt_shared_state(old_replayer)
        self.profiles.stats.plan_calls += 1
        self.profiles.stats.replan_calls += 1
        self.last_context = new_ctx
        outcome = planner.plan(new_ctx)
        return ReplanOutcome(
            outcome=outcome,
            context=new_ctx,
            delta=delta,
            events=events,
            new_profile_events=(
                self.profiles.stats.profile_events - profile_before
            ),
            adopted_dfg_types=adopted,
        )

    def compare(
        self,
        request: PlanRequest,
        strategies: Iterable[str] | None = None,
    ) -> dict[str, PlanOutcome]:
        """Run ``request`` under several strategies on this session's warm
        artifacts; returns ``{strategy: outcome}`` in deterministic order
        (the given order, or the registry's canonical order)."""
        names = (
            available_strategies() if strategies is None else tuple(strategies)
        )
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate strategies in {names!r}")
        for name in names:
            get_planner(name)  # validate all before running any
        return {
            name: self.plan(dataclasses.replace(request, strategy=name))
            for name in names
        }
