"""Declarative plan requests — the input shape of the :class:`PlanSession` API.

A :class:`PlanRequest` names everything one what-if query needs: the model
(a graph-catalog name, a mini-model name, a zero-arg builder, or a built
:class:`PrecisionDAG`), the cluster (a :data:`CLUSTER_PRESETS` name or a
:class:`Cluster`), the planner strategy, and the knobs the legacy
``qsync_plan`` took positionally (loss, batch size, collective model,
indicator, allocator config, seed, ``profile_repeats``, explicit backends).

Requests are plain frozen dataclasses: building one performs no profiling
and touches no hardware model.  All the expensive work happens when a
:class:`~repro.session.session.PlanSession` resolves the request — and the
session reuses every profiling artifact it has already paid for.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Mapping, Union

from repro.backend.lp_backend import LPBackend
from repro.core.allocator import AllocatorConfig
from repro.core.indicator import gamma_for_loss
from repro.engine.perturbation import Perturbation
from repro.engine.policy import SCHEDULE_POLICIES, SchedulePolicy
from repro.graph.dag import PrecisionDAG
from repro.hardware.cluster import CLUSTER_PRESETS, Cluster, get_cluster_preset
from repro.parallel.comm_model import COLLECTIVE_MODELS, CollectiveModel
from repro.profiling.stats import OperatorStats
from repro.quant.qsgd import CompressionConfig

#: Indicator names the allocator-backed strategies understand.  ``None``
#: (the default) means the strategy's own choice — QSync's variance
#: indicator.  A callable is the legacy ``indicator_factory`` escape hatch:
#: ``(dag, stats, gamma) -> IndicatorProtocol``.
INDICATOR_NAMES = ("variance", "hessian", "random")


def available_model_names() -> tuple[str, ...]:
    """Model names a string-valued :attr:`PlanRequest.model` may use:
    the full-size graph catalog plus the executable mini-model mirrors."""
    from repro.models import MODEL_GRAPHS
    from repro.models.trainable import MINI_MODELS

    return tuple(sorted(set(MODEL_GRAPHS) | set(MINI_MODELS)))


@dataclasses.dataclass(frozen=True)
class PlanRequest:
    """One declarative planning query.

    Parameters
    ----------
    model:
        Graph-catalog name (``"vgg16"``), mini-model name (``"mini_bert"``),
        zero-arg callable returning a fresh :class:`PrecisionDAG`, or a
        built DAG (copied per rank; never mutated).
    model_kwargs:
        Builder kwargs when ``model`` is a name (``batch_size``,
        ``width_scale``, ...).  Ignored for callables and DAG instances.
    cluster:
        :data:`CLUSTER_PRESETS` name or a :class:`Cluster` instance.
    strategy:
        Planner registry name (``"qsync"``, ``"uniform"``, ``"dpro"``,
        ``"hessian"``, ``"random"``).  Validated at plan time so the error
        can list what is actually registered.
    loss:
        ``"ce"`` or ``"mse"`` — sets the gamma of Proposition 3.
    batch_size:
        Local batch for the gamma computation; defaults to the graph
        input's leading dimension.
    optimizer_slots:
        Memory-model optimizer state multiplier.
    collective_model:
        All-reduce cost model name/instance; ``None`` keeps the flat-ring
        default (bit-identical to the pre-topology replayer).
    schedule_policy:
        Execution schedule name/instance for the discrete-event engine;
        ``None`` keeps the DDP-overlap default (bit-identical to the
        analytic Eq. (6) path).
    perturbation:
        Optional :class:`repro.engine.Perturbation` — deterministic,
        seed-derived straggler/bandwidth-drift injection applied to every
        simulation of this request.
    indicator:
        Indicator override for the allocator strategies: a name from
        :data:`INDICATOR_NAMES`, a legacy ``(dag, stats, gamma)`` factory,
        or ``None`` for the strategy default.
    config:
        Allocator tunables (also carries §VIII ``amp_mode``).
    seed:
        Seeds the synthesized indicator statistics and the random-indicator
        draws.  Profiling noise is seeded by the backends, not by this.
    profile_repeats:
        Measurements averaged per (op, precision) catalog entry — the
        experiments use 2/3; the legacy default is 3.
    backends:
        Optional per-rank :class:`LPBackend` overrides.  May be *partial*:
        missing ranks get default backends; a backend modelling a different
        device than its rank's worker is a :class:`ValueError`.
    stats:
        Indicator statistics; synthesized from the graph when omitted.
    use_kernel:
        Compiled-array fast path (:mod:`repro.kernel`) for Eq. (6)
        evaluations.  ``None`` (default) enables it whenever numpy is
        importable; ``False`` forces the analytic object path (bit-identical
        results either way — the kernel is an equality-preserving cache).
    compression:
        Gradient-compression knobs (:class:`repro.quant.qsgd.
        CompressionConfig`) consumed by the compression-aware strategies
        (``qsync+qsgd``); ``None`` means their defaults.  Other strategies
        ignore it (gradients sync uncompressed there).
    """

    model: Union[str, Callable[[], PrecisionDAG], PrecisionDAG]
    model_kwargs: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    cluster: Union[str, Cluster] = "cluster_a_4+4"
    strategy: str = "qsync"
    loss: str = "ce"
    batch_size: int | None = None
    optimizer_slots: int = 1
    collective_model: Union[CollectiveModel, str, None] = None
    schedule_policy: Union[SchedulePolicy, str, None] = None
    perturbation: Perturbation | None = None
    indicator: Union[str, Callable, None] = None
    config: AllocatorConfig | None = None
    seed: int = 0
    profile_repeats: int = 3
    backends: Mapping[int, LPBackend] | None = None
    stats: Mapping[str, OperatorStats] | None = None
    use_kernel: bool | None = None
    compression: CompressionConfig | None = None

    def __post_init__(self) -> None:
        # Every cheap knob is validated here, at construction — before a
        # session pays for profiling — so a typo costs nothing.
        if self.profile_repeats < 1:
            raise ValueError(
                f"profile_repeats must be >= 1, got {self.profile_repeats}"
            )
        gamma_for_loss(self.loss, 1)  # raises ValueError on unknown losses
        if (
            isinstance(self.collective_model, str)
            and self.collective_model not in COLLECTIVE_MODELS
        ):
            raise ValueError(
                f"unknown collective model {self.collective_model!r}; "
                f"available: {sorted(COLLECTIVE_MODELS)}"
            )
        if isinstance(self.schedule_policy, str):
            if self.schedule_policy not in SCHEDULE_POLICIES:
                raise ValueError(
                    f"unknown schedule policy {self.schedule_policy!r}; "
                    f"available: {sorted(SCHEDULE_POLICIES)}"
                )
        elif not isinstance(self.schedule_policy, (SchedulePolicy, type(None))):
            raise ValueError(
                f"schedule_policy must be a name, a SchedulePolicy, or None, "
                f"got {type(self.schedule_policy).__name__}"
            )
        if self.perturbation is not None and not isinstance(
            self.perturbation, Perturbation
        ):
            raise ValueError(
                f"perturbation must be a repro.engine.Perturbation or None, "
                f"got {type(self.perturbation).__name__}"
            )
        if isinstance(self.indicator, str) and self.indicator not in INDICATOR_NAMES:
            raise ValueError(
                f"unknown indicator {self.indicator!r}; available: "
                f"{', '.join(INDICATOR_NAMES)} (or a (dag, stats, gamma) factory)"
            )
        if self.compression is not None and not isinstance(
            self.compression, CompressionConfig
        ):
            raise ValueError(
                f"compression must be a repro.quant.qsgd.CompressionConfig "
                f"or None, got {type(self.compression).__name__}"
            )
        if isinstance(self.cluster, str) and self.cluster not in CLUSTER_PRESETS:
            raise ValueError(
                f"unknown cluster preset {self.cluster!r}; available: "
                f"{sorted(CLUSTER_PRESETS)}"
            )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_cluster(self) -> Cluster:
        if isinstance(self.cluster, Cluster):
            return self.cluster
        return get_cluster_preset(self.cluster)

    def model_cache_key(self) -> tuple | None:
        """Hashable identity of the model *recipe*, or ``None`` when the
        model is a callable/DAG (opaque — the session rebuilds those)."""
        if not isinstance(self.model, str):
            return None
        return (self.model, tuple(sorted(self.model_kwargs.items())))

    def build_template(self) -> PrecisionDAG:
        """Build (or pass through) the template DAG for this request."""
        if isinstance(self.model, PrecisionDAG):
            return self.model
        if callable(self.model):
            return self.model()
        from repro.models import MODEL_GRAPHS, mini_model_graph
        from repro.models.trainable import MINI_MODELS

        if self.model in MODEL_GRAPHS:
            return MODEL_GRAPHS[self.model](**dict(self.model_kwargs))
        if self.model in MINI_MODELS:
            return mini_model_graph(self.model, **dict(self.model_kwargs))
        raise ValueError(
            f"unknown model {self.model!r}; available: "
            f"{list(available_model_names())}"
        )

    def describe(self) -> str:
        model = self.model if isinstance(self.model, str) else (
            "<dag>" if isinstance(self.model, PrecisionDAG) else "<builder>"
        )
        cluster = (
            self.cluster if isinstance(self.cluster, str) else self.cluster.name
        )
        return f"PlanRequest({self.strategy} | {model} on {cluster})"
