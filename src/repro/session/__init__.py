"""Session-oriented planning API (the redesigned front door).

The paper's Fig. 3 pipeline is one workflow; this package exposes it as a
declarative :class:`PlanRequest` resolved by a :class:`PlanSession` that
owns — and reuses across what-if queries — the expensive profiling
artifacts (operator catalogs, cast-cost fits, synthesized statistics).
Baselines are first-class :class:`Planner` strategies behind a registry,
all returning the common :class:`PlanOutcome`, so
``session.compare(request)`` produces a full baseline table in one call.

The legacy entry points (``repro.core.qsync.qsync_plan`` /
``build_replayer``) remain as thin compatibility wrappers over an
ephemeral session.
"""

from repro.engine import Perturbation
from repro.session.outcome import PlanOutcome, passive_allocation_report
from repro.session.planners import (
    Planner,
    available_strategies,
    get_planner,
    register_planner,
)
from repro.session.profiles import (
    ProfileStore,
    SessionStats,
    resolve_backends,
)
from repro.session.request import PlanRequest, available_model_names
from repro.session.session import PlanContext, PlanSession, ReplanOutcome

__all__ = [
    "Perturbation",
    "PlanContext",
    "PlanOutcome",
    "PlanRequest",
    "PlanSession",
    "Planner",
    "ReplanOutcome",
    "ProfileStore",
    "SessionStats",
    "available_model_names",
    "available_strategies",
    "get_planner",
    "passive_allocation_report",
    "register_planner",
    "resolve_backends",
]
