"""The session's profiling-artifact store.

One :class:`ProfileStore` owns the expensive, reusable artifacts of the
Fig. 3 pipeline — per-device-type operator cost catalogs, fitted
casting-cost models, synthesized indicator statistics, and built template
DAGs — keyed by :mod:`repro.common.stable_hash` fingerprints of everything
the artifact actually depends on.  Repeated ``PlanSession.plan()`` calls on
the same device types therefore re-profile nothing: the catalog key digests
the DAG's profiling-relevant structure (names, kinds, shapes, FLOPs,
kernel precision sets, edges), the device's full analytical spec, the
backend's measurement configuration, and the repeat count — so a hit is
bit-identical to a fresh profile (backend jitter is keyed per
(op, precision, rep), never drawn from mutable RNG state).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping

from repro.backend.lp_backend import LPBackend
from repro.common.stable_hash import stable_digest
from repro.graph.dag import PrecisionDAG
from repro.hardware.cluster import Cluster
from repro.hardware.device import DeviceSpec
from repro.profiling.casting import CastCostCalculator
from repro.profiling.profiler import OperatorCostCatalog, profile_operator_costs
from repro.profiling.stats import OperatorStats, synthesize_stats


@dataclasses.dataclass
class SessionStats:
    """Counters proving (or disproving) cross-query artifact reuse."""

    plan_calls: int = 0
    prepare_calls: int = 0
    #: ``PlanSession.replan`` invocations (each also counts as a plan call).
    replan_calls: int = 0
    #: From-scratch ``profile_operator_costs`` runs / cache hits.
    catalog_profiles: int = 0
    catalog_hits: int = 0
    #: From-scratch ``CastCostCalculator`` fits / cache hits.
    cast_fits: int = 0
    cast_hits: int = 0
    #: ``synthesize_stats`` runs / cache hits.
    stats_syntheses: int = 0
    stats_hits: int = 0
    #: Template DAG builds / cache hits (string-named models only).
    template_builds: int = 0
    template_hits: int = 0
    #: Requests served by joining another caller's identical in-flight
    #: computation (or a ``plan_many`` duplicate) instead of planning —
    #: incremented only under the :class:`~repro.service.PlanService` lock.
    coalesced_requests: int = 0
    #: Persistent-store artifact loads that served (``disk_hits``) or failed
    #: (``disk_misses`` — absent, unreadable, stale-format, or wrong-key
    #: files, all of which degrade to recomputation, never errors).
    disk_hits: int = 0
    disk_misses: int = 0

    @property
    def profile_events(self) -> int:
        """Catalog profilings + cast-model fits — the expensive work a warm
        session must not repeat (the acceptance counter)."""
        return self.catalog_profiles + self.cast_fits


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def device_fingerprint(device: DeviceSpec) -> str:
    """Digest of every :class:`DeviceSpec` field a measurement can read —
    two devices with equal fingerprints produce identical catalogs."""
    return stable_digest(
        (
            device.name,
            device.arch,
            {p.value: float(f) for p, f in device.peak_flops.items()},
            int(device.memory_bytes),
            float(device.mem_bandwidth),
            float(device.kernel_launch_overhead),
            bool(device.is_training_gpu),
            device.sharing,
            float(device.memory_fraction),
            float(device.compute_fraction),
        )
    )


def backend_fingerprint(backend: LPBackend) -> str:
    """Digest of the backend's measurement configuration (its jitter is
    keyed per sample from ``seed``, so equal configs measure equal)."""
    return stable_digest(
        (
            device_fingerprint(backend.device),
            int(backend.seed),
            float(backend.measurement_noise),
            bool(backend.dequant_fusion),
            bool(backend.minmax.optimized),
        )
    )


def profiling_fingerprint(dag: PrecisionDAG) -> str:
    """Digest of everything catalog profiling reads off a DAG: per-op name,
    kind, shapes, FLOPs, the kernel precision set, and the predecessor
    lists (which set each op's input element count).

    Deliberately finer than :meth:`PrecisionDAG.structure_fingerprint`
    (which omits FLOPs and kernel sets): this key must guarantee that a
    cache hit serves a catalog bit-identical to a fresh profile.
    """
    return stable_digest(
        tuple(
            (
                name,
                dag.spec(name).kind,
                dag.spec(name).output_shape,
                dag.spec(name).weight_shape,
                float(dag.spec(name).flops),
                tuple(p.value for p in dag.spec(name).supported_precisions()),
                tuple(dag.predecessors(name)),
            )
            for name in dag.topo_order()
        )
    )


# ---------------------------------------------------------------------------
# backend resolution (shared with the legacy ``build_replayer`` wrapper)
# ---------------------------------------------------------------------------


def resolve_backends(
    cluster: Cluster,
    backends: Mapping[int, LPBackend] | None = None,
    seed: int = 0,
) -> dict[int, LPBackend]:
    """Per-rank backends for a cluster, accepting *partial* overrides.

    Missing ranks get a default ``LPBackend(worker.device, seed=seed)``;
    a provided backend whose device does not match its rank's worker — or
    a rank the cluster does not have — raises :class:`ValueError` instead
    of surfacing later as a baffling KeyError or wrong-device catalog.
    """
    provided = dict(backends) if backends else {}
    known_ranks = {w.rank for w in cluster.workers}
    stray = sorted(set(provided) - known_ranks)
    if stray:
        raise ValueError(
            f"backends provided for ranks {stray} not present in cluster "
            f"{cluster.name!r} (ranks: {sorted(known_ranks)})"
        )
    resolved: dict[int, LPBackend] = {}
    for w in cluster.workers:
        backend = provided.get(w.rank)
        if backend is None:
            backend = LPBackend(w.device, seed=seed)
        elif backend.device.name != w.device.name:
            raise ValueError(
                f"backend for rank {w.rank} models device "
                f"{backend.device.name!r} but the cluster places "
                f"{w.device.name!r} there"
            )
        resolved[w.rank] = backend
    return resolved


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


class ProfileStore:
    """Fingerprint-keyed cache of profiling artifacts (one per session).

    Lookup discipline (the extraction points a persistent subclass hooks):
    each ``*_for`` method consults the in-memory map, then offers the key to
    a ``_fetch_*`` hook (a second cache tier — this base class has none and
    always misses), and only then pays for the computation, handing the
    fresh artifact to the matching ``_persist_*`` hook.  Keys are built from
    :mod:`repro.common.stable_hash` fingerprints only, so a subclass may use
    them verbatim as cross-process content addresses.
    """

    def __init__(self) -> None:
        self.stats = SessionStats()
        self._catalogs: dict[tuple, OperatorCostCatalog] = {}
        self._cast_calcs: dict[tuple, CastCostCalculator] = {}
        self._op_stats: dict[tuple, dict[str, OperatorStats]] = {}
        self._templates: dict[tuple, PrecisionDAG] = {}

    # -- extraction points (overridden by the persistent store) --------
    def _fetch_catalog(self, key: tuple) -> OperatorCostCatalog | None:
        """Second-tier catalog lookup; ``None`` = miss (base: always)."""
        return None

    def _persist_catalog(self, key: tuple, catalog: OperatorCostCatalog) -> None:
        """Offer a freshly profiled catalog to the second tier (base: drop)."""

    def _fetch_cast(
        self, key: tuple, backend: LPBackend
    ) -> CastCostCalculator | None:
        """Second-tier cast-fit lookup (``backend`` rebinds the fitted
        models to a live measurement backend); ``None`` = miss."""
        return None

    def _persist_cast(self, key: tuple, calc: CastCostCalculator) -> None:
        """Offer a freshly fitted cast calculator to the second tier."""

    def _fetch_stats(self, key: tuple) -> dict[str, OperatorStats] | None:
        """Second-tier synthesized-stats lookup; ``None`` = miss."""
        return None

    def _persist_stats(self, key: tuple, stats: dict[str, OperatorStats]) -> None:
        """Offer freshly synthesized stats to the second tier."""

    # -- catalogs ------------------------------------------------------
    def catalog_for(
        self,
        dag: PrecisionDAG,
        device: DeviceSpec,
        backend: LPBackend,
        repeats: int,
    ) -> OperatorCostCatalog:
        key = (
            "catalog",
            profiling_fingerprint(dag),
            backend_fingerprint(backend),
            int(repeats),
        )
        hit = self._catalogs.get(key)
        if hit is not None:
            self.stats.catalog_hits += 1
            return hit
        fetched = self._fetch_catalog(key)
        if fetched is not None:
            self.stats.catalog_hits += 1
            self._catalogs[key] = fetched
            return fetched
        self.stats.catalog_profiles += 1
        catalog = profile_operator_costs(dag, backend, repeats=repeats)
        self._catalogs[key] = catalog
        self._persist_catalog(key, catalog)
        return catalog

    # -- cast-cost fits ------------------------------------------------
    def cast_calc_for(self, backend: LPBackend) -> CastCostCalculator:
        key = ("cast", backend_fingerprint(backend))
        hit = self._cast_calcs.get(key)
        if hit is not None:
            self.stats.cast_hits += 1
            return hit
        fetched = self._fetch_cast(key, backend)
        if fetched is not None:
            self.stats.cast_hits += 1
            self._cast_calcs[key] = fetched
            return fetched
        self.stats.cast_fits += 1
        calc = CastCostCalculator(backend)
        self._cast_calcs[key] = calc
        self._persist_cast(key, calc)
        return calc

    # -- synthesized indicator statistics ------------------------------
    def stats_for(
        self, template: PrecisionDAG, seed: int
    ) -> dict[str, OperatorStats]:
        key = ("stats", template.structure_fingerprint(), int(seed))
        hit = self._op_stats.get(key)
        if hit is not None:
            self.stats.stats_hits += 1
            return hit
        fetched = self._fetch_stats(key)
        if fetched is not None:
            self.stats.stats_hits += 1
            self._op_stats[key] = fetched
            return fetched
        self.stats.stats_syntheses += 1
        stats = synthesize_stats(template, seed=seed)
        self._op_stats[key] = stats
        self._persist_stats(key, stats)
        return stats

    # -- template DAGs -------------------------------------------------
    def template_for(
        self, key: tuple | None, build: Callable[[], PrecisionDAG]
    ) -> PrecisionDAG:
        """Cached template when ``key`` identifies the recipe (string-named
        models); opaque builders/DAG instances bypass the cache."""
        if key is None:
            return build()
        full_key = ("template", key)
        hit = self._templates.get(full_key)
        if hit is not None:
            self.stats.template_hits += 1
            return hit
        self.stats.template_builds += 1
        template = build()
        self._templates[full_key] = template
        return template
