"""Quantization substrate.

Implements the arithmetic QSync's theory is built on:

* :mod:`repro.quant.stochastic` — unbiased stochastic rounding (SR), the
  Unbiased Quantizer of Sec. IV-A.
* :mod:`repro.quant.fixed_point` — INT-b quantization with scale/zero-point,
  layer-wise and channel-wise granularity (Sec. IV-B).
* :mod:`repro.quant.floating_point` — FP-(e,m) simulation by exponent
  clamping + mantissa truncation with SR (Proposition 2 / Appendix A-2).
* :mod:`repro.quant.variance` — the closed-form quantization variances of
  Proposition 2 and effective-bit estimation.
* :mod:`repro.quant.qsgd` — QSGD gradient compression: the unbiased
  bucket quantizer plus the planning-side wire/codec/variance models of
  the joint precision + compression axis.
"""

from repro.quant.qsgd import (
    COMPRESSION_LEVELS,
    CompressionConfig,
    codec_seconds,
    compressed_nbytes,
    level_bits,
    qsgd_dequantize,
    qsgd_quantize,
    qsgd_variance_factor,
)

try:  # tensor-codec modules need numpy (the optional "kernel" extra);
    # the planning-side qsgd API above must stay importable without it.
    from repro.quant.fixed_point import (
        FixedPointQuantizer,
        Granularity,
        QuantizedTensor,
    )
    from repro.quant.floating_point import FloatingPointQuantizer, simulate_cast
    from repro.quant.stochastic import floor_round, nearest_round, stochastic_round
    from repro.quant.variance import (
        effective_exponent,
        fixed_point_variance,
        floating_point_variance,
        quantization_mse,
    )
except ImportError:  # pragma: no cover - exercised via the fallback tests
    pass

__all__ = [
    "stochastic_round",
    "floor_round",
    "nearest_round",
    "FixedPointQuantizer",
    "QuantizedTensor",
    "Granularity",
    "FloatingPointQuantizer",
    "simulate_cast",
    "fixed_point_variance",
    "floating_point_variance",
    "effective_exponent",
    "quantization_mse",
    "COMPRESSION_LEVELS",
    "CompressionConfig",
    "codec_seconds",
    "compressed_nbytes",
    "level_bits",
    "qsgd_quantize",
    "qsgd_dequantize",
    "qsgd_variance_factor",
]
