"""Closed-form quantization variances (Proposition 2) and effective bits.

These formulas are what the Indicator (Sec. IV-A) consumes:

* fixed-point:    ``Var[x_hat] = q_x**2 * D_x / 6``
* floating-point: ``Var[x_hat] = 2**(2e) * eps**2 * D_x / 6``,  ``eps = 2**-k``

where ``D_x`` is the number of elements.  The ``/6`` comes from stochastic
rounding residuals ``sigma ~ Uniform(0, 1)``: ``E[sigma * (1 - sigma)] = 1/6``
(Appendix A-2).  Property tests check the Monte-Carlo variance of the actual
quantizers against these expressions.
"""

from __future__ import annotations

import numpy as np

from repro.common.dtypes import Precision


def fixed_point_variance(scale: np.ndarray | float, dims: int) -> float:
    """Total quantization variance of an SR fixed-point cast.

    Parameters
    ----------
    scale:
        Quantizer scale ``q_x`` — scalar for layer-wise, array for
        channel-wise (summed per-channel contributions).
    dims:
        ``D_x``, the tensor's element count (per scale entry when ``scale``
        is an array).
    """
    scale = np.asarray(scale, dtype=np.float64)
    if scale.size == 0:
        # No quantizer channels: nothing is cast, nothing adds variance.
        return 0.0
    if scale.size == 1:
        return float(scale.reshape(-1)[0] ** 2 * dims / 6.0)
    # Channel-wise: dims elements spread evenly across channels.
    per_channel = dims / scale.size
    return float(np.sum(scale.reshape(-1) ** 2) * per_channel / 6.0)


def floating_point_variance(
    effective_exp: float, mantissa_bits: int, dims: int
) -> float:
    """Total variance of an SR mantissa-truncation cast (Proposition 2)."""
    eps = 2.0 ** (-mantissa_bits)
    return float(2.0 ** (2.0 * effective_exp) * eps**2 * dims / 6.0)


def effective_exponent(x: np.ndarray) -> float:
    """Effective exponent ``e`` of a tensor, from its magnitude.

    The paper derives effective bits "with the data's magnitude (maximum and
    minimum)"; we use ``floor(log2(max |x|))``, the exponent of the largest
    normal-form element, which upper-bounds every element's exponent and thus
    the per-element variance term ``2**(2e)``.
    Zero tensors get the most negative finite exponent so their variance
    contribution is ~0 rather than NaN.
    """
    mag = float(np.max(np.abs(x))) if np.asarray(x).size else 0.0
    if mag == 0.0 or not np.isfinite(mag):
        return -126.0
    return float(np.floor(np.log2(mag)))


def quantization_mse(original: np.ndarray, quantized: np.ndarray) -> float:
    """Mean squared error between a tensor and its quantized image.

    Used by the HAWQ-style Hessian baseline ("... times the introduced error
    of the quantization", Sec. VII-A1).
    """
    original = np.asarray(original, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    if original.shape != quantized.shape:
        raise ValueError(
            f"shape mismatch: original {original.shape} vs quantized "
            f"{quantized.shape}"
        )
    if original.size == 0:
        # Empty tensors quantize losslessly; np.mean would warn and NaN.
        return 0.0
    diff = original - quantized
    return float(np.mean(diff**2))


def theoretical_variance_for(
    x: np.ndarray, precision: Precision, scale: np.ndarray | float | None = None
) -> float:
    """Dispatch Proposition 2 by precision for an actual tensor.

    Convenience used by the Indicator: FP32 contributes zero variance, FP16
    uses the tensor's effective exponent, INT8 needs the quantizer ``scale``.
    """
    x = np.asarray(x)
    if precision is Precision.FP32:
        return 0.0
    if precision is Precision.FP16:
        return floating_point_variance(
            effective_exponent(x), precision.stochastic_mantissa_bits, x.size
        )
    if precision is Precision.INT8:
        if scale is None:
            raise ValueError("fixed-point variance requires the quantizer scale")
        return fixed_point_variance(scale, x.size)
    raise ValueError(f"unhandled precision {precision}")
