"""Rounding primitives.

QSync quantizes with **stochastic rounding** (SR): a value ``x`` rounds up
with probability equal to its fractional part, which makes the quantizer
unbiased — ``E[SR(x)] = x`` — the property Proposition 1 relies on to prove
unbiased gradients.  The paper's §VIII also observes that plain flooring can
work in practice, so :func:`floor_round` is provided for the ablation bench.
"""

from __future__ import annotations

import numpy as np


def stochastic_round(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Round each element of ``x`` to an adjacent integer, unbiasedly.

    ``SR(x) = floor(x) + Bernoulli(x - floor(x))``.  Vectorized: one uniform
    draw per element, no Python loops (hot path — called on every quantized
    forward/backward).

    Parameters
    ----------
    x:
        Array of values scaled into "integer grid" units.
    rng:
        Source of randomness; callers must pass their device-local stream.

    Returns
    -------
    Array of the same shape with integer-valued floats.
    """
    floor = np.floor(x)
    residual = x - floor
    return floor + (rng.random(x.shape) < residual)


def floor_round(x: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
    """Deterministic flooring; biased, for the §VIII rounding ablation."""
    return np.floor(x)


def nearest_round(x: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
    """Round-to-nearest-even; biased, the classic deterministic scheme."""
    return np.rint(x)


#: Registry used by quantizers so the rounding scheme is a string-selectable
#: configuration (exercised by the rounding ablation bench).
ROUNDING_MODES = {
    "stochastic": stochastic_round,
    "floor": floor_round,
    "nearest": nearest_round,
}
