"""Fixed-point (integer) quantization.

Implements the scheme of Sec. IV: for a scalar ``x``,

.. math::

    \\bar x = (x - z_x) / q_x, \\qquad
    \\hat x = \\lceil \\bar x \\rfloor \\times q_x + z_x

with zero-point ``z_x``, scale ``q_x`` and stochastic rounding
``\\lceil\\cdot\\rfloor``.  Two granularities are supported (Sec. IV-B):

* **layer-wise** — one (scale, zero-point) pair per tensor;
* **channel-wise** — one pair per output channel (axis 0), the scheme used
  for weights in the paper's kernel discussion.

The dequantization pairing rules of Sec. IV-B (layer-wise input ×
channel-wise weight ⇒ channel-wise dequantizer, …) are encoded in
:func:`dequant_granularity`.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro.quant.stochastic import ROUNDING_MODES


class Granularity(enum.Enum):
    """Scale/zero-point sharing granularity."""

    LAYER = "layer"
    CHANNEL = "channel"


def dequant_granularity(a: Granularity, b: Granularity) -> Granularity:
    """Granularity of the dequantizer combining two quantized operands.

    Per Sec. IV-B: if either operand is channel-wise the product's scale
    varies per channel, so a channel-wise dequantizer is required; only a
    layer-wise × layer-wise pairing admits the cheaper layer-wise dequantizer.
    """
    if a is Granularity.CHANNEL or b is Granularity.CHANNEL:
        return Granularity.CHANNEL
    return Granularity.LAYER


@dataclasses.dataclass
class QuantizedTensor:
    """An integer-grid tensor together with its affine mapping back to reals.

    ``values`` are stored as float64 holding exact integers in
    ``[0, 2**bits - 1]`` (numpy integer dtypes would force copies at every
    matmul; keeping floats avoids that while remaining exact for b <= 24).
    """

    values: np.ndarray
    scale: np.ndarray  # scalar array (layer) or per-channel column (channel)
    zero_point: np.ndarray
    bits: int
    granularity: Granularity

    def dequantize(self) -> np.ndarray:
        """Map back to real values: ``q * values + z``."""
        return self.values * self.scale + self.zero_point

    @property
    def nbytes(self) -> int:
        """Storage cost at the integer bit width."""
        return int(self.values.size * self.bits // 8)


class FixedPointQuantizer:
    """Affine fixed-point quantizer with selectable rounding and granularity.

    Parameters
    ----------
    bits:
        Integer bit width (8 for the paper's INT8 kernels; the theory and
        tests also exercise 4/6/16).
    granularity:
        :class:`Granularity` of the scale/zero-point.
    rounding:
        ``"stochastic"`` (default; unbiased — Proposition 1), ``"floor"`` or
        ``"nearest"`` for the §VIII ablation.
    """

    def __init__(
        self,
        bits: int = 8,
        granularity: Granularity = Granularity.LAYER,
        rounding: str = "stochastic",
    ) -> None:
        if bits < 2 or bits > 24:
            raise ValueError(f"unsupported fixed-point bit width {bits}")
        if rounding not in ROUNDING_MODES:
            raise ValueError(f"unknown rounding mode {rounding!r}")
        self.bits = bits
        self.granularity = granularity
        self.rounding = rounding
        self._round = ROUNDING_MODES[rounding]

    # ------------------------------------------------------------------
    def _minmax(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-granularity minimum/maximum (the MinMax kernel's job)."""
        if self.granularity is Granularity.LAYER:
            return np.min(x, keepdims=True), np.max(x, keepdims=True)
        # Channel-wise: axis 0 is the output-channel axis; reduce the rest.
        reduce_axes = tuple(range(1, x.ndim))
        lo = np.min(x, axis=reduce_axes, keepdims=True)
        hi = np.max(x, axis=reduce_axes, keepdims=True)
        return lo, hi

    def compute_qparams(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Scale ``q_x`` and zero-point ``z_x`` from the data range.

        ``q = (max - min) / (2**b - 1)``; degenerate (constant) slices get
        ``q = 1`` so quantization is exact rather than dividing by zero.
        """
        lo, hi = self._minmax(x)
        levels = float(2**self.bits - 1)
        scale = (hi - lo) / levels
        scale = np.where(scale <= 0.0, 1.0, scale)
        return scale, lo

    def quantize(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> QuantizedTensor:
        """Quantize ``x`` onto the integer grid.

        The returned values are clipped to ``[0, 2**b - 1]`` — only relevant
        for stochastic rounding at the extreme grid points.
        """
        x = np.asarray(x, dtype=np.float64)
        scale, zero = self.compute_qparams(x)
        scaled = (x - zero) / scale
        q = self._round(scaled, rng)
        np.clip(q, 0.0, float(2**self.bits - 1), out=q)
        return QuantizedTensor(
            values=q,
            scale=scale,
            zero_point=zero,
            bits=self.bits,
            granularity=self.granularity,
        )

    def fake_quantize(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Quantize-dequantize round trip ``x -> x_hat``.

        This is how the training engine injects INT-b noise into a
        floating-point compute path (the paper's kernels dequantize INT32
        accumulators back to FP — numerically the same composition).
        """
        return self.quantize(x, rng).dequantize()
