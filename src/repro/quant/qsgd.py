"""QSGD gradient compression — quantizer, wire/codec costs, variance model.

QSync plans *weight/activation* precision but historically synchronized
gradients at full FP32, so on comm-bound multi-node presets the all-reduce
term dominates even under the hierarchical collective.  QSGD (Alistarh et
al.) quantizes each gradient bucket to ``s = 2**bits - 1`` stochastic
levels scaled by the bucket's magnitude: the quantizer stays **unbiased**
(it is :func:`repro.quant.stochastic.stochastic_round` on rescaled
coordinates, ``E[Q(g)] = g``), at the price of a bounded variance penalty —
exactly the trade the Indicator already arbitrates for activations and
weights.

This module carries the three planning-side ingredients:

* **Wire size** — :func:`compressed_nbytes`: how many bytes a bucket
  occupies on the link at a given bit width (identity at >= 32 bits, the
  level-0 parity contract).
* **Codec cost** — :func:`codec_seconds`: one quantize-or-dequantize pass
  over the uncompressed payload at :data:`QSGD_CODEC_BANDWIDTH` (HBM-bound
  elementwise kernels; the collective models multiply by their hop count).
* **Variance** — :func:`qsgd_variance_factor`: the Proposition-2-style
  per-bucket variance multiplier consumed by
  :meth:`repro.core.indicator.VarianceIndicator.gradient_sync_variance`.

Everything the planner touches is pure Python — numpy is only needed by
the actual :func:`qsgd_quantize`/:func:`qsgd_dequantize` tensor codec, and
its absence degrades exactly like :mod:`repro.kernel` (``HAVE_NUMPY``
discipline): planning still works, the codec raises cleanly.  All codec
randomness is derived through :func:`repro.common.rng.derive_seed`.
"""

from __future__ import annotations

import dataclasses

try:  # numpy is the optional "kernel" extra; planning never needs it
    import numpy as np

    from repro.quant.stochastic import stochastic_round
except ImportError:  # pragma: no cover - exercised via the fallback tests
    np = None  # type: ignore[assignment]
    stochastic_round = None  # type: ignore[assignment]

from repro.common.rng import derive_seed

HAVE_NUMPY = np is not None

#: Compression ladder (append-only vocabulary, like precision ladders):
#: level 0 is *uncompressed* — bit-identical to the pre-compression paths —
#: and each deeper level halves the mantissa budget of the sync'd gradients.
COMPRESSION_LEVELS: tuple[int, ...] = (0, 1, 2, 3)

#: Level -> gradient bit width on the wire.  Level 0 maps to 32 (FP32
#: passthrough); deeper levels are the classic QSGD sweet spots.
LEVEL_BITS: dict[int, int] = {0: 32, 1: 8, 2: 4, 3: 2}

#: Effective bandwidth of one quantize/dequantize pass (bytes/second).
#: QSGD's codec is an elementwise scale + stochastic-round — HBM-bound, not
#: FLOP-bound — so it runs near memory bandwidth on datacenter GPUs.
QSGD_CODEC_BANDWIDTH: float = 400e9

#: Per-bucket wire header: the FP32 scale (bucket magnitude) + element count.
_HEADER_BYTES = 8


def level_bits(level: int) -> int:
    """Wire bit width of one compression level (raises on unknown levels)."""
    try:
        return LEVEL_BITS[int(level)]
    except (KeyError, TypeError, ValueError):
        raise ValueError(
            f"unknown compression level {level!r}; available: "
            f"{sorted(LEVEL_BITS)}"
        ) from None


def compressed_nbytes(nbytes: int, bits: int | None) -> int:
    """Bytes one FP32 gradient buffer occupies on the wire at ``bits``.

    ``None`` or >= 32 bits returns ``nbytes`` **unchanged** (the level-0
    parity contract: uncompressed pricing must see the exact same integer
    the uncompressed path sees).  Below 32 the payload packs
    ``nbytes/4`` elements at ``bits`` each (integer ceiling) plus the
    per-bucket scale header.
    """
    if bits is None or bits >= 32:
        return nbytes
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    elements = nbytes // 4
    return (elements * bits + 7) // 8 + _HEADER_BYTES


def codec_seconds(nbytes: int, bits: int | None) -> float:
    """Seconds for one quantize-or-dequantize pass over ``nbytes``.

    Zero at >= 32 bits (no codec runs on the uncompressed path — parity).
    Collective models multiply this by their hop count: each compressed
    hop boundary re-quantizes (DynamiQ-style multi-hop).
    """
    if bits is None or bits >= 32:
        return 0.0
    return nbytes / QSGD_CODEC_BANDWIDTH


def qsgd_variance_factor(bits: int | None) -> float:
    """Per-bucket gradient-variance multiplier of a ``bits``-wide QSGD cast.

    Proposition-2 reasoning applied to the QSGD grid: stochastic rounding
    onto ``s = 2**bits - 1`` levels spaced ``q = 8 * rms / s`` apart (the
    bucket scale is its magnitude; ``max|g| ~ 4 rms`` is the usual
    sub-Gaussian tail proxy) has per-element variance ``q**2 / 6``, so the
    bucket's total added variance is ``(64 / (6 s**2)) * sum(g**2)`` — this
    function returns the ``64 / (6 s**2)`` factor multiplying the gradient
    second moment.  Zero at >= 32 bits (uncompressed adds nothing).
    """
    if bits is None or bits >= 32:
        return 0.0
    s = float(2**bits - 1)
    return 64.0 / (6.0 * s * s)


@dataclasses.dataclass(frozen=True)
class CompressionConfig:
    """Declarative knobs of the joint precision + compression search.

    ``levels`` is the ladder the per-bucket greedy ascent may climb
    (``(0,)`` pins every bucket uncompressed — the parity configuration);
    ``loss_budget`` caps the *added* gradient-sync variance at this
    fraction of the precision plan's own indicator loss.
    """

    levels: tuple[int, ...] = COMPRESSION_LEVELS
    loss_budget: float = 0.01

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("compression levels must be non-empty")
        for lvl in self.levels:
            level_bits(lvl)  # raises ValueError on unknown rungs
        if self.levels[0] != 0:
            raise ValueError(
                f"the compression ladder must start at level 0 (the "
                f"uncompressed parity rung), got {self.levels!r}"
            )
        if list(self.levels) != sorted(set(self.levels)):
            raise ValueError(
                f"compression levels must be strictly ascending, got "
                f"{self.levels!r}"
            )
        if not 0.0 <= self.loss_budget:
            raise ValueError(
                f"loss_budget must be >= 0, got {self.loss_budget}"
            )


def _require_numpy():
    if np is None:
        raise RuntimeError(
            "qsgd_quantize/qsgd_dequantize need numpy (the optional "
            "'kernel' extra); planning-side compression works without it"
        )


def qsgd_quantize(x, bits: int, seed: int, *keys):
    """QSGD-quantize a gradient tensor to ``bits`` stochastic levels.

    ``Q(x)_i = norm * sign(x_i) * SR(|x_i| / norm * s) / s`` with
    ``s = 2**bits - 1`` and ``norm = max|x|`` — unbiased because
    :func:`~repro.quant.stochastic.stochastic_round` is.  Randomness comes
    from ``derive_seed(seed, 'qsgd', bits, *keys)`` so every rank/bucket
    stream is independent yet reproducible.

    Returns ``(levels, signs, norm)`` — the integer level indices, the
    sign array, and the FP32 scale (what travels on the wire).
    """
    _require_numpy()
    if bits >= 32 or bits <= 0:
        raise ValueError(f"qsgd_quantize needs 0 < bits < 32, got {bits}")
    x = np.asarray(x, dtype=np.float64)
    s = float(2**bits - 1)
    norm = float(np.max(np.abs(x))) if x.size else 0.0
    signs = np.sign(x)
    if norm == 0.0:
        return np.zeros_like(x), signs, 0.0
    rng = np.random.default_rng(derive_seed(seed, "qsgd", bits, *keys))
    levels = stochastic_round(np.abs(x) / norm * s, rng)
    return levels, signs, norm


def qsgd_dequantize(levels, signs, norm: float, bits: int):
    """Invert :func:`qsgd_quantize`: ``norm * sign * level / s``."""
    _require_numpy()
    if bits >= 32 or bits <= 0:
        raise ValueError(f"qsgd_dequantize needs 0 < bits < 32, got {bits}")
    s = float(2**bits - 1)
    return np.asarray(levels, dtype=np.float64) * np.asarray(signs) * (norm / s)
