"""Low-precision floating-point simulation.

Proposition 2 models an FP-(e, m) value as ``x = s * 2**e * (1 + m)``: the
exponent is kept (clamped to the target format's range) and the mantissa is
truncated to ``k`` bits with stochastic rounding.  This module implements that
operation exactly with numpy bit-free arithmetic (``frexp``/``ldexp``), so the
empirical variance of the simulated cast matches the closed form
``2**(2e) * eps**2 * D / 6`` — verified by property tests.
"""

from __future__ import annotations

import numpy as np

from repro.common.dtypes import Precision
from repro.quant.stochastic import ROUNDING_MODES


class FloatingPointQuantizer:
    """Simulate a cast to a low floating-point format.

    Parameters
    ----------
    mantissa_bits:
        ``k`` in Proposition 2 (``epsilon = 2**-k``); 9 reproduces the
        paper's FP16 accounting.
    min_exponent, max_exponent:
        Unbiased exponent clamp range of the target format.  Values whose
        exponent exceeds ``max_exponent`` saturate to the largest finite
        magnitude; values below ``min_exponent`` flush to zero (FTZ), the
        behaviour of tensor-core FP16 paths without denormal support.
    rounding:
        ``"stochastic"`` (default), ``"floor"``, or ``"nearest"``.
    """

    def __init__(
        self,
        mantissa_bits: int = 9,
        min_exponent: int = -14,
        max_exponent: int = 15,
        rounding: str = "stochastic",
    ) -> None:
        if mantissa_bits < 1 or mantissa_bits > 23:
            raise ValueError(f"unsupported mantissa width {mantissa_bits}")
        if rounding not in ROUNDING_MODES:
            raise ValueError(f"unknown rounding mode {rounding!r}")
        self.mantissa_bits = mantissa_bits
        self.min_exponent = min_exponent
        self.max_exponent = max_exponent
        self.rounding = rounding
        self._round = ROUNDING_MODES[rounding]

    @classmethod
    def for_precision(
        cls, precision: Precision, rounding: str = "stochastic"
    ) -> "FloatingPointQuantizer":
        """Quantizer matching a :class:`Precision` (FP16 only in practice)."""
        if not precision.is_floating_point:
            raise ValueError(f"{precision} is not a floating-point format")
        return cls(
            mantissa_bits=precision.stochastic_mantissa_bits,
            min_exponent=precision.min_exponent,
            max_exponent=precision.max_exponent,
            rounding=rounding,
        )

    # ------------------------------------------------------------------
    def quantize(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return ``x`` rounded into the low-precision format.

        Decomposition: ``frexp`` gives ``x = f * 2**p`` with ``f in [0.5, 1)``.
        In the paper's ``s * 2**e * (1 + m)`` normal form this is
        ``e = p - 1`` and ``1 + m = 2|f| in [1, 2)``, so the mantissa
        fraction is ``m = 2|f| - 1``.  ``m`` is rounded on the
        ``2**-k`` grid, then the value is reassembled with ``ldexp``.
        """
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros_like(x)
        nonzero = x != 0.0
        if not np.any(nonzero):
            return out

        xv = x[nonzero]
        sign = np.sign(xv)
        frac, expo = np.frexp(np.abs(xv))  # |x| = frac * 2**expo, frac in [.5,1)
        e = expo - 1
        mant = 2.0 * frac - 1.0  # in [0, 1)

        # Round the mantissa on the 2**-k grid (stochastically by default).
        grid = float(2**self.mantissa_bits)
        mant_q = self._round(mant * grid, rng) / grid
        # SR can round m up to exactly 1.0: (1 + m) = 2.0, i.e. carry into
        # the exponent.  ldexp handles that transparently since we multiply.
        val = sign * np.ldexp(1.0 + mant_q, e)

        # Exponent clamping: saturate overflow, flush underflow to zero.
        overflow = e > self.max_exponent
        if np.any(overflow):
            max_mag = np.ldexp(2.0 - 1.0 / grid, self.max_exponent)
            val = np.where(overflow, sign * max_mag, val)
        underflow = e < self.min_exponent
        if np.any(underflow):
            val = np.where(underflow, 0.0, val)

        out[nonzero] = val
        return out

    # Alias so fixed- and floating-point quantizers share an interface.
    def fake_quantize(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Quantize-dequantize round trip (floats dequantize to themselves)."""
        return self.quantize(x, rng)


def simulate_cast(
    x: np.ndarray,
    precision: Precision,
    rng: np.random.Generator,
    rounding: str = "stochastic",
) -> np.ndarray:
    """Cast ``x`` into ``precision``'s value set and back to float64.

    FP32 is treated as the reference format (identity); FP16 goes through
    :class:`FloatingPointQuantizer`.  INT8 is *not* handled here because
    fixed-point casts need scale/zero-point context — use
    :class:`repro.quant.FixedPointQuantizer`.
    """
    if precision is Precision.FP32:
        return np.asarray(x, dtype=np.float64)
    if precision is Precision.FP16:
        return FloatingPointQuantizer.for_precision(
            Precision.FP16, rounding=rounding
        ).quantize(x, rng)
    raise ValueError(
        f"simulate_cast handles floating-point targets only, got {precision}"
    )
