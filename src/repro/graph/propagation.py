"""Precision propagation rules.

Shared by the Cost Mapper (latency), the memory model, and the ground-truth
simulator:

* :func:`output_precision` — kernel precision -> output tensor precision
  (INT8 kernels emit FP32, footnote 3).
* :func:`grad_precision` — kernel precision -> backward gradient format
  (fixed-point kernels backpropagate in FP16, footnote 2).
* :func:`effective_precisions` — resolve every node's *compute* precision:
  dependent operators promote to the widest input (footnote 1's CUDA
  type-promotion rule), cascading adjustable-op changes downstream.
"""

from __future__ import annotations

from repro.common.dtypes import Precision
from repro.graph.dag import PrecisionDAG
from repro.graph.ops import OpCategory


def output_precision(compute: Precision) -> Precision:
    """Precision of an operator's output tensor given its kernel precision."""
    if compute is Precision.INT8:
        return Precision.FP32
    return compute


def grad_precision(compute: Precision) -> Precision:
    """Format of the activation gradient an operator's backward produces."""
    if compute is Precision.INT8:
        return Precision.FP16
    return compute


def effective_precisions(dag: PrecisionDAG) -> dict[str, Precision]:
    """Resolve every node's compute precision (dependent ops promote to the
    widest input's output precision)."""
    effective: dict[str, Precision] = {}
    for name in dag.topo_order():
        spec = dag.spec(name)
        if spec.category is not OpCategory.DEPENDENT:
            effective[name] = dag.precision(name)
            continue
        preds = dag.predecessors(name)
        in_precs = [output_precision(effective[p]) for p in preds] or [Precision.FP32]
        effective[name] = max(in_precs, key=lambda p: p.bits)
    return effective
