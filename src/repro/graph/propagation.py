"""Precision propagation rules.

Shared by the Cost Mapper (latency), the memory model, and the ground-truth
simulator:

* :func:`output_precision` — kernel precision -> output tensor precision
  (INT8 kernels emit FP32, footnote 3).
* :func:`grad_precision` — kernel precision -> backward gradient format
  (fixed-point kernels backpropagate in FP16, footnote 2).
* :func:`effective_precisions` — resolve every node's *compute* precision:
  dependent operators promote to the widest input (footnote 1's CUDA
  type-promotion rule), cascading adjustable-op changes downstream.
* :func:`propagate_dirty` — the delta mode: given a previously resolved
  mapping and the set of ops whose assigned precision changed, re-resolve
  only the dirty ops' downstream dependent cone (O(affected) instead of
  O(graph)).
"""

from __future__ import annotations

import heapq

from repro.common.dtypes import Precision
from repro.graph.dag import PrecisionDAG
from repro.graph.ops import OpCategory


def output_precision(compute: Precision) -> Precision:
    """Precision of an operator's output tensor given its kernel precision."""
    if compute is Precision.INT8:
        return Precision.FP32
    return compute


def grad_precision(compute: Precision) -> Precision:
    """Format of the activation gradient an operator's backward produces."""
    if compute is Precision.INT8:
        return Precision.FP16
    return compute


def effective_precisions(dag: PrecisionDAG) -> dict[str, Precision]:
    """Resolve every node's compute precision (dependent ops promote to the
    widest input's output precision)."""
    effective: dict[str, Precision] = {}
    for name in dag.topo_order():
        spec = dag.spec(name)
        if spec.category is not OpCategory.DEPENDENT:
            effective[name] = dag.precision(name)
            continue
        preds = dag.predecessors(name)
        in_precs = [output_precision(effective[p]) for p in preds] or [Precision.FP32]
        effective[name] = max(in_precs, key=lambda p: p.bits)
    return effective


def propagate_dirty(
    dag: PrecisionDAG,
    effective: dict[str, Precision],
    dirty: set[str],
    overrides: dict[str, Precision] | None = None,
) -> set[str]:
    """Delta-update ``effective`` (in place) for a set of dirty ops.

    ``effective`` must be a complete resolution of the DAG *before* the
    assigned precisions of ``dirty`` changed.  Nodes are revisited in
    topological order starting from the dirty set; propagation stops at any
    node whose effective precision comes out unchanged (its downstream cone
    cannot be affected).  Returns the set of ops whose effective precision
    actually changed — equal, by construction, to the diff against a full
    :func:`effective_precisions` pass (pinned by the equivalence tests).

    ``overrides`` substitutes assigned precisions without mutating the DAG —
    the cost mapper's *what-if* mode: the hypothetical change is resolved
    against a scratch ``effective`` copy while the DAG (and every cache
    keyed on its version) stays untouched.
    """
    if not dirty:
        return set()
    order = dag.topo_index()
    worklist = [(order[name], name) for name in dirty]
    heapq.heapify(worklist)
    queued = set(dirty)
    changed: set[str] = set()
    while worklist:
        _, name = heapq.heappop(worklist)
        spec = dag.spec(name)
        if spec.category is not OpCategory.DEPENDENT:
            if overrides is not None and name in overrides:
                new = overrides[name]
            else:
                new = dag.precision(name)
        else:
            preds = dag.predecessors(name)
            in_precs = [
                output_precision(effective[p]) for p in preds
            ] or [Precision.FP32]
            new = max(in_precs, key=lambda p: p.bits)
        if new is not effective[name]:
            effective[name] = new
            changed.add(name)
            for succ in dag.successors(name):
                if succ not in queued:
                    queued.add(succ)
                    heapq.heappush(worklist, (order[succ], succ))
    return changed
