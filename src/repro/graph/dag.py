"""The Precision DAG.

"For each GPU, QSync maintains a precision DAG that keeps the training model
with operators' precision and its dependencies" (Sec. IV-B).  Built on
networkx for its solid topological algorithms; all QSync-specific state
(precision assignments, depth cache) lives here.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.common.dtypes import Precision, parse_precision
from repro.common.errors import GraphConsistencyError
from repro.common.stable_hash import stable_hash
from repro.graph.ops import OperatorSpec


class PrecisionDAG:
    """A model's operator DAG with a precision per node.

    Nodes are operator names; each holds an :class:`OperatorSpec` and a
    :class:`Precision`.  The graph is validated to be a DAG with a unique
    root (the input node) on :meth:`validate`.

    Change tracking (incremental replay engine): every *effective* precision
    mutation bumps :attr:`version` and records the op in a dirty log, so
    consumers that retain derived state (Cost Mappers, the Replayer's DFG
    cache, memoized memory estimates) can ask :meth:`dirty_since` for exactly
    the ops that changed since they last looked.  Structural edits bump
    :attr:`structure_version` instead, which additionally invalidates the
    cached topological order.
    """

    def __init__(self) -> None:
        self._g = nx.DiGraph()
        self._depth_cache: dict[str, int] | None = None
        self._version = 0
        self._structure_version = 0
        #: op -> version at which its precision last changed.
        self._dirty_log: dict[str, int] = {}
        self._topo_cache: list[str] | None = None
        self._topo_index_cache: dict[str, int] | None = None
        self._adjustable_cache: list[str] | None = None
        self._weighted_cache: list[str] | None = None
        self._independent_cache: list[str] | None = None
        self._sig_ops_cache: list[str] | None = None
        self._weight_elems_cache: int | None = None
        self._sig_cache: tuple[int, tuple[Precision, ...]] | None = None
        self._fingerprint_cache: tuple[int, int] | None = None

    def _invalidate_structure(self) -> None:
        self._depth_cache = None
        self._topo_cache = None
        self._topo_index_cache = None
        self._adjustable_cache = None
        self._weighted_cache = None
        self._independent_cache = None
        self._sig_ops_cache = None
        self._weight_elems_cache = None
        self._sig_cache = None
        self._fingerprint_cache = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_op(
        self,
        spec: OperatorSpec,
        inputs: Iterable[str] = (),
        precision: Precision = Precision.FP32,
    ) -> str:
        """Insert an operator, wiring edges from its input ops."""
        if spec.name in self._g:
            raise GraphConsistencyError(f"duplicate operator name {spec.name!r}")
        self._g.add_node(spec.name, spec=spec, precision=precision)
        for src in inputs:
            if src not in self._g:
                raise GraphConsistencyError(
                    f"operator {spec.name!r} references unknown input {src!r}"
                )
            self._g.add_edge(src, spec.name)
        self._version += 1
        self._structure_version += 1
        self._invalidate_structure()
        return spec.name

    def copy(self) -> "PrecisionDAG":
        out = PrecisionDAG()
        out._g = self._g.copy()
        return out

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._g

    def __len__(self) -> int:
        return len(self._g)

    @property
    def nx_graph(self) -> nx.DiGraph:
        return self._g

    def spec(self, name: str) -> OperatorSpec:
        return self._g.nodes[name]["spec"]

    def precision(self, name: str) -> Precision:
        return self._g.nodes[name]["precision"]

    def set_precision(self, name: str, precision) -> None:
        prec = parse_precision(precision)
        node = self._g.nodes[name]
        if node["precision"] is prec:
            return  # no-op writes must not dirty downstream caches
        node["precision"] = prec
        self._version += 1
        self._dirty_log[name] = self._version
        self._sig_cache = None

    # ------------------------------------------------------------------
    # change tracking
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone counter bumped on every effective mutation."""
        return self._version

    @property
    def structure_version(self) -> int:
        """Monotone counter bumped on node/edge insertion only."""
        return self._structure_version

    def dirty_since(self, version: int) -> set[str]:
        """Ops whose precision changed strictly after ``version``."""
        if version >= self._version:
            return set()
        return {op for op, v in self._dirty_log.items() if v > version}

    def precision_signature(self) -> tuple[Precision, ...]:
        """Hashable fingerprint of the assigned precisions that determine
        derived artifacts, in topological order.

        Covers every non-dependent op (dependent ops *derive* their compute
        precision from inputs) plus every weighted op regardless of
        category (the memory model reads a weighted op's assigned precision
        for its low-precision weight copy).  Two DAGs with equal
        :meth:`structure_fingerprint` and equal signatures are therefore
        interchangeable for replay and memory estimation.  Cached per
        version.
        """
        if self._sig_cache is not None and self._sig_cache[0] == self._version:
            return self._sig_cache[1]
        if self._sig_ops_cache is None:
            self._sig_ops_cache = [
                n
                for n in self.topo_order()
                if not self.spec(n).is_dependent or self.spec(n).has_weight
            ]
        sig = tuple(self.precision(n) for n in self._sig_ops_cache)
        self._sig_cache = (self._version, sig)
        return sig

    def structure_fingerprint(self) -> int:
        """Hash identifying the graph's *structure* (op names, kinds,
        shapes, edges) independent of precision assignments.

        Cross-DAG caches (the Replayer's per-device-type DFG and memory
        layers) key on this instead of the per-instance
        :attr:`structure_version` counter, which says nothing about whether
        two different DAG objects are actually the same graph.  Computed
        with :func:`repro.common.stable_hash.stable_hash` — never builtin
        ``hash``, which is salted per process and would make every
        cross-process cache key (and the experiment artifact store built on
        it) non-reproducible.  Cached per structure version.
        """
        if (
            self._fingerprint_cache is not None
            and self._fingerprint_cache[0] == self._structure_version
        ):
            return self._fingerprint_cache[1]
        fp = stable_hash(
            tuple(
                (
                    n,
                    self.spec(n).kind.value,
                    self.spec(n).output_shape,
                    self.spec(n).weight_shape,
                    tuple(self._g.predecessors(n)),
                )
                for n in self.topo_order()
            )
        )
        self._fingerprint_cache = (self._structure_version, fp)
        return fp

    def nodes(self) -> Iterator[str]:
        return iter(self._g.nodes)

    def predecessors(self, name: str) -> list[str]:
        return list(self._g.predecessors(name))

    def successors(self, name: str) -> list[str]:
        return list(self._g.successors(name))

    def topo_order(self) -> list[str]:
        """Topological order, cached until the structure changes.

        The returned list is shared — treat it as read-only.
        """
        if self._topo_cache is None:
            self._topo_cache = list(nx.topological_sort(self._g))
        return self._topo_cache

    def topo_index(self) -> dict[str, int]:
        """Name -> position in :meth:`topo_order` (cached, read-only)."""
        if self._topo_index_cache is None:
            self._topo_index_cache = {
                n: i for i, n in enumerate(self.topo_order())
            }
        return self._topo_index_cache

    def adjustable_ops(self) -> list[str]:
        """Names of ``O_adj`` operators, in topological order (cached,
        read-only)."""
        if self._adjustable_cache is None:
            self._adjustable_cache = [
                n for n in self.topo_order() if self.spec(n).is_adjustable
            ]
        return self._adjustable_cache

    def weighted_ops(self) -> list[str]:
        if self._weighted_cache is None:
            self._weighted_cache = [
                n for n in self.topo_order() if self.spec(n).has_weight
            ]
        return self._weighted_cache

    def independent_ops(self) -> list[str]:
        """Ops whose precision is assigned rather than derived (adjustable
        and fixed categories), in topological order (cached, read-only)."""
        if self._independent_cache is None:
            self._independent_cache = [
                n for n in self.topo_order() if not self.spec(n).is_dependent
            ]
        return self._independent_cache

    def precision_plan(self) -> dict[str, Precision]:
        """Snapshot of current per-op precisions."""
        return {n: self.precision(n) for n in self._g.nodes}

    def apply_plan(self, plan: dict[str, Precision]) -> None:
        for name, prec in plan.items():
            self.set_precision(name, prec)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def root(self) -> str:
        """The unique zero-in-degree node (the model input)."""
        roots = [n for n in self._g.nodes if self._g.in_degree(n) == 0]
        if len(roots) != 1:
            raise GraphConsistencyError(f"expected 1 root, found {roots}")
        return roots[0]

    def depth(self, name: str) -> int:
        """Distance from the root (``d_o`` in Proposition 3).

        "The depth of an operator inside a model forward DAG is a measure of
        its distance from the root node" — computed as the longest path from
        the root so residual shortcuts don't shrink a deep op's depth.
        """
        if self._depth_cache is None:
            root = self.root()
            depths = {root: 0}
            for node in self.topo_order():
                if node == root:
                    continue
                preds = list(self._g.predecessors(node))
                depths[node] = 1 + max(depths[p] for p in preds)
            self._depth_cache = depths
        return self._depth_cache[name]

    def max_depth(self) -> int:
        """``d_L``: depth of the deepest operator."""
        return max(self.depth(n) for n in self._g.nodes)

    def validate(self) -> None:
        """Raise :class:`GraphConsistencyError` on structural problems."""
        if not nx.is_directed_acyclic_graph(self._g):
            raise GraphConsistencyError("graph contains a cycle")
        self.root()  # raises if not unique
        sinks = [n for n in self._g.nodes if self._g.out_degree(n) == 0]
        if not sinks:
            raise GraphConsistencyError("graph has no sink")
        # Dependent ops must trace back to at least one input.
        if not nx.is_weakly_connected(self._g):
            raise GraphConsistencyError("graph is not connected")

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def total_flops(self) -> float:
        return float(
            sum(self.spec(n).flops for n in self._g.nodes)
        )

    def total_weight_elems(self) -> int:
        if self._weight_elems_cache is None:
            self._weight_elems_cache = int(
                sum(self.spec(n).weight_elems for n in self._g.nodes)
            )
        return self._weight_elems_cache

    def summary(self) -> str:
        """One-line description used in reports."""
        n_adj = len(self.adjustable_ops())
        return (
            f"PrecisionDAG({len(self._g)} ops, {n_adj} adjustable, "
            f"depth {self.max_depth()}, {self.total_flops()/1e9:.1f} GFLOPs/iter fwd)"
        )
