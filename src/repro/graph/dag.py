"""The Precision DAG.

"For each GPU, QSync maintains a precision DAG that keeps the training model
with operators' precision and its dependencies" (Sec. IV-B).  Built on
networkx for its solid topological algorithms; all QSync-specific state
(precision assignments, depth cache) lives here.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.common.dtypes import Precision, parse_precision
from repro.common.errors import GraphConsistencyError
from repro.graph.ops import OpCategory, OperatorSpec


class PrecisionDAG:
    """A model's operator DAG with a precision per node.

    Nodes are operator names; each holds an :class:`OperatorSpec` and a
    :class:`Precision`.  The graph is validated to be a DAG with a unique
    root (the input node) on :meth:`validate`.
    """

    def __init__(self) -> None:
        self._g = nx.DiGraph()
        self._depth_cache: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_op(
        self,
        spec: OperatorSpec,
        inputs: Iterable[str] = (),
        precision: Precision = Precision.FP32,
    ) -> str:
        """Insert an operator, wiring edges from its input ops."""
        if spec.name in self._g:
            raise GraphConsistencyError(f"duplicate operator name {spec.name!r}")
        self._g.add_node(spec.name, spec=spec, precision=precision)
        for src in inputs:
            if src not in self._g:
                raise GraphConsistencyError(
                    f"operator {spec.name!r} references unknown input {src!r}"
                )
            self._g.add_edge(src, spec.name)
        self._depth_cache = None
        return spec.name

    def copy(self) -> "PrecisionDAG":
        out = PrecisionDAG()
        out._g = self._g.copy()
        return out

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._g

    def __len__(self) -> int:
        return len(self._g)

    @property
    def nx_graph(self) -> nx.DiGraph:
        return self._g

    def spec(self, name: str) -> OperatorSpec:
        return self._g.nodes[name]["spec"]

    def precision(self, name: str) -> Precision:
        return self._g.nodes[name]["precision"]

    def set_precision(self, name: str, precision) -> None:
        self._g.nodes[name]["precision"] = parse_precision(precision)

    def nodes(self) -> Iterator[str]:
        return iter(self._g.nodes)

    def predecessors(self, name: str) -> list[str]:
        return list(self._g.predecessors(name))

    def successors(self, name: str) -> list[str]:
        return list(self._g.successors(name))

    def topo_order(self) -> list[str]:
        return list(nx.topological_sort(self._g))

    def adjustable_ops(self) -> list[str]:
        """Names of ``O_adj`` operators, in topological order."""
        return [n for n in self.topo_order() if self.spec(n).is_adjustable]

    def weighted_ops(self) -> list[str]:
        return [n for n in self.topo_order() if self.spec(n).has_weight]

    def precision_plan(self) -> dict[str, Precision]:
        """Snapshot of current per-op precisions."""
        return {n: self.precision(n) for n in self._g.nodes}

    def apply_plan(self, plan: dict[str, Precision]) -> None:
        for name, prec in plan.items():
            self.set_precision(name, prec)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def root(self) -> str:
        """The unique zero-in-degree node (the model input)."""
        roots = [n for n in self._g.nodes if self._g.in_degree(n) == 0]
        if len(roots) != 1:
            raise GraphConsistencyError(f"expected 1 root, found {roots}")
        return roots[0]

    def depth(self, name: str) -> int:
        """Distance from the root (``d_o`` in Proposition 3).

        "The depth of an operator inside a model forward DAG is a measure of
        its distance from the root node" — computed as the longest path from
        the root so residual shortcuts don't shrink a deep op's depth.
        """
        if self._depth_cache is None:
            root = self.root()
            depths = {root: 0}
            for node in self.topo_order():
                if node == root:
                    continue
                preds = list(self._g.predecessors(node))
                depths[node] = 1 + max(depths[p] for p in preds)
            self._depth_cache = depths
        return self._depth_cache[name]

    def max_depth(self) -> int:
        """``d_L``: depth of the deepest operator."""
        return max(self.depth(n) for n in self._g.nodes)

    def validate(self) -> None:
        """Raise :class:`GraphConsistencyError` on structural problems."""
        if not nx.is_directed_acyclic_graph(self._g):
            raise GraphConsistencyError("graph contains a cycle")
        self.root()  # raises if not unique
        sinks = [n for n in self._g.nodes if self._g.out_degree(n) == 0]
        if not sinks:
            raise GraphConsistencyError("graph has no sink")
        # Dependent ops must trace back to at least one input.
        if not nx.is_weakly_connected(self._g):
            raise GraphConsistencyError("graph is not connected")

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def total_flops(self) -> float:
        return float(
            sum(self.spec(n).flops for n in self._g.nodes)
        )

    def total_weight_elems(self) -> int:
        return int(sum(self.spec(n).weight_elems for n in self._g.nodes))

    def summary(self) -> str:
        """One-line description used in reports."""
        n_adj = len(self.adjustable_ops())
        return (
            f"PrecisionDAG({len(self._g)} ops, {n_adj} adjustable, "
            f"depth {self.max_depth()}, {self.total_flops()/1e9:.1f} GFLOPs/iter fwd)"
        )
