"""Repeated-block detection for the Allocator's initial search.

"Many DNN models contain repeating isomorphic building subgraphs which have
much fewer precision-adjustable operators available compared with the entire
graph" (Sec. V).  The model catalog labels every op with its structural block
(``OperatorSpec.block``); this module groups ops by block and verifies that
blocks claimed identical really are isomorphic via a structural signature
(so a mislabelled builder fails loudly instead of silently producing a wrong
brute-force space).
"""

from __future__ import annotations

import hashlib
from collections import defaultdict

from repro.graph.dag import PrecisionDAG


def structural_signature(dag: PrecisionDAG, block_ops: list[str]) -> str:
    """Order-insensitive hash of a block's internal structure.

    Captures, per op: kind, weight shape *sans batch effects*, category, and
    the multiset of internal edges (by op kind pairs).  Two blocks with equal
    signatures have the same adjustable-op layout, which is all the
    brute-force initializer requires.
    """
    ops = sorted(block_ops)
    index = {name: i for i, name in enumerate(ops)}
    parts: list[str] = []
    for name in ops:
        spec = dag.spec(name)
        parts.append(f"{spec.kind.value}|{spec.weight_shape}|{spec.category.value}")
    edges = []
    for name in ops:
        for succ in dag.successors(name):
            if succ in index:
                edges.append(
                    f"{dag.spec(name).kind.value}->{dag.spec(succ).kind.value}"
                )
    parts.extend(sorted(edges))
    return hashlib.sha1("\n".join(parts).encode()).hexdigest()[:16]


def group_blocks(dag: PrecisionDAG) -> dict[str, list[str]]:
    """Block label -> member op names (topological order within block).

    Unlabelled ops go into singleton pseudo-blocks named after themselves,
    so every adjustable op is covered by exactly one block.
    """
    groups: dict[str, list[str]] = defaultdict(list)
    for name in dag.topo_order():
        spec = dag.spec(name)
        label = spec.block if spec.block is not None else f"__solo__:{name}"
        groups[label].append(name)
    return dict(groups)


def isomorphism_classes(dag: PrecisionDAG) -> dict[str, list[str]]:
    """Signature -> list of block labels sharing that structure.

    The Allocator brute-forces each *class* once and reuses the result for
    every isomorphic block, which is what collapses BERT's search space from
    3^73 to per-block enumerations (Sec. V).
    """
    classes: dict[str, list[str]] = defaultdict(list)
    for label, ops in group_blocks(dag).items():
        classes[structural_signature(dag, ops)].append(label)
    return dict(classes)
