"""Operator taxonomy and per-operator accounting.

QSync classifies operators (Sec. IV-B) into:

* **Precision-adjustable** (``O_adj``) — computation-intensive ops whose
  kernels exist at several precisions (Conv, Linear) plus overflow-prone ops
  pinned high (Softmax); the Allocator assigns these.
* **Precision-dependent** (``O_dep``) — ops whose precision follows their
  inputs (ReLU, Add, MaxPool); a precision change upstream *cascades* through
  them (the Cost Mapper's BFS).
* **Fixed** — loss functions and pure binary-input matmuls, never changed
  (Proposition 1's scope).

:class:`OperatorSpec` carries the static facts the cost/memory models need:
tensor shapes, forward FLOPs, parameter and activation element counts.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Optional

from repro.common.dtypes import Precision


class OpKind(enum.Enum):
    """Operator families with distinct cost/variance behaviour."""

    CONV2D = "conv2d"
    LINEAR = "linear"
    MATMUL = "matmul"  # binary-input, never quantized
    BATCHNORM = "batchnorm"
    LAYERNORM = "layernorm"
    RELU = "relu"
    GELU = "gelu"
    MAXPOOL = "maxpool"
    AVGPOOL = "avgpool"
    ADD = "add"
    SOFTMAX = "softmax"
    EMBEDDING = "embedding"
    DROPOUT = "dropout"
    FLATTEN = "flatten"
    LOSS = "loss"
    INPUT = "input"


class OpCategory(enum.Enum):
    """The paper's operator classification (Sec. IV-B)."""

    ADJUSTABLE = "adjustable"  # O_adj — allocator assigns precision
    DEPENDENT = "dependent"  # O_dep — precision follows inputs
    FIXED = "fixed"  # never changed (loss, pure matmul, input)


#: Default category per kind.  Softmax is ADJUSTABLE per the paper ("operators
#: that may numerically overflow ... e.g. softmax") but is pinned to FP32 by
#: the allocator's support table; the *classification* is what matters for
#: the cost mapper's traversal rules.
KIND_CATEGORY: dict[OpKind, OpCategory] = {
    OpKind.CONV2D: OpCategory.ADJUSTABLE,
    OpKind.LINEAR: OpCategory.ADJUSTABLE,
    OpKind.SOFTMAX: OpCategory.ADJUSTABLE,
    OpKind.MATMUL: OpCategory.FIXED,
    OpKind.BATCHNORM: OpCategory.DEPENDENT,
    OpKind.LAYERNORM: OpCategory.DEPENDENT,
    OpKind.RELU: OpCategory.DEPENDENT,
    OpKind.GELU: OpCategory.DEPENDENT,
    OpKind.MAXPOOL: OpCategory.DEPENDENT,
    OpKind.AVGPOOL: OpCategory.DEPENDENT,
    OpKind.ADD: OpCategory.DEPENDENT,
    OpKind.DROPOUT: OpCategory.DEPENDENT,
    OpKind.FLATTEN: OpCategory.DEPENDENT,
    OpKind.EMBEDDING: OpCategory.FIXED,
    OpKind.LOSS: OpCategory.FIXED,
    OpKind.INPUT: OpCategory.FIXED,
}

#: Kinds that hold learnable parameters (unary-input computation ops in the
#: paper's variance analysis).
WEIGHTED_KINDS = frozenset({OpKind.CONV2D, OpKind.LINEAR})


@dataclasses.dataclass
class OperatorSpec:
    """Static description of one operator in a model graph.

    Shapes exclude nothing: the batch dimension is included so FLOPs and
    activation sizes scale with the training configuration.

    Attributes
    ----------
    name:
        Unique node id within the DAG (e.g. ``"layer3.2.conv1"``).
    kind:
        :class:`OpKind`.
    output_shape:
        Shape of the op's output activation.
    weight_shape:
        Parameter tensor shape, or ``None`` for weightless ops.
    flops:
        Forward-pass multiply-accumulate count × 2 (the usual convention).
    block:
        Label of the repeating structural block this op belongs to (used by
        the Allocator's subgraph decomposition); ``None`` = unblocked.
    """

    name: str
    kind: OpKind
    output_shape: tuple[int, ...]
    weight_shape: Optional[tuple[int, ...]] = None
    flops: float = 0.0
    block: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def category(self) -> OpCategory:
        return KIND_CATEGORY[self.kind]

    @property
    def is_adjustable(self) -> bool:
        return self.category is OpCategory.ADJUSTABLE

    @property
    def is_dependent(self) -> bool:
        return self.category is OpCategory.DEPENDENT

    @property
    def has_weight(self) -> bool:
        return self.weight_shape is not None

    @property
    def output_elems(self) -> int:
        return int(math.prod(self.output_shape)) if self.output_shape else 0

    @property
    def weight_elems(self) -> int:
        if self.weight_shape is None:
            return 0
        return int(math.prod(self.weight_shape))

    # ------------------------------------------------------------------
    def backward_flops(self) -> float:
        """Backward FLOPs: ~2x forward for weighted ops (grad-input +
        grad-weight GEMMs), ~1x for element-wise/dependent ops."""
        if self.kind in WEIGHTED_KINDS:
            return 2.0 * self.flops
        return self.flops

    def activation_bytes(self, precision: Precision) -> int:
        """Bytes to stash this op's output for the backward pass."""
        return self.output_elems * precision.nbytes

    def weight_bytes(self, precision: Precision) -> int:
        return self.weight_elems * precision.nbytes

    def supported_precisions(self) -> tuple[Precision, ...]:
        """Precisions this operator has kernels for.

        Only weighted compute ops have INT8 kernels (LP-PyTorch scope);
        softmax is overflow-prone and pinned FP32; everything else follows
        its inputs so "supports" FP16/FP32 pass-through.
        """
        if self.kind in WEIGHTED_KINDS:
            return (Precision.INT8, Precision.FP16, Precision.FP32)
        if self.kind is OpKind.SOFTMAX:
            return (Precision.FP32,)
        if self.category is OpCategory.FIXED:
            return (Precision.FP32,)
        return (Precision.FP16, Precision.FP32)


# ---------------------------------------------------------------------------
# FLOP helpers used by the model catalog
# ---------------------------------------------------------------------------


def conv2d_flops(
    batch: int, in_c: int, out_c: int, out_h: int, out_w: int, kh: int, kw: int
) -> float:
    """2 * N * Cout * Hout * Wout * Cin * Kh * Kw."""
    return 2.0 * batch * out_c * out_h * out_w * in_c * kh * kw


def linear_flops(batch_tokens: int, in_features: int, out_features: int) -> float:
    """2 * (N * S) * in * out for (possibly sequence-shaped) inputs."""
    return 2.0 * batch_tokens * in_features * out_features


def elementwise_flops(shape: tuple[int, ...]) -> float:
    return float(math.prod(shape))
