"""Operator graphs.

* :mod:`repro.graph.ops` — operator taxonomy: kinds, the precision-
  adjustable (``O_adj``) vs precision-dependent (``O_dep``) vs fixed split
  of Sec. IV-B, FLOP/byte accounting.
* :mod:`repro.graph.dag` — the Precision DAG QSync maintains per device.
* :mod:`repro.graph.subgraph` — repeated isomorphic-block detection used by
  the Allocator's initial brute-force search (Sec. V).
"""

from repro.graph.dag import PrecisionDAG
from repro.graph.ops import OpCategory, OperatorSpec, OpKind
from repro.graph.subgraph import group_blocks, structural_signature

__all__ = [
    "OpKind",
    "OpCategory",
    "OperatorSpec",
    "PrecisionDAG",
    "group_blocks",
    "structural_signature",
]
