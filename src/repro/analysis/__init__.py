"""Static analysis: the DESIGN-contract invariant linter.

Six PRs of growth produced a ledger of design invariants (the ROADMAP
"DESIGN" blocks): persisted keys must be ``PYTHONHASHSEED``-stable,
workers are looked up by rank identity rather than position, the engine
package must not import the session layer at runtime, registries are
append-only, deterministic paths never read wall clocks or unseeded RNG,
and published DFGs/templates are immutable by convention.  Until now those
contracts were enforced only by runtime tests and reviewer memory — the
exact class of silent-staleness bug a diff-time checker catches before a
sweep ever runs.

This package is that checker: an AST-based, pluggable linter with one rule
class per contract (``RPR001``–``RPR007``), a shared visitor framework, a
project-wide import graph built once per run, and per-line / per-file
suppressions that *require* a written reason::

    python -m repro.analysis.lint src            # exit 0 clean, 1 dirty
    python -m repro.analysis.lint src --format json

The rule registry (:data:`~repro.analysis.framework.RULES`) is itself
append-only — the same discipline it enforces on the registries it
watches.
"""

from repro.analysis import rules as _rules  # noqa: F401 - registers RPR001-007
from repro.analysis.framework import (
    RULES,
    LintReport,
    ModuleInfo,
    Project,
    Rule,
    Violation,
    lint_paths,
    register_rule,
)

__all__ = [
    "LintReport",
    "ModuleInfo",
    "Project",
    "Rule",
    "RULES",
    "Violation",
    "lint_paths",
    "register_rule",
]
