"""CLI: ``python -m repro.analysis.lint [paths...] [--format text|json]``.

Exit status is the contract: ``0`` clean, ``1`` violations found,
``2`` usage errors (argparse).  The JSON report is deterministic — sorted
keys, sorted violations, relative POSIX paths, no timestamps — so it is
byte-stable across ``PYTHONHASHSEED`` values and diffable as a CI
artifact.

Suppressing a finding requires a written reason::

    x = cluster.workers[0]  # repro: allow RPR003 teaching the old idiom

(line-scoped when trailing code, file-scoped on a line of its own; a
reason-less suppression is itself reported as RPR000).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.framework import RULES, lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST-based invariant linter for the DESIGN contracts "
        "(RPR001-RPR007).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is deterministic and artifact-diffable)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.title}  [{rule.contract}]")
        return 0
    selected = None
    if args.rules is not None:
        wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = {rule.id: rule for rule in RULES}
        unknown = [w for w in wanted if w not in known]
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"available: {', '.join(known)}",
                file=sys.stderr,
            )
            return 2
        selected = [known[w] for w in wanted]
    try:
        report = lint_paths(args.paths, rules=selected)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2
    try:
        print(report.to_json() if args.format == "json" else report.to_text())
    except BrokenPipeError:  # e.g. piped into head; exit code still counts
        pass
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
