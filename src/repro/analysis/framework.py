"""The invariant-linter framework: rules, suppressions, project index.

Design mirrors the registries it polices:

* :data:`RULES` is an **append-only** registry of :class:`Rule` instances;
  :func:`register_rule` refuses duplicate ids and the canonical report
  order is registration order.
* Each rule sees one :class:`ModuleInfo` at a time (path, resolved module
  name, parsed AST, source) plus the shared :class:`Project` index, which
  builds the cross-module import graph **once** per run — rules never
  re-parse or re-walk other files.
* Suppressions are explicit and must carry a reason::

      x = cluster.workers[0]  # repro: allow RPR003 demo of the old idiom

  suppresses that rule on that statement only, while a comment on a line
  of its own::

      # repro: allow RPR002 wall-clock is reporting-only; never persisted

  suppresses the rule for the whole file.  A suppression *without* a
  reason is itself a violation (``RPR000``) and cannot be suppressed —
  the contract ledger stays auditable.
* Fixture/test files may pin the module identity the scoped rules see via
  ``# repro: module repro.core.something`` (real package files resolve
  their dotted name from ``__init__.py`` ancestry automatically).

Everything is deterministic: files are visited in sorted order, output is
sorted by (path, line, column, rule), and nothing reads the clock or the
interpreter's hash salt — the JSON report is byte-stable across
``PYTHONHASHSEED`` values so it can be diffed as a CI artifact.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "LintReport",
    "ModuleInfo",
    "Project",
    "Rule",
    "RULES",
    "Violation",
    "collect_files",
    "lint_paths",
    "register_rule",
]

#: Directive grammar (comment-embedded): ``repro: allow <RULE-ID> <reason>``
#: or ``repro: module <dotted.name>`` after a hash.
_DIRECTIVE_RE = re.compile(r"#\s*repro:\s*(?P<verb>\S+)\s*(?P<rest>.*)$")
_ALLOW_RE = re.compile(r"(?P<rule>RPR\d{3})\s*(?P<reason>.*)$")

#: The meta rule id: malformed/reason-less suppressions.  Not a registered
#: rule class on purpose — it guards the suppression mechanism itself and
#: therefore can never be suppressed.
META_RULE_ID = "RPR000"


@dataclasses.dataclass(frozen=True, order=True)
class Violation:
    """One contract breach at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def formatted(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclasses.dataclass(frozen=True)
class _Suppression:
    """A parsed ``allow`` directive."""

    rule: str
    reason: str
    line: int
    file_scoped: bool


class ModuleInfo:
    """One parsed source file plus its lint-relevant metadata."""

    def __init__(self, path: Path, display_path: str, source: str):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions: list[_Suppression] = []
        self.meta_violations: list[Violation] = []
        self._module_override: str | None = None
        self._scan_directives()
        self.module = self._module_override or _resolve_module_name(path)

    # -- directives ---------------------------------------------------

    def _scan_directives(self) -> None:
        reader = io.StringIO(self.source).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except tokenize.TokenError:  # unterminated constructs: ast caught it
            tokens = []
        code_lines = {
            tok.start[0]
            for tok in tokens
            if tok.type
            not in (
                tokenize.COMMENT,
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            )
        }
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE_RE.search(tok.string)
            if match is None:
                continue
            line = tok.start[0]
            verb, rest = match.group("verb"), match.group("rest").strip()
            if verb == "module":
                if rest:
                    self._module_override = rest
                else:
                    self._meta(line, "'# repro: module' needs a dotted name")
            elif verb == "allow":
                allow = _ALLOW_RE.match(rest)
                if allow is None:
                    self._meta(
                        line,
                        "malformed suppression: expected "
                        "'# repro: allow RPR0NN <reason>'",
                    )
                    continue
                rule, reason = allow.group("rule"), allow.group("reason").strip()
                if not reason:
                    self._meta(
                        line,
                        f"suppression of {rule} requires a written reason",
                    )
                    continue
                self.suppressions.append(
                    _Suppression(
                        rule=rule,
                        reason=reason,
                        line=line,
                        file_scoped=line not in code_lines,
                    )
                )
            else:
                self._meta(line, f"unknown '# repro:' directive {verb!r}")

    def _meta(self, line: int, message: str) -> None:
        self.meta_violations.append(
            Violation(self.display_path, line, 1, META_RULE_ID, message)
        )

    def is_suppressed(self, violation: Violation) -> bool:
        for sup in self.suppressions:
            if sup.rule != violation.rule:
                continue
            if sup.file_scoped or sup.line == violation.line:
                return True
        return False

    # -- helpers for rules --------------------------------------------

    def violation(
        self, node: ast.AST, rule: str, message: str
    ) -> Violation:
        return Violation(
            self.display_path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            rule,
            message,
        )


def _resolve_module_name(path: Path) -> str:
    """Dotted module name by walking up through ``__init__.py`` ancestry.

    Files outside any package (fixtures, scripts) resolve to their bare
    stem; fixtures that need to exercise package-scoped rules pin their
    identity with a ``# repro: module`` directive instead.
    """
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [path.stem]
    return ".".join(reversed(parts))


@dataclasses.dataclass(frozen=True)
class ImportEdge:
    """One ``import``/``from ... import`` of a project-internal module."""

    target: str  #: dotted module being imported (absolute)
    line: int
    col: int
    runtime: bool  #: False under ``if TYPE_CHECKING:``
    module_scope: bool  #: False inside a function/lambda body


class Project:
    """Shared per-run index: all modules plus the import graph, built once."""

    def __init__(self, modules: list[ModuleInfo]):
        self.modules = modules
        self.by_name = {m.module: m for m in modules}
        self._imports: dict[str, tuple[ImportEdge, ...]] | None = None

    def imports_of(self, module: str) -> tuple[ImportEdge, ...]:
        if self._imports is None:
            self._imports = {
                m.module: tuple(_extract_imports(m)) for m in self.modules
            }
        return self._imports.get(module, ())


def _extract_imports(mod: ModuleInfo) -> Iterator[ImportEdge]:
    pkg_parts = mod.module.split(".")
    # `from . import x` resolves against the containing package: the module
    # itself for __init__.py, the parent package for ordinary modules.
    is_package = mod.path.name == "__init__.py"

    def walk(node: ast.AST, runtime: bool, module_scope: bool):
        for child in ast.iter_child_nodes(node):
            c_runtime, c_scope = runtime, module_scope
            if isinstance(child, ast.If) and _is_type_checking(child.test):
                c_runtime = False
            elif isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                c_scope = False
            if isinstance(child, ast.Import):
                for alias in child.names:
                    yield ImportEdge(
                        alias.name,
                        child.lineno,
                        child.col_offset + 1,
                        c_runtime,
                        c_scope,
                    )
            elif isinstance(child, ast.ImportFrom):
                target = child.module or ""
                if child.level:
                    # Resolve `from ..x import y` against our dotted name.
                    base = list(pkg_parts) if is_package else pkg_parts[:-1]
                    cut = len(base) - (child.level - 1)
                    base = base[: max(cut, 0)]
                    target = ".".join(base + ([target] if target else []))
                if target:
                    yield ImportEdge(
                        target,
                        child.lineno,
                        child.col_offset + 1,
                        c_runtime,
                        c_scope,
                    )
            yield from walk(child, c_runtime, c_scope)

    yield from walk(mod.tree, True, True)


def _is_type_checking(test: ast.expr) -> bool:
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


class Rule:
    """Base class: one DESIGN contract, one checker.

    Subclasses set ``id``/``title``/``contract`` and implement
    :meth:`check_module`.  Rules must themselves be deterministic — no
    set-order dependence, no wall clock (the linter lints itself).
    """

    id: str = "RPR999"
    title: str = ""
    #: The ROADMAP DESIGN block (PR era) this rule mechanizes.
    contract: str = ""

    def check_module(
        self, mod: ModuleInfo, project: Project
    ) -> Iterable[Violation]:
        raise NotImplementedError


#: The rule registry.  Append-only: report order is registration order,
#: ids are permanent, and RPR005 watches this name like any other registry.
RULES: list[Rule] = []


def register_rule(rule: Rule) -> Rule:
    """Append ``rule`` to :data:`RULES`; duplicate ids are refused."""
    if any(existing.id == rule.id for existing in RULES):
        raise ValueError(f"lint rule {rule.id!r} is already registered")
    RULES.append(rule)
    return rule


# ---------------------------------------------------------------------------
# driving a run
# ---------------------------------------------------------------------------

_SKIP_DIRS = {"__pycache__", ".git", ".qsync-artifacts"}


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out: dict[Path, None] = {}
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in f.parts):
                    out[f] = None
        elif p.suffix == ".py":
            out[p] = None
        else:
            raise FileNotFoundError(f"not a python file or directory: {p}")
    return sorted(out)


@dataclasses.dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: list[Violation]
    files: int
    rules: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_text(self) -> str:
        lines = [v.formatted() for v in self.violations]
        summary = (
            f"{len(self.violations)} violation(s) in {self.files} file(s)"
            if self.violations
            else f"clean: {self.files} file(s), {len(self.rules)} rule(s)"
        )
        return "\n".join(lines + [summary])

    def to_json(self) -> str:
        payload = {
            "clean": self.clean,
            "files": self.files,
            "rules": list(self.rules),
            "violations": [v.to_dict() for v in self.violations],
        }
        return json.dumps(payload, indent=1, sort_keys=True)


def lint_paths(
    paths: Iterable[str | Path],
    *,
    rules: Iterable[Rule] | None = None,
    relative_to: str | Path | None = None,
) -> LintReport:
    """Lint ``paths`` with the registered rules (or an explicit subset).

    ``relative_to`` controls how paths are reported (default: the current
    working directory where possible, else the absolute path) — reported
    paths are always POSIX-style for cross-platform report diffing.
    """
    active = list(RULES if rules is None else rules)
    base = Path(relative_to) if relative_to is not None else Path.cwd()
    modules = []
    for path in collect_files(paths):
        try:
            display = path.resolve().relative_to(base.resolve()).as_posix()
        except ValueError:
            display = path.as_posix()
        modules.append(ModuleInfo(path, display, path.read_text()))

    project = Project(modules)
    violations: list[Violation] = []
    for mod in modules:
        violations.extend(mod.meta_violations)
        for rule in active:
            for violation in rule.check_module(mod, project):
                if not mod.is_suppressed(violation):
                    violations.append(violation)
    return LintReport(
        violations=sorted(violations),
        files=len(modules),
        rules=tuple(r.id for r in active),
    )
