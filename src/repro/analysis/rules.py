"""The DESIGN-contract rules, RPR001–RPR007.

Each rule class mechanizes one ROADMAP "DESIGN" block; its docstring names
the PR-era contract.  Registration order is the canonical report order and
is append-only (``tests/test_analysis.py`` pins it, the same discipline as
``test_registration_order_is_canonical`` for planners).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.framework import (
    ModuleInfo,
    Project,
    Rule,
    Violation,
    register_rule,
)

__all__ = [
    "StableHashRule",
    "WallClockRule",
    "RankIndexRule",
    "LayeringRule",
    "RegistryRule",
    "ImmutableRule",
    "KernelBufferRule",
]


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` attribute/name chain as a dotted string, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(mod: ModuleInfo) -> dict[str, str]:
    """Local name -> absolute dotted origin, from every import statement.

    Scope-blind on purpose: a function-local ``import time`` still binds
    the name the deterministic path would misuse.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def _resolve_call(func: ast.expr, aliases: dict[str, str]) -> str | None:
    """Absolute dotted name of a called object, or ``None`` if unknown."""
    chain = _dotted(func)
    if chain is None:
        return None
    root, _, rest = chain.partition(".")
    origin = aliases.get(root)
    if origin is None:
        return None
    return f"{origin}.{rest}" if rest else origin


class StableHashRule(Rule):
    """RPR001 — persisted/cross-process keys must be hash-salt stable.

    Contract (PR 2, "stable fingerprints"): builtin ``hash()`` is salted
    per interpreter and ``id()`` is an address — any fingerprint derived
    from either dies at the process boundary, and iterating a raw ``set``
    bakes salt-dependent order into whatever consumes it.  Modules on the
    key-feeding layers must use :func:`repro.common.stable_hash.stable_hash`
    (the one sanctioned hasher) and ``sorted()`` over sets.

    Scope: every package that computes or routes persisted keys.  The
    numeric-kernel packages (``tensor``, ``train``, ``quant``, ``backend``)
    are out of scope — their ``id()``-keyed autograd maps and RNG streams
    are in-process by construction and never serialized.
    """

    id = "RPR001"
    title = "no builtin hash()/id()/set-order in key-feeding modules"
    contract = "PR 2: stable fingerprints"

    SCOPE_EXEMPT = (
        "repro.tensor",
        "repro.train",
        "repro.quant",
        "repro.backend",
    )
    ALLOWLIST = ("repro.common.stable_hash",)
    _BANNED_BUILTINS = {
        "hash": "builtin hash() is PYTHONHASHSEED-salted; "
        "use repro.common.stable_hash",
        "id": "id() is a process-local address; key on a stable "
        "identity (rank, name, stable_hash) instead",
    }

    def _in_scope(self, module: str) -> bool:
        if module in self.ALLOWLIST:
            return False
        return not any(
            module == p or module.startswith(p + ".") for p in self.SCOPE_EXEMPT
        )

    def check_module(
        self, mod: ModuleInfo, project: Project
    ) -> Iterable[Violation]:
        if not self._in_scope(mod.module):
            return
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._BANNED_BUILTINS
                and node.args
            ):
                yield mod.violation(
                    node, self.id, self._BANNED_BUILTINS[node.func.id]
                )
            for iterable in _iterated_expressions(node):
                if _is_raw_set_expr(iterable):
                    yield mod.violation(
                        iterable,
                        self.id,
                        "iteration order of a set is salt-dependent; "
                        "wrap it in sorted()",
                    )


def _iterated_expressions(node: ast.AST) -> Iterator[ast.expr]:
    """Expressions whose *iteration order* the statement consumes."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        yield node.iter
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        for gen in node.generators:
            yield gen.iter
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        # Conversions that freeze the (unstable) order into a sequence.
        if node.func.id in ("list", "tuple", "enumerate") and node.args:
            yield node.args[0]


def _is_raw_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class WallClockRule(Rule):
    """RPR002 — deterministic paths read no wall clock or unseeded RNG.

    Contract (PR 2 determinism + PR 5 perturbations): cached sweeps,
    fingerprints and seed-derived perturbations are only sound if nothing
    on the planning/simulation path consults ``time.*``, ``datetime.now``,
    the stdlib ``random`` module, or numpy's global RNG state.  Randomness
    derives from :func:`repro.common.rng.derive_seed`; generators are
    constructed with an explicit seed (``default_rng(seed)``).

    ``repro.common.rng`` (the sanctioned construction helpers) is
    allowlisted.  Sanctioned wall-clock reads (sweep progress timings,
    benchmark harnesses) carry explicit suppressions with reasons.
    """

    id = "RPR002"
    title = "no wall-clock / unseeded RNG outside sanctioned modules"
    contract = "PR 2: determinism; PR 5: seed-derived perturbations"

    ALLOWLIST = ("repro.common.rng",)
    _CLOCKS = (
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    )
    #: numpy.random attributes that are legitimate *seeded* constructions
    #: when called with an explicit seed argument.
    _SEEDED_OK = (
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "numpy.random.PCG64",
    )

    def check_module(
        self, mod: ModuleInfo, project: Project
    ) -> Iterable[Violation]:
        if mod.module in self.ALLOWLIST:
            return
        aliases = _import_aliases(mod)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve_call(node.func, aliases)
            if target is None:
                continue
            if target in self._CLOCKS:
                yield mod.violation(
                    node,
                    self.id,
                    f"{target}() reads the wall clock on a deterministic "
                    "path; thread timings in explicitly or suppress with "
                    "a reason",
                )
            elif target == "random" or target.startswith("random."):
                yield mod.violation(
                    node,
                    self.id,
                    f"stdlib {target}() draws from hidden global state; "
                    "derive a seed via repro.common.rng.derive_seed and "
                    "use numpy Generators",
                )
            elif target.startswith("numpy.random."):
                if target in self._SEEDED_OK:
                    if node.args or node.keywords:
                        continue
                    yield mod.violation(
                        node,
                        self.id,
                        f"{target}() without a seed is entropy-seeded; "
                        "pass derive_seed(...) explicitly",
                    )
                else:
                    yield mod.violation(
                        node,
                        self.id,
                        f"{target}() uses numpy's global RNG state; "
                        "construct a seeded Generator instead",
                    )


class RankIndexRule(Rule):
    """RPR003 — ranks are identities, never positions.

    Contract (PR 5, "ranks are identities"): clusters accept unique,
    ascending, *non-contiguous* ranks (gaps = decommissioned workers), so
    ``cluster.workers[rank]`` silently grabs the wrong worker the moment a
    rank set has a hole.  Look workers up through a rank→worker map
    (``{w.rank: w for w in cluster.workers}``) or iterate; even
    ``workers[0]``/``workers[-1]`` encode position where an explicit
    ``min``/``max`` over ``w.rank`` states the intent.
    """

    id = "RPR003"
    title = "no positional indexing into .workers"
    contract = "PR 5: ranks are identities"

    def check_module(
        self, mod: ModuleInfo, project: Project
    ) -> Iterable[Violation]:
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "workers"
            ):
                yield mod.violation(
                    node,
                    self.id,
                    ".workers[...] is positional; ranks are identities — "
                    "use a rank→worker map or min/max over w.rank",
                )


class LayeringRule(Rule):
    """RPR004 — the import DAG points downward; engine never sees session.

    Contract (PR 6 layering + the architecture ladder): runtime imports at
    module scope must respect
    ``common → graph/hardware/quant → tensor → train/models/backend/parallel
    → profiling → core → baselines/engine → session → service →
    experiments``.  ``TYPE_CHECKING``-guarded imports always pass;
    function-local deferred imports pass the *ladder* (the sanctioned
    thin-wrapper idiom, e.g. ``core.qsync`` delegating to an ephemeral
    session) — but the :data:`BANNED_PAIRS` edges are violations at *any*
    runtime scope: nothing in ``repro.engine`` may import ``repro.session``
    (the engine stays embeddable without the session layer), and nothing in
    ``repro.session`` may import ``repro.service`` (the session must not
    grow a dependency on its own serving wrapper — PR 9).
    """

    id = "RPR004"
    title = "import layering: lower layers never import upper at runtime"
    contract = "PR 6/9: engine/session/service layering"

    #: package -> layer; imports may only point at the same or a lower
    #: layer at module scope.  The bare ``repro`` façade re-exports the
    #: top of the stack and may not be imported from inside it.
    LAYERS = {
        "common": 0,
        "graph": 1,
        "hardware": 1,
        "quant": 1,
        "kernel": 1,
        "tensor": 2,
        "train": 3,
        "models": 3,
        "backend": 3,
        "parallel": 3,
        "profiling": 4,
        "core": 5,
        "baselines": 6,
        "engine": 6,
        "session": 7,
        "service": 8,
        "experiments": 9,
        "analysis": 9,
        "": 10,  # the repro package root / façade
    }

    #: (source package, target package) edges banned at ANY runtime scope
    #: — even function-local deferred imports.  Each value is the reason
    #: reported with the violation.
    BANNED_PAIRS = {
        ("engine", "session"): (
            "repro.engine must not import repro.session at runtime "
            "(TYPE_CHECKING-only); the engine stays "
            "session-agnostic (PR 6)"
        ),
        ("session", "service"): (
            "repro.session must not import repro.service at runtime "
            "(TYPE_CHECKING-only); the session stays servable without "
            "the serving layer (PR 9)"
        ),
    }

    @classmethod
    def _package(cls, module: str) -> str | None:
        if module == "repro":
            return ""
        if not module.startswith("repro."):
            return None
        return module.split(".")[1]

    def check_module(
        self, mod: ModuleInfo, project: Project
    ) -> Iterable[Violation]:
        src_pkg = self._package(mod.module)
        if src_pkg is None or src_pkg == "":
            return  # non-repro file, or the façade itself (imports anything)
        src_layer = self.LAYERS.get(src_pkg)
        if src_layer is None:
            return
        for edge in project.imports_of(mod.module):
            tgt_pkg = self._package(edge.target)
            if tgt_pkg is None or not edge.runtime:
                continue
            banned = self.BANNED_PAIRS.get((src_pkg, tgt_pkg))
            if banned is not None:
                yield Violation(
                    mod.display_path, edge.line, edge.col, self.id, banned
                )
                continue
            tgt_layer = self.LAYERS.get(tgt_pkg)
            if (
                edge.module_scope
                and tgt_layer is not None
                and tgt_layer > src_layer
                and tgt_pkg != src_pkg
            ):
                name = f"repro.{tgt_pkg}" if tgt_pkg else "repro"
                yield Violation(
                    mod.display_path,
                    edge.line,
                    edge.col,
                    self.id,
                    f"module-scope import of {name} (layer {tgt_layer}) "
                    f"from repro.{src_pkg} (layer {src_layer}) points up "
                    "the ladder; defer it into the call site or guard "
                    "with TYPE_CHECKING",
                )


class RegistryRule(Rule):
    """RPR005 — registries are append-only.

    Contract (PRs 3–6): the selection vocabularies — planner strategies,
    schedule policies, event kinds, cluster presets, scenario axes (and
    this linter's own rule registry) — feed fingerprints, canonical
    comparison orders and persisted artifacts.  They may only ever be
    appended to: reassignment, deletion, popping, clearing, in-place
    sorting or wholesale ``update`` re-keys caches and reorders canonical
    iteration silently.
    """

    id = "RPR005"
    title = "registries may only be appended to"
    contract = "PRs 3-6: append-only registries"

    WATCHED = (
        "PLANNERS",
        "_REGISTRY",
        "SCHEDULE_POLICIES",
        "EVENT_KINDS",
        "CLUSTER_PRESETS",
        "DEVICE_REGISTRY",
        "SCENARIOS",
        "PRESET_BUILDERS",
        "RULES",
        "COLLECTIVE_MODELS",
    )
    _MUTATORS = (
        "clear",
        "discard",
        "insert",
        "pop",
        "popitem",
        "remove",
        "reverse",
        "sort",
        "update",
    )

    def _watched_name(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name) and node.id in self.WATCHED:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in self.WATCHED:
            return node.attr
        return None

    def check_module(
        self, mod: ModuleInfo, project: Project
    ) -> Iterable[Violation]:
        defined_at_module_scope: set[str] = set()

        def walk(node: ast.AST, module_scope: bool) -> Iterator[Violation]:
            for child in ast.iter_child_nodes(node):
                child_scope = module_scope and not isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                )
                yield from self._check_stmt(
                    child, mod, module_scope, defined_at_module_scope
                )
                yield from walk(child, child_scope)

        yield from walk(mod.tree, True)

    def _check_stmt(
        self,
        node: ast.AST,
        mod: ModuleInfo,
        module_scope: bool,
        defined: set[str],
    ) -> Iterator[Violation]:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                name = self._watched_name(target)
                if name is None:
                    continue
                is_definition = (
                    module_scope
                    and isinstance(target, ast.Name)
                    and not isinstance(node, ast.AugAssign)
                    and name not in defined
                )
                if is_definition:
                    defined.add(name)
                else:
                    yield mod.violation(
                        node,
                        self.id,
                        f"registry {name} is append-only; rebinding it "
                        "replaces/reorders the canonical vocabulary — "
                        "append entries instead",
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                inner = (
                    target.value if isinstance(target, ast.Subscript) else target
                )
                name = self._watched_name(inner)
                if name is not None:
                    yield mod.violation(
                        node,
                        self.id,
                        f"registry {name} is append-only; del removes "
                        "registered entries",
                    )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._MUTATORS
        ):
            name = self._watched_name(node.func.value)
            if name is not None:
                yield mod.violation(
                    node,
                    self.id,
                    f"registry {name} is append-only; .{node.func.attr}() "
                    "removes, reorders or overwrites entries — register "
                    "new entries individually",
                )


class ImmutableRule(Rule):
    """RPR006 — published DFGs and session templates are immutable.

    Contract (PR 1 "per-op segments" + PR 4 "per-query state is fresh"):
    incremental replay retains published ``LocalDFG`` segments and the
    session shares one cached template across queries, so in-place
    mutation of a node's ``duration`` or anything reached through
    ``.template`` corrupts every consumer that already holds a reference.
    Assemble a fresh DFG from segments; planners mutate ``replayer.dags``,
    never ``ctx.template``.
    """

    id = "RPR006"
    title = "no in-place mutation of published DFG durations / templates"
    contract = "PR 1: per-op segments; PR 4: fresh per-query state"

    def check_module(
        self, mod: ModuleInfo, project: Project
    ) -> Iterable[Violation]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                if _chain_contains_template(target):
                    yield mod.violation(
                        node,
                        self.id,
                        "stores through .template mutate the shared cached "
                        "template; copy() it and mutate the copy (PR 4)",
                    )
                elif (
                    isinstance(target, ast.Attribute)
                    and target.attr == "duration"
                    and not (
                        isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    )
                ):
                    yield mod.violation(
                        node,
                        self.id,
                        "published DFG node durations are frozen; assemble "
                        "a fresh LocalDFG from retained segments (PR 1)",
                    )


class KernelBufferRule(Rule):
    """RPR007 — compiled kernel buffers are frozen; never mutate in place.

    Contract (PR 8, "compiled array kernel"): :mod:`repro.kernel` publishes
    its compiled arrays with ``writeable=False`` because one
    ``CompiledLocal``/``CompiledGlobal`` is shared by every simulate call
    and every batched what-if row between fingerprint changes — an in-place
    write would silently corrupt all of them while the bit-parity oracle
    keeps passing on fresh compilations.  Consumers must treat anything a
    ``repro.kernel`` entry point returns as immutable: no subscript stores,
    no ``.flags``/``setflags`` unfreezing, and no handing the buffers to
    ``out=`` parameters of array ops.  Derive fresh arrays instead (the
    batch evaluator's ``candidate_row`` splice idiom).
    """

    id = "RPR007"
    title = "no in-place mutation of compiled kernel buffers"
    contract = "PR 8: compiled array kernel"

    #: the kernel package itself builds the buffers it later freezes.
    SCOPE_EXEMPT = ("repro.kernel",)

    def _in_scope(self, module: str) -> bool:
        return not any(
            module == p or module.startswith(p + ".") for p in self.SCOPE_EXEMPT
        )

    @staticmethod
    def _tracked_names(mod: ModuleInfo, aliases: dict[str, str]) -> set[str]:
        """Names bound (anywhere) from a ``repro.kernel`` entry-point call."""
        tracked: set[str] = set()
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            origin = _resolve_call(node.value.func, aliases)
            if origin is None or not (
                origin == "repro.kernel" or origin.startswith("repro.kernel.")
            ):
                continue
            for target in node.targets:
                elts = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for elt in elts:
                    if isinstance(elt, ast.Name):
                        tracked.add(elt.id)
        return tracked

    def check_module(
        self, mod: ModuleInfo, project: Project
    ) -> Iterable[Violation]:
        if not self._in_scope(mod.module):
            return
        aliases = _import_aliases(mod)
        tracked = self._tracked_names(mod, aliases)
        if not tracked:
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if _chain_root(target) not in tracked:
                        continue
                    if isinstance(target, ast.Subscript):
                        yield mod.violation(
                            node,
                            self.id,
                            "subscript store into a compiled kernel buffer; "
                            "the arrays are frozen and shared — build a "
                            "fresh array (PR 8)",
                        )
                    elif (
                        isinstance(target, ast.Attribute)
                        and _chain_has_attr(target, "flags")
                    ):
                        yield mod.violation(
                            node,
                            self.id,
                            ".flags writes unfreeze a published kernel "
                            "buffer; recompile instead of mutating (PR 8)",
                        )
                    elif isinstance(node, ast.AugAssign) and isinstance(
                        target, ast.Attribute
                    ):
                        yield mod.violation(
                            node,
                            self.id,
                            "augmented assignment mutates a compiled kernel "
                            "buffer in place; derive a fresh array (PR 8)",
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "setflags"
                    and _chain_root(node.func.value) in tracked
                ):
                    yield mod.violation(
                        node,
                        self.id,
                        "setflags() unfreezes a published kernel buffer; "
                        "recompile instead of mutating (PR 8)",
                    )
                    continue
                for kw in node.keywords:
                    if kw.arg == "out" and _chain_root(kw.value) in tracked:
                        yield mod.violation(
                            node,
                            self.id,
                            "out= targets a compiled kernel buffer; array "
                            "ops must allocate their result (PR 8)",
                        )


def _chain_root(node: ast.expr) -> str | None:
    """Root ``Name`` id of an attribute/subscript chain, else ``None``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _chain_has_attr(node: ast.expr, attr: str) -> bool:
    """True if any attribute access in the chain is named ``attr``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and node.attr == attr:
            return True
        node = node.value
    return False


def _chain_contains_template(node: ast.expr) -> bool:
    """True if the *receiver* chain of an attribute/subscript store passes
    through something called ``template`` (``ctx.template.x = ...``,
    ``template.nodes[0].duration = ...``)."""
    current = node.value if isinstance(node, (ast.Attribute, ast.Subscript)) else node
    while True:
        if isinstance(current, ast.Attribute):
            if current.attr == "template":
                return True
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Name):
            return current.id == "template"
        else:
            return False


register_rule(StableHashRule())
register_rule(WallClockRule())
register_rule(RankIndexRule())
register_rule(LayeringRule())
register_rule(RegistryRule())
register_rule(ImmutableRule())
register_rule(KernelBufferRule())
