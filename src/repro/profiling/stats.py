"""Indicator statistics (workflow step 2, "Indicator Statistics").

Proposition 3 needs, per adjustable operator: activation/weight/gradient
norms, dimensionalities, fixed-point scaling factors and effective exponents.
Two collection paths:

* :func:`collect_model_stats` — instrument a *real* trainable model and run
  a few iterations, recording running means (the paper uses the running mean
  of the first 50 iterations, at half batch size, Sec. IV-A).
* :func:`synthesize_stats` — for the full-size catalog graphs (which this
  reproduction cannot execute), generate statistics from the documented
  empirical regularities of trained DNNs: unit-scale activations whose
  norms grow with sqrt(elements), gradient magnitudes decaying with depth.
  This substitution is recorded in DESIGN.md §4.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

import numpy as np

from repro.common.rng import derive_seed, new_rng
from repro.graph.dag import PrecisionDAG
from repro.quant.fixed_point import FixedPointQuantizer
from repro.quant.variance import effective_exponent
from repro.tensor.modules import Module
from repro.tensor.tensor import Tensor


@dataclasses.dataclass
class OperatorStats:
    """Running-mean statistics of one adjustable operator.

    Naming follows Eq. (4)/(5): ``v`` the input activation, ``x`` the
    weight, ``grad_v`` the activation gradient.
    """

    act_norm_sq: float = 0.0  # ||v_hat||^2
    weight_norm_sq: float = 0.0  # ||x||^2
    grad_norm_sq: float = 0.0  # ||grad_v||^2
    act_dims: int = 0  # D_v
    weight_dims: int = 0  # D_x
    grad_dims: int = 0  # D_grad_v
    act_scale: float = 0.0  # q_v (8-bit fixed-point scale)
    weight_scale: float = 0.0  # q_x
    act_exp: float = 0.0  # e_v
    weight_exp: float = 0.0  # e_x
    grad_exp: float = 0.0  # e_grad_v
    _counts: dict = dataclasses.field(default_factory=dict, repr=False)

    @property
    def samples(self) -> int:
        """Observations folded in (max over fields — forward and backward
        statistics arrive through separate hooks)."""
        return max(self._counts.values(), default=0)

    def update(self, **kwargs: float) -> None:
        """Fold one observation into the per-field running means."""
        for key, value in kwargs.items():
            if key.endswith("dims"):
                setattr(self, key, int(value))
                continue
            n = self._counts.get(key, 0)
            prev = getattr(self, key)
            setattr(self, key, (prev * n + float(value)) / (n + 1))
            self._counts[key] = n + 1


class StatsRecorder:
    """Forward/backward instrumentation target installed on modules.

    The module layer calls :meth:`record_forward` with the raw activation
    and weight arrays and :meth:`record_backward` with the activation
    gradient; everything needed by Eq. (4)/(5) is derived here so the hot
    path stays a handful of vectorized reductions.
    """

    def __init__(self) -> None:
        self.stats: dict[str, OperatorStats] = defaultdict(OperatorStats)
        self._quantizer = FixedPointQuantizer(bits=8)
        self.enabled = True

    def record_forward(self, key: str, activation: np.ndarray, weight: np.ndarray) -> None:
        if not self.enabled:
            return
        q_act = float(self._quantizer.compute_qparams(activation)[0].max())
        q_w = float(self._quantizer.compute_qparams(weight)[0].max())
        self.stats[key].update(
            act_norm_sq=float(np.sum(activation**2)),
            weight_norm_sq=float(np.sum(weight**2)),
            act_dims=activation.size,
            weight_dims=weight.size,
            act_scale=q_act,
            weight_scale=q_w,
            act_exp=effective_exponent(activation),
            weight_exp=effective_exponent(weight),
        )

    def record_backward(self, key: str, grad: np.ndarray) -> None:
        if not self.enabled:
            return
        self.stats[key].update(
            grad_norm_sq=float(np.sum(grad**2)),
            grad_dims=grad.size,
            grad_exp=effective_exponent(grad),
        )

    def snapshot(self) -> dict[str, OperatorStats]:
        return dict(self.stats)


def _probe(x: Tensor, recorder: StatsRecorder, key: str, weight: Tensor) -> Tensor:
    """Identity op that records forward stats now, backward stats later.

    Built with ``requires_grad=True`` unconditionally so the activation
    gradient reaches the probe even for the first layer (whose raw input is
    a constant) — the paper's Eq. (5) needs ``grad v`` for every adjustable
    operator.
    """
    recorder.record_forward(key, x.data, weight.data)

    def backward(g):
        recorder.record_backward(key, g)
        return (g,)

    return Tensor(
        x.data,
        requires_grad=True,
        parents=(x,),
        backward_fn=backward,
        op=f"stats_probe:{key}",
    )


def install_recorder(model: Module, recorder: StatsRecorder) -> list[str]:
    """Wrap every adjustable module's forward with a stats probe.

    Returns the instrumented module paths.  Monkey-patches bound ``forward``
    methods — acceptable for a profiling tool that owns the model instance.
    """
    from repro.tensor.qmodules import QuantizedOp

    instrumented = []
    for path, mod in QuantizedOp.adjustable_modules(model).items():
        original_forward = mod.forward

        def wrapped(x, _orig=original_forward, _mod=mod, _path=path):
            x = _probe(x, recorder, _path, _mod.weight)
            return _orig(x)

        mod.forward = wrapped
        instrumented.append(path)
    return instrumented


def collect_model_stats(
    model: Module,
    data_iter,
    loss_fn,
    iterations: int = 50,
) -> dict[str, OperatorStats]:
    """Run ``iterations`` forward/backward passes recording statistics.

    ``data_iter`` yields ``(inputs, labels)``; ``loss_fn(model, inputs,
    labels)`` returns a scalar Tensor.  No optimizer step is taken — the
    paper profiles statistics on (half-batch) replay of early training.
    """
    recorder = StatsRecorder()
    install_recorder(model, recorder)
    for it, (inputs, labels) in enumerate(data_iter):
        if it >= iterations:
            break
        model.zero_grad()
        loss = loss_fn(model, inputs, labels)
        loss.backward()
    return recorder.snapshot()


# ---------------------------------------------------------------------------
# synthesized statistics for non-executable (full-size) graphs
# ---------------------------------------------------------------------------


def synthesize_stats(dag: PrecisionDAG, seed: int = 0) -> dict[str, OperatorStats]:
    """Plausible statistics for every adjustable op of a catalog graph.

    Model: activations are ~unit-RMS (BN/LN-normalized nets), so
    ``||v||^2 ~ D_v``; weights follow He/Glorot scales; activation-gradient
    RMS decays geometrically with depth below the loss (deeper ops see
    larger gradients).  A lognormal per-op factor (deterministic in ``seed``)
    breaks ties so rankings are non-trivial.
    """
    stats: dict[str, OperatorStats] = {}
    d_max = dag.max_depth()
    for name in dag.adjustable_ops():
        spec = dag.spec(name)
        if not spec.has_weight:
            continue
        rng = new_rng(derive_seed(seed, "synth", name))
        depth = dag.depth(name)
        d_v = int(np.sum([dag.spec(p).output_elems for p in dag.predecessors(name)]))
        d_v = max(d_v, 1)
        d_x = spec.weight_elems
        d_g = spec.output_elems
        jitter = float(rng.lognormal(mean=0.0, sigma=0.25))
        act_rms = 1.0 * jitter
        fan_in = max(d_x // max(spec.weight_shape[0], 1), 1)
        weight_rms = float(np.sqrt(2.0 / fan_in))
        # Gradient RMS grows toward the loss: ops near the output see the
        # loss gradient nearly undamped.
        grad_rms = 1e-3 * (0.9 ** (d_max - depth)) * jitter
        s = OperatorStats(
            act_norm_sq=act_rms**2 * d_v,
            weight_norm_sq=weight_rms**2 * d_x,
            grad_norm_sq=grad_rms**2 * d_g,
            act_dims=d_v,
            weight_dims=d_x,
            grad_dims=d_g,
            # INT8 scale ~ range/255 with range ~ 8 RMS.
            act_scale=8.0 * act_rms / 255.0,
            weight_scale=8.0 * weight_rms / 255.0,
            act_exp=float(np.floor(np.log2(max(4.0 * act_rms, 1e-12)))),
            weight_exp=float(np.floor(np.log2(max(4.0 * weight_rms, 1e-12)))),
            grad_exp=float(np.floor(np.log2(max(4.0 * grad_rms, 1e-12)))),
        )
        stats[name] = s
    return stats
