"""The memory predictor ``M_i(.)`` of problem (1).

"Memory consumption of training on device i can be obtained ... by profiling
and accumulating memory consumption based on operator precision in local
precision DAG G_i" (Sec. IV-B).  The accounting follows standard DNN training
memory anatomy:

* master weights — FP32 always (mixed-precision training keeps an FP32 copy);
* low-precision weight copies — at the op's forward precision when < FP32;
* weight gradients — FP32 (LP-PyTorch outputs weight grads in FP32, Sec. VI);
* optimizer state — ``optimizer_slots`` FP32 tensors per weight
  (1 for SGD+momentum, 2 for Adam);
* saved activations — what the backward pass actually needs per operator
  kind (this is where quantization buys most of its memory):

  - GEMM-like ops (conv/linear/matmul) save their operands at the *kernel*
    precision — an INT8 kernel stashes the already-quantized tensors, the
    ActNN-style saving QSync inherits;
  - normalization and GELU follow the recompute-from-input policy standard
    in memory-efficient backends (their backward re-derives what it needs
    from the producer's saved tensor + tiny per-channel stats): zero
    retained bytes;
  - softmax retains its output (its backward needs it) at its effective
    precision; embeddings retain their output as the encoder's input;
  - pure elementwise ops (ReLU/MaxPool/Add/Dropout/Flatten) save a 1-byte
    mask/index per element regardless of precision;

* workspace — transient buffers, modelled as the two largest activations.
"""

from __future__ import annotations

import dataclasses

from repro.common.dtypes import Precision
from repro.graph.dag import PrecisionDAG
from repro.graph.ops import OpKind
from repro.graph.propagation import effective_precisions

#: Ops whose backward needs only a mask / indices, not the activation.
_MASK_KINDS = frozenset(
    {OpKind.RELU, OpKind.MAXPOOL, OpKind.ADD, OpKind.DROPOUT, OpKind.FLATTEN}
)

#: Ops that save their tensors at the kernel (assigned) precision.
_GEMM_KINDS = frozenset({OpKind.CONV2D, OpKind.LINEAR, OpKind.MATMUL})

#: Ops whose backward recomputes from the producer's saved tensor.
_RECOMPUTE_KINDS = frozenset(
    {OpKind.BATCHNORM, OpKind.LAYERNORM, OpKind.GELU}
)


def op_memory_contribution(
    spec, assigned: Precision, effective: Precision
) -> tuple[int, int]:
    """(low-precision weight-copy bytes, retained activation bytes) of one op.

    The single source of truth for the per-operator accounting policy —
    shared by :meth:`MemoryModel.estimate` (full walk) and the Cost Mapper's
    incrementally maintained memory components, so the delta path cannot
    drift from the reference.
    """
    wcopy = 0
    if spec.has_weight and assigned is not Precision.FP32:
        wcopy = spec.weight_elems * assigned.nbytes
    kind = spec.kind
    if kind in (OpKind.LOSS, OpKind.INPUT) or kind in _RECOMPUTE_KINDS:
        return wcopy, 0
    if kind in _MASK_KINDS:
        per_elem = 1  # mask / pooling indices
    elif kind in _GEMM_KINDS:
        per_elem = assigned.nbytes  # saved at kernel precision
    else:
        per_elem = effective.nbytes
    return wcopy, spec.output_elems * per_elem


@dataclasses.dataclass(frozen=True)
class MemoryEstimate:
    """Byte-level breakdown of one device's training footprint."""

    weights: int
    weight_copies: int
    gradients: int
    optimizer: int
    activations: int
    workspace: int

    @property
    def total(self) -> int:
        return (
            self.weights
            + self.weight_copies
            + self.gradients
            + self.optimizer
            + self.activations
            + self.workspace
        )


class MemoryModel:
    """Estimates training memory for a precision-annotated DAG.

    Parameters
    ----------
    optimizer_slots:
        FP32 state tensors per parameter tensor (SGD+momentum: 1, Adam: 2).
    """

    def __init__(self, optimizer_slots: int = 1) -> None:
        if optimizer_slots < 0:
            raise ValueError("optimizer_slots must be >= 0")
        self.optimizer_slots = optimizer_slots

    def estimate(self, dag: PrecisionDAG) -> MemoryEstimate:
        fp32 = Precision.FP32.nbytes
        effective = effective_precisions(dag)
        weights = 0
        weight_copies = 0
        gradients = 0
        activations = 0
        act_sizes: list[int] = []
        for name in dag.nodes():
            spec = dag.spec(name)
            assigned = dag.precision(name)
            if spec.has_weight:
                weights += spec.weight_elems * fp32
                gradients += spec.weight_elems * fp32
            wcopy, act_bytes = op_memory_contribution(
                spec, assigned, effective[name]
            )
            weight_copies += wcopy
            activations += act_bytes
            act_sizes.append(act_bytes)
        optimizer = self.optimizer_slots * weights
        act_sizes.sort(reverse=True)
        workspace = int(sum(act_sizes[:2]))
        return MemoryEstimate(
            weights=weights,
            weight_copies=weight_copies,
            gradients=gradients,
            optimizer=optimizer,
            activations=activations,
            workspace=workspace,
        )

    def fits(self, dag: PrecisionDAG, budget_bytes: int) -> bool:
        """``M_i({b_io}) <= M_i^max``."""
        return self.estimate(dag).total <= budget_bytes
