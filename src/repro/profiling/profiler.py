"""Operator cost catalogs (workflow step 2, "Operator Cost").

For every operator of a model DAG and every precision its kernels exist at,
the profiler runs repeated backend measurements and stores the mean forward
and backward latency.  The Replayer later *looks these up* (the ``CC_i`` of
Algorithm 1) instead of re-measuring — mirroring how the paper profiles once
on the target hardware and replays offline.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.backend.lp_backend import LPBackend
from repro.common.dtypes import Precision
from repro.graph.dag import PrecisionDAG
from repro.graph.ops import OperatorSpec


@dataclasses.dataclass(frozen=True)
class OperatorCost:
    """Mean measured latencies of one (operator, precision) pair."""

    forward: float
    backward: float

    @property
    def total(self) -> float:
        return self.forward + self.backward


class OperatorCostCatalog:
    """``(op name, precision) -> OperatorCost`` for one device."""

    def __init__(self, device_name: str) -> None:
        self.device_name = device_name
        self._costs: dict[tuple[str, Precision], OperatorCost] = {}
        self._input_elems: dict[str, int] = {}

    def put(self, op: str, precision: Precision, cost: OperatorCost) -> None:
        self._costs[(op, precision)] = cost

    def get(self, op: str, precision: Precision) -> OperatorCost:
        key = (op, precision)
        if key not in self._costs:
            raise KeyError(
                f"no profile for op {op!r} at {precision.value} on "
                f"{self.device_name}"
            )
        return self._costs[key]

    def has(self, op: str, precision: Precision) -> bool:
        return (op, precision) in self._costs

    def input_elems(self, op: str) -> int:
        return self._input_elems.get(op, 0)

    def __len__(self) -> int:
        return len(self._costs)


def _op_input_elems(dag: PrecisionDAG, name: str) -> int:
    """Total elements flowing into an op = sum of predecessors' outputs."""
    preds = dag.predecessors(name)
    if not preds:
        return 0
    return int(sum(dag.spec(p).output_elems for p in preds))


def profile_operator_costs(
    dag: PrecisionDAG,
    backend: LPBackend,
    repeats: int = 3,
) -> OperatorCostCatalog:
    """Measure every op at every device-supported precision it has kernels
    for; average ``repeats`` noisy samples per entry."""
    catalog = OperatorCostCatalog(backend.device.name)
    for name in dag.topo_order():
        spec: OperatorSpec = dag.spec(name)
        input_elems = _op_input_elems(dag, name)
        catalog._input_elems[name] = input_elems
        for precision in spec.supported_precisions():
            if not backend.device.supports(precision):
                continue
            fwd = float(
                np.mean(
                    [
                        backend.measure_op_forward(spec, precision, input_elems, rep=r)
                        for r in range(repeats)
                    ]
                )
            )
            bwd = float(
                np.mean(
                    [
                        backend.measure_op_backward(spec, precision, input_elems, rep=r)
                        for r in range(repeats)
                    ]
                )
            )
            catalog.put(name, precision, OperatorCost(forward=fwd, backward=bwd))
    return catalog
