"""Casting-cost models — the ``CP`` calculator of Algorithm 1.

Every cast family (fp<->fp copy, fp->int quantization incl. MinMax and scale
computation, int->fp dequantization at either granularity) is "essentially a
kernel-level element-wise operation, so it can still be shaped as the linear
cost with respect to the tensor size" (Sec. IV-B).  We therefore fit one
:class:`LinearCostModel` per (src, dst) pair from backend measurements and
predict with it — the same two-phase profile-then-predict pipeline as the
paper's profiler.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.backend.lp_backend import LPBackend
from repro.common.dtypes import Precision


@dataclasses.dataclass
class LinearCostModel:
    """``t = intercept + slope * elems`` fitted by least squares."""

    slope: float
    intercept: float
    r2: float

    @classmethod
    def fit(cls, sizes: np.ndarray, times: np.ndarray) -> "LinearCostModel":
        """Least-squares fit; refuses degenerate inputs."""
        sizes = np.asarray(sizes, dtype=np.float64)
        times = np.asarray(times, dtype=np.float64)
        if sizes.size < 2:
            raise ValueError("need at least 2 samples to fit a line")
        design = np.stack([sizes, np.ones_like(sizes)], axis=1)
        coef, *_ = np.linalg.lstsq(design, times, rcond=None)
        pred = design @ coef
        ss_res = float(np.sum((times - pred) ** 2))
        ss_tot = float(np.sum((times - times.mean()) ** 2))
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        return cls(slope=float(coef[0]), intercept=float(coef[1]), r2=r2)

    def predict(self, elems: float) -> float:
        """Predicted seconds for a tensor of ``elems`` elements (>= 0)."""
        return max(self.intercept + self.slope * float(elems), 0.0)


#: Cast pairs that occur in mixed-precision graphs.
CAST_PAIRS: tuple[tuple[Precision, Precision], ...] = (
    (Precision.FP32, Precision.FP16),
    (Precision.FP16, Precision.FP32),
    (Precision.FP32, Precision.INT8),
    (Precision.FP16, Precision.INT8),
    (Precision.INT8, Precision.FP32),
    (Precision.INT8, Precision.FP16),
)


class CastCostCalculator:
    """Per-device family of fitted casting-cost models.

    Parameters
    ----------
    backend:
        The device's LP backend, measured during :meth:`fit`.
    sizes:
        Element counts swept while profiling (default spans the activation
        sizes of the catalog models).
    repeats:
        Measurements averaged per size (profiling noise reduction).
    """

    def __init__(
        self,
        backend: LPBackend,
        sizes: tuple[int, ...] = (2_048, 65_536, 262_144, 1_048_576, 8_388_608),
        repeats: int = 3,
    ) -> None:
        self.backend = backend
        self.sizes = sizes
        self.repeats = repeats
        self._models: dict[tuple[Precision, Precision], LinearCostModel] = {}
        self._fit()

    def _fit(self) -> None:
        for src, dst in CAST_PAIRS:
            times = []
            for size in self.sizes:
                samples = [
                    self.backend.measure_cast(src, dst, size, rep=r)
                    for r in range(self.repeats)
                ]
                times.append(float(np.mean(samples)))
            self._models[(src, dst)] = LinearCostModel.fit(
                np.asarray(self.sizes, dtype=np.float64), np.asarray(times)
            )

    @classmethod
    def from_fitted(
        cls,
        backend: LPBackend,
        sizes: tuple[int, ...],
        repeats: int,
        models: dict[tuple[Precision, Precision], LinearCostModel],
    ) -> "CastCostCalculator":
        """Rebind already-fitted models to a live backend *without*
        re-measuring — the persistent-store warm-start path.  Predictions
        read only the fitted coefficients, so a rebuilt calculator is
        bit-identical to the one that was serialized.
        """
        calc = cls.__new__(cls)
        calc.backend = backend
        calc.sizes = tuple(int(s) for s in sizes)
        calc.repeats = int(repeats)
        calc._models = dict(models)
        return calc

    # ------------------------------------------------------------------
    def model(self, src: Precision, dst: Precision) -> LinearCostModel:
        return self._models[(src, dst)]

    def predict(self, src: Precision, dst: Precision, elems: int) -> float:
        """Predicted cast latency; zero for same-precision or empty casts.

        This is the ``CP.predict(b_src, b_dst, shape)`` call of Algorithm 1.
        """
        if src is dst or elems <= 0:
            return 0.0
        return self._models[(src, dst)].predict(elems)

    def worst_fit_r2(self) -> float:
        """Smallest R² across the fitted family (fit-quality diagnostics)."""
        return min(m.r2 for m in self._models.values())
