"""Profile persistence.

The paper's workflow profiles on the target hardware once, then replays and
allocates offline.  These helpers serialize the profiling artifacts —
operator cost catalogs and precision plans — to plain JSON so a planning
session can run on a different machine (or later) without re-measuring.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.common.dtypes import parse_precision
from repro.profiling.profiler import OperatorCost, OperatorCostCatalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.plan import PrecisionPlan


def catalog_to_dict(catalog: OperatorCostCatalog) -> dict:
    """JSON-able representation of a cost catalog."""
    return {
        "device": catalog.device_name,
        "input_elems": dict(catalog._input_elems),
        "costs": [
            {
                "op": op,
                "precision": prec.value,
                "forward": cost.forward,
                "backward": cost.backward,
            }
            for (op, prec), cost in catalog._costs.items()
        ],
    }


def catalog_from_dict(data: dict) -> OperatorCostCatalog:
    """Inverse of :func:`catalog_to_dict`."""
    catalog = OperatorCostCatalog(data["device"])
    catalog._input_elems.update(
        {op: int(v) for op, v in data.get("input_elems", {}).items()}
    )
    for entry in data["costs"]:
        catalog.put(
            entry["op"],
            parse_precision(entry["precision"]),
            OperatorCost(forward=float(entry["forward"]),
                         backward=float(entry["backward"])),
        )
    return catalog


def save_catalog(catalog: OperatorCostCatalog, path: str | Path) -> None:
    """Write a catalog to ``path`` as JSON."""
    Path(path).write_text(json.dumps(catalog_to_dict(catalog), indent=1))


def load_catalog(path: str | Path) -> OperatorCostCatalog:
    """Read a catalog previously written by :func:`save_catalog`."""
    return catalog_from_dict(json.loads(Path(path).read_text()))


def save_plan(plan: PrecisionPlan, path: str | Path) -> None:
    """Write a precision plan to ``path`` as JSON."""
    Path(path).write_text(json.dumps(plan.to_dict(), indent=1))


def load_plan(path: str | Path) -> PrecisionPlan:
    """Read a plan previously written by :func:`save_plan`."""
    # Deferred: profiling sits below core on the import ladder (RPR004);
    # plan (de)serialization is a call-time delegation upward.
    from repro.core.plan import PrecisionPlan

    return PrecisionPlan.from_dict(json.loads(Path(path).read_text()))
