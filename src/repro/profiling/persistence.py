"""Profile persistence.

The paper's workflow profiles on the target hardware once, then replays and
allocates offline.  These helpers serialize the profiling artifacts —
operator cost catalogs, cast-cost fits, synthesized indicator statistics,
and precision plans — to plain JSON so a planning session can run on a
different machine (or later) without re-measuring.

Round trips are *exact*: every float survives ``json`` byte-for-byte
(shortest-repr encoding) and every list preserves order, so an artifact
loaded from disk drives the planner to bit-identical results — the
invariant the persistent :class:`repro.service.PersistentProfileStore`
leans on.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.common.dtypes import parse_precision
from repro.profiling.casting import CastCostCalculator, LinearCostModel
from repro.profiling.profiler import OperatorCost, OperatorCostCatalog
from repro.profiling.stats import OperatorStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backend.lp_backend import LPBackend
    from repro.core.plan import PrecisionPlan


def catalog_to_dict(catalog: OperatorCostCatalog) -> dict:
    """JSON-able representation of a cost catalog."""
    return {
        "device": catalog.device_name,
        "input_elems": dict(catalog._input_elems),
        "costs": [
            {
                "op": op,
                "precision": prec.value,
                "forward": cost.forward,
                "backward": cost.backward,
            }
            for (op, prec), cost in catalog._costs.items()
        ],
    }


def catalog_from_dict(data: dict) -> OperatorCostCatalog:
    """Inverse of :func:`catalog_to_dict`."""
    catalog = OperatorCostCatalog(data["device"])
    catalog._input_elems.update(
        {op: int(v) for op, v in data.get("input_elems", {}).items()}
    )
    for entry in data["costs"]:
        catalog.put(
            entry["op"],
            parse_precision(entry["precision"]),
            OperatorCost(forward=float(entry["forward"]),
                         backward=float(entry["backward"])),
        )
    return catalog


def save_catalog(catalog: OperatorCostCatalog, path: str | Path) -> None:
    """Write a catalog to ``path`` as JSON."""
    Path(path).write_text(json.dumps(catalog_to_dict(catalog), indent=1))


def load_catalog(path: str | Path) -> OperatorCostCatalog:
    """Read a catalog previously written by :func:`save_catalog`."""
    return catalog_from_dict(json.loads(Path(path).read_text()))


def cast_calc_to_dict(calc: CastCostCalculator) -> dict:
    """JSON-able representation of a fitted cast-cost calculator (the
    fitted coefficients and the fit configuration; the backend itself is
    rebound at load time)."""
    return {
        "sizes": [int(s) for s in calc.sizes],
        "repeats": int(calc.repeats),
        "models": [
            {
                "src": src.value,
                "dst": dst.value,
                "slope": model.slope,
                "intercept": model.intercept,
                "r2": model.r2,
            }
            for (src, dst), model in calc._models.items()
        ],
    }


def cast_calc_from_dict(data: dict, backend: "LPBackend") -> CastCostCalculator:
    """Inverse of :func:`cast_calc_to_dict`; ``backend`` must be the live
    backend the fits belong to (the caller keys artifacts so this holds)."""
    models = {}
    for entry in data["models"]:
        pair = (parse_precision(entry["src"]), parse_precision(entry["dst"]))
        models[pair] = LinearCostModel(
            slope=float(entry["slope"]),
            intercept=float(entry["intercept"]),
            r2=float(entry["r2"]),
        )
    return CastCostCalculator.from_fitted(
        backend,
        sizes=tuple(data["sizes"]),
        repeats=data["repeats"],
        models=models,
    )


def stats_to_dict(stats: Mapping[str, OperatorStats]) -> dict:
    """JSON-able representation of per-operator indicator statistics.

    Entries ride in a list (not an object) so the mapping's insertion order
    — the DAG's adjustable-op order — survives ``sort_keys`` dumps.
    """
    entries = []
    for name, s in stats.items():
        fields = dataclasses.asdict(s)
        counts = fields.pop("_counts")
        entries.append({"op": name, "fields": fields, "counts": counts})
    return {"stats": entries}


def stats_from_dict(data: dict) -> dict[str, OperatorStats]:
    """Inverse of :func:`stats_to_dict` (exact float round trip)."""
    out: dict[str, OperatorStats] = {}
    for entry in data["stats"]:
        s = OperatorStats(**entry["fields"])
        s._counts.update({k: int(v) for k, v in entry["counts"].items()})
        out[entry["op"]] = s
    return out


def save_plan(plan: PrecisionPlan, path: str | Path) -> None:
    """Write a precision plan to ``path`` as JSON."""
    Path(path).write_text(json.dumps(plan.to_dict(), indent=1))


def load_plan(path: str | Path) -> PrecisionPlan:
    """Read a plan previously written by :func:`save_plan`."""
    # Deferred: profiling sits below core on the import ladder (RPR004);
    # plan (de)serialization is a call-time delegation upward.
    from repro.core.plan import PrecisionPlan

    return PrecisionPlan.from_dict(json.loads(Path(path).read_text()))
