"""Profiling: cost catalogs, casting-cost models, memory estimation,
indicator statistics (workflow step 2).

* :mod:`repro.profiling.casting` — the family of *linear* casting-cost
  models (Sec. IV-B: "a collection of linear models to accurately predict
  the casting costs ... leveraging the tensor size as a parameter"), fit by
  least squares against backend measurements.
* :mod:`repro.profiling.profiler` — per-(operator, precision) forward and
  backward execution-cost catalogs from repeated backend measurements.
* :mod:`repro.profiling.memory` — the memory predictor ``M_i(.)``.
* :mod:`repro.profiling.stats` — indicator statistics collection: real
  instrumented mini-model runs, or analytically synthesized statistics for
  the full-size graphs.
"""

from repro.profiling.casting import CastCostCalculator, LinearCostModel
from repro.profiling.memory import MemoryEstimate, MemoryModel
from repro.profiling.persistence import (
    load_catalog,
    load_plan,
    save_catalog,
    save_plan,
)
from repro.profiling.profiler import OperatorCostCatalog, profile_operator_costs
from repro.profiling.stats import (
    OperatorStats,
    StatsRecorder,
    collect_model_stats,
    synthesize_stats,
)

__all__ = [
    "LinearCostModel",
    "CastCostCalculator",
    "OperatorCostCatalog",
    "profile_operator_costs",
    "MemoryModel",
    "MemoryEstimate",
    "OperatorStats",
    "StatsRecorder",
    "collect_model_stats",
    "synthesize_stats",
    "load_catalog",
    "load_plan",
    "save_catalog",
    "save_plan",
]
