"""Exception taxonomy for the QSync reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class UnsupportedPrecisionError(ReproError):
    """An operator/device was asked to run in a precision it does not support.

    E.g. INT8 on a V100 (no INT8 tensor cores, Table I of the paper).
    """


class MemoryBudgetError(ReproError):
    """A precision plan exceeds a device's available memory ``M_i^max``."""


class GraphConsistencyError(ReproError):
    """A precision DAG / DFG violated a structural invariant."""


class KernelConfigError(ReproError):
    """An LP-PyTorch kernel template received an invalid configuration."""


class InfeasiblePlanError(ReproError):
    """No precision assignment satisfies the constraints of problem (1)."""
