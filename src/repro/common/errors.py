"""Exception taxonomy for the QSync reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class UnsupportedPrecisionError(ReproError):
    """An operator/device was asked to run in a precision it does not support.

    E.g. INT8 on a V100 (no INT8 tensor cores, Table I of the paper).
    """


class MemoryBudgetError(ReproError):
    """A precision plan exceeds a device's available memory ``M_i^max``."""


class GraphConsistencyError(ReproError):
    """A precision DAG / DFG violated a structural invariant."""


class KernelConfigError(ReproError):
    """An LP-PyTorch kernel template received an invalid configuration."""


class InfeasiblePlanError(ReproError):
    """No precision assignment satisfies the constraints of problem (1)."""


class QuorumLostError(ReproError):
    """A cluster ``leave`` event dropped membership below the configured
    quorum.

    The graceful-degradation contract of the elastic-membership subsystem
    (:mod:`repro.hardware.events`): any leave that keeps at least ``quorum``
    workers re-plans and continues; one that does not raises this typed
    error so callers can checkpoint/abort instead of silently training on a
    cluster too small to be meaningful.
    """
