"""Shared substrate: precision dtypes, physical units, RNG discipline, errors.

Everything else in :mod:`repro` builds on these primitives, so they are kept
dependency-free (numpy only) and heavily unit-tested.
"""

from repro.common.dtypes import (
    PRECISION_ORDER,
    Precision,
    higher_precision,
    lower_precision,
    parse_precision,
)
from repro.common.errors import (
    GraphConsistencyError,
    InfeasiblePlanError,
    KernelConfigError,
    MemoryBudgetError,
    ReproError,
    UnsupportedPrecisionError,
)
from repro.common.rng import new_rng, spawn_rngs
from repro.common.stable_hash import (
    canonical_encode,
    stable_digest,
    stable_hash,
    stable_mod,
    try_stable_digest,
)
from repro.common.units import (
    GB,
    GBPS,
    KB,
    MB,
    MS,
    TFLOPS,
    US,
    bytes_to_gb,
    bytes_to_mb,
    seconds_to_ms,
)

__all__ = [
    "Precision",
    "PRECISION_ORDER",
    "higher_precision",
    "lower_precision",
    "parse_precision",
    "ReproError",
    "UnsupportedPrecisionError",
    "MemoryBudgetError",
    "GraphConsistencyError",
    "KernelConfigError",
    "InfeasiblePlanError",
    "new_rng",
    "spawn_rngs",
    "canonical_encode",
    "stable_digest",
    "stable_hash",
    "stable_mod",
    "try_stable_digest",
    "KB",
    "MB",
    "GB",
    "MS",
    "US",
    "TFLOPS",
    "GBPS",
    "bytes_to_mb",
    "bytes_to_gb",
    "seconds_to_ms",
]
