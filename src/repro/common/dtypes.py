"""Precision formats used throughout QSync.

The paper selects operator precisions among ``INT8``, ``FP16`` and ``FP32``
(Sec. VII, "Benchmarks").  A :class:`Precision` carries everything the rest of
the system needs to reason about a format: bit width, storage bytes,
fixed-vs-floating point, and (for floats) the exponent/mantissa split used by
the variance theory of Proposition 2.
"""

from __future__ import annotations

import enum
from typing import Union


class Precision(enum.Enum):
    """A numeric format an operator can execute in.

    Members are ordered by bit width; :data:`PRECISION_ORDER` gives the
    canonical low-to-high ordering used by the Allocator when "recovering"
    operators to the next higher precision (Sec. V).
    """

    INT8 = "int8"
    FP16 = "fp16"
    FP32 = "fp32"

    # ------------------------------------------------------------------
    # format properties
    # ------------------------------------------------------------------
    @property
    def bits(self) -> int:
        """Total storage bits of the format."""
        return {Precision.INT8: 8, Precision.FP16: 16, Precision.FP32: 32}[self]

    @property
    def nbytes(self) -> int:
        """Storage bytes per element."""
        return self.bits // 8

    @property
    def is_floating_point(self) -> bool:
        return self in (Precision.FP16, Precision.FP32)

    @property
    def is_fixed_point(self) -> bool:
        return self is Precision.INT8

    @property
    def mantissa_bits(self) -> int:
        """Explicit mantissa bits (floats only).

        The paper's Proposition 2 uses ``epsilon = 2**-k`` with ``k = 9`` for
        float16: 10 stored mantissa bits give 9 fully-stochastic roundable
        bits in the paper's accounting, so we expose ``k`` directly as
        :meth:`stochastic_mantissa_bits`.
        """
        if self is Precision.FP16:
            return 10
        if self is Precision.FP32:
            return 23
        raise ValueError(f"{self} has no mantissa")

    @property
    def stochastic_mantissa_bits(self) -> int:
        """``k`` in Proposition 2 (``epsilon = 2**-k``); 9 for FP16."""
        if self is Precision.FP16:
            return 9
        if self is Precision.FP32:
            return 23
        raise ValueError(f"{self} has no mantissa")

    @property
    def exponent_bits(self) -> int:
        if self is Precision.FP16:
            return 5
        if self is Precision.FP32:
            return 8
        raise ValueError(f"{self} has no exponent")

    @property
    def max_exponent(self) -> int:
        """Largest unbiased exponent representable (IEEE-754 style)."""
        if self is Precision.FP16:
            return 15
        if self is Precision.FP32:
            return 127
        raise ValueError(f"{self} has no exponent")

    @property
    def min_exponent(self) -> int:
        """Smallest normal unbiased exponent."""
        if self is Precision.FP16:
            return -14
        if self is Precision.FP32:
            return -126
        raise ValueError(f"{self} has no exponent")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Precision.{self.name}"


#: Canonical low-to-high ordering used for precision "recovery".
PRECISION_ORDER: tuple[Precision, ...] = (
    Precision.INT8,
    Precision.FP16,
    Precision.FP32,
)


def parse_precision(value: Union[str, int, Precision]) -> Precision:
    """Coerce a user-supplied precision designator to a :class:`Precision`.

    Accepts the enum itself, names/values (``"fp16"``, ``"FP16"``) or bit
    widths (``8``, ``16``, ``32``) as used in the paper's notation ``b_io``.
    """
    if isinstance(value, Precision):
        return value
    if isinstance(value, int):
        by_bits = {8: Precision.INT8, 16: Precision.FP16, 32: Precision.FP32}
        if value not in by_bits:
            raise ValueError(f"no precision with bit width {value}")
        return by_bits[value]
    if isinstance(value, str):
        name = value.strip().lower()
        for prec in Precision:
            if name in (prec.value, prec.name.lower()):
                return prec
        raise ValueError(f"unknown precision {value!r}")
    raise TypeError(f"cannot interpret {value!r} as a precision")


def higher_precision(prec: Precision) -> Precision | None:
    """Next precision up in :data:`PRECISION_ORDER`, or ``None`` at the top.

    This is the ``ADD(b_io)`` operation of the Allocator's heap entries.
    """
    idx = PRECISION_ORDER.index(prec)
    if idx + 1 >= len(PRECISION_ORDER):
        return None
    return PRECISION_ORDER[idx + 1]


def lower_precision(prec: Precision) -> Precision | None:
    """Next precision down in :data:`PRECISION_ORDER`, or ``None`` at the bottom."""
    idx = PRECISION_ORDER.index(prec)
    if idx == 0:
        return None
    return PRECISION_ORDER[idx - 1]
