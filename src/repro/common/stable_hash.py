"""Process-stable hashing.

Python's builtin ``hash`` is salted per interpreter (``PYTHONHASHSEED``),
so any fingerprint or cache key derived from it dies at the process
boundary: a child worker computes a different key for the *same* graph and
every cross-process cache degenerates to a miss — or worse, "ground truth"
measurements indexed by such a hash change between runs.  Everything that
wants a key that survives process boundaries (the Replayer's cross-DAG
caches, the experiment artifact store, sweep cell fingerprints) must go
through this module instead.

The scheme is a canonical byte encoding (type-tagged, recursion-safe,
order-normalized for mappings) fed to ``hashlib.blake2b``.  Tuples and
lists encode identically on purpose: JSON round-trips turn tuples into
lists, and a fingerprint must not change just because a value crossed a
serialization boundary.
"""

from __future__ import annotations

import enum
import hashlib
import numbers
import struct
from typing import Any

__all__ = [
    "canonical_encode",
    "stable_digest",
    "stable_hash",
    "stable_mod",
    "try_stable_digest",
]


def canonical_encode(obj: Any) -> bytes:
    """Deterministic byte encoding of a JSON-like value tree.

    Supports ``None``, bools, ints, floats, strings, bytes, sequences
    (tuple/list, encoded identically), mappings (sorted by encoded key),
    sets/frozensets (sorted by encoded element) and :class:`enum.Enum`
    members (encoded by class and member name, not by ``value``, so an
    enum's payload representation may change without moving every
    fingerprint).  Numpy scalars ride along via the ``numbers`` ABCs.
    """
    out = bytearray()
    _encode(obj, out)
    return bytes(out)


def _encode(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += b"N"
    elif isinstance(obj, bool):
        out += b"T" if obj else b"F"
    elif isinstance(obj, enum.Enum):
        token = f"{type(obj).__name__}.{obj.name}".encode()
        out += b"E" + len(token).to_bytes(4, "big") + token
    elif isinstance(obj, numbers.Integral):
        token = str(int(obj)).encode()
        out += b"I" + len(token).to_bytes(4, "big") + token
    elif isinstance(obj, numbers.Real):
        # Bit-exact: distinguishes -0.0/0.0 and is total over NaN payloads.
        out += b"D" + struct.pack(">d", float(obj))
    elif isinstance(obj, str):
        token = obj.encode()
        out += b"S" + len(token).to_bytes(4, "big") + token
    elif isinstance(obj, (bytes, bytearray)):
        out += b"B" + len(obj).to_bytes(4, "big") + bytes(obj)
    elif isinstance(obj, (tuple, list)):
        out += b"L" + len(obj).to_bytes(4, "big")
        for item in obj:
            _encode(item, out)
    elif isinstance(obj, (set, frozenset)):
        encoded = sorted(canonical_encode(item) for item in obj)
        out += b"X" + len(encoded).to_bytes(4, "big")
        for item in encoded:
            out += item
    elif isinstance(obj, dict):
        pairs = sorted(
            (canonical_encode(k), canonical_encode(v)) for k, v in obj.items()
        )
        out += b"M" + len(pairs).to_bytes(4, "big")
        for k, v in pairs:
            out += k + v
    else:
        raise TypeError(
            f"canonical_encode: unsupported type {type(obj).__name__!r} "
            f"(value {obj!r}); pass primitives, sequences, mappings or enums"
        )


def stable_digest(obj: Any, *, digest_size: int = 16) -> str:
    """Hex blake2b digest of :func:`canonical_encode`; the artifact-store
    content address (32 hex chars at the default size)."""
    return hashlib.blake2b(
        canonical_encode(obj), digest_size=digest_size
    ).hexdigest()


def try_stable_digest(obj: Any, *, digest_size: int = 16) -> str | None:
    """:func:`stable_digest`, or ``None`` when the value tree contains a
    member :func:`canonical_encode` cannot represent (a callable, a built
    graph, a custom cost-model instance, ...).

    This is the content-vs-identity boundary of every fingerprint consumer:
    a ``None`` means "this value has no content address" — callers must fall
    back to treating the object as opaque (no cross-process key, no request
    coalescing) rather than inventing an identity-derived key.
    """
    try:
        return stable_digest(obj, digest_size=digest_size)
    except TypeError:
        return None


def stable_hash(obj: Any) -> int:
    """64-bit unsigned integer digest — a drop-in for builtin ``hash`` where
    an int key is wanted but must survive process boundaries."""
    raw = hashlib.blake2b(canonical_encode(obj), digest_size=8).digest()
    return int.from_bytes(raw, "big")


def stable_mod(obj: Any, mod: int) -> int:
    """``stable_hash(obj) % mod`` — stable replacement for the
    ``hash(x) % n`` bucket-index idiom."""
    if mod <= 0:
        raise ValueError("mod must be positive")
    return stable_hash(obj) % mod
