"""Physical units and conversions.

All internal quantities use SI base units: **bytes**, **seconds**, **FLOPs**.
These constants make call sites read like the datasheets they are calibrated
against (``15.7 * TFLOPS``, ``32 * GB``, ``300 * GBPS``).
"""

from __future__ import annotations

#: Storage units (binary, matching how GPU memory is marketed/reported).
KB: int = 1024
MB: int = 1024**2
GB: int = 1024**3

#: Time units expressed in seconds.
MS: float = 1e-3
US: float = 1e-6

#: Compute throughput: 1 TFLOPS = 1e12 floating-point operations per second.
TFLOPS: float = 1e12

#: Bandwidth: 1 GB/s, decimal as in interconnect datasheets.
GBPS: float = 1e9


def bytes_to_mb(nbytes: float) -> float:
    """Convert a byte count to mebibytes."""
    return nbytes / MB


def bytes_to_gb(nbytes: float) -> float:
    """Convert a byte count to gibibytes."""
    return nbytes / GB


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MS
