"""Random-number discipline.

Stochastic rounding makes the whole training stack randomized, so every
component that draws randomness takes an explicit ``numpy.random.Generator``.
These helpers centralize construction so experiments are reproducible and
workers in the data-parallel trainer get statistically independent streams.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def new_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a fresh PCG64 generator.

    ``None`` gives OS entropy; an int gives a reproducible stream.
    """
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, the recommended way to
    get parallel streams that are provably independent — one per simulated
    worker/device in :mod:`repro.parallel`.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed(seed: int, *keys: Iterable) -> int:
    """Mix arbitrary hashable keys into a base seed deterministically."""
    h = np.uint64(seed)
    for key in keys:
        for ch in str(key).encode():
            # FNV-1a style mixing, cheap and adequate for seeding.
            h = np.uint64((int(h) ^ ch) * 0x100000001B3 % (2**64))
    return int(h % (2**31 - 1))
