"""The Hessian (HAWQ-v3-style) sensitivity baseline [8].

"HESS computes the block-wise Hessian for each layer and calculates the top
eigenvalue, which is then divided by the parameter size and times the
introduced error of the quantization" (Sec. VII-A1).

Top eigenvalues come from power iteration with finite-difference
Hessian-vector products on the *weights* of each adjustable module:
``H v ≈ (∇L(w + εv) − ∇L(w)) / ε`` — the standard matrix-free scheme.  The
paper's critique — that this sees only the weight-loss curvature, not the
forward/backward kernel variance — is exactly what makes it lose to QSync's
indicator on ClusterB, and it emerges here for the same structural reason.
"""

from __future__ import annotations

import numpy as np

from repro.common.dtypes import Precision
from repro.common.rng import new_rng
from repro.profiling.stats import OperatorStats
from repro.quant.variance import fixed_point_variance
from repro.tensor.modules import Module
from repro.tensor.qmodules import QuantizedOp


def _model_grads(model: Module, loss_fn) -> dict[str, np.ndarray]:
    model.zero_grad()
    loss = loss_fn(model)
    loss.backward()
    return {
        name: (p.grad.copy() if p.grad is not None else np.zeros_like(p.data))
        for name, p in model.named_parameters()
    }


def hessian_top_eigenvalues(
    model: Module,
    loss_fn,
    power_iters: int = 8,
    eps: float = 1e-3,
    seed: int = 0,
) -> dict[str, float]:
    """Per-adjustable-module top Hessian eigenvalue (block-diagonal approx).

    Parameters
    ----------
    model:
        Executable model positioned at the weights to analyze.
    loss_fn:
        ``model -> scalar Tensor`` closure over a fixed data batch (the
        Hessian is of that batch's loss).
    power_iters:
        Power-iteration steps (HAWQ uses a handful; the eigenvalue gap of
        DNN blocks makes this converge fast).
    """
    rng = new_rng(seed)
    adjustable = QuantizedOp.adjustable_modules(model)
    base_grads = _model_grads(model, loss_fn)

    eigenvalues: dict[str, float] = {}
    for path, mod in adjustable.items():
        weight = mod.weight
        key = next(
            name for name, p in model.named_parameters() if p is weight
        )
        v = rng.normal(size=weight.data.shape)
        v /= np.linalg.norm(v) + 1e-30
        eig = 0.0
        original = weight.data.copy()
        for _ in range(power_iters):
            weight.data = original + eps * v
            grads_plus = _model_grads(model, loss_fn)
            weight.data = original
            hv = (grads_plus[key] - base_grads[key]) / eps
            eig = float(np.sum(v * hv))
            norm = np.linalg.norm(hv)
            if norm < 1e-30:
                break
            v = hv / norm
        weight.data = original
        eigenvalues[path] = abs(eig)
    model.zero_grad()
    return eigenvalues


def structural_eigenvalues(dag, stats: dict[str, OperatorStats]) -> dict[str, float]:
    """Gauss–Newton curvature proxy for graph-scale (non-executable) models.

    Power iteration needs real gradients, which the full-size catalog
    graphs don't have.  For a linear map the Gauss–Newton weight-block
    Hessian is ``x^T H_out x``, so its top eigenvalue scales with the
    squared input-activation norm — the same "weight-loss curvature only"
    view the paper critiques.  Deterministic in the profiled statistics,
    so plans (and parity tests) are reproducible without an executable
    twin.
    """
    return {
        op: float(stats[op].act_norm_sq)
        for op in dag.adjustable_ops()
        if op in stats
    }


class HessianIndicator:
    """HAWQ-style sensitivity conforming to :class:`IndicatorProtocol`.

    ``omega(op, INT8) = top_eig(op) / n_params(op) * E[||Q(w) - w||^2]``;
    the floating-point indicator is the fixed-point one halved per precision
    step, exactly the comparison protocol of Sec. VII-A1.
    """

    def __init__(
        self,
        eigenvalues: dict[str, float],
        stats: dict[str, OperatorStats],
    ) -> None:
        self.eigenvalues = eigenvalues
        self.stats = stats

    def omega(self, op: str, precision: Precision) -> float:
        if precision is Precision.FP32:
            return 0.0
        if op not in self.eigenvalues:
            raise KeyError(f"no Hessian eigenvalue for {op!r}")
        s = self.stats[op]
        quant_err = fixed_point_variance(s.weight_scale, s.weight_dims)
        base = self.eigenvalues[op] / max(s.weight_dims, 1) * quant_err
        if precision is Precision.INT8:
            return base
        # FP16: halved from the fixed-point base (the paper's protocol).
        return base / 2.0
