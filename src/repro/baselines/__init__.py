"""Baselines the paper compares against (Sec. VII).

* :mod:`repro.baselines.uniform` — Uniform Precision (UP): one precision for
  every adjustable op on inference GPUs, lowered until memory fits.
* :mod:`repro.baselines.dbs` — Dynamic Batch Sizing [4]: heterogeneous local
  batch sizes balancing per-device step time, with the linear LR scaling
  rule.
* :mod:`repro.baselines.hessian` — the HAWQ-v3-style Hessian indicator [8]:
  block-wise top eigenvalue / parameter count x quantization error.
* :mod:`repro.baselines.random_ind` — the random indicator of Sec. VII-A1.
* :mod:`repro.baselines.dpro` — Dpro-style replay [35]: latency prediction
  without casting costs or precision-dependency modelling (Table III).
"""

from repro.baselines.dbs import dbs_batch_sizes, dbs_learning_rate
from repro.baselines.dpro import DproReplayer
from repro.baselines.hessian import HessianIndicator, hessian_top_eigenvalues
from repro.baselines.random_ind import RandomIndicator
from repro.baselines.uniform import uniform_precision_plan

__all__ = [
    "uniform_precision_plan",
    "dbs_batch_sizes",
    "dbs_learning_rate",
    "HessianIndicator",
    "hessian_top_eigenvalues",
    "RandomIndicator",
    "DproReplayer",
]
