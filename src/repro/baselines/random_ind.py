"""Random sensitivity baseline (Sec. VII-A1).

"The largest indicator is randomly generated for the lowest precision of
each operator and is halved as precision increases."
"""

from __future__ import annotations

from repro.common.dtypes import PRECISION_ORDER, Precision
from repro.common.rng import derive_seed, new_rng


class RandomIndicator:
    """Uniform-random per-op sensitivities, halved per precision step."""

    def __init__(self, ops: list[str], seed: int = 0) -> None:
        self._base: dict[str, float] = {}
        for op in ops:
            rng = new_rng(derive_seed(seed, "random-ind", op))
            self._base[op] = float(rng.random())

    def omega(self, op: str, precision: Precision) -> float:
        if precision is Precision.FP32:
            return 0.0
        if op not in self._base:
            raise KeyError(f"no random indicator for {op!r}")
        # Lowest precision gets the full draw; each step up halves it.
        steps_up = PRECISION_ORDER.index(precision)
        return self._base[op] / (2.0**steps_up)
