"""Uniform Precision (UP).

"Use a uniform precision for all operators in inference GPU, continue
lowering precision until the memory requirement is met" (Sec. VII,
Baselines).  Ops whose kernels lack the target precision keep their lowest
supported one at-or-above the target (softmax stays FP32).
"""

from __future__ import annotations

from repro.common.dtypes import Precision
from repro.common.errors import InfeasiblePlanError
from repro.graph.dag import PrecisionDAG
from repro.hardware.device import DeviceSpec
from repro.profiling.memory import MemoryModel


def uniform_precision_plan(
    dag: PrecisionDAG,
    device: DeviceSpec,
    memory_model: MemoryModel | None = None,
) -> dict[str, Precision]:
    """The UP plan for one inference device.

    Walks the device's precision ladder from FP32 downward; at each rung,
    assigns every adjustable op the lowest supported precision >= the rung
    and returns the first assignment that fits ``device.available_memory``.
    """
    memory_model = memory_model or MemoryModel()
    ladder = sorted(device.supported_precisions(), key=lambda p: -p.bits)
    work = dag.copy()
    for target in ladder:
        plan: dict[str, Precision] = {}
        for op in work.adjustable_ops():
            cands = [
                p for p in work.spec(op).supported_precisions() if device.supports(p)
            ]
            usable = [p for p in cands if p.bits >= target.bits]
            plan[op] = min(usable, key=lambda p: p.bits) if usable else cands[-1]
        work.apply_plan(plan)
        if memory_model.fits(work, device.available_memory):
            return plan
    raise InfeasiblePlanError(
        f"no uniform precision fits {device.name} "
        f"({device.available_memory / 2**30:.1f} GiB available)"
    )
