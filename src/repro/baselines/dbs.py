"""Dynamic Batch Sizing (DBS) [4].

Keeps the global batch constant while giving fast/large devices bigger
local batches and slow/small devices smaller ones, so all workers finish
their step at roughly the same time.  Two pieces:

* :func:`dbs_batch_sizes` — the proportional-to-speed allocation under
  per-device memory caps;
* :func:`dbs_learning_rate` — the linear-scaling LR adaptation the paper
  says existing DBS work prescribes (lr scales with the batch size [6]) —
  here applied per the *global* batch, which DBS keeps fixed, so the base
  LR is returned unchanged; the harm comes from BatchNorm statistics, which
  the executable models reproduce.
"""

from __future__ import annotations

import numpy as np


def dbs_batch_sizes(
    global_batch: int,
    per_sample_times: list[float],
    memory_caps: list[int] | None = None,
    per_sample_bytes: float | None = None,
    min_batch: int = 1,
) -> list[int]:
    """Split ``global_batch`` across workers proportional to speed.

    Parameters
    ----------
    global_batch:
        Total samples per synchronous step (kept identical to the uniform
        configuration — the method's defining constraint).
    per_sample_times:
        Seconds per sample per worker at the precision DBS runs (FP32).
    memory_caps, per_sample_bytes:
        Optional per-worker activation-memory caps: worker ``i`` may hold at
        most ``memory_caps[i] / per_sample_bytes`` samples; overflow is
        redistributed to the remaining workers.
    """
    times = np.asarray(per_sample_times, dtype=np.float64)
    if np.any(times <= 0) or not np.all(np.isfinite(times)):
        raise ValueError("per-sample times must be positive and finite")
    speeds = 1.0 / times
    k = len(speeds)
    raw = speeds / speeds.sum() * global_batch
    batches = np.maximum(np.floor(raw).astype(int), min_batch)

    if memory_caps is not None and per_sample_bytes:
        caps = np.asarray(memory_caps, dtype=np.float64) // per_sample_bytes
        caps = np.maximum(caps.astype(int), min_batch)
        for _ in range(k):
            over = batches > caps
            if not np.any(over):
                break
            excess = int(np.sum(batches[over] - caps[over]))
            batches[over] = caps[over]
            free = ~over
            if not np.any(free):
                raise ValueError("memory caps cannot hold the global batch")
            share = speeds[free] / speeds[free].sum()
            batches[free] = batches[free] + np.floor(share * excess).astype(int)

    # Fix rounding drift: add/remove from the fastest unconstrained workers.
    diff = global_batch - int(batches.sum())
    order = np.argsort(-speeds)
    i = 0
    while diff != 0:
        idx = order[i % k]
        step = 1 if diff > 0 else -1
        if batches[idx] + step >= min_batch:
            batches[idx] += step
            diff -= step
        i += 1
    return [int(b) for b in batches]


def dbs_learning_rate(base_lr: float, base_global_batch: int, new_global_batch: int) -> float:
    """Linear LR scaling with the global batch [6].

    DBS keeps the global batch fixed, so in the paper's experiments this
    returns ``base_lr`` — documented here because the *reason* DBS still
    degrades from-scratch BN models is precisely that LR adaptation cannot
    compensate for changed per-worker batch statistics.
    """
    return base_lr * new_global_batch / base_global_batch
