"""Dpro-style latency replay [35] — the Table III prediction baseline.

Dpro diagnoses distributed training from per-op traces; applied to mixed
precision, its prediction "does not consider the casting costs and operator
dependency" (Sec. VII-A2).  Concretely, this replayer:

* charges each operator its *pure* execution cost at its assigned precision
  (adjustable ops) or at FP32 (everything else — no cascade modelling);
* inserts **no** cast nodes anywhere;
* keeps the same communication model (Dpro does model collectives well).

The gap to ground truth is therefore exactly the casting + cascade share of
the iteration, which is what Table III isolates.
"""

from __future__ import annotations

from repro.common.dtypes import Precision
from repro.core.dfg import DFGNode, GlobalDFG, LocalDFG, NodeKind, assign_buckets
from repro.core.replayer import SimulationResult, simulate_global_dfg
from repro.graph.dag import PrecisionDAG
from repro.hardware.cluster import Cluster
from repro.profiling.profiler import OperatorCostCatalog


class DproReplayer:
    """Casting-blind, cascade-blind latency prediction."""

    def __init__(
        self,
        cluster: Cluster,
        dags: dict[int, PrecisionDAG],
        catalogs: dict[int, OperatorCostCatalog],
        collective_model=None,
    ) -> None:
        self.cluster = cluster
        self.dags = dags
        self.catalogs = catalogs
        # Dpro models collectives well — share the Replayer's cost model.
        self.collective_model = collective_model

    def _build_local(self, rank: int) -> LocalDFG:
        worker = self.cluster.workers[rank]
        dag = self.dags[rank]
        catalog = self.catalogs[rank]
        dfg = LocalDFG(worker.device.name, rank)
        topo = dag.topo_order()

        def pure(op: str, prec: Precision):
            if catalog.has(op, prec):
                return catalog.get(op, prec)
            return catalog.get(op, Precision.FP32)

        for name in topo:
            spec = dag.spec(name)
            # No cascade: only the op's own assignment matters.
            prec = dag.precision(name) if spec.is_adjustable else Precision.FP32
            cost = pure(name, prec)
            if cost.forward > 0:
                dfg.add_forward(DFGNode(name, NodeKind.FORWARD, cost.forward, op=name))

        weighted_rev = []
        for name in reversed(topo):
            spec = dag.spec(name)
            prec = dag.precision(name) if spec.is_adjustable else Precision.FP32
            cost = pure(name, prec)
            if cost.backward > 0:
                dfg.add_backward(
                    DFGNode(f"bwd:{name}", NodeKind.BACKWARD, cost.backward, op=name)
                )
            if spec.has_weight:
                weighted_rev.append((name, spec.weight_elems * 4))

        buckets = assign_buckets(weighted_rev)
        op_to_idx = {
            n.op: i for i, n in enumerate(dfg.backward) if n.kind is NodeKind.BACKWARD
        }
        ready = {
            b.index: max(
                (op_to_idx.get(op, len(dfg.backward) - 1) for op in b.ops),
                default=len(dfg.backward) - 1,
            )
            for b in buckets
        }
        dfg.set_buckets(buckets, ready)

        elems = dag.total_weight_elems()
        dfg.set_optimizer(
            5.0 * elems * 4 / worker.device.effective_bandwidth
            + worker.device.kernel_launch_overhead
        )
        return dfg

    def simulate(self) -> SimulationResult:
        gdfg = GlobalDFG([self._build_local(w.rank) for w in self.cluster.workers])
        return simulate_global_dfg(
            gdfg, self.cluster, collective_model=self.collective_model
        )
