"""Dpro-style latency replay [35] — the Table III prediction baseline.

Dpro diagnoses distributed training from per-op traces; applied to mixed
precision, its prediction "does not consider the casting costs and operator
dependency" (Sec. VII-A2).  Concretely, this replayer:

* charges each operator its *pure* execution cost at its assigned precision
  (adjustable ops) or at FP32 (everything else — no cascade modelling);
* inserts **no** cast nodes anywhere;
* keeps the same communication model (Dpro does model collectives well).

The gap to ground truth is therefore exactly the casting + cascade share of
the iteration, which is what Table III isolates.  The pricing model lives
in :class:`repro.engine.costs.CastingBlindCostSource`; assembly and
execution go through the same shared paths as the Replayer and the
ground-truth simulator.
"""

from __future__ import annotations

from repro.core.dfg import GlobalDFG, LocalDFG
from repro.core.replayer import SimulationResult
from repro.engine.core import execute_global_dfg
from repro.engine.costs import CastingBlindCostSource, assemble_local_dfg
from repro.graph.dag import PrecisionDAG
from repro.hardware.cluster import Cluster
from repro.profiling.profiler import OperatorCostCatalog


class DproReplayer:
    """Casting-blind, cascade-blind latency prediction."""

    def __init__(
        self,
        cluster: Cluster,
        dags: dict[int, PrecisionDAG],
        catalogs: dict[int, OperatorCostCatalog],
        collective_model=None,
        schedule_policy=None,
    ) -> None:
        self.cluster = cluster
        self.dags = dags
        self.catalogs = catalogs
        # Dpro models collectives well — share the Replayer's cost model.
        self.collective_model = collective_model
        self.schedule_policy = schedule_policy
        self._workers_by_rank = {w.rank: w for w in cluster.workers}

    def _build_local(self, rank: int) -> LocalDFG:
        # Rank is an identity, not a list position — index the worker map.
        worker = self._workers_by_rank[rank]
        source = CastingBlindCostSource(
            self.dags[rank], self.catalogs[rank], worker.device
        )
        return assemble_local_dfg(source, worker.device.name, rank)

    def simulate(self, collect_timeline: bool = False) -> SimulationResult:
        gdfg = GlobalDFG([self._build_local(w.rank) for w in self.cluster.workers])
        return execute_global_dfg(
            gdfg, self.cluster,
            collect_timeline=collect_timeline,
            collective_model=self.collective_model,
            schedule_policy=self.schedule_policy,
        )
