"""Plan-serving layer — concurrency, coalescing, and persistence on top of
:mod:`repro.session`.

This package is the serving tier of ROADMAP open item 3: the session API
answers one caller's what-if queries in memory; the service answers *many
concurrent callers'* queries against a store that survives the process.

* :class:`PlanService` — thread-safe front end over one
  :class:`~repro.session.PlanSession` with in-flight request coalescing
  (identical concurrent requests share one computation and one outcome).
* :class:`PersistentProfileStore` — the content-addressed on-disk
  profiling store (``<root>/profiles/<fingerprint>.json``, atomic writes,
  defects degrade to misses); :data:`PROFILE_FORMAT` versions its schema.
* :func:`plan_many` — batched planning with deduplication and
  template/catalog-grouped amortization.
* :func:`request_fingerprint` / :func:`cluster_fingerprint` — the content
  identities coalescing and batching key on.

Layering (RPR004): ``service`` sits *above* ``session`` and below the
experiment harnesses; nothing below it may import it.
"""

from repro.service.fingerprint import cluster_fingerprint, request_fingerprint
from repro.service.service import PlanService, plan_many
from repro.service.store import PROFILE_FORMAT, PersistentProfileStore

__all__ = [
    "PROFILE_FORMAT",
    "PersistentProfileStore",
    "PlanService",
    "cluster_fingerprint",
    "plan_many",
    "request_fingerprint",
]
