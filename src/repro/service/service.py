"""`PlanService` — concurrent, coalescing plan serving over one session.

The :class:`~repro.session.PlanSession` from PR 4 is a single-caller,
in-memory object.  A :class:`PlanService` turns it into the serving tier
ROADMAP open item 3 asks for ("planning-as-a-query must be cheap,
concurrent, and cache-persistent across restarts"):

* **thread safety** — the wrapped session and its stores are never touched
  outside the service locks (see `Lock discipline` below), so any number
  of threads may call :meth:`plan` / :meth:`plan_many` / :meth:`replan`;
* **request coalescing** — identical in-flight requests (keyed by
  :func:`~repro.service.fingerprint.request_fingerprint` — content, never
  object identity) share one computation, and every caller receives the
  *same* :class:`~repro.session.PlanOutcome` object;
* **persistence** — constructed with ``root=...`` the service plans
  against a :class:`~repro.service.store.PersistentProfileStore`, so a
  fresh process warm-starts from disk with zero profiling events;
* **batching** — :meth:`plan_many` deduplicates identical requests and
  orders the distinct ones by template/catalog group, so profiling and
  template resolution are amortized once per distinct model×device-type.

Lock discipline (also documented in CONTRIBUTING.md):

``_lock``
    Guards the in-flight table and every ``SessionStats`` counter mutation
    the service performs.  Held only for map/counter operations — never
    while planning — so arriving callers can always register against an
    in-flight computation.
``_plan_lock``
    Serializes every entry into the wrapped session (``prepare``/``plan``/
    ``replan``).  The session's stores are plain dicts and planners mutate
    per-request replayer state; one planning pass at a time is the
    correctness contract (and costs little: planning is CPU-bound Python,
    so the win at scale is coalescing + warm stores, not lock-free
    parallelism).  Acquire order is always ``_lock`` → release → wait/plan;
    the two locks are never held together, so there is no ordering cycle.

Parity is the oracle: a service-mediated plan is bit-identical to a direct
``PlanSession.plan()`` of the same request, and coalesced callers receive
results bit-identical to serial execution (``tests/test_service.py``).
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence, Union

from repro.hardware.events import ClusterEvent
from repro.session.outcome import PlanOutcome
from repro.session.request import PlanRequest
from repro.session.session import PlanContext, PlanSession, ReplanOutcome
from repro.service.fingerprint import request_fingerprint
from repro.service.store import PersistentProfileStore


class _InFlight:
    """One in-progress computation that identical requests attach to."""

    __slots__ = ("event", "outcome", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.outcome: PlanOutcome | None = None
        self.error: BaseException | None = None


class PlanService:
    """Thread-safe, coalescing front end over one :class:`PlanSession`.

    Parameters
    ----------
    root:
        Optional persistent-store root.  When given, profiling artifacts
        are served from (and written to) ``<root>/profiles/`` so they
        survive the process; when omitted the service is in-memory only.
    profile_seed:
        Forwarded to the wrapped session (backend measurement noise seed).
    session:
        Adopt an existing session (its warm stores included) instead of
        building one.  Mutually exclusive with ``root`` — a session already
        owns its store.  The caller must stop driving the session directly:
        after adoption the service's locks are the only sanctioned entry.
    """

    def __init__(
        self,
        root: str | None = None,
        profile_seed: int = 0,
        session: PlanSession | None = None,
    ) -> None:
        if session is not None and root is not None:
            raise ValueError(
                "pass either root= (build a persistent session) or "
                "session= (adopt one), not both — an adopted session "
                "already owns its ProfileStore"
            )
        if session is None:
            profiles = PersistentProfileStore(root) if root is not None else None
            session = PlanSession(profile_seed=profile_seed, profiles=profiles)
        self.session = session
        self._lock = threading.Lock()
        self._plan_lock = threading.Lock()
        self._inflight: dict[str, _InFlight] = {}

    # ------------------------------------------------------------------
    @property
    def stats(self):
        """The wrapped session's :class:`~repro.session.SessionStats`
        (coalescing and disk counters included)."""
        return self.session.stats

    # ------------------------------------------------------------------
    def plan(self, request: PlanRequest) -> PlanOutcome:
        """Serve one request, joining an identical in-flight computation
        when there is one.  Coalesced callers all receive the leader's
        ``PlanOutcome`` object — treat outcomes as read-only."""
        fingerprint = request_fingerprint(request)
        if fingerprint is None:
            # Opaque request: no content address, so no coalescing —
            # just a serialized pass through the session.
            with self._plan_lock:
                return self.session.plan(request)

        with self._lock:
            entry = self._inflight.get(fingerprint)
            if entry is None:
                entry = _InFlight()
                self._inflight[fingerprint] = entry
                leader = True
            else:
                self.session.profiles.stats.coalesced_requests += 1
                leader = False

        if not leader:
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            return entry.outcome

        try:
            with self._plan_lock:
                entry.outcome = self.session.plan(request)
            return entry.outcome
        except BaseException as exc:
            entry.error = exc
            raise
        finally:
            with self._lock:
                del self._inflight[fingerprint]
            entry.event.set()

    # ------------------------------------------------------------------
    def plan_many(
        self, requests: Iterable[PlanRequest]
    ) -> list[PlanOutcome]:
        """Serve a batch; returns outcomes in the input order.

        Identical requests are planned once (the duplicates count as
        ``coalesced_requests`` and share the one outcome).  Distinct
        requests are processed grouped by template/catalog — model recipe
        first, then cluster device types — so the expensive artifacts are
        resolved once per distinct model×device-type and every later
        member of the group runs warm, regardless of the input order.
        """
        requests = list(requests)
        outcomes: list[PlanOutcome | None] = [None] * len(requests)

        groups: dict[str, list[int]] = {}
        opaque: list[int] = []
        for index, request in enumerate(requests):
            fingerprint = request_fingerprint(request)
            if fingerprint is None:
                opaque.append(index)
            else:
                groups.setdefault(fingerprint, []).append(index)

        ordered = sorted(
            groups.items(),
            key=lambda item: self._group_token(requests[item[1][0]])
            + (item[0],),
        )
        for fingerprint, indices in ordered:
            outcome = self.plan(requests[indices[0]])
            for index in indices:
                outcomes[index] = outcome
            if len(indices) > 1:
                with self._lock:
                    self.session.profiles.stats.coalesced_requests += (
                        len(indices) - 1
                    )
        for index in opaque:
            outcomes[index] = self.plan(requests[index])
        return outcomes

    @staticmethod
    def _group_token(request: PlanRequest) -> tuple:
        """Amortization group of one request: the template recipe and the
        catalog-determining axes (device types, repeat count).  Sorting a
        batch by this token makes group members adjacent, so the first
        member pays the profiling and the rest run warm."""
        model = request.model if isinstance(request.model, str) else "~opaque"
        kwargs = tuple(
            sorted((str(k), repr(v)) for k, v in request.model_kwargs.items())
        )
        cluster = request.resolve_cluster()
        device_types = tuple(sorted({w.device.name for w in cluster.workers}))
        return (model, kwargs, device_types, int(request.profile_repeats))

    # ------------------------------------------------------------------
    def replan(
        self,
        ctx: Union[PlanContext, PlanRequest],
        events: Sequence[ClusterEvent],
        quorum: int = 1,
    ) -> ReplanOutcome:
        """Serialized passthrough to :meth:`PlanSession.replan` — churn
        traffic rides the same warm stores (and, with ``root=``, the same
        persistent tier) as everything else.  Replans are not coalesced:
        each one may carry a distinct pre-churn context object."""
        with self._plan_lock:
            return self.session.replan(ctx, events, quorum=quorum)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        store = self.session.profiles
        persistent = isinstance(store, PersistentProfileStore)
        where = store.root if persistent else "memory"
        return f"PlanService({where}, {store.stats.plan_calls} plans served)"


def plan_many(
    requests: Iterable[PlanRequest],
    root: str | None = None,
    profile_seed: int = 0,
) -> list[PlanOutcome]:
    """One-shot batched planning over an ephemeral :class:`PlanService`
    (grouped amortization and deduplication included) — the serving-layer
    analogue of the legacy ``qsync_plan`` convenience wrapper."""
    return PlanService(root=root, profile_seed=profile_seed).plan_many(requests)
