"""Content fingerprints for plan requests — the coalescing identity.

Request coalescing and batched grouping must key on what a request *means*,
never on object identity: two ``PlanRequest`` instances built independently
by two threads describe the same query and must share one computation (and
one ``PlanOutcome``).  :func:`request_fingerprint` digests every
result-relevant member through :mod:`repro.common.stable_hash`, reusing the
session's device/backend fingerprints so the identity is exactly as fine as
the profiling cache keys underneath.

The content-vs-identity boundary is explicit: a request carrying an
*opaque* member — a prebuilt :class:`PrecisionDAG`, a model-builder
callable, a custom collective-model/schedule-policy instance, an
indicator factory, pre-collected stats — has no content address, and
:func:`request_fingerprint` returns ``None``.  Opaque requests are still
served (under the service lock), they just never coalesce: inventing an
identity-derived key there would alias distinct queries.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.common.stable_hash import stable_digest, try_stable_digest
from repro.hardware.cluster import Cluster
from repro.hardware.topology import LinkSpec, NodeSpec, Topology
from repro.session.profiles import backend_fingerprint, device_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.request import PlanRequest

__all__ = ["cluster_fingerprint", "request_fingerprint", "request_token"]


def _link_token(link: LinkSpec) -> tuple:
    return (link.name, float(link.bandwidth), float(link.latency), link.tier)


def _node_token(node: NodeSpec) -> tuple:
    return (
        node.name,
        tuple(int(r) for r in node.ranks),
        _link_token(node.intra_link),
        _link_token(node.uplink),
    )


def _topology_token(topology: Topology) -> tuple:
    return tuple(_node_token(n) for n in topology.nodes)


def cluster_fingerprint(cluster: Cluster) -> str:
    """Digest of everything planning reads off a cluster: name, per-worker
    (rank, device, link bandwidth), collective latency, and the node
    topology.  Two clusters with equal fingerprints plan identically."""
    return stable_digest(
        (
            "cluster",
            cluster.name,
            float(cluster.collective_latency),
            tuple(
                (int(w.rank), device_fingerprint(w.device), float(w.link_bandwidth))
                for w in cluster.workers
            ),
            _topology_token(cluster.topology),
        )
    )


def request_token(request: "PlanRequest") -> tuple:
    """The fingerprint input tree of one request.

    Content-addressable members become primitives/fingerprints; opaque
    members pass through *raw*, so :func:`repro.common.stable_hash.
    try_stable_digest` rejects the whole tree (returns ``None``) instead of
    silently keying on a partial identity.
    """
    cluster = (
        request.cluster
        if isinstance(request.cluster, str)
        else cluster_fingerprint(request.cluster)
    )
    backends = (
        None
        if request.backends is None
        else tuple(
            sorted(
                (int(rank), backend_fingerprint(backend))
                for rank, backend in request.backends.items()
            )
        )
    )
    perturbation = (
        None
        if request.perturbation is None
        else (
            int(request.perturbation.seed),
            float(request.perturbation.compute_jitter),
            float(request.perturbation.bandwidth_drift),
            tuple(request.perturbation.stragglers),
        )
    )
    config = (
        None if request.config is None else dataclasses.asdict(request.config)
    )
    compression = (
        None
        if request.compression is None
        else (
            tuple(int(lvl) for lvl in request.compression.levels),
            float(request.compression.loss_budget),
        )
    )
    return (
        "plan_request",
        request.model,
        dict(request.model_kwargs),
        cluster,
        request.strategy,
        request.loss,
        request.batch_size,
        int(request.optimizer_slots),
        request.collective_model,
        request.schedule_policy,
        perturbation,
        request.indicator,
        config,
        int(request.seed),
        int(request.profile_repeats),
        backends,
        request.stats,
        request.use_kernel,
        compression,
    )


def request_fingerprint(request: "PlanRequest") -> str | None:
    """Content address of one request, or ``None`` when the request holds
    an opaque member and therefore must not coalesce with anything."""
    return try_stable_digest(request_token(request))
