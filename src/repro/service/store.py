"""Persistent, content-addressed profiling store (the serving warm start).

A :class:`PersistentProfileStore` is a :class:`~repro.session.ProfileStore`
with a filesystem tier underneath the in-memory maps: every catalog, cast
fit, and synthesized-stats artifact a session pays for is serialized to
``<root>/profiles/<fingerprint>.json``, and a *fresh process* pointed at
the same root warm-starts with zero profiling events.  The layout copies
the experiment :class:`~repro.experiments.artifacts.ArtifactStore`
disciplines wholesale:

* **content addresses** — the filename digests the store key, which is
  already built exclusively from :mod:`repro.common.stable_hash`
  fingerprints (profiling DAG fingerprint, backend measurement config,
  repeat count), so keys survive ``PYTHONHASHSEED`` and process boundaries;
* **atomic writes** — temp file + ``os.replace``, so concurrent processes
  sharing a root can never expose a torn artifact;
* **misses, never errors** — unreadable, truncated, stale-format, or
  wrong-key files degrade to recomputation (and a ``disk_misses`` count);
  the cache may only ever cost a re-profile;
* **a format constant** — bump :data:`PROFILE_FORMAT` to invalidate every
  persisted profile at once (serialization or profiling-semantics changes).

Loads are *exact*: floats round-trip through JSON byte-for-byte, so a
disk-served catalog drives the planner to results bit-identical to a fresh
profile — the parity oracle ``tests/test_service.py`` pins.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.backend.lp_backend import LPBackend
from repro.common.stable_hash import stable_digest
from repro.profiling.casting import CastCostCalculator
from repro.profiling.persistence import (
    cast_calc_from_dict,
    cast_calc_to_dict,
    catalog_from_dict,
    catalog_to_dict,
    stats_from_dict,
    stats_to_dict,
)
from repro.profiling.profiler import OperatorCostCatalog
from repro.profiling.stats import OperatorStats
from repro.session.profiles import ProfileStore

#: On-disk profile schema version; bump to invalidate every persisted
#: profile at once (the ``ARTIFACT_FORMAT`` discipline from PR 2).
PROFILE_FORMAT = 1


class PersistentProfileStore(ProfileStore):
    """A ProfileStore whose misses fall through to an on-disk tier.

    Parameters
    ----------
    root:
        Store root directory; artifacts live under ``<root>/profiles/``.
        Several processes may share one root — writes are atomic and
        content-addressed, so concurrent writers of the same key produce
        byte-identical files and last-write-wins is a no-op.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        super().__init__()
        self.root = Path(root)
        self.profile_dir = self.root / "profiles"

    # ------------------------------------------------------------------
    def path_for(self, key: tuple) -> Path:
        """Content address of one store key (strings and ints only, so the
        digest is stable across processes by construction)."""
        return self.profile_dir / f"{stable_digest(key)}.json"

    def _read_payload(self, kind: str, key: tuple) -> dict | None:
        """The artifact payload for ``key``, or ``None`` on any defect."""
        path = self.path_for(key)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("format") != PROFILE_FORMAT:
            return None
        if doc.get("kind") != kind or doc.get("key") != list(key):
            return None
        payload = doc.get("payload")
        return payload if isinstance(payload, dict) else None

    def _write_payload(self, kind: str, key: tuple, payload: dict) -> None:
        """Atomically persist one artifact; a failed write is a silent
        no-op (the disk tier is a cache — planning must not die because a
        cache volume filled up)."""
        doc = {
            "format": PROFILE_FORMAT,
            "kind": kind,
            "key": list(key),
            "payload": payload,
        }
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(text)
            os.replace(tmp, path)
        except OSError:
            pass

    def _count(self, artifact):
        """Fold one fetch outcome into the hit/miss counters."""
        if artifact is None:
            self.stats.disk_misses += 1
        else:
            self.stats.disk_hits += 1
        return artifact

    # -- extraction-point overrides ------------------------------------
    def _fetch_catalog(self, key: tuple) -> OperatorCostCatalog | None:
        payload = self._read_payload("catalog", key)
        catalog = None
        if payload is not None:
            try:
                catalog = catalog_from_dict(payload)
            except (KeyError, TypeError, ValueError):
                catalog = None
        return self._count(catalog)

    def _persist_catalog(self, key: tuple, catalog: OperatorCostCatalog) -> None:
        self._write_payload("catalog", key, catalog_to_dict(catalog))

    def _fetch_cast(
        self, key: tuple, backend: LPBackend
    ) -> CastCostCalculator | None:
        payload = self._read_payload("cast", key)
        calc = None
        if payload is not None:
            try:
                calc = cast_calc_from_dict(payload, backend)
            except (KeyError, TypeError, ValueError):
                calc = None
        return self._count(calc)

    def _persist_cast(self, key: tuple, calc: CastCostCalculator) -> None:
        self._write_payload("cast", key, cast_calc_to_dict(calc))

    def _fetch_stats(self, key: tuple) -> dict[str, OperatorStats] | None:
        payload = self._read_payload("stats", key)
        stats = None
        if payload is not None:
            try:
                stats = stats_from_dict(payload)
            except (KeyError, TypeError, ValueError):
                stats = None
        return self._count(stats)

    def _persist_stats(self, key: tuple, stats: dict[str, OperatorStats]) -> None:
        self._write_payload("stats", key, stats_to_dict(stats))

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """All persisted profile artifacts, in sorted (deterministic) order."""
        if not self.profile_dir.is_dir():
            return []
        return sorted(self.profile_dir.glob("*.json"))

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every persisted profile (and interrupted ``*.tmp.*``
        partials); returns how many artifacts were removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        if self.profile_dir.is_dir():
            for partial in self.profile_dir.glob("*.tmp.*"):
                partial.unlink()
        return removed
