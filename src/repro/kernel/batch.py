"""Batched what-if evaluation: many candidate plans, one array sweep.

The allocator's recovery loop historically evaluated each candidate
promotion with a full ``Replayer.simulate()`` — apply, rebuild, replay,
revert.  Here a candidate is a *segment swap*: the cost mapper's
mutation-free what-if (``CostMapper.whatif_change``) describes the affected
ops' new forward/backward segments, :func:`candidate_row` splices them into
the compiled base to recover the candidate's bucket-ready row and compute
end, and :func:`simulate_batch` plays Eq. (6) for every row at once —
vectorized *across candidates*, sequential *across buckets*, so each lane
reproduces the scalar recurrence bit-for-bit.

Candidate data is expressed as replacement values, never additive deltas:
``base + (new - base)`` does not round-trip in float64, splicing does.
"""

from __future__ import annotations

from repro.kernel.compiled import CompiledGlobal, CompiledLocal, np


def candidate_row(cl: CompiledLocal, change):
    """Bucket-ready row + compute end for one candidate segment swap.

    ``change`` is duck-typed (the cost mapper's what-if record): mappings
    ``fwd_sums``/``bwd_sums`` (op -> new per-op duration sum),
    ``bwd_durs`` (op -> new backward node durations, in stream order) and
    ``bwd_pos`` (op -> BACKWARD offset within the segment, -1 when none),
    covering every affected op.  Returns ``(ready_row, compute_end)`` or
    ``None`` when ``cl`` carries no op-level layout — the caller falls
    back to sequential simulation.

    Bit parity: stream totals re-accumulate over per-op sums in the exact
    object-path order (``np.add.accumulate`` == the Python prefix loop),
    and the node prefix re-accumulates over the spliced backward stream
    exactly as ``LocalDFG.bucket_ready_times`` does.
    """
    if np is None or cl.op_pos is None:
        return None
    names = list(change.bwd_durs)
    pos = []
    for name in names:
        p = cl.op_pos.get(name)
        if p is None:
            return None  # affected op unknown to the layout: bail out
        pos.append(p)
    idx = np.asarray(pos, dtype=np.int64)
    n_ops = cl.n_ops

    # Stream totals: scatter the affected ops' new sums into the per-op
    # arrays, re-accumulate sequentially.  Forward sums live in topo order,
    # backward sums in reverse topo order — both as the mapper adds them.
    fwd = np.array(cl.fwd_sums)
    fwd[(n_ops - 1) - idx] = [change.fwd_sums[name] for name in names]
    fwd_total = float(np.add.accumulate(fwd)[-1]) if n_ops else 0.0
    bwd = np.array(cl.bwd_sums)
    bwd[idx] = [change.bwd_sums[name] for name in names]
    bwd_total = float(np.add.accumulate(bwd)[-1]) if n_ops else 0.0

    # Splice the backward stream: keep base slices, swap affected segments.
    lens = np.array(cl.seg_len)
    lens[idx] = [len(change.bwd_durs[name]) for name in names]
    bpos = np.array(cl.bwd_pos)
    bpos[idx] = [change.bwd_pos[name] for name in names]
    starts = np.zeros(n_ops, dtype=np.int64)
    if n_ops > 1:
        np.cumsum(lens[:-1], out=starts[1:])
    pieces = []
    prev = 0
    for p, name in sorted(zip(pos, names)):
        s = int(cl.seg_start[p])
        if s > prev:
            pieces.append(cl.bwd_durs[prev:s])
        seg = change.bwd_durs[name]
        if seg:
            pieces.append(np.asarray(seg, dtype=np.float64))
        prev = s + int(cl.seg_len[p])
    if prev < cl.bwd_durs.shape[0]:
        pieces.append(cl.bwd_durs[prev:])
    if pieces:
        flat = np.concatenate(pieces)
    else:
        flat = np.zeros(0, dtype=np.float64)

    # prefix[k] = forward end + first k backward durations (bit-identical
    # to the bucket_ready_times prefix loop).
    head = np.empty(flat.shape[0] + 1, dtype=np.float64)
    head[0] = fwd_total
    head[1:] = flat
    prefix = np.add.accumulate(head)

    n_buckets = cl.ready.shape[0]
    if n_buckets:
        w_len = lens[cl.weighted_pos]
        w_pos = bpos[cl.weighted_pos]
        anchors = starts[cl.weighted_pos] + np.where(w_pos >= 0, w_pos, w_len - 1)
        ready_after = np.maximum.reduceat(anchors, cl.bucket_starts)
        bucket_idx = np.minimum(ready_after, flat.shape[0] - 1)
        # idx >= -1 always, so idx + 1 indexes prefix[0] for "forward end".
        row = prefix[bucket_idx + 1]
    else:
        row = np.zeros(0, dtype=np.float64)
    return row, fwd_total + bwd_total


def simulate_batch(cg: CompiledGlobal, rows, local_indices, compute_ends):
    """Iteration times for a batch of candidates in one sweep.

    ``rows[i]`` is candidate ``i``'s bucket-ready row, ``local_indices[i]``
    the index (into ``cg.locals``) of the compiled local it replaces, and
    ``compute_ends[i]`` its new compute end.  Everything else stays at the
    compiled base — exactly the allocator's one-op-at-a-time what-if.

    Returns a float64 vector of iteration times; row ``i`` equals a
    sequential apply + simulate + revert of candidate ``i`` bit-for-bit
    (vectorized across candidates; the bucket loop stays sequential).
    """
    if np is None:
        return None
    n_cands = len(rows)
    if n_cands == 0:
        return np.zeros(0, dtype=np.float64)
    li = np.asarray(local_indices, dtype=np.int64)
    end = np.zeros(n_cands, dtype=np.float64)
    if cg.n_buckets:
        ready = np.maximum(cg.colmax_without[li], np.stack(rows))
        for n in range(cg.n_buckets):
            np.maximum(ready[:, n], end, out=end)
            end += cg.durations[n]
    ends = np.repeat(cg.compute_ends[np.newaxis, :], n_cands, axis=0)
    ends[np.arange(n_cands), li] = compute_ends
    np.maximum(ends, end[:, np.newaxis], out=ends)
    ends += cg.opts[np.newaxis, :]
    return ends.max(axis=1)
