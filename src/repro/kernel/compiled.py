"""Fingerprint-keyed lowering of LocalDFGs to frozen float64 arrays.

``compile_local`` captures everything one rank contributes to Eq. (6) —
bucket-ready times, stream totals, the optimizer — plus (optionally) a
per-op layout of the backward stream so :mod:`repro.kernel.batch` can
re-linearize candidate segment swaps without touching the object graph.
``compile_global`` composes per-rank compilations with the priced bucket
durations; ``evaluate`` plays the recurrence.

The lowering is *descriptive*, never *authoritative*: durations, anchors
and bucket membership are read off an already-assembled
:class:`~repro.core.dfg.LocalDFG` (and the cost mapper's layout), and any
precondition the kernel cannot honour — non-positional bucket indices, a
layout inconsistent with the streams — degrades to the eval-only or object
path instead of guessing.
"""

from __future__ import annotations

import dataclasses

try:  # numpy is the optional "kernel" extra; see pyproject.toml
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    np = None  # type: ignore[assignment]

HAVE_NUMPY = np is not None


def _frozen(arr):
    """Publish an array read-only (RPR007: consumers copy, never write)."""
    arr.setflags(write=False)
    return arr


@dataclasses.dataclass(frozen=True)
class LocalLayout:
    """Plain per-op layout of one rank's streams, in mapper order.

    Extracted by :meth:`repro.core.cost_mapper.CostMapper.kernel_layout`;
    pure Python data so the kernel never imports upward.  The sum tuples
    preserve the exact order the object path adds them — forward totals
    accumulate per-op in topological order, backward totals per-op in
    reverse topological (backward completion) order — because float
    addition is order-sensitive and the kernel must re-accumulate
    bit-identically.
    """

    #: Op names in reverse topological order (the backward walk order).
    rev_ops: tuple
    #: Backward-stream nodes contributed per op, aligned with ``rev_ops``.
    seg_lens: tuple
    #: Offset of the op's BACKWARD node within its segment, -1 when the
    #: segment has none (zero-cost backward anchored to its predecessor).
    bwd_pos: tuple
    #: Per-op forward-segment duration sums in *topological* order.
    fwd_sums_topo: tuple
    #: Per-op backward-segment duration sums, aligned with ``rev_ops``.
    bwd_sums: tuple
    #: Indices into ``rev_ops`` of weighted ops, ascending — the backward
    #: completion sequence that DDP bucketing slices into buckets.
    weighted: tuple


class CompiledLocal:
    """One rank's execution line as frozen arrays (+ optional op layout)."""

    __slots__ = (
        "device_name",
        "rank",
        "fwd_total",
        "bwd_total",
        "compute_end",
        "opt",
        "ready",
        "bwd_durs",
        "bucket_nbytes",
        "op_pos",
        "n_ops",
        "seg_len",
        "seg_start",
        "bwd_pos",
        "fwd_sums",
        "bwd_sums",
        "weighted_pos",
        "bucket_starts",
    )

    def __init__(self, device_name: str, rank: int) -> None:
        self.device_name = device_name
        self.rank = rank
        self.op_pos: dict[str, int] | None = None
        self.n_ops = 0

    @property
    def has_layout(self) -> bool:
        """True when candidate rows can be derived from this compilation."""
        return self.op_pos is not None


def compile_local(ldfg, layout: LocalLayout | None = None):
    """Lower ``ldfg`` to a :class:`CompiledLocal`, or ``None``.

    Returns ``None`` when numpy is unavailable or bucket indices are not
    positional (callers fall back to the object path).  A ``layout`` that
    fails its consistency checks against the streams yields an *eval-only*
    compilation — :func:`evaluate` still works, candidate batching
    degrades to sequential simulate.
    """
    if np is None:
        return None
    buckets = ldfg.buckets
    for n, bucket in enumerate(buckets):
        if bucket.index != n:
            return None

    cl = CompiledLocal(ldfg.device_name, ldfg.rank)
    cl.fwd_total = ldfg.forward_time
    cl.bwd_total = ldfg.backward_time
    # Same addition the analytic path performs per call (fwd + bwd).
    cl.compute_end = ldfg.forward_time + ldfg.backward_time
    cl.opt = ldfg.optimizer.duration if ldfg.optimizer else 0.0
    ready_map = ldfg.bucket_ready_times()
    cl.ready = _frozen(
        np.array([ready_map[b.index] for b in buckets], dtype=np.float64)
    )
    cl.bwd_durs = _frozen(
        np.array([node.duration for node in ldfg.backward], dtype=np.float64)
    )
    cl.bucket_nbytes = tuple(b.nbytes for b in buckets)
    if layout is None:
        return cl

    n_ops = len(layout.rev_ops)
    if sum(layout.seg_lens) != len(ldfg.backward):
        return cl  # layout drifted from the streams: eval-only
    members: list[str] = []
    starts: list[int] = []
    count = 0
    for bucket in buckets:
        starts.append(count)
        members.extend(bucket.ops)
        count += len(bucket.ops)
    if tuple(members) != tuple(layout.rev_ops[i] for i in layout.weighted):
        return cl  # bucket membership is not the weighted sequence

    seg_len = np.asarray(layout.seg_lens, dtype=np.int64)
    seg_start = np.zeros(n_ops, dtype=np.int64)
    if n_ops > 1:
        np.cumsum(seg_len[:-1], out=seg_start[1:])
    cl.seg_len = _frozen(seg_len)
    cl.seg_start = _frozen(seg_start)
    cl.bwd_pos = _frozen(np.asarray(layout.bwd_pos, dtype=np.int64))
    cl.fwd_sums = _frozen(np.asarray(layout.fwd_sums_topo, dtype=np.float64))
    cl.bwd_sums = _frozen(np.asarray(layout.bwd_sums, dtype=np.float64))
    cl.weighted_pos = _frozen(np.asarray(layout.weighted, dtype=np.int64))
    cl.bucket_starts = _frozen(np.asarray(starts, dtype=np.int64))
    cl.op_pos = {name: i for i, name in enumerate(layout.rev_ops)}
    cl.n_ops = n_ops
    return cl


class CompiledGlobal:
    """Distinct compiled locals + priced collectives, evaluation-ready."""

    __slots__ = (
        "locals",
        "local_of_rank",
        "n_buckets",
        "durations",
        "dur_list",
        "colmax",
        "colmax_list",
        "colmax_without",
        "compute_ends",
        "compute_ends_list",
        "opts",
        "opts_list",
    )


def compile_global(rank_locals, durations):
    """Compose ``(rank, CompiledLocal)`` pairs with priced bucket durations.

    ``rank_locals`` comes in cluster worker order; shared compilations
    (same-type ranks) are deduplicated by identity — identity, not
    equality, because shared views are how the Replayer expresses "same
    plan".  ``durations`` must be priced by the caller through the same
    ``bucket_comm_durations`` the analytic path uses, so pricing cannot
    drift between tiers.  Returns ``None`` without numpy.
    """
    if np is None or not rank_locals:
        return None
    distinct: list[CompiledLocal] = []
    local_of_rank: dict[int, int] = {}
    for rank, cl in rank_locals:
        pos = -1
        for i, seen in enumerate(distinct):
            if seen is cl:
                pos = i
                break
        if pos < 0:
            pos = len(distinct)
            distinct.append(cl)
        local_of_rank[rank] = pos

    n_buckets = int(distinct[0].ready.shape[0])
    for cl in distinct:
        if int(cl.ready.shape[0]) != n_buckets:
            raise ValueError("compiled locals disagree on bucket count")
    if len(durations) != n_buckets:
        raise ValueError("durations do not match the bucket count")

    cg = CompiledGlobal()
    cg.locals = tuple(distinct)
    cg.local_of_rank = local_of_rank
    cg.n_buckets = n_buckets
    cg.durations = _frozen(np.asarray(durations, dtype=np.float64))
    cg.dur_list = [float(d) for d in durations]

    ready_matrix = np.stack([cl.ready for cl in distinct])
    colmax = ready_matrix.max(axis=0)
    cg.colmax = _frozen(colmax)
    cg.colmax_list = colmax.tolist()
    without = np.full((len(distinct), n_buckets), -np.inf)
    if len(distinct) > 1:
        for i in range(len(distinct)):
            without[i] = np.delete(ready_matrix, i, axis=0).max(axis=0)
    cg.colmax_without = _frozen(without)

    compute_ends = np.array([cl.compute_end for cl in distinct])
    opts = np.array([cl.opt for cl in distinct])
    cg.compute_ends = _frozen(compute_ends)
    cg.compute_ends_list = compute_ends.tolist()
    cg.opts = _frozen(opts)
    cg.opts_list = opts.tolist()
    return cg


def evaluate(cg: CompiledGlobal):
    """One Eq. (6) evaluation; returns ``(iteration_time, comm_end_final)``.

    The bucket recurrence stays a sequential scalar loop over Python
    floats in the analytic operation order — comm start is the max of the
    slowest rank's readiness and the previous collective's end, comm end
    adds the priced duration.  (A cumsum + maximum.accumulate closed form
    reassociates the additions and breaks bit parity with
    ``simulate_global_dfg``.)
    """
    end = 0.0
    for cmax, dur in zip(cg.colmax_list, cg.dur_list):
        start = cmax if cmax > end else end
        end = start + dur
    iteration = 0.0
    for ce, opt in zip(cg.compute_ends_list, cg.opts_list):
        done = ce if ce > end else end
        finish = done + opt
        if finish > iteration:
            iteration = finish
    return iteration, end
