"""Compiled array kernel for the Eq. (6) replay (ROADMAP open item 4).

The object-graph Replayer walks Python ``DFGNode`` lists node-by-node on
every simulate call.  This package lowers a :class:`~repro.core.dfg.LocalDFG`
to flat float64 arrays *once per structure fingerprint + precision
signature* and then evaluates Eq. (6) — and whole batches of allocator
what-if candidates — as dense array operations.

Contracts (the PR 5 oracle discipline, extended):

* **Bit parity.**  Every reduction reproduces the analytic object path's
  left-to-right float64 operation order (``np.add.accumulate`` over a 1-D
  array is the Python prefix loop bit-for-bit; the bucket recurrence stays
  a sequential loop because the closed-form cumsum/maximum.accumulate
  rewrite would reassociate additions).  ``simulate_global_dfg`` remains
  the equality oracle on every tier.
* **Frozen buffers.**  Published arrays are ``writeable=False``; consumers
  copy before mutating (linter rule RPR007).
* **Graceful degradation.**  numpy is an optional extra — every entry
  point returns ``None`` without it and callers fall back to the object
  path.

Layer 1 on the import ladder: the kernel knows nothing about DAGs, cost
mappers or clusters — it consumes plain layouts and duck-typed DFGs.
"""

from repro.kernel.batch import candidate_row, simulate_batch
from repro.kernel.compiled import (
    HAVE_NUMPY,
    CompiledGlobal,
    CompiledLocal,
    LocalLayout,
    compile_global,
    compile_local,
    evaluate,
)

__all__ = [
    "HAVE_NUMPY",
    "CompiledGlobal",
    "CompiledLocal",
    "LocalLayout",
    "candidate_row",
    "compile_global",
    "compile_local",
    "evaluate",
    "simulate_batch",
]
