"""Pluggable schedule policies for the discrete-event engine.

A :class:`SchedulePolicy` decides *when a rank's work product becomes
available to the communication plane*: the time each gradient bucket is
ready for its collective and the time the rank's backward pass completes.
The engine's event queue then resolves the global ordering (collectives
serialize on the COMM channel; the optimizer waits on both the local
backward and the final collective).

Two built-ins:

* :class:`DDPOverlapPolicy` — the paper's Eq. (6) semantics and the
  **default**: compute never stalls on communication, bucket ``n`` launches
  as soon as the backward node producing its last gradient retires.  Under
  this policy (and no perturbation) the engine is **bit-identical** to the
  analytic :func:`~repro.core.replayer.simulate_global_dfg` recurrence —
  the readiness and compute-end anchors are the very same
  :meth:`LocalDFG.bucket_ready_times` / stream totals the analytic path
  reads, so parity is exact, not approximate.  That parity is the
  regression oracle for every other policy.
* :class:`BlockingSyncPolicy` — vanilla synchronous SGD without
  overlap: no bucket may launch before the *local* backward pass has fully
  completed (gradients ship only once all of them exist).  Iteration time
  is therefore ≥ the DDP-overlap time on every global DFG.

Policies are selectable by name through :func:`resolve_schedule_policy`
(the same vocabulary pattern as
:func:`repro.parallel.comm_model.resolve_collective_model`).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Mapping, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dfg import LocalDFG


class SchedulePolicy(abc.ABC):
    """When does one rank's work become visible to the COMM plane?"""

    #: Registry/display name ("ddp_overlap", "blocking_sync").
    name: str = "abstract"

    @abc.abstractmethod
    def bucket_ready_times(self, ldfg: "LocalDFG") -> Mapping[int, float]:
        """Bucket index -> time (from iteration start) the rank could launch
        that bucket's collective."""

    @abc.abstractmethod
    def compute_end(self, ldfg: "LocalDFG") -> float:
        """Time the rank's backward pass completes (optimizer not included)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class DDPOverlapPolicy(SchedulePolicy):
    """Eq. (6): buckets launch at gradient readiness, overlapping backward.

    Reads exactly the anchors the analytic recurrence reads
    (:meth:`LocalDFG.bucket_ready_times`, ``forward_time + backward_time``),
    which is what makes engine-vs-analytic parity bit-exact.
    """

    name = "ddp_overlap"

    def bucket_ready_times(self, ldfg: "LocalDFG") -> Mapping[int, float]:
        return ldfg.bucket_ready_times()

    def compute_end(self, ldfg: "LocalDFG") -> float:
        return ldfg.forward_time + ldfg.backward_time


class BlockingSyncPolicy(SchedulePolicy):
    """No-overlap vanilla sync SGD: communication starts only after the
    whole local backward pass has retired; buckets then serialize as usual.
    """

    name = "blocking_sync"

    def bucket_ready_times(self, ldfg: "LocalDFG") -> Mapping[int, float]:
        # The readiness anchor must be the *prefix-sum* end of the backward
        # stream — the same float accumulation DDPOverlapPolicy's
        # bucket_ready_times() uses — not the published fwd+bwd totals.
        # The two associate additions differently, and a totals-based
        # anchor can land 1 ulp *below* an overlap readiness, letting
        # blocking "beat" overlap by rounding noise.  Prefix sums are
        # monotone, so every blocking anchor >= every overlap anchor and
        # the no-overlap schedule can never win (property-tested).
        end = ldfg.forward_time
        for node in ldfg.backward:
            end += node.duration
        return {b.index: end for b in ldfg.buckets}

    def compute_end(self, ldfg: "LocalDFG") -> float:
        return ldfg.forward_time + ldfg.backward_time


#: Name -> policy class, the selection vocabulary for requests/experiments.
SCHEDULE_POLICIES: dict[str, type[SchedulePolicy]] = {
    DDPOverlapPolicy.name: DDPOverlapPolicy,
    BlockingSyncPolicy.name: BlockingSyncPolicy,
}


def resolve_schedule_policy(
    policy: Union[SchedulePolicy, str, None],
) -> SchedulePolicy:
    """Normalize a policy spec: ``None`` -> the DDP-overlap default, a name
    -> its registered class, an instance -> itself."""
    if policy is None:
        return DDPOverlapPolicy()
    if isinstance(policy, SchedulePolicy):
        return policy
    if isinstance(policy, str):
        if policy not in SCHEDULE_POLICIES:
            raise KeyError(
                f"unknown schedule policy {policy!r}; available: "
                f"{sorted(SCHEDULE_POLICIES)}"
            )
        return SCHEDULE_POLICIES[policy]()
    raise TypeError(
        f"schedule policy must be None, a name, or a SchedulePolicy, "
        f"got {type(policy).__name__}"
    )
