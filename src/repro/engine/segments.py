"""Epoch-segmented simulation across cluster membership changes.

One training run, many clusters: :func:`simulate_with_churn` replays a
fixed iteration budget while folding
:class:`~repro.hardware.events.ClusterEvent` batches in as they fall due.
Each contiguous stretch of iterations on one membership is an
:class:`EpochSegment` — planned by
:meth:`~repro.session.session.PlanSession.replan` on its own
surviving-rank cluster (warm profiles, adopted DFG caches, so each
boundary costs O(changed ranks)) and priced at that segment's simulated
iteration time.  State carries over: the plan context chains from segment
to segment, and ``degrade`` events accumulate into the request's
:class:`~repro.engine.perturbation.Perturbation` input transform.

Timing discipline: an event lands at the *first iteration boundary at or
after* its timestamp — synchronous training cannot change membership
mid-iteration.  Several events falling inside the same iteration are
applied as one batch at its end.  Events whose timestamps lie beyond the
run's simulated end are reported in
:attr:`SegmentedRun.unapplied_events`, not silently dropped.

Everything here is pure simulated clock — no wall time — so segmented
runs are deterministic and safe to cache as sweep artifacts.

A ``leave`` that would drop membership below the caller's quorum raises
:class:`~repro.common.errors.QuorumLostError` out of the boundary's
replan, exactly as the direct API does.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Sequence

from repro.hardware.events import ClusterEvent, MembershipDelta, validate_events

if TYPE_CHECKING:  # pragma: no cover - runtime import would cycle via session
    from repro.session.request import PlanRequest
    from repro.session.session import PlanSession


@dataclasses.dataclass(frozen=True)
class EpochSegment:
    """One contiguous stretch of iterations on one cluster membership."""

    index: int
    #: Simulated seconds at which the segment starts/ends.
    start_s: float
    end_s: float
    iterations: int
    #: Simulated duration of one iteration on this membership.
    iteration_s: float
    #: The member ranks (ascending; gaps mark retired ranks).
    ranks: tuple[int, ...]
    #: Events applied at this segment's opening boundary (empty for the
    #: first segment).
    opening_events: tuple[ClusterEvent, ...] = ()
    #: Net membership delta of the opening batch.
    delta: MembershipDelta | None = None
    #: Composed (rank, factor) slowdowns active during this segment.
    degraded: tuple[tuple[int, float], ...] = ()
    #: Profiling events the opening re-plan paid for (0 = fully warm).
    new_profile_events: int = 0
    #: Device-type DFG cache entries adopted across the boundary.
    adopted_dfg_types: int = 0

    @property
    def cluster_size(self) -> int:
        return len(self.ranks)

    def describe(self) -> str:
        parts = [
            f"seg{self.index}",
            f"[{self.start_s:g}s, {self.end_s:g}s)",
            f"{self.iterations} it x {self.iteration_s * 1e3:.2f} ms",
            f"ranks {list(self.ranks)}",
        ]
        if self.opening_events:
            parts.append(
                "after " + "; ".join(e.describe() for e in self.opening_events)
            )
        return " ".join(parts)


@dataclasses.dataclass(frozen=True)
class SegmentedRun:
    """The full epoch-segmented simulation of one churn scenario."""

    segments: tuple[EpochSegment, ...]
    total_iterations: int
    #: Simulated end-to-end duration (sum over segments).
    simulated_s: float
    #: Events whose timestamps fell beyond the simulated end of the run.
    unapplied_events: tuple[ClusterEvent, ...] = ()

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def mean_iteration_s(self) -> float:
        if self.total_iterations == 0:
            return 0.0
        return self.simulated_s / self.total_iterations

    def describe(self) -> str:
        lines = [
            f"SegmentedRun: {self.total_iterations} iterations over "
            f"{self.n_segments} segment(s), {self.simulated_s:.3f}s simulated"
        ]
        lines.extend("  " + seg.describe() for seg in self.segments)
        if self.unapplied_events:
            lines.append(
                f"  unapplied: "
                f"{'; '.join(e.describe() for e in self.unapplied_events)}"
            )
        return "\n".join(lines)


def simulate_with_churn(
    session: "PlanSession",
    request: "PlanRequest",
    events: Sequence[ClusterEvent],
    total_iterations: int,
    quorum: int = 1,
) -> SegmentedRun:
    """Run ``total_iterations`` of ``request`` while ``events`` reshape the
    cluster, re-planning incrementally at each membership boundary.

    The event batch is validated against the starting cluster before any
    planning; quorum, however, is enforced *when a leave falls due* —
    events beyond the simulated end of the run are never applied (they are
    returned in :attr:`SegmentedRun.unapplied_events`), so a
    quorum-crossing leave the run never reaches does not raise.
    """
    if total_iterations < 1:
        raise ValueError(
            f"total_iterations must be >= 1, got {total_iterations}"
        )
    events = tuple(events)
    validate_events(events, request.resolve_cluster())

    outcome = session.plan(request)
    ctx = session.last_context
    iter_s = outcome.simulation.iteration_time

    segments: list[EpochSegment] = []
    pending = list(events)
    remaining = total_iterations
    now = 0.0
    opening: tuple[ClusterEvent, ...] = ()
    delta: MembershipDelta | None = None
    new_profile_events = 0
    adopted = 0

    while remaining > 0:
        # Iterations until the next event falls due (all of them if none
        # remain).  An event at or before `now` lands immediately, merging
        # into the current boundary batch.
        if pending:
            gap = pending[0].time - now
            n = min(remaining, max(0, math.ceil(gap / iter_s)))
        else:
            n = remaining
        if n > 0:
            pert = ctx.request.perturbation
            segments.append(
                EpochSegment(
                    index=len(segments),
                    start_s=now,
                    end_s=now + n * iter_s,
                    iterations=n,
                    iteration_s=iter_s,
                    ranks=tuple(w.rank for w in ctx.cluster.workers),
                    opening_events=opening,
                    delta=delta,
                    degraded=pert.stragglers if pert is not None else (),
                    new_profile_events=new_profile_events,
                    adopted_dfg_types=adopted,
                )
            )
            now += n * iter_s
            remaining -= n
            if remaining == 0:
                break
        # Everything now due forms one boundary batch.
        batch: list[ClusterEvent] = []
        while pending and pending[0].time <= now:
            batch.append(pending.pop(0))
        if not batch:
            # Can only happen when n == 0 on the first pass with an event
            # strictly in the future of an empty timeline — defensive.
            continue
        re = session.replan(ctx, batch, quorum=quorum)
        ctx = re.context
        iter_s = re.simulation.iteration_time
        opening = tuple(batch)
        delta = re.delta
        new_profile_events = re.new_profile_events
        adopted = re.adopted_dfg_types

    return SegmentedRun(
        segments=tuple(segments),
        total_iterations=total_iterations,
        simulated_s=now,
        unapplied_events=tuple(pending),
    )
