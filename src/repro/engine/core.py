"""The discrete-event execution engine.

:func:`run_engine` plays a :class:`~repro.core.dfg.GlobalDFG` through an
explicit event queue instead of the closed-form Eq. (6) prefix-sum
recurrence.  Each rank owns a CUDA stream (forward → backward → optimizer)
and a COMM stream; synchronous collectives serialize on one global COMM
channel whose intervals mirror onto every rank's COMM stream.  Events —
per-rank bucket readiness, per-rank backward completion, per-bucket
collective completion, per-rank optimizer completion — are processed in
time order off a heap with deterministic sequence tie-breaking; a task
launches when its dependency count reaches zero and its start time is the
running max of its dependencies' completion times.

The :class:`~repro.engine.policy.SchedulePolicy` supplies the per-rank
stream anchors (bucket readiness, backward completion); a
:class:`~repro.engine.perturbation.Perturbation` rescales the inputs before
any event is scheduled.  Under the default
:class:`~repro.engine.policy.DDPOverlapPolicy` with no perturbation the
engine is **bit-identical** to
:func:`~repro.core.replayer.simulate_global_dfg`: it reads the same stream
anchors (:meth:`LocalDFG.bucket_ready_times`, published stream totals), the
same single-call bucket pricing, and performs the same float operations
(``max`` is exact; every addition matches the analytic recurrence) — so
parity is an equality, not an approximation, and serves as the regression
oracle for every alternative policy.

:func:`execute_global_dfg` is the dispatch front door: the analytic fast
path for the default policy without timeline collection (the allocator hot
loop), the event engine for everything else.

Imports from :mod:`repro.core.replayer` are function-scoped: the replayer
imports this package to route simulations, and module-level imports in both
directions would deadlock partially initialized modules.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.engine.perturbation import Perturbation
from repro.engine.policy import (
    DDPOverlapPolicy,
    SchedulePolicy,
    resolve_schedule_policy,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dfg import GlobalDFG
    from repro.core.replayer import SimulationResult
    from repro.hardware.cluster import Cluster

# Event kinds, in deterministic tie-break order at equal timestamps: a
# completion at time t must be visible to anything launching at time t.
_READY = 0        # (rank, bucket): the rank could launch this bucket
_COMPUTE_DONE = 1  # (rank,): the rank's backward pass retired
_COMM_DONE = 2    # (bucket,): the collective completed on the COMM channel
_OPT_DONE = 3     # (rank,): the rank's optimizer step retired


def execute_global_dfg(
    gdfg: "GlobalDFG",
    cluster: "Cluster",
    collect_timeline: bool = False,
    memory=None,
    collective_model=None,
    schedule_policy=None,
    perturbation: Perturbation | None = None,
    bucket_bits: tuple[int, ...] | None = None,
) -> "SimulationResult":
    """Simulate a global DFG, dispatching between the analytic Eq. (6) fast
    path and the discrete-event engine.

    The analytic recurrence serves the allocator's hot loop: default
    DDP-overlap schedule, no perturbation, no timeline.  Timeline
    collection, alternative schedule policies, and perturbations run
    through :func:`run_engine` (bit-identical on the default policy).
    ``bucket_bits`` (per-bucket compressed gradient widths) is forwarded
    to the shared bucket pricing on both branches; ``None`` keeps the
    uncompressed pricing bit-identical.
    """
    policy = resolve_schedule_policy(schedule_policy)
    if perturbation is not None and perturbation.is_noop:
        perturbation = None
    if (
        perturbation is None
        and not collect_timeline
        and type(policy) is DDPOverlapPolicy
    ):
        from repro.core.replayer import simulate_global_dfg

        return simulate_global_dfg(
            gdfg, cluster, memory=memory, collective_model=collective_model,
            bucket_bits=bucket_bits,
        )
    return run_engine(
        gdfg,
        cluster,
        collect_timeline=collect_timeline,
        memory=memory,
        collective_model=collective_model,
        schedule_policy=policy,
        perturbation=perturbation,
        bucket_bits=bucket_bits,
    )


def run_engine(
    gdfg: "GlobalDFG",
    cluster: "Cluster",
    collect_timeline: bool = False,
    memory=None,
    collective_model=None,
    schedule_policy: SchedulePolicy | str | None = None,
    perturbation: Perturbation | None = None,
    bucket_bits: tuple[int, ...] | None = None,
) -> "SimulationResult":
    """Event-driven simulation of one training iteration."""
    from repro.core.replayer import (
        SimulationResult,
        TimelineEvent,
        _emit_stream_timeline,
        bucket_comm_durations,
    )
    from repro.parallel.comm_model import resolve_collective_model

    comm_model = resolve_collective_model(collective_model)
    policy = resolve_schedule_policy(schedule_policy)

    locals_ = gdfg.locals
    if perturbation is not None:
        locals_ = [perturbation.perturb_local(ldfg) for ldfg in locals_]
    ranks = [ldfg.rank for ldfg in locals_]
    n_buckets = gdfg.n_buckets

    # ---- policy-provided stream anchors (per-rank CUDA streams) -------
    ready = {ldfg.rank: policy.bucket_ready_times(ldfg) for ldfg in locals_}
    compute_end = {
        ldfg.rank: policy.compute_end(ldfg) for ldfg in locals_
    }
    opt_durs = {
        ldfg.rank: ldfg.optimizer.duration if ldfg.optimizer else 0.0
        for ldfg in locals_
    }

    # ---- bucket pricing: one call per distinct size, shared with the
    # analytic path; perturbation drift scales per bucket ----------------
    durations = bucket_comm_durations(locals_, cluster, comm_model, bucket_bits)
    if perturbation is not None:
        durations = [
            dur * perturbation.comm_scale(n) for n, dur in enumerate(durations)
        ]

    # ---- event queue ---------------------------------------------------
    heap: list[tuple[float, int, int, tuple]] = []
    seq = 0

    def push(time: float, kind: int, payload: tuple) -> None:
        nonlocal seq
        heapq.heappush(heap, (time, kind, seq, payload))
        seq += 1

    # COMM channel state: collectives serialize; bucket n waits on every
    # rank's readiness plus bucket n-1's completion.
    comm_pending = [len(ranks) + (1 if n > 0 else 0) for n in range(n_buckets)]
    comm_start = [0.0] * n_buckets
    comm_end = [0.0] * n_buckets
    # Optimizer per rank: waits on the local backward and the final
    # collective (when there is one).
    opt_pending = {r: 1 + (1 if n_buckets else 0) for r in ranks}
    opt_start = {r: 0.0 for r in ranks}
    rank_end = {r: 0.0 for r in ranks}

    for ldfg in locals_:
        r = ldfg.rank
        for n in range(n_buckets):
            push(ready[r][n], _READY, (r, n))
        push(compute_end[r], _COMPUTE_DONE, (r,))

    def arm_comm(n: int, t: float) -> None:
        comm_start[n] = max(comm_start[n], t)
        comm_pending[n] -= 1
        if comm_pending[n] == 0:
            push(comm_start[n] + durations[n], _COMM_DONE, (n,))

    def arm_opt(r: int, t: float) -> None:
        opt_start[r] = max(opt_start[r], t)
        opt_pending[r] -= 1
        if opt_pending[r] == 0:
            end = opt_start[r] + opt_durs[r]
            rank_end[r] = end
            push(end, _OPT_DONE, (r,))

    while heap:
        t, kind, _, payload = heapq.heappop(heap)
        if kind == _READY:
            _, n = payload
            arm_comm(n, t)
        elif kind == _COMPUTE_DONE:
            (r,) = payload
            arm_opt(r, t)
        elif kind == _COMM_DONE:
            (n,) = payload
            comm_end[n] = t
            if n + 1 < n_buckets:
                arm_comm(n + 1, t)
            else:
                for r in ranks:
                    arm_opt(r, t)
        # _OPT_DONE: terminal; rank_end was recorded when it was scheduled.

    assert all(p == 0 for p in comm_pending), "collectives left unscheduled"
    assert all(p == 0 for p in opt_pending.values()), "optimizers never ran"

    # ---- result assembly (field-for-field the analytic layout) ---------
    comm_end_final = comm_end[-1] if n_buckets else 0.0
    comm_wait = {
        r: max(0.0, comm_end_final - compute_end[r]) for r in ranks
    }
    per_device_compute = {ldfg.rank: ldfg.compute_time for ldfg in locals_}
    iteration_time = max(rank_end.values()) if rank_end else 0.0

    timeline: list[TimelineEvent] = []
    if collect_timeline:
        # Same list order as the analytic path: per-rank CUDA stream nodes,
        # then per-bucket COMM intervals mirrored onto every rank, then the
        # optimizers.  Stream-node rendering is the legacy flat accumulation
        # from t=0 (a *rendering* of the CUDA stream; the scheduling anchors
        # above come from the policy).
        for ldfg in locals_:
            _emit_stream_timeline(ldfg, timeline)
        for n in range(n_buckets):
            for ldfg in locals_:
                timeline.append(
                    TimelineEvent(
                        rank=ldfg.rank,
                        device=ldfg.device_name,
                        stream="comm",
                        start=comm_start[n],
                        end=comm_end[n],
                        label=f"allreduce:bucket{n}",
                    )
                )
        for ldfg in locals_:
            if ldfg.optimizer:
                r = ldfg.rank
                timeline.append(
                    TimelineEvent(
                        r, ldfg.device_name, "cuda",
                        opt_start[r], rank_end[r], "optimizer",
                    )
                )

    return SimulationResult(
        iteration_time=iteration_time,
        per_device_compute=per_device_compute,
        comm_wait_time=comm_wait,
        memory=memory or {},
        timeline=timeline,
    )
