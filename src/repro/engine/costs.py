"""Unified node-cost sources and the shared LocalDFG assembly path.

Before the engine refactor the repo had three near-identical local-DFG
builders — :class:`~repro.core.cost_mapper.CostMapper` (catalog means +
fitted casts), ``GroundTruthSimulator._build_local`` (jittered backend
measurements + comm contention) and ``DproReplayer._build_local``
(casting-blind pure costs) — each re-implementing the forward/backward
walk, gradient-bucket readiness, and the optimizer pass with subtly
divergent semantics (the ground-truth and Dpro builders anchored
zero-backward-cost weighted ops to the *end* of the backward stream, while
PR 1 fixed the Cost Mapper to anchor to the nearest *preceding* node).

This module collapses the duplication:

* :class:`NodeCostSource` — the pricing protocol: per-op forward/backward
  node segments plus the optimizer pass;
* :class:`CatalogCostSource` — Cost Mapper semantics (catalog ``CC_i`` +
  cast model ``CP``), wrapping the very segment functions the incremental
  mapper itself runs (re-exported here from
  :mod:`repro.core.cost_mapper`), so the two can never drift;
* :class:`MeasuredCostSource` — the ground-truth jitter/launch-gap/comm-
  contention model (the "hardware" side of Table III);
* :class:`CastingBlindCostSource` — Dpro's cast- and cascade-blind
  prediction [35];
* :func:`assemble_local_dfg` — the one walk shared by every non-incremental
  builder: forward in topo order, backward in reverse topo order tracking
  per-op readiness anchors (nearest-preceding semantics everywhere),
  buckets via :func:`~repro.core.dfg.assign_buckets`, readiness via
  :func:`~repro.core.dfg.bucket_readiness_from_stream`, then the optimizer.
"""

from __future__ import annotations

import abc
import functools

from repro.common.dtypes import Precision
from repro.common.rng import derive_seed
from repro.core.cost_mapper import (  # noqa: F401 - canonical re-export
    catalog_backward_segment,
    catalog_forward_segment,
    catalog_pure_cost,
    optimizer_pass_seconds,
)
from repro.core.dfg import (
    DFGNode,
    LocalDFG,
    NodeKind,
    assign_buckets,
    bucket_readiness_from_stream,
)
from repro.graph.dag import PrecisionDAG
from repro.graph.ops import OpKind
from repro.graph.propagation import (
    effective_precisions,
    grad_precision,
    output_precision,
)


@functools.lru_cache(maxsize=None)
def rep_offset(name: str) -> int:
    """Per-op measurement-rep offset decorrelating cast samples between ops.

    Derived from the op *name* via the seeded FNV mix — builtin ``hash`` is
    salted per process, which made "ground truth" measurements differ from
    run to run (Table III was irreproducible).
    """
    return derive_seed(0, name) % 97


# ---------------------------------------------------------------------------
# the protocol
# ---------------------------------------------------------------------------


class NodeCostSource(abc.ABC):
    """Prices one rank's per-op DFG contributions for the shared assembler.

    A source owns its Precision DAG and its notion of *effective* precision;
    :func:`assemble_local_dfg` only asks it for segments.  Sources with
    stateful randomness (the measured one) rely on the assembler's fixed
    call order: every op's forward segment in topo order, then every op's
    backward segment in reverse topo order, then the optimizer.
    """

    dag: PrecisionDAG

    @abc.abstractmethod
    def forward_segment(self, name: str) -> list[DFGNode]:
        """Forward-stream nodes op ``name`` contributes (casts + compute)."""

    @abc.abstractmethod
    def backward_segment(self, name: str) -> list[DFGNode]:
        """Backward-stream nodes op ``name`` contributes."""

    @abc.abstractmethod
    def optimizer_duration(self) -> float:
        """Duration of the optimizer pass closing the iteration."""


class CatalogCostSource(NodeCostSource):
    """Cost Mapper pricing: catalog means + fitted linear cast models.

    ``assemble_local_dfg(CatalogCostSource(...))`` is node-for-node
    identical to ``CostMapper.build_local_dfg`` (equivalence-tested) — the
    Cost Mapper keeps its incremental segment cache, but both derive every
    segment through the same module-level functions above.
    """

    def __init__(self, dag: PrecisionDAG, catalog, cast_calc, device) -> None:
        self.dag = dag
        self.catalog = catalog
        self.cast_calc = cast_calc
        self.device = device
        self.effective = effective_precisions(dag)

    def forward_segment(self, name: str) -> list[DFGNode]:
        return catalog_forward_segment(
            self.dag, self.catalog, self.cast_calc, name, self.effective
        )

    def backward_segment(self, name: str) -> list[DFGNode]:
        return catalog_backward_segment(
            self.dag, self.catalog, self.cast_calc, name, self.effective
        )

    def optimizer_duration(self) -> float:
        return optimizer_pass_seconds(self.dag.total_weight_elems(), self.device)


class MeasuredCostSource(NodeCostSource):
    """Ground-truth pricing: independently jittered backend measurements,
    per-instance launch gaps, and comm-contention-inflated backward costs —
    the ways real hardware differs from the Replayer's cost model.

    ``rng`` is the stateful jitter stream for one ``(rank, iteration)``
    build; the assembler's fixed walk order keeps draws reproducible.
    """

    def __init__(
        self,
        dag: PrecisionDAG,
        backend,
        device,
        rng,
        iteration: int,
        comm_contention: float,
    ) -> None:
        self.dag = dag
        self.backend = backend
        self.device = device
        self.rng = rng
        self.iteration = iteration
        self.contention = 1.0 + comm_contention
        self.effective = effective_precisions(dag)

    # -- jitter primitives --------------------------------------------
    def _jitter(self) -> float:
        return float(1.0 + 0.02 * self.rng.standard_normal())

    def _launch_gap(self) -> float:
        return float(max(self.rng.normal(2e-6, 1e-6), 0.0))

    def _kernel_precision(self, name: str, prec: Precision) -> Precision:
        """Dependent ops with INT8-effective inputs execute FP16 kernels."""
        if not self.backend.device.supports(prec):
            return (
                Precision.FP16
                if self.backend.device.supports(Precision.FP16)
                else Precision.FP32
            )
        if prec is Precision.INT8 and not self.dag.spec(name).is_adjustable:
            return Precision.FP16
        return prec

    def _input_elems(self, name: str) -> int:
        return sum(
            self.dag.spec(p).output_elems for p in self.dag.predecessors(name)
        )

    # -- segments ------------------------------------------------------
    def forward_segment(self, name: str) -> list[DFGNode]:
        dag, backend, it = self.dag, self.backend, self.iteration
        seg: list[DFGNode] = []
        spec = dag.spec(name)
        prec = self.effective[name]
        for pred in dag.predecessors(name):
            src = output_precision(self.effective[pred])
            if src is not prec:
                dur = backend.measure_cast(
                    src, prec, dag.spec(pred).output_elems,
                    rep=it * 131 + rep_offset(name),
                )
                if dur > 0:
                    seg.append(
                        DFGNode(f"cast:{pred}->{name}", NodeKind.CAST,
                                dur * self._jitter() + self._launch_gap(),
                                op=name)
                    )
        if spec.is_adjustable and spec.has_weight and prec is not Precision.FP32:
            dur = backend.measure_cast(
                Precision.FP32, prec, spec.weight_elems, rep=it
            )
            if dur > 0:
                seg.append(
                    DFGNode(f"cast:w:{name}", NodeKind.CAST,
                            dur * self._jitter() + self._launch_gap(), op=name)
                )
        fwd = backend.measure_op_forward(
            spec, self._kernel_precision(name, prec), self._input_elems(name),
            rep=it,
        )
        if fwd > 0:
            seg.append(
                DFGNode(name, NodeKind.FORWARD,
                        fwd * self._jitter() + self._launch_gap(), op=name)
            )
        return seg

    def backward_segment(self, name: str) -> list[DFGNode]:
        dag, backend, it = self.dag, self.backend, self.iteration
        spec = dag.spec(name)
        if spec.kind is OpKind.INPUT:
            return []  # the graph input's gradient is never materialized
        seg: list[DFGNode] = []
        prec = self.effective[name]
        my_grad = grad_precision(prec)
        for succ in dag.successors(name):
            succ_grad = grad_precision(self.effective[succ])
            if succ_grad is not my_grad:
                dur = backend.measure_cast(
                    succ_grad, my_grad, spec.output_elems, rep=it + 7
                )
                if dur > 0:
                    seg.append(
                        DFGNode(f"cast:g:{succ}->{name}", NodeKind.CAST,
                                dur * self.contention * self._jitter()
                                + self._launch_gap(),
                                op=name)
                    )
        bwd = backend.measure_op_backward(
            spec, self._kernel_precision(name, prec), self._input_elems(name),
            rep=it,
        )
        if bwd > 0:
            seg.append(
                DFGNode(f"bwd:{name}", NodeKind.BACKWARD,
                        bwd * self.contention * self._jitter()
                        + self._launch_gap(),
                        op=name)
            )
        return seg

    def optimizer_duration(self) -> float:
        base = optimizer_pass_seconds(self.dag.total_weight_elems(), self.device)
        return base * self._jitter()


class CastingBlindCostSource(NodeCostSource):
    """Dpro pricing [35]: each op's *pure* cost at its assigned precision
    (adjustable ops) or FP32 (everything else — no cascade modelling), no
    cast nodes anywhere."""

    def __init__(self, dag: PrecisionDAG, catalog, device) -> None:
        self.dag = dag
        self.catalog = catalog
        self.device = device

    def _pure(self, op: str):
        spec = self.dag.spec(op)
        # No cascade: only the op's own assignment matters.
        prec = self.dag.precision(op) if spec.is_adjustable else Precision.FP32
        if self.catalog.has(op, prec):
            return self.catalog.get(op, prec)
        return self.catalog.get(op, Precision.FP32)

    def forward_segment(self, name: str) -> list[DFGNode]:
        cost = self._pure(name)
        if cost.forward > 0:
            return [DFGNode(name, NodeKind.FORWARD, cost.forward, op=name)]
        return []

    def backward_segment(self, name: str) -> list[DFGNode]:
        cost = self._pure(name)
        if cost.backward > 0:
            return [
                DFGNode(f"bwd:{name}", NodeKind.BACKWARD, cost.backward, op=name)
            ]
        return []

    def optimizer_duration(self) -> float:
        return optimizer_pass_seconds(self.dag.total_weight_elems(), self.device)


# ---------------------------------------------------------------------------
# the shared assembly walk
# ---------------------------------------------------------------------------


def assemble_local_dfg(
    source: NodeCostSource,
    device_name: str,
    rank: int,
    bucket_cap_bytes: int = 25 * 1024**2,
) -> LocalDFG:
    """Build one rank's execution line from a cost source.

    The single walk every non-incremental builder shares: forward segments
    in topo order; backward segments in reverse topo order while tracking
    each weighted op's readiness anchor — its BACKWARD node, else the last
    node of its segment, else the nearest *preceding* backward-stream node
    (index -1 = forward end); DDP buckets from the weighted ops in backward
    completion order; readiness via :func:`bucket_readiness_from_stream`.
    """
    dag = source.dag
    topo = dag.topo_order()
    dfg = LocalDFG(device_name, rank)
    # Build the streams as plain lists and install them in one shot
    # (load_streams): same node order and the same sequential left-to-right
    # duration sums as repeated add_* calls, so totals stay bit-identical,
    # without paying per-node cache invalidation.
    forward: list[DFGNode] = []
    fwd_total = 0.0
    for name in topo:
        for node in source.forward_segment(name):
            forward.append(node)
            fwd_total += node.duration

    backward: list[DFGNode] = []
    bwd_total = 0.0
    anchors: dict[str, int] = {}
    weighted_rev: list[tuple[str, int]] = []
    for name in reversed(topo):
        base = len(backward)
        seg = source.backward_segment(name)
        pos = None
        for i, node in enumerate(seg):
            backward.append(node)
            bwd_total += node.duration
            if node.kind is NodeKind.BACKWARD:
                pos = i
        spec = dag.spec(name)
        if spec.has_weight:
            anchors[name] = base + pos if pos is not None else base + len(seg) - 1
            weighted_rev.append((name, spec.weight_elems * Precision.FP32.nbytes))

    dfg.load_streams(forward, backward, fwd_total, bwd_total)
    buckets = assign_buckets(weighted_rev, bucket_cap_bytes)
    dfg.set_buckets(
        buckets, bucket_readiness_from_stream(dfg.backward, buckets, anchors)
    )
    dfg.set_optimizer(source.optimizer_duration())
    return dfg
