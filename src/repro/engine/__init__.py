"""Discrete-event execution engine with pluggable schedules and costs.

The Replayer's Eq. (6) path is an analytic prefix-sum recurrence — fast,
but only able to express the one schedule it hard-codes.  This package
supplies the event-driven core underneath it:

* :mod:`repro.engine.core` — the scheduler: per-rank CUDA+COMM streams, an
  explicit event queue, and :func:`execute_global_dfg`, which dispatches
  between the analytic fast path (allocator hot loop) and the engine;
* :mod:`repro.engine.policy` — the :class:`SchedulePolicy` protocol with
  :class:`DDPOverlapPolicy` (the Eq. (6) default, bit-identical to
  :func:`~repro.core.replayer.simulate_global_dfg` — the parity oracle) and
  :class:`BlockingSyncPolicy` (no-overlap vanilla sync SGD);
* :mod:`repro.engine.perturbation` — deterministic, seed-derived straggler
  and bandwidth-drift injection;
* :mod:`repro.engine.segments` — epoch-segmented simulation across elastic
  membership changes (:func:`simulate_with_churn`), each segment
  incrementally re-planned on its surviving-rank cluster;
* :mod:`repro.engine.costs` — the :class:`NodeCostSource` protocol
  (:class:`CatalogCostSource`, :class:`MeasuredCostSource`,
  :class:`CastingBlindCostSource`) and :func:`assemble_local_dfg`, the one
  LocalDFG assembly walk shared by every non-incremental builder.
"""

from repro.engine.core import execute_global_dfg, run_engine
from repro.engine.costs import (
    CastingBlindCostSource,
    CatalogCostSource,
    MeasuredCostSource,
    NodeCostSource,
    assemble_local_dfg,
    catalog_backward_segment,
    catalog_forward_segment,
    catalog_pure_cost,
    optimizer_pass_seconds,
)
from repro.engine.perturbation import Perturbation
from repro.engine.policy import (
    SCHEDULE_POLICIES,
    BlockingSyncPolicy,
    DDPOverlapPolicy,
    SchedulePolicy,
    resolve_schedule_policy,
)
from repro.engine.segments import (
    EpochSegment,
    SegmentedRun,
    simulate_with_churn,
)

__all__ = [
    "BlockingSyncPolicy",
    "CastingBlindCostSource",
    "CatalogCostSource",
    "DDPOverlapPolicy",
    "EpochSegment",
    "MeasuredCostSource",
    "NodeCostSource",
    "Perturbation",
    "SCHEDULE_POLICIES",
    "SchedulePolicy",
    "SegmentedRun",
    "assemble_local_dfg",
    "simulate_with_churn",
    "catalog_backward_segment",
    "catalog_forward_segment",
    "catalog_pure_cost",
    "execute_global_dfg",
    "optimizer_pass_seconds",
    "resolve_schedule_policy",
    "run_engine",
]
