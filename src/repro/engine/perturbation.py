"""Deterministic straggler/drift injection for the discrete-event engine.

ACE-Sync-style cloud-edge scenarios need ranks that run *slower than
profiled* (thermal throttling, co-located inference bursts, an edge node on
a bad day) and links whose bandwidth drifts between iterations.  A
:class:`Perturbation` describes both, seed-derived and
``PYTHONHASHSEED``-stable (every factor comes from
:func:`repro.common.rng.derive_seed` — never from builtin ``hash`` or
shared mutable RNG state), so a perturbed simulation is exactly
reproducible across processes.

Semantics:

* **compute**: each rank's CUDA-stream node durations (and its optimizer
  pass) are scaled by ``1 + compute_jitter * u(rank)`` with
  ``u ~ U[0, 1)`` drawn from the rank-derived seed, times any explicit
  ``stragglers`` multiplier for that rank;
* **communication**: each bucket's collective duration is scaled by
  ``1 + bandwidth_drift * u(bucket)`` from the bucket-derived seed.

Perturbations transform *inputs* (a scaled copy of each
:class:`~repro.core.dfg.LocalDFG`; a per-bucket multiplier on the priced
collective), so they compose with every schedule policy and collective
model unchanged.  The original DFGs are never mutated.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Iterable, Mapping, Union

from repro.common.rng import derive_seed, new_rng

if TYPE_CHECKING:  # pragma: no cover - runtime import would cycle via core
    from repro.core.dfg import LocalDFG


def _uniform(seed: int, *keys) -> float:
    """One U[0, 1) draw from a derived seed (stable across processes)."""
    return float(new_rng(derive_seed(seed, *keys)).uniform())


@dataclasses.dataclass(frozen=True)
class Perturbation:
    """Seed-derived per-rank slowdowns and per-bucket bandwidth drift.

    Parameters
    ----------
    seed:
        Base seed of every derived factor.
    compute_jitter:
        Maximum fractional compute slowdown per rank (``0.1`` = each rank
        runs up to 10 % slower, factor drawn uniformly per rank).
    bandwidth_drift:
        Maximum fractional collective slowdown per bucket.
    stragglers:
        Explicit ``rank -> multiplier`` compute slowdowns (``{3: 2.0}`` =
        rank 3 computes at half speed), on top of the jitter.  Accepts a
        mapping or ``((rank, factor), ...)`` pairs; stored sorted so equal
        perturbations compare (and fingerprint) equal.
    """

    seed: int = 0
    compute_jitter: float = 0.0
    bandwidth_drift: float = 0.0
    stragglers: Union[Mapping[int, float], tuple] = ()

    def __post_init__(self) -> None:
        if not math.isfinite(self.compute_jitter) or self.compute_jitter < 0:
            raise ValueError(
                f"compute_jitter must be finite and >= 0, got "
                f"{self.compute_jitter}"
            )
        if not math.isfinite(self.bandwidth_drift) or self.bandwidth_drift < 0:
            raise ValueError(
                f"bandwidth_drift must be finite and >= 0, got "
                f"{self.bandwidth_drift}"
            )
        pairs = (
            tuple(sorted(self.stragglers.items()))
            if isinstance(self.stragglers, Mapping)
            else tuple(sorted(tuple(p) for p in self.stragglers))
        )
        if len({rank for rank, _ in pairs}) != len(pairs):
            raise ValueError(
                f"stragglers list a rank more than once: "
                f"{[rank for rank, _ in pairs]}"
            )
        for rank, factor in pairs:
            if rank < 0:
                raise ValueError(
                    f"straggler rank must be >= 0, got {rank}"
                )
            if not math.isfinite(factor) or factor <= 0:
                raise ValueError(
                    f"straggler factor for rank {rank} must be finite and "
                    f"> 0, got {factor}"
                )
        object.__setattr__(self, "stragglers", pairs)

    # ------------------------------------------------------------------
    @property
    def is_noop(self) -> bool:
        return (
            self.compute_jitter == 0.0
            and self.bandwidth_drift == 0.0
            and all(factor == 1.0 for _, factor in self.stragglers)
        )

    def straggler_factor(self, rank: int) -> float:
        for r, factor in self.stragglers:
            if r == rank:
                return float(factor)
        return 1.0

    def compute_scale(self, rank: int) -> float:
        """Total CUDA-stream duration multiplier for one rank."""
        scale = self.straggler_factor(rank)
        if self.compute_jitter:
            scale *= 1.0 + self.compute_jitter * _uniform(
                self.seed, "compute", rank
            )
        return scale

    def with_degradations(
        self, factors: Iterable[tuple[int, float]]
    ) -> "Perturbation":
        """A copy with extra per-rank slowdowns composed in.

        ``degrade`` cluster events (:mod:`repro.hardware.events`) land here:
        each ``(rank, factor)`` multiplies onto any existing straggler
        factor for that rank, so mid-run degradations stack with a
        scenario's baseline stragglers instead of replacing them.
        """
        merged = {rank: factor for rank, factor in self.stragglers}
        for rank, factor in factors:
            merged[rank] = merged.get(rank, 1.0) * factor
        return dataclasses.replace(self, stragglers=merged)

    def comm_scale(self, bucket: int) -> float:
        """Collective duration multiplier for one bucket index."""
        if not self.bandwidth_drift:
            return 1.0
        return 1.0 + self.bandwidth_drift * _uniform(self.seed, "comm", bucket)

    # ------------------------------------------------------------------
    def perturb_local(self, ldfg: "LocalDFG") -> "LocalDFG":
        """A copy of ``ldfg`` with this perturbation's compute scale applied
        to every forward/backward node and the optimizer (structure, bucket
        membership and readiness anchors are untouched)."""
        from repro.core.dfg import LocalDFG

        scale = self.compute_scale(ldfg.rank)
        if scale == 1.0:
            return ldfg
        out = LocalDFG(ldfg.device_name, ldfg.rank)
        for node in ldfg.forward:
            out.add_forward(
                dataclasses.replace(node, duration=node.duration * scale)
            )
        for node in ldfg.backward:
            out.add_backward(
                dataclasses.replace(node, duration=node.duration * scale)
            )
        if ldfg.buckets:
            out.set_buckets(list(ldfg.buckets), dict(ldfg.bucket_ready_after))
        if ldfg.optimizer is not None:
            out.set_optimizer(ldfg.optimizer.duration * scale)
        return out

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.compute_jitter:
            parts.append(f"jitter<={self.compute_jitter:.0%}")
        if self.bandwidth_drift:
            parts.append(f"drift<={self.bandwidth_drift:.0%}")
        for rank, factor in self.stragglers:
            parts.append(f"rank{rank}x{factor:g}")
        return f"Perturbation({', '.join(parts)})"
