"""Precision plans — the Allocator's output artifact (workflow step 5).

A :class:`PrecisionPlan` maps each device *type* to a per-operator precision
assignment.  Training GPUs always run FP32 (``b_ko = 32`` for
``k ∈ K \\ K_inf``, problem (1)); inference GPU assignments come from the
Allocator.  Plans serialize to plain dicts for storage/transport.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro.common.dtypes import Precision, parse_precision


#: Serialized-dict key carrying the optional compression axis.  Reserved —
#: never a device name — and only emitted when compression is active, so
#: uncompressed plan dicts stay byte-identical to the pre-compression era.
COMPRESSION_KEY = "__bucket_compression__"


@dataclasses.dataclass
class PrecisionPlan:
    """Per-device-type operator precision assignments."""

    #: device name -> (op name -> precision); ops absent default to FP32.
    assignments: dict[str, dict[str, Precision]]
    #: Per-DDP-bucket QSGD compression levels (the joint planning axis), or
    #: ``None`` when gradients sync uncompressed.  All-zero levels are
    #: recorded as ``None`` by the planner (the level-0 parity contract).
    bucket_compression: tuple[int, ...] | None = None

    def for_device(self, device_name: str) -> dict[str, Precision]:
        """Plan for one device type (empty = all FP32)."""
        return dict(self.assignments.get(device_name, {}))

    def precision_counts(self, device_name: str) -> Counter:
        """How many ops run at each precision on a device type."""
        return Counter(p.value for p in self.assignments.get(device_name, {}).values())

    def quantized_ops(self, device_name: str) -> list[str]:
        """Ops below FP32 on a device type."""
        return [
            op
            for op, prec in self.assignments.get(device_name, {}).items()
            if prec is not Precision.FP32
        ]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = {
            dev: {op: prec.value for op, prec in ops.items()}
            for dev, ops in self.assignments.items()
        }
        if self.bucket_compression is not None:
            out[COMPRESSION_KEY] = list(self.bucket_compression)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "PrecisionPlan":
        compression = data.get(COMPRESSION_KEY)
        return cls(
            assignments={
                dev: {op: parse_precision(v) for op, v in ops.items()}
                for dev, ops in data.items()
                if dev != COMPRESSION_KEY
            },
            bucket_compression=(
                None if compression is None else tuple(int(v) for v in compression)
            ),
        )

    def summary(self) -> str:
        lines = []
        for dev in sorted(self.assignments):
            counts = self.precision_counts(dev)
            parts = ", ".join(f"{counts[p]}x{p}" for p in ("int8", "fp16", "fp32") if counts[p])
            lines.append(f"{dev}: {parts or 'all fp32'}")
        return "; ".join(lines) or "empty plan"
