"""The sensitivity Indicator (Sec. IV-A).

Implements Proposition 3's variance increment

.. math::

    \\Omega_o^{(b_o)} = \\gamma^2 d_o \\hat\\sigma_{fp}^{(o)}
                       + (d_L - d_o) \\hat\\sigma_{bp}^{(o)}

with the forward/backward per-operator variance terms of Eqs. (4)/(5),
dispatched on whether ``b_o`` is a fixed-point or floating-point format.
Inputs are the profiled :class:`~repro.profiling.stats.OperatorStats`
(norms, dimensionalities, scales, effective exponents) plus the operator's
depth in the Precision DAG.

``Omega`` is what the Allocator minimizes: large Omega = quantizing this op
at this precision injects much gradient variance = keep it high-precision.
"""

from __future__ import annotations

from typing import Protocol

from repro.common.dtypes import Precision
from repro.graph.dag import PrecisionDAG
from repro.profiling.stats import OperatorStats
from repro.quant.qsgd import qsgd_variance_factor


class IndicatorProtocol(Protocol):
    """Interface shared by QSync's indicator and the baselines."""

    def omega(self, op: str, precision: Precision) -> float:
        """Sensitivity of ``op`` at ``precision`` (0 for FP32)."""
        ...


class VarianceIndicator:
    """QSync's variance-increment indicator.

    Parameters
    ----------
    dag:
        Precision DAG (provides ``d_o`` and ``d_L``).
    stats:
        Per-adjustable-op profiled statistics.
    gamma:
        Loss-gradient coefficient: ``1/N`` for cross-entropy with softmax,
        ``2/N`` for MSE (Sec. IV-A); ``N`` = local batch size.
    """

    def __init__(
        self,
        dag: PrecisionDAG,
        stats: dict[str, OperatorStats],
        gamma: float,
    ) -> None:
        self.dag = dag
        self.stats = stats
        self.gamma = float(gamma)
        self._d_max = dag.max_depth()

    # ------------------------------------------------------------------
    # Eq. (4): forward variance increment
    # ------------------------------------------------------------------
    def _sigma_fp(self, s: OperatorStats, precision: Precision) -> float:
        if precision is Precision.INT8:
            q_v = self._scale_at_bits(s.act_scale, 8)
            q_x = self._scale_at_bits(s.weight_scale, 8)
            return (
                s.weight_norm_sq * q_v**2 * s.act_dims
                + s.act_norm_sq * q_x**2 * s.weight_dims
            ) / 6.0
        eps = 2.0 ** (-precision.stochastic_mantissa_bits)
        return (
            eps**2
            * (
                s.weight_norm_sq * 2.0 ** (2 * s.act_exp) * s.act_dims
                + s.act_norm_sq * 2.0 ** (2 * s.weight_exp) * s.weight_dims
            )
            / 6.0
        )

    # ------------------------------------------------------------------
    # Eq. (5): backward variance increment
    # ------------------------------------------------------------------
    def _sigma_bp(self, s: OperatorStats, precision: Precision) -> float:
        # Fixed-point kernels backpropagate in FP16 (footnote 2), so the
        # gradient-side term always uses the FP16 epsilon.
        eps16 = 2.0 ** (-Precision.FP16.stochastic_mantissa_bits)
        if precision is Precision.INT8:
            q_v = self._scale_at_bits(s.act_scale, 8)
            return (
                s.grad_norm_sq * q_v**2 * s.act_dims
                + s.act_norm_sq * 2.0 ** (2 * s.grad_exp) * eps16**2 * s.grad_dims
            ) / 6.0
        eps = 2.0 ** (-precision.stochastic_mantissa_bits)
        return (
            eps**2
            * (
                s.grad_norm_sq * 2.0 ** (2 * s.act_exp) * s.act_dims
                + s.act_norm_sq * 2.0 ** (2 * s.grad_exp) * s.grad_dims
            )
            / 6.0
        )

    @staticmethod
    def _scale_at_bits(scale_8bit: float, bits: int) -> float:
        """Rescale an 8-bit-profiled quantizer scale to another bit width."""
        if bits == 8:
            return scale_8bit
        return scale_8bit * (2.0**8 - 1) / (2.0**bits - 1)

    # ------------------------------------------------------------------
    def omega(self, op: str, precision: Precision) -> float:
        """Proposition 3's variance increment; 0 for FP32 (no quantization)."""
        if precision is Precision.FP32:
            return 0.0
        if op not in self.stats:
            raise KeyError(f"no profiled statistics for operator {op!r}")
        s = self.stats[op]
        d_o = self.dag.depth(op)
        return (
            self.gamma**2 * d_o * self._sigma_fp(s, precision)
            + (self._d_max - d_o) * self._sigma_bp(s, precision)
        )

    def gradient_sync_variance(self, op: str, bits: int | None) -> float:
        """Added gradient variance of QSGD-syncing ``op``'s gradients at
        ``bits`` — the compression axis' analogue of :meth:`omega`.

        Proposition-2 reasoning on the QSGD grid
        (:func:`~repro.quant.qsgd.qsgd_variance_factor`) applied to the
        op's profiled gradient second moment.  Unlike the forward/backward
        terms this variance lands directly on the weight update — it is
        not amplified through the remaining backward depth — so no depth
        factor applies.  Zero at >= 32 bits (uncompressed), zero for ops
        without profiled statistics (nothing to bucket).
        """
        factor = qsgd_variance_factor(bits)
        if factor == 0.0:
            return 0.0
        s = self.stats.get(op)
        if s is None:
            return 0.0
        return factor * s.grad_norm_sq

    def ranking(self, precision: Precision) -> list[tuple[str, float]]:
        """Ops sorted most-sensitive-first at a given precision."""
        scored = [(op, self.omega(op, precision)) for op in self.stats]
        return sorted(scored, key=lambda kv: -kv[1])

    def relative_ranks(self, precision: Precision) -> dict[str, int]:
        """Op -> rank (0 = most sensitive), the quantity traced in Fig. 8."""
        return {
            op: rank for rank, (op, _) in enumerate(self.ranking(precision))
        }


def gamma_for_loss(loss: str, batch_size: int) -> float:
    """The loss-gradient coefficient gamma of Sec. IV-A."""
    if loss in ("ce", "cross_entropy", "softmax_ce"):
        return 1.0 / batch_size
    if loss in ("mse", "l2"):
        return 2.0 / batch_size
    raise ValueError(f"unknown loss {loss!r} (expected 'ce' or 'mse')")
