"""The paper's contribution: Predictor (Indicator + Replayer) and Allocator.

* :mod:`repro.core.indicator` — the bi-directional mixed-precision
  sensitivity indicator ``Omega_o^{(b_o)}`` (Proposition 3, Eqs. 3–5).
* :mod:`repro.core.dfg` — local/global data-flow graphs: the execution
  timeline representation the Replayer simulates.
* :mod:`repro.core.cost_mapper` — Algorithm 1: neighborhood-aware cost
  mapping with cascading precision-dependent updates.
* :mod:`repro.core.replayer` — the Replayer: applies plans, rebuilds DFGs,
  simulates the global timeline (Eq. 6) and estimates memory.
* :mod:`repro.core.simulator` — the fine-grained ground-truth event engine
  that replaces the paper's hardware measurements (DESIGN.md §4.1).
* :mod:`repro.core.allocator` — quantization-minimized precision allocation:
  fastest-feasible initialization + max-heap recovery (Sec. V).
* :mod:`repro.core.qsync` — the end-to-end 7-step workflow (Fig. 3).
"""

from repro.core.allocator import Allocator, AllocatorConfig
from repro.core.cost_mapper import (
    CostMapper,
    effective_precisions,
    grad_precision,
    output_precision,
)
from repro.core.dfg import DFGNode, GlobalDFG, LocalDFG, NodeKind, Stream
from repro.core.indicator import IndicatorProtocol, VarianceIndicator
from repro.core.plan import PrecisionPlan
from repro.core.qsync import QSyncReport, qsync_plan
from repro.core.replayer import Replayer, ReplayerStats, SimulationResult
from repro.core.simulator import GroundTruthSimulator

__all__ = [
    "VarianceIndicator",
    "IndicatorProtocol",
    "LocalDFG",
    "GlobalDFG",
    "DFGNode",
    "NodeKind",
    "Stream",
    "CostMapper",
    "effective_precisions",
    "output_precision",
    "grad_precision",
    "Replayer",
    "ReplayerStats",
    "SimulationResult",
    "GroundTruthSimulator",
    "Allocator",
    "AllocatorConfig",
    "PrecisionPlan",
    "qsync_plan",
    "QSyncReport",
]
