"""Per-bucket gradient-compression allocation (the joint planning axis).

The precision Allocator decides *what arrives in the gradient buckets*
(layer precisions); this module decides *how those buckets travel*: a
QSGD compression level per DDP bucket, chosen so the total all-reduce
time drops as far as possible while the **added** gradient-sync variance
stays within a fraction of the precision plan's own indicator loss.

The search mirrors the recovery loop's shape — a greedy budgeted ascent
with deterministic tie-breaking — but climbs the compression ladder
instead of the precision ladder:

1. start every bucket at level 0 (uncompressed — the parity rung);
2. each step considers deepening each bucket by one rung of the ladder,
   pricing the time saved through the replayer's collective model
   (:meth:`~repro.parallel.comm_model.CollectiveModel.allreduce_time_bits`)
   and the variance added through the Indicator's gradient-sync term;
3. accept the move with the best time-saved-per-variance ratio that still
   fits the budget; stop when no feasible move saves time.

Everything here is pure Python over floats the collective models produce —
no numpy, no randomness — so the compression axis plans identically with
or without the kernel extra (the ``HAVE_NUMPY`` degradation discipline).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.core.replayer import Replayer
from repro.quant.qsgd import COMPRESSION_LEVELS, level_bits


@dataclasses.dataclass
class CompressionReport:
    """Diagnostics of one compression-allocation run."""

    #: Chosen per-bucket levels (index = bucket index).
    levels: tuple[int, ...]
    #: Sum of per-bucket all-reduce times at level 0 (uncompressed).
    base_allreduce_seconds: float
    #: Sum of per-bucket all-reduce times at the chosen levels.
    compressed_allreduce_seconds: float
    #: Added gradient-sync variance of the chosen levels.
    added_variance: float
    #: The budget the ascent ran under (``loss_budget * base indicator loss``).
    variance_budget: float
    #: Candidate moves evaluated / accepted by the greedy ascent.
    steps_attempted: int = 0
    steps_accepted: int = 0

    @property
    def allreduce_speedup(self) -> float:
        """Uncompressed-over-compressed all-reduce time ratio (>= 1)."""
        if self.compressed_allreduce_seconds <= 0.0:
            return 1.0 if self.base_allreduce_seconds <= 0.0 else float("inf")
        return self.base_allreduce_seconds / self.compressed_allreduce_seconds

    def summary(self) -> str:
        counts: dict[int, int] = {}
        for lvl in self.levels:
            counts[lvl] = counts.get(lvl, 0) + 1
        dist = ", ".join(f"L{k}x{v}" for k, v in sorted(counts.items()))
        return (
            f"allreduce {self.base_allreduce_seconds * 1e3:.3f} -> "
            f"{self.compressed_allreduce_seconds * 1e3:.3f} ms "
            f"({self.allreduce_speedup:.2f}x), variance "
            f"{self.added_variance:.3e} / {self.variance_budget:.3e}; "
            f"levels {dist or 'none'}"
        )


def allocate_compression(
    replayer: Replayer,
    bucket_variances: Sequence[Mapping[int, float]],
    budget: float,
    levels: tuple[int, ...] = COMPRESSION_LEVELS,
) -> tuple[tuple[int, ...], CompressionReport]:
    """Greedy budgeted ascent over the per-bucket compression ladder.

    Parameters
    ----------
    replayer:
        Supplies the cluster, the collective model, and the bucket sizes
        (read off a reference rank's LocalDFG — all ranks share the bucket
        structure in synchronous data parallelism).  **Not mutated**: the
        caller installs the returned levels via
        :meth:`~repro.core.replayer.Replayer.set_bucket_compression`.
    bucket_variances:
        Per bucket, a mapping ``level -> total added gradient variance``
        at that level (level 0 must map to 0.0) — precomputed by the
        planner from the Indicator's gradient-sync term.
    budget:
        Cap on the summed added variance (absolute, same units as omega).
    levels:
        The ladder to climb, ascending, starting at 0.

    Returns ``(per-bucket levels, report)``.  Deterministic: candidate
    scoring is pure float arithmetic with index-ordered tie-breaking, and
    an all-level-0 outcome (empty budget, nothing saves time) leaves the
    replayer's behaviour bit-identical to the uncompressed planner.
    """
    if levels[0] != 0:
        raise ValueError(f"compression ladder must start at 0, got {levels!r}")
    ref_rank = min(replayer.dags)
    buckets = replayer.local_dfg(ref_rank).buckets
    if len(bucket_variances) != len(buckets):
        raise ValueError(
            f"bucket_variances has {len(bucket_variances)} entries for "
            f"{len(buckets)} buckets"
        )
    cluster = replayer.cluster
    model = replayer.collective_model

    # Price each (bucket, rung) once: the ascent revisits pairs.
    times: list[list[float]] = []
    for bucket in buckets:
        times.append(
            [
                model.allreduce_time_bits(cluster, bucket.nbytes, level_bits(lvl))
                for lvl in levels
            ]
        )

    rung = [0] * len(buckets)  # index into `levels` per bucket
    spent = 0.0
    attempted = 0
    accepted = 0
    while True:
        best: tuple[float, float, int] | None = None  # (ratio, dt, -index)
        for i in range(len(buckets)):
            k = rung[i]
            if k + 1 >= len(levels):
                continue
            attempted += 1
            dt = times[i][k] - times[i][k + 1]
            if dt <= 0.0:
                continue  # deeper compression doesn't pay here
            dv = (
                bucket_variances[i][levels[k + 1]]
                - bucket_variances[i][levels[k]]
            )
            if dv < 0.0:
                dv = 0.0
            if spent + dv > budget:
                continue
            # Time saved per unit variance; free moves rank by dt alone.
            ratio = dt / dv if dv > 0.0 else float("inf")
            cand = (ratio, dt, -i)
            if best is None or cand > best:
                best = cand
        if best is None:
            break
        i = -best[2]
        k = rung[i]
        spent += max(
            0.0,
            bucket_variances[i][levels[k + 1]] - bucket_variances[i][levels[k]],
        )
        rung[i] = k + 1
        accepted += 1

    chosen = tuple(levels[k] for k in rung)
    report = CompressionReport(
        levels=chosen,
        base_allreduce_seconds=sum(t[0] for t in times),
        compressed_allreduce_seconds=sum(
            times[i][rung[i]] for i in range(len(buckets))
        ),
        added_variance=spent,
        variance_budget=budget,
        steps_attempted=attempted,
        steps_accepted=accepted,
    )
    return chosen, report
