"""The neighborhood-aware Cost Mapper (Algorithm 1, Fig. 5).

Responsibilities:

1. **Precision propagation** — precision-dependent operators (``O_dep``)
   take the precision implied by their inputs; changing an adjustable op
   therefore cascades through dependent successors ("cascading precision
   shift", Sec. II-B footnote 1).
2. **Casting costs** — wherever a producer's *output* precision differs from
   a consumer's *compute* precision, a cast node is charged via the fitted
   linear models (``CP``); weight casts are charged for adjustable ops below
   FP32; backward casts are charged where gradient formats disagree.
3. **DFG reconstruction** — pure op execution costs are fetched from the
   profiled catalog (``CC_i``) at the op's effective precision and assembled
   into a :class:`LocalDFG`.

Two entry points: :meth:`CostMapper.build_local_dfg` (full rebuild, used by
the Replayer) and :meth:`CostMapper.apply_change` (the literal incremental
Algorithm 1, used by the Allocator's inner loop and tested for equivalence
against the full rebuild).
"""

from __future__ import annotations

from repro.common.dtypes import Precision
from repro.graph.dag import PrecisionDAG
from repro.graph.ops import OpKind
from repro.graph.propagation import (  # noqa: F401 - canonical re-export
    effective_precisions,
    grad_precision,
    output_precision,
)
from repro.core.dfg import (
    CommBucket,
    DFGNode,
    LocalDFG,
    NodeKind,
    assign_buckets,
)
from repro.profiling.casting import CastCostCalculator
from repro.profiling.profiler import OperatorCostCatalog


class CostMapper:
    """Maps a precision assignment to a costed :class:`LocalDFG`.

    Parameters
    ----------
    dag:
        The device's Precision DAG (mutated by :meth:`apply_change`).
    catalog:
        Profiled pure-execution costs ``CC_i``.
    cast_calc:
        Fitted casting-cost models ``CP``.
    optimizer_flops_per_elem:
        Optimizer-step work per parameter element (SGD+momentum ~ 4).
    """

    def __init__(
        self,
        dag: PrecisionDAG,
        catalog: OperatorCostCatalog,
        cast_calc: CastCostCalculator,
        device=None,
        bucket_cap_bytes: int = 25 * 1024**2,
    ) -> None:
        self.dag = dag
        self.catalog = catalog
        self.cast_calc = cast_calc
        self.device = device
        self.bucket_cap_bytes = bucket_cap_bytes

    # ------------------------------------------------------------------
    # catalog lookup with pass-through fallback
    # ------------------------------------------------------------------
    def _pure_cost(self, op: str, precision: Precision):
        """CC_i lookup; dependent ops profiled only at FP16/FP32."""
        if self.catalog.has(op, precision):
            return self.catalog.get(op, precision)
        # INT8-effective dependent ops execute their FP16 kernel.
        if precision is Precision.INT8 and self.catalog.has(op, Precision.FP16):
            return self.catalog.get(op, Precision.FP16)
        return self.catalog.get(op, Precision.FP32)

    # ------------------------------------------------------------------
    # full DFG construction
    # ------------------------------------------------------------------
    def build_local_dfg(self, device_name: str, rank: int) -> LocalDFG:
        """Rebuild the device's execution line under the current precisions."""
        dfg = LocalDFG(device_name, rank)
        effective = effective_precisions(self.dag)
        topo = self.dag.topo_order()

        # ---- forward pass: casts then compute, in topological order.
        for name in topo:
            spec = self.dag.spec(name)
            prec = effective[name]
            # Input casts (lines 6-10 of Alg. 1).
            for pred in self.dag.predecessors(name):
                src_prec = output_precision(effective[pred])
                if src_prec is not prec:
                    cost = self.cast_calc.predict(
                        src_prec, prec, self.dag.spec(pred).output_elems
                    )
                    if cost > 0:
                        dfg.add_forward(
                            DFGNode(
                                f"cast:{pred}->{name}", NodeKind.CAST, cost, op=name
                            )
                        )
            # Weight cast (lines 11-13).
            if spec.is_adjustable and spec.has_weight and prec is not Precision.FP32:
                cost = self.cast_calc.predict(
                    Precision.FP32, prec, spec.weight_elems
                )
                if cost > 0:
                    dfg.add_forward(
                        DFGNode(f"cast:w:{name}", NodeKind.CAST, cost, op=name)
                    )
            fwd = self._pure_cost(name, prec).forward
            if fwd > 0:
                dfg.add_forward(DFGNode(name, NodeKind.FORWARD, fwd, op=name))

        # ---- backward pass: reverse topological order.
        weighted_rev: list[tuple[str, int]] = []
        bwd_nodes: list[DFGNode] = []
        for name in reversed(topo):
            spec = self.dag.spec(name)
            if spec.kind is OpKind.INPUT:
                continue  # the graph input's gradient is never materialized
            prec = effective[name]
            my_grad = grad_precision(prec)
            # Gradient-format casts from successors (lines 17-24): each
            # successor hands back a gradient in its own backward format.
            for succ in self.dag.successors(name):
                succ_grad = grad_precision(effective[succ])
                if succ_grad is not my_grad:
                    cost = self.cast_calc.predict(
                        succ_grad, my_grad, spec.output_elems
                    )
                    if cost > 0:
                        bwd_nodes.append(
                            DFGNode(
                                f"cast:g:{succ}->{name}", NodeKind.CAST, cost, op=name
                            )
                        )
            bwd = self._pure_cost(name, prec).backward
            if bwd > 0:
                bwd_nodes.append(DFGNode(f"bwd:{name}", NodeKind.BACKWARD, bwd, op=name))
            if spec.has_weight:
                weighted_rev.append((name, spec.weight_elems * Precision.FP32.nbytes))
        for node in bwd_nodes:
            dfg.add_backward(node)

        # ---- gradient buckets + readiness points.
        buckets = assign_buckets(weighted_rev, self.bucket_cap_bytes)
        ready_after: dict[int, int] = {}
        op_to_bwd_idx = {
            node.op: i
            for i, node in enumerate(dfg.backward)
            if node.kind is NodeKind.BACKWARD
        }
        for bucket in buckets:
            idx = max(
                (op_to_bwd_idx.get(op, len(dfg.backward) - 1) for op in bucket.ops),
                default=len(dfg.backward) - 1,
            )
            ready_after[bucket.index] = idx
        dfg.set_buckets(buckets, ready_after)

        # ---- optimizer step: bandwidth-bound elementwise pass over all
        # parameters (read w, g, momentum; write w, momentum — 5 FP32 each).
        total_weight_elems = self.dag.total_weight_elems()
        opt_bytes = 5.0 * total_weight_elems * Precision.FP32.nbytes
        if self.device is not None:
            opt_time = (
                opt_bytes / self.device.effective_bandwidth
                + self.device.kernel_launch_overhead
            )
        else:
            # Fall back to the fitted elementwise-pass slope: an FP32->FP16
            # cast streams 6 bytes/elem, the optimizer streams 20.
            slope = self.cast_calc.model(Precision.FP32, Precision.FP16).slope
            opt_time = slope * total_weight_elems * (20.0 / 6.0)
        dfg.set_optimizer(opt_time)
        return dfg

    # ------------------------------------------------------------------
    # Algorithm 1: incremental change
    # ------------------------------------------------------------------
    def apply_change(
        self, op: str, new_precision: Precision, device_name: str = "", rank: int = 0
    ) -> LocalDFG:
        """CostMapping(G_i, o, b_io, CC_i, CP, DFG) — change one operator's
        precision, cascade through dependent successors, rebuild the DFG.

        The cascade is implicit: dependent precisions are *derived* from
        adjustable ones by :func:`effective_precisions` at rebuild time,
        which is equivalent to the BFS of lines 16-19 (tested).
        """
        spec = self.dag.spec(op)
        if not spec.is_adjustable:
            raise ValueError(f"operator {op!r} is not precision-adjustable")
        if new_precision not in spec.supported_precisions():
            raise ValueError(
                f"{op!r} has no {new_precision.value} kernel"
            )
        self.dag.set_precision(op, new_precision)  # line 3: UpdateDAG
        return self.build_local_dfg(device_name, rank)
