"""The neighborhood-aware Cost Mapper (Algorithm 1, Fig. 5).

Responsibilities:

1. **Precision propagation** — precision-dependent operators (``O_dep``)
   take the precision implied by their inputs; changing an adjustable op
   therefore cascades through dependent successors ("cascading precision
   shift", Sec. II-B footnote 1).
2. **Casting costs** — wherever a producer's *output* precision differs from
   a consumer's *compute* precision, a cast node is charged via the fitted
   linear models (``CP``); weight casts are charged for adjustable ops below
   FP32; backward casts are charged where gradient formats disagree.
3. **DFG reconstruction** — pure op execution costs are fetched from the
   profiled catalog (``CC_i``) at the op's effective precision and assembled
   into a :class:`LocalDFG`.

Three entry points: :meth:`CostMapper.build_local_dfg` (full rebuild),
:meth:`CostMapper.current_dfg` (refresh the retained DFG against the DAG's
dirty log — the Replayer's fast path), and :meth:`CostMapper.apply_change`
(the incremental Algorithm 1 used by the Allocator's inner loop).

Incremental engine: the mapper retains per-op *segments* — the slice of
forward nodes (input casts, weight cast, compute) and backward nodes (grad
casts, compute) each operator contributes — keyed by the DAG's version
counter.  A precision change re-resolves only the dirty ops' dependent cone
(:func:`repro.graph.propagation.propagate_dirty`), re-derives segments only
for the changed ops and their graph neighbours (casts look one hop in each
direction), and reassembles the execution line from cached segments.  The
expensive work (cast-model predictions, catalog lookups, node construction)
is O(affected); bucket membership and the optimizer pass depend only on the
graph structure and are computed once.  Equivalence with a from-scratch
:meth:`build_local_dfg` is pinned node-for-node by the test suite.
"""

from __future__ import annotations

import dataclasses
import heapq

from repro.common.dtypes import Precision
from repro.core.dfg import (
    CommBucket,
    DFGNode,
    LocalDFG,
    NodeKind,
    assign_buckets,
    bucket_readiness_from_stream,
)
from repro.graph.dag import PrecisionDAG
from repro.graph.ops import OpKind
from repro.graph.propagation import (  # noqa: F401 - canonical re-export
    effective_precisions,
    grad_precision,
    output_precision,
    propagate_dirty,
)
from repro.kernel import LocalLayout
from repro.profiling.casting import CastCostCalculator
from repro.profiling.memory import op_memory_contribution
from repro.profiling.profiler import OperatorCostCatalog


# ---------------------------------------------------------------------------
# catalog pricing primitives — module-level so the engine's CatalogCostSource
# (repro.engine.costs) and the incremental mapper below share one
# implementation and can never drift apart.
# ---------------------------------------------------------------------------


def catalog_pure_cost(catalog: OperatorCostCatalog, op: str, precision: Precision):
    """``CC_i`` lookup with pass-through fallback: dependent ops are
    profiled only at FP16/FP32, and INT8-effective dependent ops execute
    their FP16 kernel."""
    if catalog.has(op, precision):
        return catalog.get(op, precision)
    if precision is Precision.INT8 and catalog.has(op, Precision.FP16):
        return catalog.get(op, Precision.FP16)
    return catalog.get(op, Precision.FP32)


def catalog_forward_segment(
    dag: PrecisionDAG,
    catalog: OperatorCostCatalog,
    cast_calc: CastCostCalculator,
    name: str,
    effective: dict[str, Precision],
) -> list[DFGNode]:
    """Forward nodes one op contributes: input casts (lines 6-10 of
    Alg. 1), weight cast (lines 11-13), then the compute node."""
    seg: list[DFGNode] = []
    spec = dag.spec(name)
    prec = effective[name]
    for pred in dag.predecessors(name):
        src_prec = output_precision(effective[pred])
        if src_prec is not prec:
            cost = cast_calc.predict(src_prec, prec, dag.spec(pred).output_elems)
            if cost > 0:
                seg.append(
                    DFGNode(f"cast:{pred}->{name}", NodeKind.CAST, cost, op=name)
                )
    if spec.is_adjustable and spec.has_weight and prec is not Precision.FP32:
        cost = cast_calc.predict(Precision.FP32, prec, spec.weight_elems)
        if cost > 0:
            seg.append(DFGNode(f"cast:w:{name}", NodeKind.CAST, cost, op=name))
    fwd = catalog_pure_cost(catalog, name, prec).forward
    if fwd > 0:
        seg.append(DFGNode(name, NodeKind.FORWARD, fwd, op=name))
    return seg


def catalog_backward_segment(
    dag: PrecisionDAG,
    catalog: OperatorCostCatalog,
    cast_calc: CastCostCalculator,
    name: str,
    effective: dict[str, Precision],
) -> list[DFGNode]:
    """Backward nodes one op contributes: gradient-format casts from
    successors (lines 17-24; each successor hands back a gradient in its
    own backward format), then the compute node."""
    spec = dag.spec(name)
    if spec.kind is OpKind.INPUT:
        return []  # the graph input's gradient is never materialized
    seg: list[DFGNode] = []
    prec = effective[name]
    my_grad = grad_precision(prec)
    for succ in dag.successors(name):
        succ_grad = grad_precision(effective[succ])
        if succ_grad is not my_grad:
            cost = cast_calc.predict(succ_grad, my_grad, spec.output_elems)
            if cost > 0:
                seg.append(
                    DFGNode(f"cast:g:{succ}->{name}", NodeKind.CAST, cost, op=name)
                )
    bwd = catalog_pure_cost(catalog, name, prec).backward
    if bwd > 0:
        seg.append(DFGNode(f"bwd:{name}", NodeKind.BACKWARD, bwd, op=name))
    return seg


def optimizer_pass_seconds(total_weight_elems: int, device) -> float:
    """Optimizer step: bandwidth-bound elementwise pass over all parameters
    (read w, g, momentum; write w, momentum — 5 FP32 each)."""
    return (
        5.0 * total_weight_elems * Precision.FP32.nbytes
        / device.effective_bandwidth
        + device.kernel_launch_overhead
    )


class _MapperState:
    """Retained derivation of the DAG at one version: effective precisions,
    per-op forward/backward segments, per-op memory contributions, and the
    last assembled DFG."""

    __slots__ = (
        "version",
        "structure",
        "effective",
        "fwd_segs",
        "bwd_segs",
        "fwd_durs",
        "bwd_durs",
        "bwd_pos",
        "mem_wcopy",
        "mem_act",
        "mem_wcopy_total",
        "mem_act_total",
        "dfg",
        "dfg_key",
    )

    def __init__(
        self,
        version: int,
        structure: int,
        effective: dict[str, Precision],
        mem_wcopy: dict[str, int],
        mem_act: dict[str, int],
    ) -> None:
        self.version = version
        self.structure = structure
        self.effective = effective
        self.fwd_segs: dict[str, list[DFGNode]] = {}
        self.bwd_segs: dict[str, list[DFGNode]] = {}
        #: Per-segment duration sums, so assembly is O(ops) float adds.
        self.fwd_durs: dict[str, float] = {}
        self.bwd_durs: dict[str, float] = {}
        #: Offset of the BACKWARD-kind node within the op's backward
        #: segment, or None when its backward cost rounded to zero.
        self.bwd_pos: dict[str, int | None] = {}
        self.mem_wcopy = mem_wcopy
        self.mem_act = mem_act
        self.mem_wcopy_total = sum(mem_wcopy.values())
        self.mem_act_total = sum(mem_act.values())
        self.dfg: LocalDFG | None = None
        self.dfg_key: tuple[str, int] | None = None

    def set_segments(
        self,
        name: str,
        fwd: list[DFGNode],
        bwd: list[DFGNode],
    ) -> None:
        self.fwd_segs[name] = fwd
        self.bwd_segs[name] = bwd
        self.fwd_durs[name] = sum(node.duration for node in fwd)
        self.bwd_durs[name] = sum(node.duration for node in bwd)
        pos = None
        for i, node in enumerate(bwd):
            if node.kind is NodeKind.BACKWARD:
                pos = i
        self.bwd_pos[name] = pos


@dataclasses.dataclass(frozen=True)
class WhatIfChange:
    """A hypothetical single-op precision change, described as replacement
    values against the mapper's current base — never applied to the DAG.

    ``fwd_sums``/``bwd_sums``/``bwd_durs``/``bwd_pos`` cover exactly the
    affected neighbourhood the sequential path would re-derive (changed
    cone + one-hop neighbours + the op itself); every float is computed by
    the same segment functions and Python ``sum`` order as
    :meth:`_MapperState.set_segments`, so splicing them into a compiled
    base (:func:`repro.kernel.candidate_row`) is bit-identical to apply +
    rebuild + revert.  The memory totals mirror
    :meth:`CostMapper.memory_components` after the change.
    """

    op: str
    precision: Precision
    #: op -> new forward-segment duration sum.
    fwd_sums: dict[str, float]
    #: op -> new backward-segment duration sum.
    bwd_sums: dict[str, float]
    #: op -> new backward node durations, in stream order.
    bwd_durs: dict[str, tuple]
    #: op -> BACKWARD-node offset within the segment, -1 when none.
    bwd_pos: dict[str, int]
    wcopy_total: int
    act_total: int
    workspace: int


class CostMapper:
    """Maps a precision assignment to a costed :class:`LocalDFG`.

    Parameters
    ----------
    dag:
        The device's Precision DAG (mutated by :meth:`apply_change`).
    catalog:
        Profiled pure-execution costs ``CC_i``.
    cast_calc:
        Fitted casting-cost models ``CP``.
    optimizer_flops_per_elem:
        Optimizer-step work per parameter element (SGD+momentum ~ 4).
    """

    def __init__(
        self,
        dag: PrecisionDAG,
        catalog: OperatorCostCatalog,
        cast_calc: CastCostCalculator,
        device=None,
        bucket_cap_bytes: int = 25 * 1024**2,
    ) -> None:
        self.dag = dag
        self.catalog = catalog
        self.cast_calc = cast_calc
        self.device = device
        self.bucket_cap_bytes = bucket_cap_bytes
        self._state: _MapperState | None = None
        self._buckets_cache: tuple[int, list[CommBucket]] | None = None
        self._opt_time_cache: tuple[int, float] | None = None
        self._weighted_cache: tuple[int, frozenset] | None = None
        #: Diagnostics: how often the full vs. delta path ran (the allocator
        #: benchmark asserts zero full rebuilds inside the recovery loop).
        self.full_rebuilds = 0
        self.incremental_updates = 0

    # ------------------------------------------------------------------
    # catalog lookup with pass-through fallback
    # ------------------------------------------------------------------
    def _pure_cost(self, op: str, precision: Precision):
        """CC_i lookup; dependent ops profiled only at FP16/FP32."""
        return catalog_pure_cost(self.catalog, op, precision)

    # ------------------------------------------------------------------
    # per-op segment derivation (shared by the full and delta paths, and
    # with the engine's CatalogCostSource — one pricing implementation)
    # ------------------------------------------------------------------
    def _forward_segment(
        self, name: str, effective: dict[str, Precision]
    ) -> list[DFGNode]:
        """Forward nodes this op contributes: input casts (lines 6-10 of
        Alg. 1), weight cast (lines 11-13), then the compute node."""
        return catalog_forward_segment(
            self.dag, self.catalog, self.cast_calc, name, effective
        )

    def _backward_segment(
        self, name: str, effective: dict[str, Precision]
    ) -> list[DFGNode]:
        """Backward nodes this op contributes: gradient-format casts from
        successors (lines 17-24; each successor hands back a gradient in its
        own backward format), then the compute node."""
        return catalog_backward_segment(
            self.dag, self.catalog, self.cast_calc, name, effective
        )

    # ------------------------------------------------------------------
    # structure-only artifacts (independent of precisions)
    # ------------------------------------------------------------------
    def _weighted_set(self) -> frozenset:
        structure = self.dag.structure_version
        if self._weighted_cache is None or self._weighted_cache[0] != structure:
            self._weighted_cache = (
                structure, frozenset(self.dag.weighted_ops())
            )
        return self._weighted_cache[1]

    def _buckets(self) -> list[CommBucket]:
        """Gradient buckets depend only on graph structure and the cap."""
        structure = self.dag.structure_version
        if self._buckets_cache is None or self._buckets_cache[0] != structure:
            weighted_rev = [
                (name, self.dag.spec(name).weight_elems * Precision.FP32.nbytes)
                for name in reversed(self.dag.topo_order())
                if self.dag.spec(name).has_weight
            ]
            self._buckets_cache = (
                structure,
                assign_buckets(weighted_rev, self.bucket_cap_bytes),
            )
        return self._buckets_cache[1]

    def _optimizer_time(self) -> float:
        """Optimizer step: bandwidth-bound elementwise pass over all
        parameters (read w, g, momentum; write w, momentum — 5 FP32 each)."""
        structure = self.dag.structure_version
        if self._opt_time_cache is None or self._opt_time_cache[0] != structure:
            total_weight_elems = self.dag.total_weight_elems()
            if self.device is not None:
                opt_time = optimizer_pass_seconds(total_weight_elems, self.device)
            else:
                # Fall back to the fitted elementwise-pass slope: an
                # FP32->FP16 cast streams 6 bytes/elem, the optimizer 20.
                slope = self.cast_calc.model(
                    Precision.FP32, Precision.FP16
                ).slope
                opt_time = slope * total_weight_elems * (20.0 / 6.0)
            self._opt_time_cache = (structure, opt_time)
        return self._opt_time_cache[1]

    # ------------------------------------------------------------------
    # assembly: cached segments -> execution line
    # ------------------------------------------------------------------
    def _assemble(self, device_name: str, rank: int) -> LocalDFG:
        state = self._state
        assert state is not None
        dfg = LocalDFG(device_name, rank)
        topo = self.dag.topo_order()
        forward: list[DFGNode] = []
        fwd_total = 0.0
        for name in topo:
            seg = state.fwd_segs[name]
            if seg:
                forward.extend(seg)
                fwd_total += state.fwd_durs[name]
        # Backward pass in reverse topological order, tracking each weighted
        # op's readiness anchor: its own backward node, or — when its
        # backward cost rounds to zero — the nearest preceding backward-
        # stream node (index -1 = ready at forward end), instead of
        # pessimistically deferring the bucket to the end of the backward.
        backward: list[DFGNode] = []
        bwd_total = 0.0
        anchors: dict[str, int] = {}
        weighted = self._weighted_set()
        for name in reversed(topo):
            seg = state.bwd_segs[name]
            base = len(backward)
            if seg:
                backward.extend(seg)
                bwd_total += state.bwd_durs[name]
            if name in weighted:
                pos = state.bwd_pos[name]
                anchors[name] = (
                    base + pos if pos is not None else base + len(seg) - 1
                )
        dfg.load_streams(forward, backward, fwd_total, bwd_total)
        buckets = self._buckets()
        dfg.set_buckets(
            buckets, bucket_readiness_from_stream(backward, buckets, anchors)
        )
        dfg.set_optimizer(self._optimizer_time())
        state.dfg = dfg
        state.dfg_key = (device_name, rank)
        return dfg

    # ------------------------------------------------------------------
    # full DFG construction
    # ------------------------------------------------------------------
    def build_local_dfg(self, device_name: str, rank: int) -> LocalDFG:
        """Rebuild the device's execution line from scratch under the
        current precisions, replacing any retained incremental state."""
        self._full_derive()
        return self._assemble(device_name, rank)

    def _full_derive(self) -> None:
        """Derive the complete retained state from the DAG (full walk)."""
        effective = effective_precisions(self.dag)
        topo = self.dag.topo_order()
        mem_wcopy: dict[str, int] = {}
        mem_act: dict[str, int] = {}
        for name in topo:
            wcopy, act = op_memory_contribution(
                self.dag.spec(name), self.dag.precision(name), effective[name]
            )
            mem_wcopy[name] = wcopy
            mem_act[name] = act
        state = _MapperState(
            self.dag.version, self.dag.structure_version,
            effective, mem_wcopy, mem_act,
        )
        for name in topo:
            state.set_segments(
                name,
                self._forward_segment(name, effective),
                self._backward_segment(name, effective),
            )
        self._state = state
        self.full_rebuilds += 1

    # ------------------------------------------------------------------
    # incremental refresh (the Replayer's fast path)
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Bring the retained state up to the DAG's current version,
        re-deriving only the dirty ops' affected neighbourhood (no DFG
        assembly — :meth:`current_dfg` does that on demand)."""
        state = self._state
        if state is None or state.structure != self.dag.structure_version:
            self._full_derive()
            return
        if state.version == self.dag.version:
            return
        dirty = self.dag.dirty_since(state.version)
        changed = propagate_dirty(self.dag, state.effective, dirty)
        affected = set(changed)
        for name in changed:
            affected.update(self.dag.successors(name))
            affected.update(self.dag.predecessors(name))
        # Memory contributions depend on assigned + effective precisions
        # only, so dirty ∪ changed would suffice; the affected superset is
        # used for uniformity (recomputing an unchanged op is idempotent).
        affected.update(dirty)
        for name in affected:
            state.set_segments(
                name,
                self._forward_segment(name, state.effective),
                self._backward_segment(name, state.effective),
            )
            wcopy, act = op_memory_contribution(
                self.dag.spec(name), self.dag.precision(name),
                state.effective[name],
            )
            state.mem_wcopy_total += wcopy - state.mem_wcopy[name]
            state.mem_act_total += act - state.mem_act[name]
            state.mem_wcopy[name] = wcopy
            state.mem_act[name] = act
        state.version = self.dag.version
        state.dfg = None  # stale assembly
        state.dfg_key = None
        self.incremental_updates += 1

    def current_dfg(self, device_name: str, rank: int) -> LocalDFG:
        """Return a DFG consistent with the DAG's current precisions,
        reusing the retained per-op segments for everything outside the
        dirty ops' affected neighbourhood."""
        self.refresh()
        state = self._state
        assert state is not None
        if state.dfg is not None and state.dfg_key == (device_name, rank):
            return state.dfg
        return self._assemble(device_name, rank)

    def memory_components(self) -> tuple[int, int, int]:
        """(weight-copy bytes, activation bytes, workspace bytes) under the
        current precisions, maintained incrementally.  Refreshes the
        retained state first; the structural terms (master weights,
        gradients, optimizer state) are precision-independent and live with
        the caller's :class:`~repro.profiling.memory.MemoryModel`."""
        self.refresh()
        state = self._state
        assert state is not None
        top2 = heapq.nlargest(2, state.mem_act.values())
        return state.mem_wcopy_total, state.mem_act_total, int(sum(top2))

    # ------------------------------------------------------------------
    # kernel lowering support (repro.kernel; ROADMAP open item 4)
    # ------------------------------------------------------------------
    def kernel_layout(self) -> LocalLayout:
        """The per-op stream layout of the current state, for
        :func:`repro.kernel.compile_local`.

        Plain Python data in the exact orders :meth:`_assemble` consumes —
        forward sums in topological order, backward segment metadata in
        reverse topological order, plus the weighted-op positions whose
        consecutive slices are the gradient buckets.
        """
        self.refresh()
        state = self._state
        assert state is not None
        topo = self.dag.topo_order()
        rev_ops = tuple(reversed(topo))
        weighted = self._weighted_set()
        return LocalLayout(
            rev_ops=rev_ops,
            seg_lens=tuple(len(state.bwd_segs[n]) for n in rev_ops),
            bwd_pos=tuple(
                -1 if state.bwd_pos[n] is None else state.bwd_pos[n]
                for n in rev_ops
            ),
            fwd_sums_topo=tuple(state.fwd_durs[n] for n in topo),
            bwd_sums=tuple(state.bwd_durs[n] for n in rev_ops),
            weighted=tuple(
                i for i, n in enumerate(rev_ops) if n in weighted
            ),
        )

    def whatif_change(self, op: str, new_precision: Precision) -> WhatIfChange:
        """Describe a single-op precision change without applying it.

        The mutation-free twin of :meth:`apply_change`: the hypothetical
        assignment is resolved against a scratch copy of the effective
        precisions (``propagate_dirty`` with an override, the DAG version
        untouched), and the affected neighbourhood's segments and memory
        contributions are re-derived through the very same module-level
        pricing functions the sequential path runs — so a kernel splice of
        the result is bit-identical to apply + simulate + revert.
        """
        spec = self.dag.spec(op)
        if not spec.is_adjustable:
            raise ValueError(f"operator {op!r} is not precision-adjustable")
        if new_precision not in spec.supported_precisions():
            raise ValueError(f"{op!r} has no {new_precision.value} kernel")
        self.refresh()
        state = self._state
        assert state is not None
        effective = dict(state.effective)
        changed = propagate_dirty(
            self.dag, effective, {op}, overrides={op: new_precision}
        )
        affected = set(changed)
        for name in changed:
            affected.update(self.dag.successors(name))
            affected.update(self.dag.predecessors(name))
        affected.add(op)
        fwd_sums: dict[str, float] = {}
        bwd_sums: dict[str, float] = {}
        bwd_durs: dict[str, tuple] = {}
        bwd_pos: dict[str, int] = {}
        wcopy_total = state.mem_wcopy_total
        act_total = state.mem_act_total
        act_new: dict[str, int] = {}
        for name in sorted(affected):
            fwd = catalog_forward_segment(
                self.dag, self.catalog, self.cast_calc, name, effective
            )
            bwd = catalog_backward_segment(
                self.dag, self.catalog, self.cast_calc, name, effective
            )
            fwd_sums[name] = sum(node.duration for node in fwd)
            bwd_sums[name] = sum(node.duration for node in bwd)
            bwd_durs[name] = tuple(node.duration for node in bwd)
            pos = -1
            for i, node in enumerate(bwd):
                if node.kind is NodeKind.BACKWARD:
                    pos = i
            bwd_pos[name] = pos
            assigned = (
                new_precision if name == op else self.dag.precision(name)
            )
            wcopy, act = op_memory_contribution(
                self.dag.spec(name), assigned, effective[name]
            )
            wcopy_total += wcopy - state.mem_wcopy[name]
            act_total += act - state.mem_act[name]
            act_new[name] = act
        merged_act = dict(state.mem_act)
        merged_act.update(act_new)
        workspace = int(sum(heapq.nlargest(2, merged_act.values())))
        return WhatIfChange(
            op=op,
            precision=new_precision,
            fwd_sums=fwd_sums,
            bwd_sums=bwd_sums,
            bwd_durs=bwd_durs,
            bwd_pos=bwd_pos,
            wcopy_total=wcopy_total,
            act_total=act_total,
            workspace=workspace,
        )

    # ------------------------------------------------------------------
    # Algorithm 1: incremental change
    # ------------------------------------------------------------------
    def apply_change(
        self, op: str, new_precision: Precision, device_name: str = "", rank: int = 0
    ) -> LocalDFG:
        """CostMapping(G_i, o, b_io, CC_i, CP, DFG) — change one operator's
        precision and delta-update the retained DFG.

        The true incremental Algorithm 1: line 3's UpdateDAG marks ``op``
        dirty; the BFS of lines 16-19 is :func:`propagate_dirty`, which
        re-resolves only the dependent cone downstream of ``op`` and stops
        where effective precisions come out unchanged.  Forward casts,
        weight casts, backward gradient casts and pure-kernel costs are then
        re-derived only for the changed ops and their immediate neighbours
        (one hop each way — exactly the nodes whose cast decisions read a
        changed precision), and the execution line is reassembled from the
        retained segments of every untouched op.  Gradient-bucket membership
        and the optimizer pass are structural and never recomputed here.
        With no retained state (first call) this degenerates to a full
        :meth:`build_local_dfg`; afterwards the cost is O(affected
        subgraph), not O(graph) — and the result is node-for-node identical
        to a from-scratch rebuild (equivalence-tested).
        """
        spec = self.dag.spec(op)
        if not spec.is_adjustable:
            raise ValueError(f"operator {op!r} is not precision-adjustable")
        if new_precision not in spec.supported_precisions():
            raise ValueError(
                f"{op!r} has no {new_precision.value} kernel"
            )
        self.dag.set_precision(op, new_precision)  # line 3: UpdateDAG
        return self.current_dfg(device_name, rank)
