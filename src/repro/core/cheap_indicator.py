"""Profiling-free sensitivity indicator (§VIII, "Efficient Profiling").

The paper flags its profiling overhead — tracing communication and indicator
statistics takes real training iterations — and suggests "alternative
indicators that are less irrelevant to training progress, enabling more
efficient estimation".  This module provides that alternative: a
**structural prior** computed purely from the Precision DAG (depth,
dimensionalities, fan-in), requiring zero training iterations.

It keeps Proposition 3's *form* — gamma^2 * d_o * sigma_fp + (d_L - d_o) *
sigma_bp — but replaces the profiled norms/scales with their
initialization-time expectations: unit-RMS activations (normalized nets),
He-scaled weights, and a geometric depth decay for gradient magnitudes.
Fig. 8's rank-stability result is what licenses this: rankings barely move
during early training, so a good prior of the *initial* ranking is a good
indicator throughout.

``StructuralIndicator`` conforms to :class:`IndicatorProtocol`; tests check
its rankings correlate strongly with the profiled indicator's.
"""

from __future__ import annotations

import numpy as np

from repro.common.dtypes import Precision
from repro.graph.dag import PrecisionDAG
from repro.profiling.stats import OperatorStats


class StructuralIndicator:
    """Proposition-3-shaped sensitivity from graph structure alone.

    Parameters
    ----------
    dag:
        The model's Precision DAG.
    gamma:
        Loss-gradient coefficient (same role as in the full indicator).
    grad_decay:
        Per-depth-level geometric decay of expected gradient RMS moving
        away from the loss (0.9 matches the synthesized-statistics model).
    """

    def __init__(self, dag: PrecisionDAG, gamma: float, grad_decay: float = 0.9):
        if not 0.0 < grad_decay <= 1.0:
            raise ValueError("grad_decay must be in (0, 1]")
        self.dag = dag
        self.gamma = float(gamma)
        self.grad_decay = grad_decay
        self._d_max = dag.max_depth()
        self._stats = self._build_priors()

    def _build_priors(self) -> dict[str, OperatorStats]:
        """Initialization-time expectations of every profiled quantity."""
        stats: dict[str, OperatorStats] = {}
        for name in self.dag.adjustable_ops():
            spec = self.dag.spec(name)
            if not spec.has_weight:
                continue
            d_v = max(
                int(np.sum([self.dag.spec(p).output_elems
                            for p in self.dag.predecessors(name)])),
                1,
            )
            d_x = spec.weight_elems
            d_g = spec.output_elems
            fan_in = max(d_x // max(spec.weight_shape[0], 1), 1)
            act_rms = 1.0
            weight_rms = float(np.sqrt(2.0 / fan_in))
            depth = self.dag.depth(name)
            grad_rms = 1e-3 * self.grad_decay ** (self._d_max - depth)
            s = OperatorStats(
                act_norm_sq=act_rms**2 * d_v,
                weight_norm_sq=weight_rms**2 * d_x,
                grad_norm_sq=grad_rms**2 * d_g,
                act_dims=d_v,
                weight_dims=d_x,
                grad_dims=d_g,
                act_scale=8.0 * act_rms / 255.0,
                weight_scale=8.0 * weight_rms / 255.0,
                act_exp=float(np.floor(np.log2(4.0 * act_rms))),
                weight_exp=float(np.floor(np.log2(max(4.0 * weight_rms, 1e-12)))),
                grad_exp=float(np.floor(np.log2(max(4.0 * grad_rms, 1e-12)))),
            )
            stats[name] = s
        return stats

    # ------------------------------------------------------------------
    def omega(self, op: str, precision: Precision) -> float:
        """IndicatorProtocol entry point — delegates to the variance form."""
        from repro.core.indicator import VarianceIndicator

        if not hasattr(self, "_delegate"):
            self._delegate = VarianceIndicator(self.dag, self._stats, self.gamma)
        return self._delegate.omega(op, precision)

    def ranking(self, precision: Precision) -> list[tuple[str, float]]:
        scored = [(op, self.omega(op, precision)) for op in self._stats]
        return sorted(scored, key=lambda kv: -kv[1])
