"""Ground-truth execution engine.

The paper validates its Replayer against wall-clock measurements on real
GPUs (Table III).  With no GPUs available, this module supplies the
measurement side: a *finer-grained* simulation that shares the Eq. (6)
synchronization semantics but differs from the Replayer in exactly the ways
real hardware differs from a cost model:

* every kernel's duration is an independently jittered backend *measurement*
  (the Replayer uses catalog means and fitted linear casts);
* per-kernel launch gaps are drawn per instance rather than amortized;
* backward compute overlapping an active collective is slowed by a
  contention factor (NCCL ring reductions steal SM time and memory
  bandwidth from compute streams).

Because the error between Replayer and ground truth arises from cost
aggregation — not from scheduler divergence — Table III measures what the
paper measured: the quality of the latency model.  The pricing model lives
in :class:`repro.engine.costs.MeasuredCostSource`; this class feeds it
through the shared assembly walk and the shared execution dispatcher, so
the only degrees of freedom left are the costs themselves.
"""

from __future__ import annotations

from repro.backend.lp_backend import LPBackend
from repro.common.rng import derive_seed, new_rng
from repro.core.dfg import GlobalDFG, LocalDFG
from repro.core.replayer import SimulationResult
from repro.graph.dag import PrecisionDAG
from repro.hardware.cluster import Cluster

# NOTE: repro.engine imports are function-scoped below — this module is
# imported by repro.core's package __init__, which the engine package's own
# imports re-enter; a module-level import here would read a partially
# initialized repro.engine.costs.


class GroundTruthSimulator:
    """Builds jittered, contention-aware global DFGs and executes them.

    Parameters
    ----------
    cluster:
        Worker topology.
    dags:
        Per-rank Precision DAGs (with the plan under test applied).
    backends:
        Per-rank LP backends used as the "hardware" being measured.
    comm_contention:
        Fractional slowdown of backward compute that executes while a
        collective is in flight.  Applied as a uniform inflation of backward
        durations (buckets overlap most of the backward in DDP).
    seed:
        Jitter stream seed.
    collective_model:
        All-reduce cost model (shared with the Replayer so Table III's
        comparison stays about compute-cost modelling, not about divergent
        collectives); ``None`` keeps the flat-ring default.
    schedule_policy:
        Execution schedule (``None`` = DDP overlap, the Eq. (6) default);
        non-default policies run through the discrete-event engine.
    perturbation:
        Optional deterministic straggler/bandwidth-drift injection on top
        of the measured jitter (:class:`repro.engine.Perturbation`).
    """

    def __init__(
        self,
        cluster: Cluster,
        dags: dict[int, PrecisionDAG],
        backends: dict[int, LPBackend],
        comm_contention: float = 0.02,
        seed: int = 0,
        collective_model=None,
        schedule_policy=None,
        perturbation=None,
    ) -> None:
        self.cluster = cluster
        self.dags = dags
        self.backends = backends
        self.comm_contention = comm_contention
        self.seed = seed
        self.collective_model = collective_model
        self.schedule_policy = schedule_policy
        self.perturbation = perturbation
        self._workers_by_rank = {w.rank: w for w in cluster.workers}

    # ------------------------------------------------------------------
    def _build_local(self, rank: int, iteration: int) -> LocalDFG:
        from repro.engine.costs import MeasuredCostSource, assemble_local_dfg

        # Rank is an identity, not a list position — index the worker map,
        # never ``cluster.workers[rank]``.
        worker = self._workers_by_rank[rank]
        source = MeasuredCostSource(
            dag=self.dags[rank],
            backend=self.backends[rank],
            device=worker.device,
            rng=new_rng(derive_seed(self.seed, "gt", rank, iteration)),
            iteration=iteration,
            comm_contention=self.comm_contention,
        )
        return assemble_local_dfg(source, worker.device.name, rank)

    # ------------------------------------------------------------------
    def run(self, iterations: int = 5, collect_timeline: bool = False) -> SimulationResult:
        """Average ``iterations`` measured iterations (the paper measures
        actual training iteration time and repeats 5x)."""
        from repro.engine.core import execute_global_dfg

        total = 0.0
        last: SimulationResult | None = None
        for it in range(iterations):
            gdfg = GlobalDFG(
                [self._build_local(w.rank, it) for w in self.cluster.workers]
            )
            last = execute_global_dfg(
                gdfg, self.cluster,
                collect_timeline=collect_timeline and it == 0,
                collective_model=self.collective_model,
                schedule_policy=self.schedule_policy,
                perturbation=self.perturbation,
            )
            total += last.iteration_time
        assert last is not None
        return SimulationResult(
            iteration_time=total / iterations,
            per_device_compute=last.per_device_compute,
            comm_wait_time=last.comm_wait_time,
            memory=last.memory,
            timeline=last.timeline,
        )
