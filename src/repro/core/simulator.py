"""Ground-truth execution engine.

The paper validates its Replayer against wall-clock measurements on real
GPUs (Table III).  With no GPUs available, this module supplies the
measurement side: a *finer-grained* discrete-event engine that shares the
Eq. (6) synchronization semantics but differs from the Replayer in exactly
the ways real hardware differs from a cost model:

* every kernel's duration is an independently jittered backend *measurement*
  (the Replayer uses catalog means and fitted linear casts);
* per-kernel launch gaps are drawn per instance rather than amortized;
* backward compute overlapping an active collective is slowed by a
  contention factor (NCCL ring reductions steal SM time and memory
  bandwidth from compute streams).

Because the error between Replayer and ground truth arises from cost
aggregation — not from scheduler divergence — Table III measures what the
paper measured: the quality of the latency model.
"""

from __future__ import annotations

import functools

from repro.common.dtypes import Precision
from repro.common.rng import derive_seed, new_rng
from repro.core.cost_mapper import (
    effective_precisions,
    grad_precision,
    output_precision,
)
from repro.core.dfg import DFGNode, GlobalDFG, LocalDFG, NodeKind, assign_buckets
from repro.core.replayer import SimulationResult, simulate_global_dfg
from repro.backend.lp_backend import LPBackend
from repro.graph.dag import PrecisionDAG
from repro.hardware.cluster import Cluster


@functools.lru_cache(maxsize=None)
def _rep_offset(name: str) -> int:
    """Per-op measurement-rep offset decorrelating cast samples between ops.

    Derived from the op *name* via the seeded FNV mix — builtin ``hash`` is
    salted per process, which made these "ground truth" measurements differ
    from run to run (Table III was irreproducible).
    """
    return derive_seed(0, name) % 97


class GroundTruthSimulator:
    """Builds jittered, contention-aware global DFGs and executes them.

    Parameters
    ----------
    cluster:
        Worker topology.
    dags:
        Per-rank Precision DAGs (with the plan under test applied).
    backends:
        Per-rank LP backends used as the "hardware" being measured.
    comm_contention:
        Fractional slowdown of backward compute that executes while a
        collective is in flight.  Applied as a uniform inflation of backward
        durations (buckets overlap most of the backward in DDP).
    seed:
        Jitter stream seed.
    collective_model:
        All-reduce cost model (shared with the Replayer so Table III's
        comparison stays about compute-cost modelling, not about divergent
        collectives); ``None`` keeps the flat-ring default.
    """

    def __init__(
        self,
        cluster: Cluster,
        dags: dict[int, PrecisionDAG],
        backends: dict[int, LPBackend],
        comm_contention: float = 0.02,
        seed: int = 0,
        collective_model=None,
    ) -> None:
        self.cluster = cluster
        self.dags = dags
        self.backends = backends
        self.comm_contention = comm_contention
        self.seed = seed
        self.collective_model = collective_model

    # ------------------------------------------------------------------
    def _build_local(self, rank: int, iteration: int) -> LocalDFG:
        worker = self.cluster.workers[rank]
        dag = self.dags[rank]
        backend = self.backends[rank]
        rng = new_rng(derive_seed(self.seed, "gt", rank, iteration))
        dfg = LocalDFG(worker.device.name, rank)
        effective = effective_precisions(dag)
        topo = dag.topo_order()

        def jitter() -> float:
            return float(1.0 + 0.02 * rng.standard_normal())

        def launch_gap() -> float:
            return float(max(rng.normal(2e-6, 1e-6), 0.0))

        for name in topo:
            spec = dag.spec(name)
            prec = effective[name]
            for pred in dag.predecessors(name):
                src = output_precision(effective[pred])
                if src is not prec:
                    dur = backend.measure_cast(
                        src, prec, dag.spec(pred).output_elems,
                        rep=iteration * 131 + _rep_offset(name),
                    )
                    if dur > 0:
                        dfg.add_forward(
                            DFGNode(f"cast:{pred}->{name}", NodeKind.CAST,
                                    dur * jitter() + launch_gap(), op=name)
                        )
            if spec.is_adjustable and spec.has_weight and prec is not Precision.FP32:
                dur = backend.measure_cast(
                    Precision.FP32, prec, spec.weight_elems, rep=iteration
                )
                if dur > 0:
                    dfg.add_forward(
                        DFGNode(f"cast:w:{name}", NodeKind.CAST,
                                dur * jitter() + launch_gap(), op=name)
                    )
            exec_prec = self._kernel_precision(rank, name, prec)
            input_elems = sum(
                dag.spec(p).output_elems for p in dag.predecessors(name)
            )
            fwd = backend.measure_op_forward(spec, exec_prec, input_elems, rep=iteration)
            if fwd > 0:
                dfg.add_forward(
                    DFGNode(name, NodeKind.FORWARD, fwd * jitter() + launch_gap(), op=name)
                )

        contention = 1.0 + self.comm_contention
        weighted_rev: list[tuple[str, int]] = []
        for name in reversed(topo):
            spec = dag.spec(name)
            if spec.kind.value == "input":
                continue  # the graph input's gradient is never materialized
            prec = effective[name]
            my_grad = grad_precision(prec)
            for succ in dag.successors(name):
                succ_grad = grad_precision(effective[succ])
                if succ_grad is not my_grad:
                    dur = backend.measure_cast(
                        succ_grad, my_grad, spec.output_elems, rep=iteration + 7
                    )
                    if dur > 0:
                        dfg.add_backward(
                            DFGNode(f"cast:g:{succ}->{name}", NodeKind.CAST,
                                    dur * contention * jitter() + launch_gap(), op=name)
                        )
            exec_prec = self._kernel_precision(rank, name, prec)
            input_elems = sum(
                dag.spec(p).output_elems for p in dag.predecessors(name)
            )
            bwd = backend.measure_op_backward(spec, exec_prec, input_elems, rep=iteration)
            if bwd > 0:
                dfg.add_backward(
                    DFGNode(f"bwd:{name}", NodeKind.BACKWARD,
                            bwd * contention * jitter() + launch_gap(), op=name)
                )
            if spec.has_weight:
                weighted_rev.append((name, spec.weight_elems * 4))

        buckets = assign_buckets(weighted_rev)
        op_to_idx = {
            node.op: i for i, node in enumerate(dfg.backward)
            if node.kind is NodeKind.BACKWARD
        }
        ready_after = {
            b.index: max(
                (op_to_idx.get(op, len(dfg.backward) - 1) for op in b.ops),
                default=len(dfg.backward) - 1,
            )
            for b in buckets
        }
        dfg.set_buckets(buckets, ready_after)

        total_elems = dag.total_weight_elems()
        opt = (
            5.0 * total_elems * 4 / worker.device.effective_bandwidth
            + worker.device.kernel_launch_overhead
        )
        dfg.set_optimizer(opt * jitter())
        return dfg

    def _kernel_precision(self, rank: int, name: str, prec: Precision) -> Precision:
        """Dependent ops with INT8-effective inputs execute FP16 kernels."""
        backend = self.backends[rank]
        if not backend.device.supports(prec):
            return Precision.FP16 if backend.device.supports(Precision.FP16) else Precision.FP32
        spec = self.dags[rank].spec(name)
        if prec is Precision.INT8 and not spec.is_adjustable:
            return Precision.FP16
        return prec

    # ------------------------------------------------------------------
    def run(self, iterations: int = 5, collect_timeline: bool = False) -> SimulationResult:
        """Average ``iterations`` measured iterations (the paper measures
        actual training iteration time and repeats 5x)."""
        total = 0.0
        last: SimulationResult | None = None
        for it in range(iterations):
            gdfg = GlobalDFG(
                [self._build_local(w.rank, it) for w in self.cluster.workers]
            )
            last = simulate_global_dfg(
                gdfg, self.cluster, collect_timeline=collect_timeline and it == 0,
                collective_model=self.collective_model,
            )
            total += last.iteration_time
        assert last is not None
        return SimulationResult(
            iteration_time=total / iterations,
            per_device_compute=last.per_device_compute,
            comm_wait_time=last.comm_wait_time,
            memory=last.memory,
            timeline=last.timeline,
        )
