"""Local and global data-flow graphs (Sec. IV-B).

QSync maintains three graphs per device: the Precision DAG (model structure +
precisions; :mod:`repro.graph.dag`), the **local DFG** (the execution line of
one training iteration: forward ops, casts, backward ops, optimizer, and the
communication slots), and the **global DFG** (all local DFGs plus their
communication dependencies).  The Replayer simulates the global DFG.

Execution model (PyTorch-DDP-like): each device owns a CUDA stream executing
forward then backward nodes in order, and a COMM stream executing gradient
all-reduce buckets.  A bucket becomes ready once the backward node producing
its last gradient finishes; collectives are synchronous across devices and
ordered, giving exactly the recurrence of Eq. (6).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable

from repro.common.units import MB


class NodeKind(enum.Enum):
    FORWARD = "fwd"
    BACKWARD = "bwd"
    CAST = "cast"
    COMM = "comm"
    OPTIMIZER = "opt"


class Stream(enum.Enum):
    CUDA = "cuda"
    COMM = "comm"


@dataclasses.dataclass
class DFGNode:
    """One schedulable unit of work on a device stream."""

    name: str
    kind: NodeKind
    duration: float
    stream: Stream = Stream.CUDA
    #: Source operator in the Precision DAG, when applicable.
    op: str | None = None
    #: For COMM nodes: index of the gradient bucket.
    bucket: int | None = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative duration on node {self.name!r}")


@dataclasses.dataclass
class CommBucket:
    """One gradient all-reduce bucket."""

    index: int
    nbytes: int
    #: Ops whose weight gradients live in this bucket.
    ops: tuple[str, ...]


class LocalDFG:
    """One device's execution line for a single training iteration."""

    def __init__(self, device_name: str, rank: int) -> None:
        self.device_name = device_name
        self.rank = rank
        self.forward: list[DFGNode] = []
        self.backward: list[DFGNode] = []
        self.optimizer: DFGNode | None = None
        self.buckets: list[CommBucket] = []
        #: bucket index -> index into ``backward`` after whose completion the
        #: bucket is ready for all-reduce.
        self.bucket_ready_after: dict[int, int] = {}

    # ------------------------------------------------------------------
    def add_forward(self, node: DFGNode) -> None:
        self.forward.append(node)

    def add_backward(self, node: DFGNode) -> None:
        self.backward.append(node)

    def set_optimizer(self, duration: float) -> None:
        self.optimizer = DFGNode("optimizer", NodeKind.OPTIMIZER, duration)

    def set_buckets(
        self, buckets: list[CommBucket], ready_after: dict[int, int]
    ) -> None:
        if sorted(ready_after) != [b.index for b in buckets]:
            raise ValueError("every bucket needs a readiness point")
        self.buckets = buckets
        self.bucket_ready_after = ready_after

    # ------------------------------------------------------------------
    @property
    def forward_time(self) -> float:
        return sum(n.duration for n in self.forward)

    @property
    def backward_time(self) -> float:
        return sum(n.duration for n in self.backward)

    @property
    def compute_time(self) -> float:
        opt = self.optimizer.duration if self.optimizer else 0.0
        return self.forward_time + self.backward_time + opt

    def cast_time(self) -> float:
        """Total casting overhead in this DFG (diagnostics / Fig. 4)."""
        return sum(
            n.duration
            for n in (*self.forward, *self.backward)
            if n.kind is NodeKind.CAST
        )

    def bucket_ready_times(self) -> dict[int, float]:
        """Bucket index -> CUDA-stream time its gradients are complete,
        measured from forward start."""
        t = self.forward_time
        ready: dict[int, float] = {}
        cum = t
        after_to_bucket = {v: k for k, v in self.bucket_ready_after.items()}
        for i, node in enumerate(self.backward):
            cum += node.duration
            if i in after_to_bucket:
                ready[after_to_bucket[i]] = cum
        # Buckets mapped past the last node (defensive) are ready at the end.
        for b in self.buckets:
            ready.setdefault(b.index, cum)
        return ready


class GlobalDFG:
    """All local DFGs plus the synchronous-collective dependency."""

    def __init__(self, locals_: Iterable[LocalDFG]) -> None:
        self.locals = list(locals_)
        if not self.locals:
            raise ValueError("global DFG needs at least one local DFG")
        n_buckets = {len(l.buckets) for l in self.locals}
        if len(n_buckets) != 1:
            raise ValueError(
                f"devices disagree on bucket count: {sorted(n_buckets)} — "
                "synchronous data parallelism requires identical bucketing"
            )

    @property
    def n_buckets(self) -> int:
        return len(self.locals[0].buckets)


def assign_buckets(
    weighted_ops_reverse: list[tuple[str, int]],
    bucket_cap_bytes: int = 25 * MB,
) -> list[CommBucket]:
    """Group weight gradients into DDP-style buckets.

    ``weighted_ops_reverse`` lists (op, grad_bytes) in *backward completion
    order* (reverse topological).  Buckets fill greedily to the cap, like
    torch.distributed's 25 MB default.
    """
    buckets: list[CommBucket] = []
    cur_ops: list[str] = []
    cur_bytes = 0
    for op, nbytes in weighted_ops_reverse:
        cur_ops.append(op)
        cur_bytes += nbytes
        if cur_bytes >= bucket_cap_bytes:
            buckets.append(CommBucket(len(buckets), cur_bytes, tuple(cur_ops)))
            cur_ops, cur_bytes = [], 0
    if cur_ops:
        buckets.append(CommBucket(len(buckets), cur_bytes, tuple(cur_ops)))
    return buckets
