"""Local and global data-flow graphs (Sec. IV-B).

QSync maintains three graphs per device: the Precision DAG (model structure +
precisions; :mod:`repro.graph.dag`), the **local DFG** (the execution line of
one training iteration: forward ops, casts, backward ops, optimizer, and the
communication slots), and the **global DFG** (all local DFGs plus their
communication dependencies).  The Replayer simulates the global DFG.

Execution model (PyTorch-DDP-like): each device owns a CUDA stream executing
forward then backward nodes in order, and a COMM stream executing gradient
all-reduce buckets.  A bucket becomes ready once the backward node producing
its last gradient finishes; collectives are synchronous across devices and
ordered, giving exactly the recurrence of Eq. (6).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable

from repro.common.units import MB


class NodeKind(enum.Enum):
    FORWARD = "fwd"
    BACKWARD = "bwd"
    CAST = "cast"
    COMM = "comm"
    OPTIMIZER = "opt"


class Stream(enum.Enum):
    CUDA = "cuda"
    COMM = "comm"


@dataclasses.dataclass(slots=True)
class DFGNode:
    """One schedulable unit of work on a device stream.

    Slotted: the object paths allocate these by the hundred thousand per
    planning run (every segment re-derivation builds fresh nodes), and the
    compiled kernel (:mod:`repro.kernel`) reads ``duration`` off each one
    exactly once at lowering time."""

    name: str
    kind: NodeKind
    duration: float
    stream: Stream = Stream.CUDA
    #: Source operator in the Precision DAG, when applicable.
    op: str | None = None
    #: For COMM nodes: index of the gradient bucket.
    bucket: int | None = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative duration on node {self.name!r}")


@dataclasses.dataclass
class CommBucket:
    """One gradient all-reduce bucket."""

    index: int
    nbytes: int
    #: Ops whose weight gradients live in this bucket.
    ops: tuple[str, ...]


class LocalDFG:
    """One device's execution line for a single training iteration."""

    def __init__(self, device_name: str, rank: int) -> None:
        self.device_name = device_name
        self.rank = rank
        self.forward: list[DFGNode] = []
        self.backward: list[DFGNode] = []
        self.optimizer: DFGNode | None = None
        self.buckets: list[CommBucket] = []
        #: bucket index -> index into ``backward`` after whose completion the
        #: bucket is ready for all-reduce (-1 = ready when the forward ends,
        #: i.e. before any backward node runs).
        self.bucket_ready_after: dict[int, int] = {}
        # Running stream totals, maintained on append so the hot replay loop
        # never re-sums node lists.
        self._fwd_total = 0.0
        self._bwd_total = 0.0
        self._ready_cache: dict[int, float] | None = None

    # ------------------------------------------------------------------
    def add_forward(self, node: DFGNode) -> None:
        self.forward.append(node)
        self._fwd_total += node.duration
        self._ready_cache = None

    def add_backward(self, node: DFGNode) -> None:
        self.backward.append(node)
        self._bwd_total += node.duration
        self._ready_cache = None

    def set_optimizer(self, duration: float) -> None:
        self.optimizer = DFGNode("optimizer", NodeKind.OPTIMIZER, duration)

    def set_buckets(
        self, buckets: list[CommBucket], ready_after: dict[int, int]
    ) -> None:
        if sorted(ready_after) != [b.index for b in buckets]:
            raise ValueError("every bucket needs a readiness point")
        self.buckets = buckets
        self.bucket_ready_after = ready_after
        self._ready_cache = None

    def load_streams(
        self,
        forward: list[DFGNode],
        backward: list[DFGNode],
        forward_time: float,
        backward_time: float,
    ) -> None:
        """Install pre-built node streams with precomputed totals (the cost
        mapper's assembler path; equivalent to repeated ``add_*`` calls)."""
        self.forward = forward
        self.backward = backward
        self._fwd_total = forward_time
        self._bwd_total = backward_time
        self._ready_cache = None

    def view_for_rank(self, rank: int) -> "LocalDFG":
        """A lightweight alias of this DFG under another rank.

        Same-type workers run identical plans, so the Replayer builds one
        DFG per device *type* and hands each rank a view that shares every
        node list (read-only by convention; the cost mapper never mutates a
        published DFG — incremental updates assemble a fresh one).
        """
        view = LocalDFG(self.device_name, rank)
        view.forward = self.forward
        view.backward = self.backward
        view.optimizer = self.optimizer
        view.buckets = self.buckets
        view.bucket_ready_after = self.bucket_ready_after
        view._fwd_total = self._fwd_total
        view._bwd_total = self._bwd_total
        view._ready_cache = self._ready_cache
        return view

    # ------------------------------------------------------------------
    @property
    def forward_time(self) -> float:
        return self._fwd_total

    @property
    def backward_time(self) -> float:
        return self._bwd_total

    @property
    def compute_time(self) -> float:
        opt = self.optimizer.duration if self.optimizer else 0.0
        return self.forward_time + self.backward_time + opt

    def cast_time(self) -> float:
        """Total casting overhead in this DFG (diagnostics / Fig. 4)."""
        return sum(
            n.duration
            for n in (*self.forward, *self.backward)
            if n.kind is NodeKind.CAST
        )

    def bucket_ready_times(self) -> dict[int, float]:
        """Bucket index -> CUDA-stream time its gradients are complete,
        measured from forward start.

        Computed from a prefix sum over the backward stream so multiple
        buckets may share one readiness index (e.g. a zero-backward-cost op
        anchored to its nearest preceding backward node) and index ``-1``
        means ready at forward end.  Cached until a node or the bucket map
        changes; callers must treat the returned dict as read-only.
        """
        if self._ready_cache is not None:
            return self._ready_cache
        prefix = [self.forward_time]
        for node in self.backward:
            prefix.append(prefix[-1] + node.duration)
        last = len(self.backward) - 1
        ready: dict[int, float] = {}
        for b in self.buckets:
            idx = self.bucket_ready_after.get(b.index, last)
            idx = min(idx, last)  # defensive: clamp stale indices to the end
            ready[b.index] = prefix[idx + 1] if idx >= 0 else prefix[0]
        self._ready_cache = ready
        return ready


class GlobalDFG:
    """All local DFGs plus the synchronous-collective dependency."""

    def __init__(self, locals_: Iterable[LocalDFG]) -> None:
        self.locals = list(locals_)
        if not self.locals:
            raise ValueError("global DFG needs at least one local DFG")
        n_buckets = {len(ld.buckets) for ld in self.locals}
        if len(n_buckets) != 1:
            raise ValueError(
                f"devices disagree on bucket count: {sorted(n_buckets)} — "
                "synchronous data parallelism requires identical bucketing"
            )

    @property
    def n_buckets(self) -> int:
        return len(self.locals[0].buckets)


def bucket_readiness_from_stream(
    backward: list[DFGNode],
    buckets: list[CommBucket],
    anchors: dict[str, int],
) -> dict[int, int]:
    """Readiness indices for :meth:`LocalDFG.set_buckets` from per-op anchors.

    ``anchors`` maps each weighted op to the index of the backward-stream
    node after which its gradient exists: its own BACKWARD node, or — when
    its backward cost rounds to zero — the nearest *preceding* node (index
    -1 = ready at forward end), never the pessimistic end of the stream.
    A bucket is ready after the latest anchor among its ops; ops missing
    from ``anchors`` defensively defer to the end of the stream.

    The single readiness rule shared by every DFG builder (the Cost
    Mapper's assembler and :func:`repro.engine.costs.assemble_local_dfg`),
    so the anchoring semantics PR 1 fixed cannot diverge again.
    """
    last = len(backward) - 1
    return {
        bucket.index: max(
            (anchors.get(op, last) for op in bucket.ops), default=last
        )
        for bucket in buckets
    }


def assign_buckets(
    weighted_ops_reverse: list[tuple[str, int]],
    bucket_cap_bytes: int = 25 * MB,
) -> list[CommBucket]:
    """Group weight gradients into DDP-style buckets.

    ``weighted_ops_reverse`` lists (op, grad_bytes) in *backward completion
    order* (reverse topological).  Buckets fill greedily to the cap, like
    torch.distributed's 25 MB default.
    """
    buckets: list[CommBucket] = []
    cur_ops: list[str] = []
    cur_bytes = 0
    for op, nbytes in weighted_ops_reverse:
        cur_ops.append(op)
        cur_bytes += nbytes
        if cur_bytes >= bucket_cap_bytes:
            buckets.append(CommBucket(len(buckets), cur_bytes, tuple(cur_ops)))
            cur_ops, cur_bytes = [], 0
    if cur_ops:
        buckets.append(CommBucket(len(buckets), cur_bytes, tuple(cur_ops)))
    return buckets
