"""The end-to-end QSync workflow (Fig. 3).

``qsync_plan`` executes steps 1-5 of the paper's pipeline:

1. *Substitution* — the model graph arrives with mixed-precision-capable
   operator specs (the catalog builders).
2. *Profiling* — per device type: operator cost catalogs, casting-cost model
   fits, and indicator statistics (real instrumented runs for mini models,
   synthesized for full-size graphs).
3. *Pre-replay construction* — per-rank Precision DAGs, indicator values.
4. *Replay and optimization* — the Allocator searches precision settings
   against the Replayer.
5. The optimized :class:`PrecisionPlan` plus a :class:`QSyncReport` come
   back; steps 6-7 (kernel configuration, actual training) live in
   :mod:`repro.backend` and :mod:`repro.parallel`.
"""

from __future__ import annotations

import dataclasses

from repro.backend.lp_backend import LPBackend
from repro.common.dtypes import Precision
from repro.core.allocator import AllocationReport, Allocator, AllocatorConfig
from repro.core.indicator import IndicatorProtocol, VarianceIndicator, gamma_for_loss
from repro.core.plan import PrecisionPlan
from repro.core.replayer import Replayer, SimulationResult
from repro.graph.dag import PrecisionDAG
from repro.hardware.cluster import Cluster
from repro.profiling.casting import CastCostCalculator
from repro.profiling.profiler import profile_operator_costs
from repro.profiling.stats import OperatorStats, synthesize_stats


@dataclasses.dataclass
class QSyncReport:
    """Everything an operator of the system wants to know post-allocation."""

    cluster: str
    model_summary: str
    allocation: AllocationReport
    final_simulation: SimulationResult

    def summary(self) -> str:
        sim = self.final_simulation
        return (
            f"[{self.cluster}] {self.model_summary}\n"
            f"  allocation: {self.allocation.summary()}\n"
            f"  predicted iteration: {sim.iteration_time * 1e3:.1f} ms "
            f"({sim.throughput:.3f} it/s)"
        )


def build_replayer(
    dag_builder,
    cluster: Cluster,
    optimizer_slots: int = 1,
    backends: dict[int, LPBackend] | None = None,
    profile_repeats: int = 3,
    collective_model=None,
) -> tuple[Replayer, dict[int, LPBackend]]:
    """Construct a Replayer with per-rank DAGs, catalogs, and cast models.

    ``dag_builder()`` must return a fresh PrecisionDAG per call (each rank
    mutates its own copy).  Profiling artifacts are shared across same-type
    workers (one catalog per device type, like the paper's homogeneous-set
    tracing).
    """
    if backends is None:
        backends = {}
        for w in cluster.workers:
            backends[w.rank] = LPBackend(w.device, seed=0)
    dags = {w.rank: dag_builder() for w in cluster.workers}

    catalogs_by_type: dict[str, object] = {}
    casts_by_type: dict[str, CastCostCalculator] = {}
    catalogs = {}
    cast_calcs = {}
    for w in cluster.workers:
        tname = w.device.name
        if tname not in catalogs_by_type:
            catalogs_by_type[tname] = profile_operator_costs(
                dags[w.rank], backends[w.rank], repeats=profile_repeats
            )
            casts_by_type[tname] = CastCostCalculator(backends[w.rank])
        catalogs[w.rank] = catalogs_by_type[tname]
        cast_calcs[w.rank] = casts_by_type[tname]

    replayer = Replayer(
        cluster, dags, catalogs, cast_calcs, optimizer_slots=optimizer_slots,
        collective_model=collective_model,
    )
    return replayer, backends


def qsync_plan(
    dag_builder,
    cluster: Cluster,
    stats: dict[str, OperatorStats] | None = None,
    loss: str = "ce",
    batch_size: int | None = None,
    optimizer_slots: int = 1,
    indicator_factory=None,
    config: AllocatorConfig | None = None,
    collective_model=None,
) -> tuple[PrecisionPlan, QSyncReport]:
    """Run the QSync workflow and return (plan, report).

    Parameters
    ----------
    dag_builder:
        Zero-arg callable returning a fresh :class:`PrecisionDAG`, or a
        PrecisionDAG instance (copied per rank).
    cluster:
        Hybrid cluster topology.
    stats:
        Indicator statistics; synthesized from the graph when omitted
        (full-size models — see DESIGN.md §4).
    loss:
        ``"ce"`` or ``"mse"`` — sets the gamma of Proposition 3.
    batch_size:
        Local batch size (defaults to the graph input's leading dim).
    indicator_factory:
        Optional ``(dag, stats, gamma) -> IndicatorProtocol`` override, used
        by the baseline-indicator experiments (Table II).
    collective_model:
        All-reduce cost model name/instance; ``None`` keeps the flat-ring
        default (see :mod:`repro.parallel.comm_model`).
    """
    if isinstance(dag_builder, PrecisionDAG):
        template = dag_builder
        builder = template.copy
    else:
        builder = dag_builder
        template = builder()

    if batch_size is None:
        batch_size = template.spec(template.root()).output_shape[0]
    if stats is None:
        stats = synthesize_stats(template)
    gamma = gamma_for_loss(loss, batch_size)

    replayer, _backends = build_replayer(
        builder, cluster, optimizer_slots=optimizer_slots,
        collective_model=collective_model,
    )

    indicators: dict[str, IndicatorProtocol] = {}
    amp_mode = config is not None and config.amp_mode
    indicator_workers = cluster.workers if amp_mode else cluster.inference_workers
    for w in indicator_workers:
        if w.device.name not in indicators:
            dag = replayer.dags[w.rank]
            if indicator_factory is None:
                indicators[w.device.name] = VarianceIndicator(dag, stats, gamma)
            else:
                indicators[w.device.name] = indicator_factory(dag, stats, gamma)

    allocator = Allocator(replayer, indicators, config=config)
    plan, alloc_report = allocator.allocate()

    final = replayer.simulate(collect_timeline=True)
    report = QSyncReport(
        cluster=cluster.describe(),
        model_summary=template.summary(),
        allocation=alloc_report,
        final_simulation=final,
    )
    return plan, report
