"""The end-to-end QSync workflow (Fig. 3) — legacy compatibility surface.

``qsync_plan`` executes steps 1-5 of the paper's pipeline:

1. *Substitution* — the model graph arrives with mixed-precision-capable
   operator specs (the catalog builders).
2. *Profiling* — per device type: operator cost catalogs, casting-cost model
   fits, and indicator statistics (real instrumented runs for mini models,
   synthesized for full-size graphs).
3. *Pre-replay construction* — per-rank Precision DAGs, indicator values.
4. *Replay and optimization* — the Allocator searches precision settings
   against the Replayer.
5. The optimized :class:`PrecisionPlan` plus a :class:`QSyncReport` come
   back; steps 6-7 (kernel configuration, actual training) live in
   :mod:`repro.backend` and :mod:`repro.parallel`.

Since the :mod:`repro.session` redesign this module is a *thin wrapper*:
both entry points delegate to an ephemeral
:class:`~repro.session.session.PlanSession`, which owns the profiling
artifacts and the planner strategies.  Callers that issue more than one
query should hold a session themselves and reuse it — repeated
``session.plan()`` calls over the same device types re-profile nothing.
"""

from __future__ import annotations

import dataclasses

from repro.backend.lp_backend import LPBackend
from repro.core.allocator import AllocationReport, AllocatorConfig
from repro.core.plan import PrecisionPlan
from repro.core.replayer import Replayer, SimulationResult
from repro.hardware.cluster import Cluster
from repro.profiling.stats import OperatorStats


@dataclasses.dataclass
class QSyncReport:
    """Everything an operator of the system wants to know post-allocation."""

    cluster: str
    model_summary: str
    allocation: AllocationReport
    final_simulation: SimulationResult

    def summary(self) -> str:
        sim = self.final_simulation
        return (
            f"[{self.cluster}] {self.model_summary}\n"
            f"  allocation: {self.allocation.summary()}\n"
            f"  predicted iteration: {sim.iteration_time * 1e3:.1f} ms "
            f"({sim.throughput:.3f} it/s)"
        )


def build_replayer(
    dag_builder,
    cluster: Cluster,
    optimizer_slots: int = 1,
    backends: dict[int, LPBackend] | None = None,
    profile_repeats: int = 3,
    collective_model=None,
) -> tuple[Replayer, dict[int, LPBackend]]:
    """Construct a Replayer with per-rank DAGs, catalogs, and cast models.

    ``dag_builder()`` must return a fresh PrecisionDAG per call (each rank
    mutates its own copy); a PrecisionDAG instance is copied per rank.
    Profiling artifacts are shared across same-type workers (one catalog
    per device type, like the paper's homogeneous-set tracing).  A partial
    ``backends`` dict is filled with default :class:`LPBackend`\\ s for the
    missing ranks; a backend whose device mismatches its rank's worker
    raises :class:`ValueError`.

    Compatibility wrapper: one-shot callers only.  For repeated queries use
    :class:`repro.session.PlanSession` and keep the profiling warm.
    """
    from repro.session.request import PlanRequest
    from repro.session.session import PlanSession

    ctx = PlanSession().prepare(
        PlanRequest(
            model=dag_builder,
            cluster=cluster,
            optimizer_slots=optimizer_slots,
            profile_repeats=profile_repeats,
            collective_model=collective_model,
            backends=backends,
        )
    )
    return ctx.replayer, ctx.backends


def qsync_plan(
    dag_builder,
    cluster: Cluster,
    stats: dict[str, OperatorStats] | None = None,
    loss: str = "ce",
    batch_size: int | None = None,
    optimizer_slots: int = 1,
    indicator_factory=None,
    config: AllocatorConfig | None = None,
    collective_model=None,
    profile_repeats: int = 3,
) -> tuple[PrecisionPlan, QSyncReport]:
    """Run the QSync workflow and return (plan, report).

    Parameters
    ----------
    dag_builder:
        Zero-arg callable returning a fresh :class:`PrecisionDAG`, or a
        PrecisionDAG instance (copied per rank).
    cluster:
        Hybrid cluster topology.
    stats:
        Indicator statistics; synthesized from the graph when omitted
        (full-size models — see DESIGN.md §4).
    loss:
        ``"ce"`` or ``"mse"`` — sets the gamma of Proposition 3.
    batch_size:
        Local batch size (defaults to the graph input's leading dim).
    indicator_factory:
        Optional ``(dag, stats, gamma) -> IndicatorProtocol`` override, used
        by the baseline-indicator experiments (Table II).
    collective_model:
        All-reduce cost model name/instance; ``None`` keeps the flat-ring
        default (see :mod:`repro.parallel.comm_model`).
    profile_repeats:
        Measurements averaged per catalog entry (the experiments use 2/3).

    Compatibility wrapper over ``PlanSession().plan(request)`` with the
    ``"qsync"`` strategy.
    """
    from repro.session.request import PlanRequest
    from repro.session.session import PlanSession

    outcome = PlanSession().plan(
        PlanRequest(
            model=dag_builder,
            cluster=cluster,
            stats=stats,
            loss=loss,
            batch_size=batch_size,
            optimizer_slots=optimizer_slots,
            indicator=indicator_factory,
            config=config,
            collective_model=collective_model,
            profile_repeats=profile_repeats,
        )
    )
    return outcome.plan, outcome.report
