"""The Replayer: throughput estimation ``E(.)`` and memory ``M_i(.)``.

Per device it owns a Precision DAG + Cost Mapper; :meth:`simulate` plays the
global DFG forward under the synchronous-collective recurrence of Eq. (6):

.. math::

    comm^{start}_n = \\max(\\max_i comm^{start}_{i,n},\\; comm^{end}_{n-1})

    comm^{end}_n = comm^{start}_n + \\max_i comm^{dur}_{i,n}

i.e. bucket ``n`` starts when every device has produced its gradients *and*
the previous collective finished; it lasts as long as the slowest
participant.  The iteration latency is the max across devices of
(compute end vs last collective end) plus the optimizer step.
"""

from __future__ import annotations

import dataclasses

from repro.common.dtypes import Precision
from repro.core.cost_mapper import CostMapper
from repro.core.dfg import GlobalDFG, LocalDFG
from repro.hardware.cluster import Cluster
from repro.profiling.casting import CastCostCalculator
from repro.profiling.memory import MemoryEstimate, MemoryModel
from repro.profiling.profiler import OperatorCostCatalog
from repro.graph.dag import PrecisionDAG


@dataclasses.dataclass
class TimelineEvent:
    """One executed interval, for Fig. 6-style waterfalls."""

    rank: int
    device: str
    stream: str
    start: float
    end: float
    label: str


@dataclasses.dataclass
class SimulationResult:
    """Outcome of one global-DFG simulation."""

    iteration_time: float
    per_device_compute: dict[int, float]
    comm_wait_time: dict[int, float]
    memory: dict[int, MemoryEstimate]
    timeline: list[TimelineEvent]

    @property
    def throughput(self) -> float:
        """Iterations per second."""
        return 1.0 / self.iteration_time if self.iteration_time > 0 else float("inf")


class Replayer:
    """Simulates hybrid mixed-precision distributed training.

    Parameters
    ----------
    cluster:
        Worker topology (provides the all-reduce cost model).
    dags:
        Per-rank Precision DAGs (same structure; independent precisions).
    catalogs, cast_calcs:
        Per-rank profiled cost catalogs and fitted casting models.
    optimizer_slots:
        Memory-model optimizer state multiplier.
    """

    def __init__(
        self,
        cluster: Cluster,
        dags: dict[int, PrecisionDAG],
        catalogs: dict[int, OperatorCostCatalog],
        cast_calcs: dict[int, CastCostCalculator],
        optimizer_slots: int = 1,
        bucket_cap_bytes: int = 25 * 1024**2,
    ) -> None:
        self.cluster = cluster
        self.dags = dags
        self.memory_model = MemoryModel(optimizer_slots=optimizer_slots)
        self.mappers: dict[int, CostMapper] = {}
        for worker in cluster.workers:
            rank = worker.rank
            self.mappers[rank] = CostMapper(
                dags[rank],
                catalogs[rank],
                cast_calcs[rank],
                device=worker.device,
                bucket_cap_bytes=bucket_cap_bytes,
            )

    # ------------------------------------------------------------------
    def apply_plan(self, rank: int, plan: dict[str, Precision]) -> None:
        """Install a per-op precision plan on one worker's DAG."""
        self.dags[rank].apply_plan(plan)

    def build_global_dfg(self) -> GlobalDFG:
        locals_ = [
            self.mappers[w.rank].build_local_dfg(w.device.name, w.rank)
            for w in self.cluster.workers
        ]
        return GlobalDFG(locals_)

    # ------------------------------------------------------------------
    def simulate(self, collect_timeline: bool = False) -> SimulationResult:
        """Estimate one iteration's latency under current precisions."""
        gdfg = self.build_global_dfg()
        return simulate_global_dfg(
            gdfg, self.cluster, collect_timeline=collect_timeline,
            memory={
                w.rank: self.memory_model.estimate(self.dags[w.rank])
                for w in self.cluster.workers
            },
        )

    def memory_estimate(self, rank: int) -> MemoryEstimate:
        return self.memory_model.estimate(self.dags[rank])


def simulate_global_dfg(
    gdfg: GlobalDFG,
    cluster: Cluster,
    collect_timeline: bool = False,
    memory: dict[int, MemoryEstimate] | None = None,
) -> SimulationResult:
    """Play a global DFG through Eq. (6).

    Separated from :class:`Replayer` so the ground-truth simulator can reuse
    the identical synchronization semantics with its own (noisy) node
    durations — keeping Table III's comparison about *cost modelling*, not
    about divergent schedulers.
    """
    locals_ = gdfg.locals
    timeline: list[TimelineEvent] = []

    # Per-device CUDA-stream times.
    compute_end: dict[int, float] = {}
    ready_times: dict[int, dict[int, float]] = {}
    for ldfg in locals_:
        ready_times[ldfg.rank] = ldfg.bucket_ready_times()
        compute_end[ldfg.rank] = ldfg.forward_time + ldfg.backward_time
        if collect_timeline:
            _emit_stream_timeline(ldfg, timeline)

    # Synchronous collectives: Eq. (6).
    comm_end_prev = 0.0
    comm_end_final: float = 0.0
    for n in range(gdfg.n_buckets):
        start_candidates = [ready_times[l.rank][n] for l in locals_]
        comm_start = max(max(start_candidates), comm_end_prev)
        durations = [
            cluster.allreduce_time(l.buckets[n].nbytes) for l in locals_
        ]
        comm_dur = max(durations)
        comm_end = comm_start + comm_dur
        if collect_timeline:
            for ldfg in locals_:
                timeline.append(
                    TimelineEvent(
                        rank=ldfg.rank,
                        device=ldfg.device_name,
                        stream="comm",
                        start=comm_start,
                        end=comm_end,
                        label=f"allreduce:bucket{n}",
                    )
                )
        comm_end_prev = comm_end
        comm_end_final = comm_end

    # Iteration end per device: optimizer runs after both the local backward
    # and the final collective complete.
    iteration_time = 0.0
    per_device_compute: dict[int, float] = {}
    comm_wait: dict[int, float] = {}
    for ldfg in locals_:
        rank = ldfg.rank
        opt = ldfg.optimizer.duration if ldfg.optimizer else 0.0
        local_done = max(compute_end[rank], comm_end_final)
        comm_wait[rank] = max(0.0, comm_end_final - compute_end[rank])
        end = local_done + opt
        per_device_compute[rank] = ldfg.compute_time
        if collect_timeline and ldfg.optimizer:
            timeline.append(
                TimelineEvent(rank, ldfg.device_name, "cuda", local_done, end, "optimizer")
            )
        iteration_time = max(iteration_time, end)

    return SimulationResult(
        iteration_time=iteration_time,
        per_device_compute=per_device_compute,
        comm_wait_time=comm_wait,
        memory=memory or {},
        timeline=timeline,
    )


def _emit_stream_timeline(ldfg: LocalDFG, timeline: list[TimelineEvent]) -> None:
    t = 0.0
    for node in (*ldfg.forward, *ldfg.backward):
        timeline.append(
            TimelineEvent(
                rank=ldfg.rank,
                device=ldfg.device_name,
                stream="cuda",
                start=t,
                end=t + node.duration,
                label=node.name,
            )
        )
        t += node.duration
