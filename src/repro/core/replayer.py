"""The Replayer: throughput estimation ``E(.)`` and memory ``M_i(.)``.

Per device it owns a Precision DAG + Cost Mapper; :meth:`simulate` plays the
global DFG forward under the synchronous-collective recurrence of Eq. (6):

.. math::

    comm^{start}_n = \\max(\\max_i comm^{start}_{i,n},\\; comm^{end}_{n-1})

    comm^{end}_n = comm^{start}_n + \\max_i comm^{dur}_{i,n}

i.e. bucket ``n`` starts when every device has produced its gradients *and*
the previous collective finished; it lasts as long as the slowest
participant.  The iteration latency is the max across devices of
(compute end vs last collective end) plus the optimizer step.
"""

from __future__ import annotations

import dataclasses

from repro.common.dtypes import Precision
from repro.core.cost_mapper import CostMapper
from repro.core.dfg import GlobalDFG, LocalDFG
from repro.engine.perturbation import Perturbation  # repro: allow RPR004 dispatch tiers (PR 5): the Replayer validates policy/perturbation kwargs at construction, before any engine run
from repro.engine.policy import SchedulePolicy, resolve_schedule_policy  # repro: allow RPR004 dispatch tiers (PR 5): non-default policies route through the engine; the engine itself never imports core's Replayer
from repro.graph.dag import PrecisionDAG
from repro.hardware.cluster import Cluster
from repro.parallel.comm_model import CollectiveModel, resolve_collective_model
from repro.profiling.casting import CastCostCalculator
from repro.profiling.memory import MemoryEstimate, MemoryModel
from repro.profiling.profiler import OperatorCostCatalog


@dataclasses.dataclass
class TimelineEvent:
    """One executed interval, for Fig. 6-style waterfalls."""

    rank: int
    device: str
    stream: str
    start: float
    end: float
    label: str


@dataclasses.dataclass
class ReplayerStats:
    """Counters for the incremental replay engine (diagnostics/benchmarks)."""

    simulate_calls: int = 0
    #: Per-rank DFG served untouched (DAG version unchanged since last use).
    local_cache_hits: int = 0
    #: Per-rank DFG served as a view of another same-type rank's DFG.
    local_shared_hits: int = 0
    memory_evals: int = 0
    memory_cache_hits: int = 0


@dataclasses.dataclass
class SimulationResult:
    """Outcome of one global-DFG simulation."""

    iteration_time: float
    per_device_compute: dict[int, float]
    comm_wait_time: dict[int, float]
    memory: dict[int, MemoryEstimate]
    timeline: list[TimelineEvent]

    @property
    def throughput(self) -> float:
        """Iterations per second."""
        return 1.0 / self.iteration_time if self.iteration_time > 0 else float("inf")


class Replayer:
    """Simulates hybrid mixed-precision distributed training.

    Parameters
    ----------
    cluster:
        Worker topology (provides the all-reduce cost model).
    dags:
        Per-rank Precision DAGs (same structure; independent precisions).
    catalogs, cast_calcs:
        Per-rank profiled cost catalogs and fitted casting models.
    optimizer_slots:
        Memory-model optimizer state multiplier.
    collective_model:
        All-reduce cost model (name, instance, or ``None`` for the flat-ring
        default — the legacy single-bottleneck ring, bit-identical to the
        pre-topology Replayer).
    schedule_policy:
        Execution schedule (name, instance, or ``None`` for the DDP-overlap
        default — the Eq. (6) semantics, bit-identical to the analytic
        path).  Non-default policies run through the discrete-event engine.
    perturbation:
        Optional deterministic straggler/bandwidth-drift injection
        (:class:`repro.engine.Perturbation`); also routed through the
        engine.
    """

    def __init__(
        self,
        cluster: Cluster,
        dags: dict[int, PrecisionDAG],
        catalogs: dict[int, OperatorCostCatalog],
        cast_calcs: dict[int, CastCostCalculator],
        optimizer_slots: int = 1,
        bucket_cap_bytes: int = 25 * 1024**2,
        incremental: bool = True,
        collective_model: CollectiveModel | str | None = None,
        schedule_policy: SchedulePolicy | str | None = None,
        perturbation: Perturbation | None = None,
    ) -> None:
        self.cluster = cluster
        self.collective_model = resolve_collective_model(collective_model)
        self.schedule_policy = resolve_schedule_policy(schedule_policy)
        self.perturbation = perturbation
        self.dags = dags
        self.memory_model = MemoryModel(optimizer_slots=optimizer_slots)
        #: When False every simulate() rebuilds every rank's DFG and memory
        #: estimate from scratch (the pre-caching behaviour) — kept as the
        #: reference mode for equivalence tests and the speed benchmark.
        self.incremental = incremental
        self.stats = ReplayerStats()
        self.mappers: dict[int, CostMapper] = {}
        self._workers_by_rank = {w.rank: w for w in cluster.workers}
        # rank -> (dag version, structure version, LocalDFG)
        self._dfg_cache: dict[int, tuple[int, int, LocalDFG]] = {}
        # device type -> (precision signature, structure fingerprint,
        # LocalDFG) — fingerprints, not per-instance counters, because the
        # entries are shared across different DAG objects.
        self._type_dfg_cache: dict[str, tuple[tuple, int, LocalDFG]] = {}
        # rank -> (dag version, MemoryEstimate)
        self._mem_cache: dict[int, tuple[int, MemoryEstimate]] = {}
        # (structure fingerprint, precision signature) -> MemoryEstimate
        # (structurally identical DAGs with equal signatures have identical
        # footprints, device-independent)
        self._mem_sig_cache: dict[tuple, MemoryEstimate] = {}
        for worker in cluster.workers:
            rank = worker.rank
            self.mappers[rank] = CostMapper(
                dags[rank],
                catalogs[rank],
                cast_calcs[rank],
                device=worker.device,
                bucket_cap_bytes=bucket_cap_bytes,
            )

    # ------------------------------------------------------------------
    def apply_plan(self, rank: int, plan: dict[str, Precision]) -> None:
        """Install a per-op precision plan on one worker's DAG."""
        self.dags[rank].apply_plan(plan)

    def full_rebuilds(self) -> int:
        """Total from-scratch LocalDFG constructions across all mappers."""
        return sum(m.full_rebuilds for m in self.mappers.values())

    def incremental_updates(self) -> int:
        """Total delta DFG updates across all mappers."""
        return sum(m.incremental_updates for m in self.mappers.values())

    def adopt_shared_state(self, other: "Replayer") -> int:
        """Adopt another replayer's device-type-keyed caches where sound.

        The elastic re-planning entry point: after a membership change, the
        surviving ranks' device types have already built (and signed) their
        DFGs in the pre-churn replayer — a fresh replayer over the new
        cluster can serve those straight from ``other``'s per-type cache
        instead of re-deriving them, making re-plan cost O(changed ranks).

        Adoption is per device type and guarded on shared provenance: the
        two replayers must map the type with the *same* catalog and cast
        calculator objects and equal bucket caps, both in incremental mode.
        A stale adopted entry is harmless — :meth:`local_dfg` only serves
        it on an exact precision-signature + structure-fingerprint match,
        and misses fall through to the cost mapper as usual.

        Returns the number of device-type DFG entries adopted.
        """
        if not (self.incremental and other.incremental):
            return 0
        mine_by_type: dict[str, CostMapper] = {}
        for mapper in self.mappers.values():
            mine_by_type.setdefault(mapper.device.name, mapper)
        theirs_by_type: dict[str, CostMapper] = {}
        for mapper in other.mappers.values():
            theirs_by_type.setdefault(mapper.device.name, mapper)
        adopted = 0
        for tname, entry in other._type_dfg_cache.items():
            mine = mine_by_type.get(tname)
            theirs = theirs_by_type.get(tname)
            if mine is None or theirs is None:
                continue
            if (
                mine.catalog is theirs.catalog
                and mine.cast_calc is theirs.cast_calc
                and mine.bucket_cap_bytes == theirs.bucket_cap_bytes
            ):
                self._type_dfg_cache[tname] = entry
                adopted += 1
        # Memory estimates are keyed on (structure fingerprint, precision
        # signature) and device-independent, but scale with optimizer slots.
        if (
            self.memory_model.optimizer_slots
            == other.memory_model.optimizer_slots
        ):
            merged = dict(other._mem_sig_cache)
            merged.update(self._mem_sig_cache)
            if len(merged) <= 8192:
                self._mem_sig_cache = merged
        return adopted

    # ------------------------------------------------------------------
    def local_dfg(self, rank: int) -> LocalDFG:
        """The rank's LocalDFG under its current precisions.

        Incremental mode consults two cache layers before touching the cost
        mapper: (1) the per-rank cache, valid while the rank's DAG version
        is unchanged; (2) the per-device-type cache — same-type ranks run
        identical plans, so a rank whose precision signature matches its
        type's last-built DFG gets a shared view instead of a rebuild.  Only
        a genuinely novel assignment reaches the mapper, and there it costs
        a delta update, not a rebuild.
        """
        worker = self._workers_by_rank[rank]
        if not self.incremental:
            return self.mappers[rank].build_local_dfg(worker.device.name, rank)
        dag = self.dags[rank]
        version, structure = dag.version, dag.structure_version
        entry = self._dfg_cache.get(rank)
        if entry is not None and entry[0] == version and entry[1] == structure:
            self.stats.local_cache_hits += 1
            return entry[2]
        sig = dag.precision_signature()
        fingerprint = dag.structure_fingerprint()
        tname = worker.device.name
        tentry = self._type_dfg_cache.get(tname)
        if tentry is not None and tentry[0] == sig and tentry[1] == fingerprint:
            self.stats.local_shared_hits += 1
            shared = tentry[2]
            dfg = shared if shared.rank == rank else shared.view_for_rank(rank)
        else:
            dfg = self.mappers[rank].current_dfg(tname, rank)
            self._type_dfg_cache[tname] = (sig, fingerprint, dfg)
        self._dfg_cache[rank] = (version, structure, dfg)
        return dfg

    def build_global_dfg(self) -> GlobalDFG:
        return GlobalDFG([self.local_dfg(w.rank) for w in self.cluster.workers])

    # ------------------------------------------------------------------
    def simulate(
        self,
        collect_timeline: bool = False,
        schedule_policy: SchedulePolicy | str | None = None,
        perturbation: Perturbation | None = None,
    ) -> SimulationResult:
        """Estimate one iteration's latency under current precisions.

        ``schedule_policy``/``perturbation`` override the instance defaults
        for this call only.  The default DDP-overlap schedule without a
        timeline stays on the analytic Eq. (6) fast path (the allocator hot
        loop); timeline collection, alternative policies, and perturbations
        run through the discrete-event engine — bit-identical on the
        default policy.
        """
        self.stats.simulate_calls += 1
        gdfg = self.build_global_dfg()
        memory = {
            w.rank: self.memory_estimate(w.rank) for w in self.cluster.workers
        }
        policy = (
            self.schedule_policy
            if schedule_policy is None
            else resolve_schedule_policy(schedule_policy)
        )
        pert = self.perturbation if perturbation is None else perturbation
        # One dispatcher owns the analytic-vs-engine choice.
        from repro.engine.core import execute_global_dfg

        return execute_global_dfg(
            gdfg, self.cluster, collect_timeline=collect_timeline,
            memory=memory, collective_model=self.collective_model,
            schedule_policy=policy, perturbation=pert,
        )

    def memory_estimate(self, rank: int) -> MemoryEstimate:
        dag = self.dags[rank]
        if not self.incremental:
            return self.memory_model.estimate(dag)
        version = dag.version
        entry = self._mem_cache.get(rank)
        if entry is not None and entry[0] == version:
            self.stats.memory_cache_hits += 1
            return entry[1]
        sig_key = (dag.structure_fingerprint(), dag.precision_signature())
        est = self._mem_sig_cache.get(sig_key)
        if est is None:
            # Precision-dependent terms come from the mapper's incrementally
            # maintained per-op contributions (O(affected), not O(graph));
            # the structural terms are precision-independent.
            self.stats.memory_evals += 1
            wcopies, acts, workspace = self.mappers[rank].memory_components()
            weights = dag.total_weight_elems() * Precision.FP32.nbytes
            est = MemoryEstimate(
                weights=weights,
                weight_copies=wcopies,
                gradients=weights,
                optimizer=self.memory_model.optimizer_slots * weights,
                activations=acts,
                workspace=workspace,
            )
            if len(self._mem_sig_cache) > 8192:
                self._mem_sig_cache.clear()  # bound growth over long searches
            self._mem_sig_cache[sig_key] = est
        else:
            self.stats.memory_cache_hits += 1
        self._mem_cache[rank] = (version, est)
        return est


def bucket_comm_durations(
    locals_: list[LocalDFG],
    cluster: Cluster,
    comm_model: CollectiveModel,
) -> list[float]:
    """Per-bucket collective durations, priced once per distinct size.

    In synchronous data parallelism every rank's bucket ``n`` holds the
    same gradients, so the historical per-rank re-pricing of an identical
    collective was pure waste; one call per distinct byte count yields the
    same max bit-for-bit.  Shared by the analytic Eq. (6) path and the
    discrete-event engine's COMM events so their pricing cannot drift.
    """
    durations: list[float] = []
    for n in range(len(locals_[0].buckets)):
        sizes = {ldfg.buckets[n].nbytes for ldfg in locals_}
        durations.append(
            max(comm_model.allreduce_time(cluster, nbytes) for nbytes in sizes)
        )
    return durations


def simulate_global_dfg(
    gdfg: GlobalDFG,
    cluster: Cluster,
    collect_timeline: bool = False,
    memory: dict[int, MemoryEstimate] | None = None,
    collective_model: CollectiveModel | str | None = None,
) -> SimulationResult:
    """Play a global DFG through Eq. (6) — the analytic closed form.

    Separated from :class:`Replayer` so the ground-truth simulator can reuse
    the identical synchronization semantics with its own (noisy) node
    durations — keeping Table III's comparison about *cost modelling*, not
    about divergent schedulers.  ``collective_model`` prices each bucket's
    all-reduce; the default flat ring reproduces
    :meth:`Cluster.allreduce_time` bit-for-bit.

    This closed form is also the parity oracle for the discrete-event
    engine (:mod:`repro.engine`): under the default
    :class:`~repro.engine.policy.DDPOverlapPolicy` with no perturbation the
    engine must reproduce it bit-for-bit, timeline included.
    """
    comm_model = resolve_collective_model(collective_model)
    locals_ = gdfg.locals
    timeline: list[TimelineEvent] = []

    # Per-device CUDA-stream times.
    compute_end: dict[int, float] = {}
    ready_times: dict[int, dict[int, float]] = {}
    for ldfg in locals_:
        ready_times[ldfg.rank] = ldfg.bucket_ready_times()
        compute_end[ldfg.rank] = ldfg.forward_time + ldfg.backward_time
        if collect_timeline:
            _emit_stream_timeline(ldfg, timeline)

    # Synchronous collectives: Eq. (6).  Pricing is hoisted out of the
    # recurrence — one call per bucket, not one per (bucket, rank).
    durations = bucket_comm_durations(locals_, cluster, comm_model)
    comm_end_prev = 0.0
    comm_end_final: float = 0.0
    for n in range(gdfg.n_buckets):
        start_candidates = [ready_times[ld.rank][n] for ld in locals_]
        comm_start = max(max(start_candidates), comm_end_prev)
        comm_end = comm_start + durations[n]
        if collect_timeline:
            for ldfg in locals_:
                timeline.append(
                    TimelineEvent(
                        rank=ldfg.rank,
                        device=ldfg.device_name,
                        stream="comm",
                        start=comm_start,
                        end=comm_end,
                        label=f"allreduce:bucket{n}",
                    )
                )
        comm_end_prev = comm_end
        comm_end_final = comm_end

    # Iteration end per device: optimizer runs after both the local backward
    # and the final collective complete.
    iteration_time = 0.0
    per_device_compute: dict[int, float] = {}
    comm_wait: dict[int, float] = {}
    for ldfg in locals_:
        rank = ldfg.rank
        opt = ldfg.optimizer.duration if ldfg.optimizer else 0.0
        local_done = max(compute_end[rank], comm_end_final)
        comm_wait[rank] = max(0.0, comm_end_final - compute_end[rank])
        end = local_done + opt
        per_device_compute[rank] = ldfg.compute_time
        if collect_timeline and ldfg.optimizer:
            timeline.append(
                TimelineEvent(rank, ldfg.device_name, "cuda", local_done, end, "optimizer")
            )
        iteration_time = max(iteration_time, end)

    return SimulationResult(
        iteration_time=iteration_time,
        per_device_compute=per_device_compute,
        comm_wait_time=comm_wait,
        memory=memory or {},
        timeline=timeline,
    )


def _emit_stream_timeline(ldfg: LocalDFG, timeline: list[TimelineEvent]) -> None:
    t = 0.0
    for node in (*ldfg.forward, *ldfg.backward):
        timeline.append(
            TimelineEvent(
                rank=ldfg.rank,
                device=ldfg.device_name,
                stream="cuda",
                start=t,
                end=t + node.duration,
                label=node.name,
            )
        )
        t += node.duration
