"""The Replayer: throughput estimation ``E(.)`` and memory ``M_i(.)``.

Per device it owns a Precision DAG + Cost Mapper; :meth:`simulate` plays the
global DFG forward under the synchronous-collective recurrence of Eq. (6):

.. math::

    comm^{start}_n = \\max(\\max_i comm^{start}_{i,n},\\; comm^{end}_{n-1})

    comm^{end}_n = comm^{start}_n + \\max_i comm^{dur}_{i,n}

i.e. bucket ``n`` starts when every device has produced its gradients *and*
the previous collective finished; it lasts as long as the slowest
participant.  The iteration latency is the max across devices of
(compute end vs last collective end) plus the optimizer step.
"""

from __future__ import annotations

import dataclasses

from repro.common.dtypes import Precision
from repro.core.cost_mapper import CostMapper
from repro.core.dfg import GlobalDFG, LocalDFG
from repro.engine.perturbation import Perturbation  # repro: allow RPR004 dispatch tiers (PR 5): the Replayer validates policy/perturbation kwargs at construction, before any engine run
from repro.engine.policy import DDPOverlapPolicy, SchedulePolicy, resolve_schedule_policy  # repro: allow RPR004 dispatch tiers (PR 5): non-default policies route through the engine; the engine itself never imports core's Replayer
from repro.graph.dag import PrecisionDAG
from repro.hardware.cluster import Cluster
from repro.kernel import (
    compile_global,
    compile_local,
    evaluate as kernel_evaluate,
    candidate_row as kernel_candidate_row,
    simulate_batch as kernel_simulate_batch,
    HAVE_NUMPY,
)
from repro.parallel.comm_model import CollectiveModel, resolve_collective_model
from repro.quant.qsgd import level_bits
from repro.profiling.casting import CastCostCalculator
from repro.profiling.memory import MemoryEstimate, MemoryModel
from repro.profiling.profiler import OperatorCostCatalog


@dataclasses.dataclass
class TimelineEvent:
    """One executed interval, for Fig. 6-style waterfalls."""

    rank: int
    device: str
    stream: str
    start: float
    end: float
    label: str


@dataclasses.dataclass
class ReplayerStats:
    """Counters for the incremental replay engine (diagnostics/benchmarks)."""

    simulate_calls: int = 0
    #: Per-rank DFG served untouched (DAG version unchanged since last use).
    local_cache_hits: int = 0
    #: Per-rank DFG served as a view of another same-type rank's DFG.
    local_shared_hits: int = 0
    memory_evals: int = 0
    memory_cache_hits: int = 0
    #: simulate() calls served by the compiled array kernel (PR 8).
    kernel_sims: int = 0
    #: Candidates evaluated through the batched what-if kernel sweep.
    whatif_evals: int = 0


#: Hot-cache "no entry" marker (None is a real cached verdict there).
_MISS = object()


@dataclasses.dataclass
class SimulationResult:
    """Outcome of one global-DFG simulation."""

    iteration_time: float
    per_device_compute: dict[int, float]
    comm_wait_time: dict[int, float]
    memory: dict[int, MemoryEstimate]
    timeline: list[TimelineEvent]

    @property
    def throughput(self) -> float:
        """Iterations per second."""
        return 1.0 / self.iteration_time if self.iteration_time > 0 else float("inf")


class Replayer:
    """Simulates hybrid mixed-precision distributed training.

    Parameters
    ----------
    cluster:
        Worker topology (provides the all-reduce cost model).
    dags:
        Per-rank Precision DAGs (same structure; independent precisions).
    catalogs, cast_calcs:
        Per-rank profiled cost catalogs and fitted casting models.
    optimizer_slots:
        Memory-model optimizer state multiplier.
    collective_model:
        All-reduce cost model (name, instance, or ``None`` for the flat-ring
        default — the legacy single-bottleneck ring, bit-identical to the
        pre-topology Replayer).
    schedule_policy:
        Execution schedule (name, instance, or ``None`` for the DDP-overlap
        default — the Eq. (6) semantics, bit-identical to the analytic
        path).  Non-default policies run through the discrete-event engine.
    perturbation:
        Optional deterministic straggler/bandwidth-drift injection
        (:class:`repro.engine.Perturbation`); also routed through the
        engine.
    use_kernel:
        Compiled-array-kernel dispatch tier (:mod:`repro.kernel`).
        ``None`` (the default) enables it when numpy is importable;
        ``True`` requests it (still subject to numpy availability and
        incremental mode); ``False`` pins the object path.  The kernel is
        bit-identical to the analytic Eq. (6) fast path and only serves
        the same calls that path would (default policy, no perturbation,
        no timeline).
    """

    def __init__(
        self,
        cluster: Cluster,
        dags: dict[int, PrecisionDAG],
        catalogs: dict[int, OperatorCostCatalog],
        cast_calcs: dict[int, CastCostCalculator],
        optimizer_slots: int = 1,
        bucket_cap_bytes: int = 25 * 1024**2,
        incremental: bool = True,
        collective_model: CollectiveModel | str | None = None,
        schedule_policy: SchedulePolicy | str | None = None,
        perturbation: Perturbation | None = None,
        use_kernel: bool | None = None,
    ) -> None:
        self.cluster = cluster
        self.collective_model = resolve_collective_model(collective_model)
        self.schedule_policy = resolve_schedule_policy(schedule_policy)
        self.perturbation = perturbation
        self.dags = dags
        #: Per-bucket QSGD compression levels (the joint-planning axis), or
        #: ``None`` for uncompressed.  Set via :meth:`set_bucket_compression`;
        #: all-zero levels normalize to ``None`` so level 0 takes the exact
        #: legacy code path on every dispatch tier (the parity contract).
        self.bucket_compression: tuple[int, ...] | None = None
        self.memory_model = MemoryModel(optimizer_slots=optimizer_slots)
        #: When False every simulate() rebuilds every rank's DFG and memory
        #: estimate from scratch (the pre-caching behaviour) — kept as the
        #: reference mode for equivalence tests and the speed benchmark.
        self.incremental = incremental
        self.stats = ReplayerStats()
        self.mappers: dict[int, CostMapper] = {}
        self._workers_by_rank = {w.rank: w for w in cluster.workers}
        # rank -> (dag version, structure version, LocalDFG)
        self._dfg_cache: dict[int, tuple[int, int, LocalDFG]] = {}
        # device type -> (precision signature, structure fingerprint,
        # LocalDFG) — fingerprints, not per-instance counters, because the
        # entries are shared across different DAG objects.
        self._type_dfg_cache: dict[str, tuple[tuple, int, LocalDFG]] = {}
        # rank -> (dag version, MemoryEstimate)
        self._mem_cache: dict[int, tuple[int, MemoryEstimate]] = {}
        # (structure fingerprint, precision signature) -> MemoryEstimate
        # (structurally identical DAGs with equal signatures have identical
        # footprints, device-independent)
        self._mem_sig_cache: dict[tuple, MemoryEstimate] = {}
        self.use_kernel = (
            HAVE_NUMPY if use_kernel is None else bool(use_kernel) and HAVE_NUMPY
        )
        # device type -> (precision signature, structure fingerprint,
        # CompiledLocal | None) — keyed exactly like _type_dfg_cache; None
        # is a cached "not lowerable" verdict so failures don't retry.
        self._kernel_local_cache: dict[str, tuple[tuple, int, object]] = {}
        # (per-type (name, sig, fingerprint) tuple) -> CompiledGlobal
        self._kernel_global_cache: tuple[tuple, object] | None = None
        # per-type bucket-size tuples -> priced per-bucket durations; the
        # pricing itself always goes through bucket_comm_durations so the
        # kernel and analytic tiers cannot drift.  Both pricing caches are
        # dropped when collective_model is swapped out (identity-checked in
        # compiled_global — the analytic path reprices every call).
        self._comm_price_cache: dict[tuple, list[float]] = {}
        self._priced_model: CollectiveModel = self.collective_model
        # O(ranks) fast-path revalidation for the simulate() hot loop: the
        # exact (cluster, collective model, per-DAG version snapshot) the
        # cached CompiledGlobal was last validated against, plus the
        # evaluated per-rank result dicts (evaluate() is pure, so they are
        # constant per compilation).  ``_hot_cache`` additionally carries
        # the assembled memory dict and the CompiledGlobal (or None — a
        # cached "won't lower" verdict) for one simulate() list-compare.
        self._kernel_fast: tuple | None = None
        self._kernel_result_cache: tuple | None = None
        self._hot_cache: tuple | None = None
        for worker in cluster.workers:
            rank = worker.rank
            self.mappers[rank] = CostMapper(
                dags[rank],
                catalogs[rank],
                cast_calcs[rank],
                device=worker.device,
                bucket_cap_bytes=bucket_cap_bytes,
            )

    # ------------------------------------------------------------------
    def apply_plan(self, rank: int, plan: dict[str, Precision]) -> None:
        """Install a per-op precision plan on one worker's DAG."""
        self.dags[rank].apply_plan(plan)

    def set_bucket_compression(
        self, levels: tuple[int, ...] | list[int] | None
    ) -> None:
        """Install per-bucket QSGD compression levels (``None`` = off).

        Levels are validated against the :data:`~repro.quant.qsgd.LEVEL_BITS`
        ladder; an all-zero assignment normalizes to ``None`` so the
        uncompressed configuration is *indistinguishable* from never having
        touched the axis — same cache keys, same float operations, same
        bits on every tier (object, engine, kernel).
        """
        if levels is None:
            self.bucket_compression = None
            return
        levels = tuple(int(lvl) for lvl in levels)
        for lvl in levels:
            level_bits(lvl)  # raises ValueError on unknown rungs
        self.bucket_compression = levels if any(levels) else None

    def _bucket_bits(self) -> tuple[int, ...] | None:
        """Per-bucket wire bit widths of the current compression levels,
        or ``None`` when uncompressed (the hot-path branch: one attribute
        read on every simulate)."""
        levels = self.bucket_compression
        if levels is None:
            return None
        return tuple(level_bits(lvl) for lvl in levels)

    def full_rebuilds(self) -> int:
        """Total from-scratch LocalDFG constructions across all mappers."""
        return sum(m.full_rebuilds for m in self.mappers.values())

    def incremental_updates(self) -> int:
        """Total delta DFG updates across all mappers."""
        return sum(m.incremental_updates for m in self.mappers.values())

    def adopt_shared_state(self, other: "Replayer") -> int:
        """Adopt another replayer's device-type-keyed caches where sound.

        The elastic re-planning entry point: after a membership change, the
        surviving ranks' device types have already built (and signed) their
        DFGs in the pre-churn replayer — a fresh replayer over the new
        cluster can serve those straight from ``other``'s per-type cache
        instead of re-deriving them, making re-plan cost O(changed ranks).

        Adoption is per device type and guarded on shared provenance: the
        two replayers must map the type with the *same* catalog and cast
        calculator objects and equal bucket caps, both in incremental mode.
        A stale adopted entry is harmless — :meth:`local_dfg` only serves
        it on an exact precision-signature + structure-fingerprint match,
        and misses fall through to the cost mapper as usual.

        Returns the number of device-type DFG entries adopted.
        """
        if not (self.incremental and other.incremental):
            return 0
        mine_by_type: dict[str, CostMapper] = {}
        for mapper in self.mappers.values():
            mine_by_type.setdefault(mapper.device.name, mapper)
        theirs_by_type: dict[str, CostMapper] = {}
        for mapper in other.mappers.values():
            theirs_by_type.setdefault(mapper.device.name, mapper)
        adopted = 0
        for tname, entry in other._type_dfg_cache.items():
            mine = mine_by_type.get(tname)
            theirs = theirs_by_type.get(tname)
            if mine is None or theirs is None:
                continue
            if (
                mine.catalog is theirs.catalog
                and mine.cast_calc is theirs.cast_calc
                and mine.bucket_cap_bytes == theirs.bucket_cap_bytes
            ):
                self._type_dfg_cache[tname] = entry
                adopted += 1
        # Memory estimates are keyed on (structure fingerprint, precision
        # signature) and device-independent, but scale with optimizer slots.
        if (
            self.memory_model.optimizer_slots
            == other.memory_model.optimizer_slots
        ):
            merged = dict(other._mem_sig_cache)
            merged.update(self._mem_sig_cache)
            if len(merged) <= 8192:
                self._mem_sig_cache = merged
        return adopted

    # ------------------------------------------------------------------
    def local_dfg(self, rank: int) -> LocalDFG:
        """The rank's LocalDFG under its current precisions.

        Incremental mode consults two cache layers before touching the cost
        mapper: (1) the per-rank cache, valid while the rank's DAG version
        is unchanged; (2) the per-device-type cache — same-type ranks run
        identical plans, so a rank whose precision signature matches its
        type's last-built DFG gets a shared view instead of a rebuild.  Only
        a genuinely novel assignment reaches the mapper, and there it costs
        a delta update, not a rebuild.
        """
        worker = self._workers_by_rank[rank]
        if not self.incremental:
            return self.mappers[rank].build_local_dfg(worker.device.name, rank)
        dag = self.dags[rank]
        version, structure = dag.version, dag.structure_version
        entry = self._dfg_cache.get(rank)
        if entry is not None and entry[0] == version and entry[1] == structure:
            self.stats.local_cache_hits += 1
            return entry[2]
        sig = dag.precision_signature()
        fingerprint = dag.structure_fingerprint()
        tname = worker.device.name
        tentry = self._type_dfg_cache.get(tname)
        if tentry is not None and tentry[0] == sig and tentry[1] == fingerprint:
            self.stats.local_shared_hits += 1
            shared = tentry[2]
            dfg = shared if shared.rank == rank else shared.view_for_rank(rank)
        else:
            dfg = self.mappers[rank].current_dfg(tname, rank)
            self._type_dfg_cache[tname] = (sig, fingerprint, dfg)
        self._dfg_cache[rank] = (version, structure, dfg)
        return dfg

    def build_global_dfg(self) -> GlobalDFG:
        return GlobalDFG([self.local_dfg(w.rank) for w in self.cluster.workers])

    # ------------------------------------------------------------------
    # compiled array kernel tier (repro.kernel; PR 8)
    # ------------------------------------------------------------------
    def _compiled_local(self, rank: int):
        """The rank's type-shared :class:`repro.kernel.CompiledLocal`.

        Keyed exactly like ``_type_dfg_cache`` — precision signature +
        structure fingerprint per device type — including a cached ``None``
        verdict for DFGs that refuse to lower, so failures don't retry on
        every call.
        """
        worker = self._workers_by_rank[rank]
        tname = worker.device.name
        dag = self.dags[rank]
        sig = dag.precision_signature()
        fingerprint = dag.structure_fingerprint()
        entry = self._kernel_local_cache.get(tname)
        if entry is not None and entry[0] == sig and entry[1] == fingerprint:
            return entry[2]
        dfg = self.local_dfg(rank)
        compiled = compile_local(dfg, self.mappers[rank].kernel_layout())
        self._kernel_local_cache[tname] = (sig, fingerprint, compiled)
        return compiled

    def _dag_versions(self) -> list:
        """Identity + mutation-counter snapshot of every rank's DAG — the
        O(ranks) revalidation key for the kernel fast path (version counters
        are monotone, so a mutate-and-revert cycle never replays a key).
        Reads the counters' backing fields directly: this runs on every
        simulate() and the property indirection is measurable there."""
        out: list = []
        append = out.append
        for dag in self.dags.values():
            append(dag)
            append(dag._version)
            append(dag._structure_version)
        return out

    def compiled_global(self, _versions: list | None = None):
        """The compiled representation of the current global DFG, or None.

        ``None`` whenever the kernel tier cannot serve bit-identically:
        numpy missing or the tier disabled, non-incremental mode, a local
        that refuses to lower, or same-type ranks whose DFGs have diverged
        (the per-type compilation assumes shared plans, like the type DFG
        cache).  Callers fall back to the object path.
        """
        if not (self.use_kernel and self.incremental):
            return None
        versions = self._dag_versions() if _versions is None else _versions
        bits = self._bucket_bits()
        fast = self._kernel_fast
        if (
            fast is not None
            and fast[0] is self.cluster
            and fast[1] is self.collective_model
            and fast[2] == bits
            and fast[3] == versions
        ):
            return fast[4]
        if self._priced_model is not self.collective_model:
            # collective_model was swapped (e.g. topology experiments):
            # every priced duration is stale, so reprice from scratch.
            self._comm_price_cache.clear()
            self._kernel_global_cache = None
            self._priced_model = self.collective_model
        reps: dict[str, int] = {}
        order: list[str] = []
        shared: dict[str, LocalDFG] = {}
        locals_: list[LocalDFG] = []
        for w in self.cluster.workers:
            dfg = self.local_dfg(w.rank)
            locals_.append(dfg)
            tname = w.device.name
            ref = shared.get(tname)
            if ref is None:
                reps[tname] = w.rank
                order.append(tname)
                shared[tname] = dfg
            elif ref is not dfg and (
                ref.forward is not dfg.forward
                or ref.backward is not dfg.backward
                or ref.buckets is not dfg.buckets
            ):
                return None  # same-type ranks diverged: object path
        by_type: dict[str, object] = {}
        key_parts = []
        for tname in order:
            cl = self._compiled_local(reps[tname])
            if cl is None:
                return None
            by_type[tname] = cl
            entry = self._kernel_local_cache[tname]
            key_parts.append((tname, entry[0], entry[1]))
        # The compression axis rides in every pricing/compilation key: a
        # level change recompiles the global (durations are baked into the
        # CompiledGlobal), and level 0 normalizes to None so uncompressed
        # keys are byte-identical to the pre-compression ones.
        gkey = (tuple(key_parts), bits)
        cached = self._kernel_global_cache
        if cached is not None and cached[0] == gkey:
            self._kernel_fast = (
                self.cluster, self.collective_model, bits, versions, cached[1]
            )
            return cached[1]
        size_key = (
            tuple(by_type[tname].bucket_nbytes for tname in order), bits
        )
        durs = self._comm_price_cache.get(size_key)
        if durs is None:
            durs = bucket_comm_durations(
                locals_, self.cluster, self.collective_model, bits
            )
            self._comm_price_cache[size_key] = durs
        cg = compile_global(
            [(w.rank, by_type[w.device.name]) for w in self.cluster.workers],
            durs,
        )
        if cg is None:
            return None
        self._kernel_global_cache = (gkey, cg)
        self._kernel_fast = (
            self.cluster, self.collective_model, bits, versions, cg
        )
        return cg

    def _kernel_result(self, cg, memory) -> SimulationResult:
        """One Eq. (6) evaluation on the compiled arrays."""
        cached = self._kernel_result_cache
        if cached is not None and cached[0] is cg:
            _, iteration, per_device_compute, comm_wait = cached
        else:
            iteration, comm_end = kernel_evaluate(cg)
            per_device_compute = {}
            comm_wait = {}
            for w in self.cluster.workers:
                cl = cg.locals[cg.local_of_rank[w.rank]]
                # compute_end + opt is the object path's compute_time
                # addition order ((fwd + bwd) + opt) — bit-identical by
                # construction.
                per_device_compute[w.rank] = cl.compute_end + cl.opt
                comm_wait[w.rank] = max(0.0, comm_end - cl.compute_end)
            self._kernel_result_cache = (
                cg, iteration, per_device_compute, comm_wait
            )
        # The per-rank dicts are shared across results of one compilation
        # (results are read-only by the same convention as published DFGs);
        # a fresh SimulationResult still wraps them per call.
        return SimulationResult(
            iteration_time=iteration,
            per_device_compute=per_device_compute,
            comm_wait_time=comm_wait,
            memory=memory or {},
            timeline=[],
        )

    def whatif_candidates(self, candidates):
        """Evaluate ``(rank, op, target)`` what-ifs in one batched sweep.

        The allocator's recovery hot loop: each candidate is described
        mutation-free by :meth:`CostMapper.whatif_change`, spliced into the
        compiled base by :func:`repro.kernel.candidate_row`, and the whole
        batch plays Eq. (6) in one :func:`repro.kernel.simulate_batch`
        call.  Returns one ``(throughput, memory_total_bytes)`` pair per
        candidate — bit-identical to apply + ``simulate()`` + revert — or
        ``None`` when the kernel tier cannot serve the batch (callers fall
        back to the sequential path).  The DAGs are never touched.
        """
        if not candidates:
            return []
        cg = self.compiled_global()
        if cg is None:
            return None
        rows = []
        local_indices = []
        compute_ends = []
        mem_totals = []
        for rank, op, target in candidates:
            cl = cg.locals[cg.local_of_rank[rank]]
            change = self.mappers[rank].whatif_change(op, target)
            rc = kernel_candidate_row(cl, change)
            if rc is None:
                return None
            row, compute_end = rc
            rows.append(row)
            local_indices.append(cg.local_of_rank[rank])
            compute_ends.append(compute_end)
            # Mirrors memory_estimate()'s MemoryEstimate.total (all-int).
            weights = (
                self.dags[rank].total_weight_elems() * Precision.FP32.nbytes
            )
            mem_totals.append(
                weights
                + change.wcopy_total
                + weights
                + self.memory_model.optimizer_slots * weights
                + change.act_total
                + change.workspace
            )
        iterations = kernel_simulate_batch(cg, rows, local_indices, compute_ends)
        self.stats.whatif_evals += len(rows)
        results = []
        for iteration, mem in zip(iterations.tolist(), mem_totals):
            throughput = 1.0 / iteration if iteration > 0 else float("inf")
            results.append((throughput, mem))
        return results

    # ------------------------------------------------------------------
    def simulate(
        self,
        collect_timeline: bool = False,
        schedule_policy: SchedulePolicy | str | None = None,
        perturbation: Perturbation | None = None,
    ) -> SimulationResult:
        """Estimate one iteration's latency under current precisions.

        ``schedule_policy``/``perturbation`` override the instance defaults
        for this call only.  The default DDP-overlap schedule without a
        timeline stays on the Eq. (6) fast path (the allocator hot loop) —
        served by the compiled array kernel when available, the analytic
        object recurrence otherwise, bit-identical either way; timeline
        collection, alternative policies, and perturbations run through
        the discrete-event engine — bit-identical on the default policy.
        """
        self.stats.simulate_calls += 1
        versions = None
        memory = None
        bits = self._bucket_bits()
        hot_cg = _MISS
        if self.use_kernel and self.incremental:
            versions = self._dag_versions()
            hot = self._hot_cache
            if (
                hot is not None
                and hot[0] is self.cluster
                and hot[1] is self.collective_model
                and hot[2] == bits
                and hot[3] == versions
            ):
                memory = hot[4]
                hot_cg = hot[5]
        if memory is None:
            memory = {
                w.rank: self.memory_estimate(w.rank)
                for w in self.cluster.workers
            }
        policy = (
            self.schedule_policy
            if schedule_policy is None
            else resolve_schedule_policy(schedule_policy)
        )
        pert = self.perturbation if perturbation is None else perturbation
        # Kernel tier: exactly the calls execute_global_dfg would route to
        # the analytic fast path (same guard), minus anything the compiled
        # representation can't serve (then the kernel declines and the
        # object path runs).
        if (
            not collect_timeline
            and (pert is None or pert.is_noop)
            and type(policy) is DDPOverlapPolicy
        ):
            cg = hot_cg
            if cg is _MISS:
                cg = self.compiled_global(versions)
                if versions is not None:
                    self._hot_cache = (
                        self.cluster, self.collective_model, bits,
                        versions, memory, cg,
                    )
            if cg is not None:
                self.stats.kernel_sims += 1
                return self._kernel_result(cg, memory)
        gdfg = self.build_global_dfg()
        # One dispatcher owns the analytic-vs-engine choice.
        from repro.engine.core import execute_global_dfg

        return execute_global_dfg(
            gdfg, self.cluster, collect_timeline=collect_timeline,
            memory=memory, collective_model=self.collective_model,
            schedule_policy=policy, perturbation=pert,
            bucket_bits=bits,
        )

    def memory_estimate(self, rank: int) -> MemoryEstimate:
        dag = self.dags[rank]
        if not self.incremental:
            return self.memory_model.estimate(dag)
        version = dag.version
        entry = self._mem_cache.get(rank)
        if entry is not None and entry[0] == version:
            self.stats.memory_cache_hits += 1
            return entry[1]
        sig_key = (dag.structure_fingerprint(), dag.precision_signature())
        est = self._mem_sig_cache.get(sig_key)
        if est is None:
            # Precision-dependent terms come from the mapper's incrementally
            # maintained per-op contributions (O(affected), not O(graph));
            # the structural terms are precision-independent.
            self.stats.memory_evals += 1
            wcopies, acts, workspace = self.mappers[rank].memory_components()
            weights = dag.total_weight_elems() * Precision.FP32.nbytes
            est = MemoryEstimate(
                weights=weights,
                weight_copies=wcopies,
                gradients=weights,
                optimizer=self.memory_model.optimizer_slots * weights,
                activations=acts,
                workspace=workspace,
            )
            if len(self._mem_sig_cache) > 8192:
                self._mem_sig_cache.clear()  # bound growth over long searches
            self._mem_sig_cache[sig_key] = est
        else:
            self.stats.memory_cache_hits += 1
        self._mem_cache[rank] = (version, est)
        return est


def bucket_comm_durations(
    locals_: list[LocalDFG],
    cluster: Cluster,
    comm_model: CollectiveModel,
    bucket_bits: tuple[int, ...] | None = None,
) -> list[float]:
    """Per-bucket collective durations, priced once per distinct size.

    In synchronous data parallelism every rank's bucket ``n`` holds the
    same gradients, so the historical per-rank re-pricing of an identical
    collective was pure waste; one call per distinct byte count yields the
    same max bit-for-bit.  Shared by the analytic Eq. (6) path, the
    compiled kernel tier, and the discrete-event engine's COMM events so
    their pricing cannot drift.

    ``bucket_bits`` optionally carries per-bucket gradient bit widths (the
    compression axis): pricing then routes through
    :meth:`~repro.parallel.comm_model.CollectiveModel.allreduce_time_bits`
    keyed on ``(nbytes, bits)``.  ``None`` — the default everywhere — takes
    the exact historical code path, so uncompressed callers cannot drift
    by a single float operation.

    Two short-circuits, both value-preserving: when every local shares one
    bucket list object (the ``view_for_rank`` common case) the per-bucket
    size set collapses to the reference bucket's own size without scanning
    ranks, and each distinct byte count is priced at most once across the
    whole call (``allreduce_time`` is a pure function of cluster + size).
    """
    ref = locals_[0].buckets
    all_shared = all(ldfg.buckets is ref for ldfg in locals_)
    if bucket_bits is not None and len(bucket_bits) != len(ref):
        raise ValueError(
            f"bucket_bits has {len(bucket_bits)} entries for "
            f"{len(ref)} buckets"
        )
    price: dict = {}
    durations: list[float] = []
    for n in range(len(ref)):
        if all_shared:
            sizes: tuple[int, ...] | set[int] = (ref[n].nbytes,)
        else:
            sizes = {ldfg.buckets[n].nbytes for ldfg in locals_}
        slowest: float | None = None
        for nbytes in sizes:
            if bucket_bits is None:
                key = nbytes
            else:
                key = (nbytes, bucket_bits[n])
            dur = price.get(key)
            if dur is None:
                if bucket_bits is None:
                    dur = comm_model.allreduce_time(cluster, nbytes)
                else:
                    dur = comm_model.allreduce_time_bits(
                        cluster, nbytes, bucket_bits[n]
                    )
                price[key] = dur
            if slowest is None or dur > slowest:
                slowest = dur
        durations.append(slowest)
    return durations


def simulate_global_dfg(
    gdfg: GlobalDFG,
    cluster: Cluster,
    collect_timeline: bool = False,
    memory: dict[int, MemoryEstimate] | None = None,
    collective_model: CollectiveModel | str | None = None,
    bucket_bits: tuple[int, ...] | None = None,
) -> SimulationResult:
    """Play a global DFG through Eq. (6) — the analytic closed form.

    Separated from :class:`Replayer` so the ground-truth simulator can reuse
    the identical synchronization semantics with its own (noisy) node
    durations — keeping Table III's comparison about *cost modelling*, not
    about divergent schedulers.  ``collective_model`` prices each bucket's
    all-reduce; the default flat ring reproduces
    :meth:`Cluster.allreduce_time` bit-for-bit.

    This closed form is also the parity oracle for the discrete-event
    engine (:mod:`repro.engine`): under the default
    :class:`~repro.engine.policy.DDPOverlapPolicy` with no perturbation the
    engine must reproduce it bit-for-bit, timeline included.

    ``bucket_bits`` (per-bucket gradient bit widths, the compression axis)
    is forwarded to :func:`bucket_comm_durations`; ``None`` keeps the
    uncompressed pricing bit-identical.
    """
    comm_model = resolve_collective_model(collective_model)
    locals_ = gdfg.locals
    timeline: list[TimelineEvent] = []

    # Per-device CUDA-stream times.
    compute_end: dict[int, float] = {}
    ready_times: dict[int, dict[int, float]] = {}
    for ldfg in locals_:
        ready_times[ldfg.rank] = ldfg.bucket_ready_times()
        compute_end[ldfg.rank] = ldfg.forward_time + ldfg.backward_time
        if collect_timeline:
            _emit_stream_timeline(ldfg, timeline)

    # Synchronous collectives: Eq. (6).  Pricing is hoisted out of the
    # recurrence — one call per bucket, not one per (bucket, rank).
    durations = bucket_comm_durations(locals_, cluster, comm_model, bucket_bits)
    comm_end_prev = 0.0
    comm_end_final: float = 0.0
    for n in range(gdfg.n_buckets):
        start_candidates = [ready_times[ld.rank][n] for ld in locals_]
        comm_start = max(max(start_candidates), comm_end_prev)
        comm_end = comm_start + durations[n]
        if collect_timeline:
            for ldfg in locals_:
                timeline.append(
                    TimelineEvent(
                        rank=ldfg.rank,
                        device=ldfg.device_name,
                        stream="comm",
                        start=comm_start,
                        end=comm_end,
                        label=f"allreduce:bucket{n}",
                    )
                )
        comm_end_prev = comm_end
        comm_end_final = comm_end

    # Iteration end per device: optimizer runs after both the local backward
    # and the final collective complete.
    iteration_time = 0.0
    per_device_compute: dict[int, float] = {}
    comm_wait: dict[int, float] = {}
    for ldfg in locals_:
        rank = ldfg.rank
        opt = ldfg.optimizer.duration if ldfg.optimizer else 0.0
        local_done = max(compute_end[rank], comm_end_final)
        comm_wait[rank] = max(0.0, comm_end_final - compute_end[rank])
        end = local_done + opt
        per_device_compute[rank] = ldfg.compute_time
        if collect_timeline and ldfg.optimizer:
            timeline.append(
                TimelineEvent(rank, ldfg.device_name, "cuda", local_done, end, "optimizer")
            )
        iteration_time = max(iteration_time, end)

    return SimulationResult(
        iteration_time=iteration_time,
        per_device_compute=per_device_compute,
        comm_wait_time=comm_wait,
        memory=memory or {},
        timeline=timeline,
    )


def _emit_stream_timeline(ldfg: LocalDFG, timeline: list[TimelineEvent]) -> None:
    t = 0.0
    for node in (*ldfg.forward, *ldfg.backward):
        timeline.append(
            TimelineEvent(
                rank=ldfg.rank,
                device=ldfg.device_name,
                stream="cuda",
                start=t,
                end=t + node.duration,
                label=node.name,
            )
        )
        t += node.duration
