"""The precision Allocator (Sec. V).

Solves problem (1): minimize total operator sensitivity on inference GPUs
subject to per-device memory (``M_i <= M_i^max``) and global throughput
(``E >= T_min``) constraints.

Strategy (per the paper):

1. **Initialization — fastest feasible plan.**  Starting from FP32 and
   demoting is ill-directed because casting costs make "lower" not always
   "faster"; instead the allocator starts from the *fastest* setting.  The
   search space is collapsed by the repeating-isomorphic-subgraph structure:
   each isomorphism class is brute-forced once (all blocks of a class share
   the decision) against full-graph latency and memory, largest-FLOPs class
   first.  This is a coordinate descent whose per-class step is exhaustive —
   a strictly stronger feasibility check than pre-splitting memory budgets,
   with identical intent (documented deviation, DESIGN.md §4).
2. **Recovery — max-heap precision ascent.**  A heap per inference device
   type holds ``[Omega(b) - Omega(ADD(b)), op]``: the sensitivity *decrement*
   available by promoting each op one precision level.  Pop the largest,
   promote tentatively, re-simulate with the Replayer; keep the change iff
   memory still fits everywhere and throughput stays >= ``T_min``; push the
   op back with its next-higher precision while one exists.

``T_min`` is the throughput of the uniform lowest-feasible-precision plan
(problem (1)'s definition).
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools

from repro.common.dtypes import Precision, higher_precision
from repro.common.errors import InfeasiblePlanError
from repro.core.indicator import IndicatorProtocol
from repro.core.plan import PrecisionPlan
from repro.core.replayer import Replayer
from repro.graph.dag import PrecisionDAG
from repro.graph.subgraph import group_blocks, isomorphism_classes


@dataclasses.dataclass
class AllocatorConfig:
    """Tunables for the allocation search."""

    #: Max adjustable ops per block to enumerate exhaustively (3^n growth);
    #: larger blocks fall back to uniform candidates.
    max_bruteforce_ops: int = 6
    #: Relative slack on the throughput constraint: keep a recovery step iff
    #: ``E_new >= (1 - slack) * T_min``.
    throughput_slack: float = 0.005
    #: Hard cap on recovery iterations (defensive; heaps empty long before).
    max_recovery_steps: int = 10_000
    #: §VIII "QSync Under Automated Mixed Precision": when True, training
    #: GPUs also start from their fastest precision (AMP's FP16) and join
    #: the recovery heaps — the "throughput-maximum case" where the recovery
    #: target shifts from the inference GPUs to the training GPUs.
    amp_mode: bool = False
    #: Batch recovery candidates into one compiled-kernel what-if sweep
    #: (PR 8) when the replayer's kernel tier is available.  The
    #: accept/reject sequence — and therefore the final plan, attempt and
    #: accept counts — is bit-identical to the sequential loop: rejects
    #: against the current base are final, and the first accept in a
    #: window sends the rest of the window back to the heap.
    batched_recovery: bool = True
    #: Candidates per batched sweep window.
    recovery_batch: int = 16


@dataclasses.dataclass
class AllocationReport:
    """Diagnostics of one allocation run."""

    t_min: float
    initial_throughput: float
    final_throughput: float
    recovery_attempts: int
    recovery_accepted: int
    initial_counts: dict[str, int]
    final_counts: dict[str, int]
    #: From-scratch LocalDFG constructions performed during the recovery
    #: loop (the incremental engine keeps this at zero) and the delta
    #: updates that replaced them.
    recovery_full_rebuilds: int = 0
    recovery_incremental_updates: int = 0
    simulate_calls: int = 0
    #: Candidates evaluated through the batched what-if kernel sweep
    #: instead of a full simulate() each (0 = sequential recovery).
    recovery_whatif_evals: int = 0

    def summary(self) -> str:
        return (
            f"T_min={self.t_min:.3f} it/s, init E={self.initial_throughput:.3f}, "
            f"final E={self.final_throughput:.3f}; recovered "
            f"{self.recovery_accepted}/{self.recovery_attempts} promotions; "
            f"precisions {self.initial_counts} -> {self.final_counts}"
        )


class Allocator:
    """Quantization-minimized precision allocation.

    Parameters
    ----------
    replayer:
        Configured with per-rank DAGs/catalogs; training-GPU DAGs are left
        at FP32 throughout.
    indicators:
        Device-type name -> sensitivity indicator (QSync's variance
        indicator, or a baseline implementing the same protocol).
    config:
        Search tunables.
    """

    def __init__(
        self,
        replayer: Replayer,
        indicators: dict[str, IndicatorProtocol],
        config: AllocatorConfig | None = None,
    ) -> None:
        self.replayer = replayer
        self.indicators = indicators
        self.config = config or AllocatorConfig()
        self._device_by_type = {
            w.device.name: w.device for w in replayer.cluster.workers
        }
        # (device type, op) -> candidate precisions sorted low-to-high by
        # bit width.  Device support tables and kernel sets are static, so
        # this is computed once instead of per recovery trial.
        self._cand_cache: dict[tuple[str, str], list[Precision]] = {}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _inference_ranks_by_type(self) -> dict[str, list[int]]:
        """Device types whose operators the allocator may quantize.

        Default: inference GPUs only (training GPUs pinned FP32 per problem
        (1)).  Under :attr:`AllocatorConfig.amp_mode` every device type
        participates — the paper's §VIII throughput-maximum scenario.
        """
        workers = (
            self.replayer.cluster.workers
            if self.config.amp_mode
            else self.replayer.cluster.inference_workers
        )
        groups: dict[str, list[int]] = {}
        for w in workers:
            groups.setdefault(w.device.name, []).append(w.rank)
        return groups

    def _device_for_type(self, name: str):
        return self._device_by_type[name]

    def _candidates_for(self, dag: PrecisionDAG, op: str, device) -> list[Precision]:
        """Precisions both the op's kernels and the device support, sorted
        low-to-high by bit width (cached, read-only)."""
        key = (device.name, op)
        cands = self._cand_cache.get(key)
        if cands is None:
            cands = sorted(
                (
                    p
                    for p in dag.spec(op).supported_precisions()
                    if device.supports(p)
                ),
                key=lambda p: p.bits,
            )
            self._cand_cache[key] = cands
        return cands

    def _apply_to_type(self, ranks: list[int], plan: dict[str, Precision]) -> None:
        for rank in ranks:
            self.replayer.apply_plan(rank, plan)

    def _set_op(self, ranks: list[int], op: str, prec: Precision) -> None:
        """Single-op delta applied to every same-type rank — the recovery
        loop's apply/revert primitive (dirties one op instead of re-writing
        the whole plan)."""
        for rank in ranks:
            self.replayer.dags[rank].set_precision(op, prec)

    def _memory_ok(self) -> bool:
        for w in self.replayer.cluster.workers:
            est = self.replayer.memory_estimate(w.rank)
            if est.total > w.device.available_memory:
                return False
        return True

    # ------------------------------------------------------------------
    # step 1: uniform lowest-feasible plan -> T_min
    # ------------------------------------------------------------------
    def _uniform_lowest_plan(
        self, dag: PrecisionDAG, ranks: list[int], device
    ) -> dict[str, Precision]:
        """Uniform *lowest* supported precision meeting memory — the T_min
        reference of problem (1): "converting all operators to int8 or fp16
        depending on the lowest precision that the inference GPUs support".

        Walks the ladder from the lowest format upward and returns the first
        memory-feasible uniform plan (the lowest format is also the smallest,
        so later rungs only matter for devices with odd memory anatomies).
        """
        ladder = sorted(device.supported_precisions(), key=lambda p: p.bits)
        for target in ladder:
            plan: dict[str, Precision] = {}
            for op in dag.adjustable_ops():
                cands = self._candidates_for(dag, op, device)
                usable = [p for p in cands if p.bits >= target.bits]
                # No candidate at-or-above the target: fall back to the
                # op's widest kernel explicitly (don't assume the candidate
                # list is bit-ordered).
                plan[op] = (
                    min(usable, key=lambda p: p.bits)
                    if usable
                    else max(cands, key=lambda p: p.bits)
                )
            self._apply_to_type(ranks, plan)
            if self._memory_ok():
                return plan
        raise InfeasiblePlanError(
            f"even uniform {ladder[0].value} exceeds memory on {device.name}"
        )

    # ------------------------------------------------------------------
    # step 2: fastest feasible initialization (subgraph brute force)
    # ------------------------------------------------------------------
    def _initial_plan(
        self, dag: PrecisionDAG, ranks: list[int], device
    ) -> dict[str, Precision]:
        # Start from uniform-lowest (always memory-feasible per T_min step).
        plan = {
            op: min(self._candidates_for(dag, op, device), key=lambda p: p.bits)
            for op in dag.adjustable_ops()
        }
        self._apply_to_type(ranks, plan)
        if not self._memory_ok():
            raise InfeasiblePlanError(f"lowest precisions exceed {device.name} memory")

        blocks = group_blocks(dag)
        classes = isomorphism_classes(dag)
        # Largest compute first: decide the expensive blocks before the
        # cheap ones constrain them.
        def class_flops(labels: list[str]) -> float:
            return sum(
                dag.spec(op).flops for lbl in labels for op in blocks[lbl]
            )

        for labels in sorted(classes.values(), key=class_flops, reverse=True):
            # Single-candidate ops (e.g. FP32-pinned softmax) have no
            # decision to make — enumerate only genuinely adjustable ones.
            template_ops = [
                op
                for op in blocks[labels[0]]
                if dag.spec(op).is_adjustable
                and len(self._candidates_for(dag, op, device)) > 1
            ]
            if not template_ops:
                continue
            per_op_cands = [
                self._candidates_for(dag, op, device) for op in template_ops
            ]
            if len(template_ops) <= self.config.max_bruteforce_ops:
                assignments = itertools.product(*per_op_cands)
            else:
                # Too large to enumerate: sweep uniform *targets*, each op
                # taking its nearest supported precision at-or-above it.
                targets = sorted(
                    {p for cands in per_op_cands for p in cands},
                    key=lambda p: p.bits,
                )
                assignments = []
                for target in targets:
                    assignments.append(
                        tuple(
                            min(
                                [p for p in cands if p.bits >= target.bits]
                                or [max(cands, key=lambda p: p.bits)],
                                key=lambda p: p.bits,
                            )
                            for cands in per_op_cands
                        )
                    )

            # Positional mapping template block -> every block in the class
            # (isomorphism guarantees per-position candidate sets coincide).
            class_adjustable = [
                [
                    op
                    for op in blocks[lbl]
                    if dag.spec(op).is_adjustable
                    and len(self._candidates_for(dag, op, device)) > 1
                ]
                for lbl in labels
            ]
            best: tuple[float, dict[str, Precision]] | None = None
            for assignment in assignments:
                trial = dict(plan)
                for ops in class_adjustable:
                    for op, prec in zip(ops, assignment):
                        if prec in self._candidates_for(dag, op, device):
                            trial[op] = prec
                self._apply_to_type(ranks, trial)
                if not self._memory_ok():
                    continue
                # Local execution latency (no comm): the device's own DFG,
                # delta-updated through the Replayer's cache layers.
                dfg = self.replayer.local_dfg(ranks[0])
                t = dfg.compute_time
                if best is None or t < best[0]:
                    best = (t, trial)
            if best is not None:
                plan = best[1]
                self._apply_to_type(ranks, plan)
        return plan

    # ------------------------------------------------------------------
    # step 3: precision recovery
    # ------------------------------------------------------------------
    def allocate(self) -> tuple[PrecisionPlan, AllocationReport]:
        """Run the full allocation; returns the plan and diagnostics."""
        type_ranks = self._inference_ranks_by_type()
        if not type_ranks:
            # Pure training cluster: everything FP32, nothing to do.
            sim = self.replayer.simulate()
            report = AllocationReport(
                t_min=sim.throughput,
                initial_throughput=sim.throughput,
                final_throughput=sim.throughput,
                recovery_attempts=0,
                recovery_accepted=0,
                initial_counts={},
                final_counts={},
            )
            return PrecisionPlan(assignments={}), report

        plans: dict[str, dict[str, Precision]] = {}

        # T_min: uniform lowest-feasible on every inference type at once.
        for name, ranks in type_ranks.items():
            dag = self.replayer.dags[ranks[0]]
            device = self._device_for_type(name)
            plans[name] = self._uniform_lowest_plan(dag, ranks, device)
        t_min = self.replayer.simulate().throughput

        # Fastest-feasible initialization.
        for name, ranks in type_ranks.items():
            dag = self.replayer.dags[ranks[0]]
            device = self._device_for_type(name)
            plans[name] = self._initial_plan(dag, ranks, device)
        initial_sim = self.replayer.simulate()
        initial_counts = precision_counts(plans)

        # Recovery heaps: one per device type (all same-type workers share
        # the plan — identical devices, identical local batches).
        threshold = (1.0 - self.config.throughput_slack) * t_min
        attempts = 0
        accepted = 0
        heap: list[tuple[float, int, str, str]] = []
        tiebreak = itertools.count()
        for name, ranks in type_ranks.items():
            indicator = self.indicators[name]
            dag = self.replayer.dags[ranks[0]]
            device = self._device_for_type(name)
            for op, prec in plans[name].items():
                entry = self._heap_entry(dag, device, indicator, op, prec, tiebreak)
                if entry is not None:
                    heap.append((*entry[:2], name, entry[2]))
        heapq.heapify(heap)

        rebuilds_before = self.replayer.full_rebuilds()
        deltas_before = self.replayer.incremental_updates()
        sims_before = self.replayer.stats.simulate_calls
        whatifs_before = self.replayer.stats.whatif_evals

        # Batched recovery (PR 8): evaluate a window of candidates in one
        # compiled-kernel what-if sweep instead of one simulate() each.
        # Equivalence discipline keeping the accept/reject sequence — and
        # the plan — bit-identical to the sequential loop: a reject against
        # the current base is final either way (the sequential trial
        # restores the state it mutated), while the first accept in a
        # window invalidates the remaining verdicts, so those candidates
        # return to the heap before the next window is drawn.
        batch_width = 1
        if (
            self.config.batched_recovery
            and self.replayer.compiled_global() is not None
        ):
            batch_width = max(1, self.config.recovery_batch)

        while heap and attempts < self.config.max_recovery_steps:
            # Draw a window; entries with no next precision are consumed
            # without counting an attempt, exactly as before.
            window: list[tuple[tuple, Precision, Precision]] = []
            while heap and len(window) < batch_width:
                entry = heapq.heappop(heap)
                _, _, name, op = entry
                ranks = type_ranks[name]
                dag = self.replayer.dags[ranks[0]]
                device = self._device_for_type(name)
                current = plans[name][op]
                target = self._next_supported(dag, device, op, current)
                if target is None:
                    continue
                window.append((entry, current, target))
            if not window:
                break
            verdicts: list[bool] | None = None
            if batch_width > 1:
                results = self.replayer.whatif_candidates(
                    [
                        (type_ranks[entry[2]][0], entry[3], target)
                        for entry, _, target in window
                    ]
                )
                if results is not None:
                    verdicts = [
                        throughput >= threshold
                        and mem
                        <= self._device_for_type(entry[2]).available_memory
                        for (throughput, mem), (entry, _, _) in zip(
                            results, window
                        )
                    ]
            for i, (entry, current, target) in enumerate(window):
                if attempts >= self.config.max_recovery_steps:
                    for later, _, _ in window[i:]:
                        heapq.heappush(heap, later)
                    break
                _, _, name, op = entry
                ranks = type_ranks[name]
                attempts += 1
                if verdicts is None:
                    # One-op delta instead of re-applying the whole plan:
                    # the DAGs' dirty logs then carry exactly this op into
                    # the replay engine.
                    self._set_op(ranks, op, target)
                    sim = self.replayer.simulate()
                    ok = self._memory_ok() and sim.throughput >= threshold
                    if not ok:
                        # Revert the single op.
                        self._set_op(ranks, op, current)
                else:
                    ok = verdicts[i]
                    if ok:
                        self._set_op(ranks, op, target)
                if ok:
                    plans[name][op] = target
                    accepted += 1
                    dag = self.replayer.dags[ranks[0]]
                    device = self._device_for_type(name)
                    indicator = self.indicators[name]
                    fresh = self._heap_entry(
                        dag, device, indicator, op, target, tiebreak
                    )
                    if fresh is not None:
                        heapq.heappush(heap, (*fresh[:2], name, fresh[2]))
                    if i + 1 < len(window):
                        # The remaining verdicts predate this accept:
                        # re-enter the candidates and re-draw the window.
                        for later, _, _ in window[i + 1 :]:
                            heapq.heappush(heap, later)
                        break

        final_sim = self.replayer.simulate()
        report = AllocationReport(
            t_min=t_min,
            initial_throughput=initial_sim.throughput,
            final_throughput=final_sim.throughput,
            recovery_attempts=attempts,
            recovery_accepted=accepted,
            initial_counts=initial_counts,
            final_counts=precision_counts(plans),
            recovery_full_rebuilds=self.replayer.full_rebuilds() - rebuilds_before,
            recovery_incremental_updates=(
                self.replayer.incremental_updates() - deltas_before
            ),
            simulate_calls=self.replayer.stats.simulate_calls - sims_before,
            recovery_whatif_evals=(
                self.replayer.stats.whatif_evals - whatifs_before
            ),
        )
        return PrecisionPlan(assignments=plans), report

    # ------------------------------------------------------------------
    def _next_supported(
        self, dag: PrecisionDAG, device, op: str, current: Precision
    ) -> Precision | None:
        cands = self._candidates_for(dag, op, device)
        prec = current
        while True:
            nxt = higher_precision(prec)
            if nxt is None:
                return None
            if nxt in cands:
                return nxt
            prec = nxt

    def _heap_entry(
        self, dag: PrecisionDAG, device, indicator: IndicatorProtocol,
        op: str, prec: Precision, tiebreak,
    ) -> tuple[float, int, str] | None:
        """``[Omega(b) - Omega(ADD(b)), op]`` as a min-heap key (negated)."""
        target = self._next_supported(dag, device, op, prec)
        if target is None:
            return None
        decrement = indicator.omega(op, prec) - indicator.omega(op, target)
        return (-decrement, next(tiebreak), op)


def precision_counts(plans: dict[str, dict[str, Precision]]) -> dict[str, int]:
    """Precision-value histogram over per-device-type plans (the
    ``initial_counts``/``final_counts`` shape of :class:`AllocationReport`,
    shared with the session's passive strategies)."""
    out: dict[str, int] = {}
    for ops in plans.values():
        for prec in ops.values():
            out[prec.value] = out.get(prec.value, 0) + 1
    return out
