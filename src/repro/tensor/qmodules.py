"""Precision-aware operator semantics.

The paper treats an operator as a *pair* of forward and backward operations
whose precision changes together (Sec. IV).  :class:`PrecisionConfig` encodes
one operator's assignment ``b_io`` and the kernel-level conventions of
LP-PyTorch (Sec. VI):

* **FP32** — reference; no quantization anywhere.
* **FP16** — inputs and weights cast to FP16 (mantissa SR); activation
  gradients also flow in FP16; weight gradients are produced in FP32
  ("we output the gradient of weight in FP32", Sec. VI).
* **INT8** — inputs quantized layer-wise, weights channel-wise (Sec. IV-B's
  pairing discussion); the backward runs in FP16 (footnote 2), so the
  gradient stream is FP16-cast, never INT8.

All quantizers are fake-quant (quantize–dequantize) with straight-through
gradients, which reproduces exactly what a dequantizing INT32→FP epilogue
followed by an FP16 backward kernel computes.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.common.dtypes import Precision
from repro.common.rng import new_rng
from repro.quant.fixed_point import Granularity
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


@dataclasses.dataclass
class PrecisionConfig:
    """One operator's precision assignment and kernel conventions."""

    forward: Precision = Precision.FP32
    #: Precision of the backward kernel; ``None`` derives it from ``forward``
    #: per the paper's rules (INT8 -> FP16 backward; else same as forward).
    backward: Precision | None = None
    #: Fixed-point granularity for activations / weights.
    act_granularity: Granularity = Granularity.LAYER
    weight_granularity: Granularity = Granularity.CHANNEL
    #: Rounding mode (``"floor"`` for the §VIII ablation).
    rounding: str = "stochastic"
    #: Seed for this operator's quantization noise stream.
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = new_rng(self.seed)

    @property
    def effective_backward(self) -> Precision:
        """Backward precision after applying the paper's derivation rules."""
        if self.backward is not None:
            return self.backward
        if self.forward is Precision.INT8:
            return Precision.FP16  # integer backward is inefficient (fn. 2)
        return self.forward

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def reseed(self, seed: int) -> None:
        """Reset the noise stream (per-worker decorrelation in DDP)."""
        self.seed = seed
        self._rng = new_rng(seed)


def apply_input_precision(
    x: Tensor, weight: Tensor, config: PrecisionConfig
) -> tuple[Tensor, Tensor]:
    """Quantize an operator's activation input and weight per its config.

    Returns the (possibly fake-quantized) ``(x, weight)`` pair to feed the
    FP64 compute kernel.  Also installs the backward-precision hook on the
    activation path so the gradient leaving this operator is cast to the
    backward kernel's format.
    """
    fwd = config.forward
    if fwd is Precision.FP32:
        return x, weight

    rng = config.rng
    if fwd is Precision.FP16:
        x_q = F.fake_quant_float(x, Precision.FP16, rng, rounding=config.rounding)
        w_q = F.fake_quant_float(weight, Precision.FP16, rng, rounding=config.rounding)
    elif fwd is Precision.INT8:
        x_q = F.fake_quant_fixed(
            x, 8, rng, granularity=config.act_granularity, rounding=config.rounding
        )
        w_q = F.fake_quant_fixed(
            weight, 8, rng, granularity=config.weight_granularity, rounding=config.rounding
        )
    else:  # pragma: no cover - exhaustive over Precision
        raise ValueError(f"unhandled forward precision {fwd}")

    # Backward kernel precision: quantize the gradient that exits through
    # the activation input (weight gradients stay FP32 per Sec. VI).
    bwd = config.effective_backward
    if bwd is not Precision.FP32:
        x_q = F.grad_quant(x_q, bwd, rng, rounding=config.rounding)
    return x_q, w_q


class QuantizedOp:
    """Helper to install precision plans onto a module tree.

    A *plan* maps module paths (as produced by ``Module.named_modules``) to
    :class:`Precision`.  Only precision-adjustable modules (those exposing a
    ``precision`` attribute with weights, i.e. Linear/Conv2d) are touched;
    unknown paths raise so typos in plans fail loudly.
    """

    ADJUSTABLE_TYPES = ("Linear", "Conv2d")

    @staticmethod
    def adjustable_modules(model) -> dict[str, object]:
        """Path -> module for every precision-adjustable operator."""
        out = {}
        for path, mod in model.named_modules():
            if type(mod).__name__ in QuantizedOp.ADJUSTABLE_TYPES:
                out[path] = mod
        return out

    @staticmethod
    def install_plan(
        model,
        plan: dict[str, Precision],
        seed: int = 0,
        rounding: str = "stochastic",
    ) -> None:
        """Assign per-module precisions; paths absent from the plan keep FP32."""
        adjustable = QuantizedOp.adjustable_modules(model)
        unknown = set(plan) - set(adjustable)
        if unknown:
            raise KeyError(f"plan references unknown modules: {sorted(unknown)[:5]}")
        for i, (path, mod) in enumerate(sorted(adjustable.items())):
            prec = plan.get(path, Precision.FP32)
            mod.precision = PrecisionConfig(
                forward=prec, seed=seed * 10_007 + i, rounding=rounding
            )

    @staticmethod
    def uniform_plan(model, precision: Precision) -> dict[str, Precision]:
        """Every adjustable operator at one precision (the UP baseline)."""
        return {
            path: precision for path in QuantizedOp.adjustable_modules(model)
        }
