"""Stateful layers and containers.

The module system mirrors PyTorch's shape conventions so the catalog models
(Sec. VII benchmarks) translate directly.  Every layer with weights supports a
per-layer :class:`~repro.tensor.qmodules.PrecisionConfig` through the
``precision`` attribute — FP32 by default; the hybrid DDP trainer installs
device-specific plans by assigning it.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

import numpy as np

from repro.common.rng import new_rng
from repro.tensor import functional as F
from repro.tensor.qmodules import PrecisionConfig, apply_input_precision
from repro.tensor.tensor import Tensor


class Module:
    """Base class: parameter registry, train/eval mode, precision hook."""

    def __init__(self) -> None:
        self._parameters: dict[str, Tensor] = {}
        self._modules: dict[str, "Module"] = {}
        self.training: bool = True
        #: Per-operator precision assignment (the ``b_io`` of problem (1)).
        self.precision: PrecisionConfig = PrecisionConfig()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        tensor.requires_grad = True
        self._parameters[name] = tensor
        return tensor

    def __setattr__(self, name, value):
        if isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        super().__setattr__(name, value)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Tensor]:
        yield from self._parameters.values()
        for child in self._modules.values():
            yield from child.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for cname, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{cname}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for cname, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{cname}.")

    # ------------------------------------------------------------------
    # mode / grads
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return int(np.sum([p.size for p in self.parameters()]))

    # ------------------------------------------------------------------
    # state exchange (the DDP trainer broadcasts/averages through these)
    # ------------------------------------------------------------------
    def state_arrays(self) -> dict[str, np.ndarray]:
        """Name -> parameter array, for checkpoint/broadcast."""
        return {name: p.data for name, p in self.named_parameters()}

    def load_state_arrays(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state missing parameters: {sorted(missing)[:5]}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}"
                )
            p.data = state[name].copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self):
        return len(self.layers)


# ---------------------------------------------------------------------------
# weighted layers (precision-adjustable operators, O_adj)
# ---------------------------------------------------------------------------


class Linear(Module):
    """Fully connected layer; a precision-adjustable operator."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: int = 0):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = new_rng(seed)
        bound = math.sqrt(6.0 / (in_features + out_features))
        self.weight = self.register_parameter(
            "weight", Tensor(rng.uniform(-bound, bound, (out_features, in_features)))
        )
        self.bias: Optional[Tensor] = None
        if bias:
            self.bias = self.register_parameter("bias", Tensor(np.zeros(out_features)))

    def forward(self, x: Tensor) -> Tensor:
        x_eff, w_eff = apply_input_precision(x, self.weight, self.precision)
        return F.linear(x_eff, w_eff, self.bias)


class Conv2d(Module):
    """2-D convolution; a precision-adjustable operator."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        seed: int = 0,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = new_rng(seed)
        fan_in = in_channels * kernel_size * kernel_size
        bound = math.sqrt(2.0 / fan_in)  # He init for ReLU nets
        self.weight = self.register_parameter(
            "weight",
            Tensor(rng.normal(0, bound, (out_channels, in_channels, kernel_size, kernel_size))),
        )
        self.bias: Optional[Tensor] = None
        if bias:
            self.bias = self.register_parameter("bias", Tensor(np.zeros(out_channels)))

    def forward(self, x: Tensor) -> Tensor:
        x_eff, w_eff = apply_input_precision(x, self.weight, self.precision)
        return F.conv2d(x_eff, w_eff, self.bias, stride=self.stride, padding=self.padding)


class BatchNorm2d(Module):
    """Batch normalization with running statistics.

    This is the operator that makes Dynamic Batch Sizing degrade from-scratch
    accuracy (Sec. II-A): its statistics (and their running averages) depend
    on the *local* batch composition, so heterogeneous local batch sizes
    across workers change the training semantics.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = self.register_parameter("gamma", Tensor(np.ones(num_features)))
        self.beta = self.register_parameter("beta", Tensor(np.zeros(num_features)))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            batch_mean = x.data.mean(axis=(0, 2, 3))
            batch_var = x.data.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * batch_var
            )
            return F.batchnorm2d(x, self.gamma, self.beta, batch_mean, batch_var, self.eps)
        return F.batchnorm2d_eval(
            x, self.gamma, self.beta, self.running_mean, self.running_var, self.eps
        )


class LayerNorm(Module):
    """Layer normalization (batch-size independent — why fine-tuning
    transformers tolerates DBS, Sec. VII-C)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = self.register_parameter("gamma", Tensor(np.ones(dim)))
        self.beta = self.register_parameter("beta", Tensor(np.zeros(dim)))

    def forward(self, x: Tensor) -> Tensor:
        return F.layernorm(x, self.gamma, self.beta, self.eps)


class Embedding(Module):
    """Token embedding table."""

    def __init__(self, vocab_size: int, dim: int, seed: int = 0):
        super().__init__()
        rng = new_rng(seed)
        self.table = self.register_parameter(
            "table", Tensor(rng.normal(0, 0.02, (vocab_size, dim)))
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(indices, self.table)


# ---------------------------------------------------------------------------
# stateless layers (precision-dependent operators, O_dep)
# ---------------------------------------------------------------------------


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.maxpool2d(x, self.kernel_size)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avgpool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x)


class Dropout(Module):
    def __init__(self, p: float = 0.1, seed: int = 0):
        super().__init__()
        self.p = p
        self._rng = new_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, self.training)


# ---------------------------------------------------------------------------
# attention
# ---------------------------------------------------------------------------


class MultiHeadAttention(Module):
    """Multi-head self-attention.

    The four projections (Q, K, V, output) are independent precision-
    adjustable Linear operators, matching the paper's observation that a BERT
    attention block exposes a small number of adjustable ops (Sec. V).  The
    pure ``matmul`` ops between Q/K/V are binary-input and never quantized
    (Proposition 1's scope), as in QSync.
    """

    def __init__(self, dim: int, num_heads: int, seed: int = 0):
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, seed=seed)
        self.k_proj = Linear(dim, dim, seed=seed + 1)
        self.v_proj = Linear(dim, dim, seed=seed + 2)
        self.out_proj = Linear(dim, dim, seed=seed + 3)

    def forward(self, x: Tensor) -> Tensor:
        b, s, d = x.shape
        h, hd = self.num_heads, self.head_dim

        def split_heads(t: Tensor) -> Tensor:
            return F.transpose(F.reshape(t, (b, s, h, hd)), (0, 2, 1, 3))

        q = split_heads(self.q_proj(x))
        k = split_heads(self.k_proj(x))
        v = split_heads(self.v_proj(x))

        scores = F.matmul(q, F.transpose(k, (0, 1, 3, 2)))
        scores = scores * Tensor(1.0 / math.sqrt(hd))
        attn = F.softmax(scores, axis=-1)
        ctx = F.matmul(attn, v)
        ctx = F.reshape(F.transpose(ctx, (0, 2, 1, 3)), (b, s, d))
        return self.out_proj(ctx)


class TransformerBlock(Module):
    """Pre-LN transformer encoder block (attention + MLP, residuals)."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: int = 4, seed: int = 0):
        super().__init__()
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, seed=seed)
        self.ln2 = LayerNorm(dim)
        self.fc1 = Linear(dim, dim * mlp_ratio, seed=seed + 10)
        self.act = GELU()
        self.fc2 = Linear(dim * mlp_ratio, dim, seed=seed + 11)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        x = x + self.fc2(self.act(self.fc1(self.ln2(x))))
        return x
