"""A numpy tape-based autodiff engine with precision-aware operators.

This is the reproduction's stand-in for PyTorch: small, fully inspectable,
and — crucially — able to execute *hybrid mixed-precision* forward/backward
passes in which every operator carries its own precision (FP32/FP16/INT8 with
stochastic rounding), so quantization noise propagates into real training
trajectories exactly as the paper's LP-PyTorch kernels would inject it.

Layout:

* :mod:`repro.tensor.tensor` — the :class:`Tensor` tape and ``backward()``.
* :mod:`repro.tensor.functional` — differentiable ops (matmul, conv2d via
  im2col, batch/layer norm, pooling, softmax/CE, ...).
* :mod:`repro.tensor.modules` — stateful layers and containers.
* :mod:`repro.tensor.qmodules` — precision-aware wrappers implementing the
  paper's operator semantics (forward+backward precision change together).
"""

from repro.tensor import functional
from repro.tensor.modules import (
    GELU,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    Module,
    MultiHeadAttention,
    ReLU,
    Sequential,
)
from repro.tensor.qmodules import PrecisionConfig, QuantizedOp
from repro.tensor.tensor import Tensor, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "Module",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "Embedding",
    "ReLU",
    "GELU",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "MultiHeadAttention",
    "PrecisionConfig",
    "QuantizedOp",
]
