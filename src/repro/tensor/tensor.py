"""The autodiff tape.

A :class:`Tensor` wraps a float64 numpy array plus the closure needed to
backpropagate into its parents.  ``backward()`` runs a reverse topological
walk of the recorded graph.  The design follows the classic micro-autograd
pattern but is written for vectorized numpy throughout (no per-element
Python), per the HPC guide: the hot paths are the ops themselves, which live
in :mod:`repro.tensor.functional`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional

import numpy as np

_GRAD_ENABLED: bool = True


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the block (evaluation / profiling)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def grad_enabled() -> bool:
    return _GRAD_ENABLED


class Tensor:
    """A node in the autodiff tape.

    Parameters
    ----------
    data:
        Array-like; stored as ``float64`` (the engine's "FP32 reference"
        dtype — low-precision effects are injected explicitly by the
        quantizers, never by accident through numpy dtype promotion).
    requires_grad:
        Whether gradients should be accumulated into ``.grad``.
    parents:
        Upstream tensors this value was computed from.
    backward_fn:
        Closure mapping the output gradient to per-parent contributions;
        ``None`` for leaves.
    op:
        Human-readable op label (debugging / graph dumps).
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "op")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward_fn: Optional[Callable[[np.ndarray], Iterable[np.ndarray]]] = None,
        op: str = "leaf",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = parents if self.requires_grad or backward_fn else ()
        self._backward_fn = backward_fn if _GRAD_ENABLED else None
        self.op = op

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], Iterable[Optional[np.ndarray]]],
        op: str,
    ) -> "Tensor":
        """Create a non-leaf node; drops the tape when grad is disabled."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data, requires_grad=False, op=op)
        return Tensor(
            data,
            requires_grad=True,
            parents=parents,
            backward_fn=backward_fn,
            op=op,
        )

    # ------------------------------------------------------------------
    # array-ish protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A new leaf sharing this tensor's storage, cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tensor(shape={self.shape}, op={self.op!r}, "
            f"requires_grad={self.requires_grad})"
        )

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this node.

        ``grad`` defaults to ones (for scalar losses this is the usual
        ``dL/dL = 1``).  Gradients accumulate into ``.grad`` of every
        reachable tensor with ``requires_grad=True``.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor "
                    f"shape {self.data.shape}"
                )

        topo = self._topological_order()
        grads: dict[int, np.ndarray] = {id(self): grad}

        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward_fn is None:
                # Leaf: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad += node_grad
                continue
            if node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                if pgrad.shape != parent.data.shape:
                    raise ValueError(
                        f"op {node.op!r} produced gradient of shape "
                        f"{pgrad.shape} for parent of shape {parent.data.shape}"
                    )
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad
            # Interior nodes may also want .grad (retain for inspection).
            if node is not self and node.requires_grad and node._parents:
                pass  # interior grads are not retained (memory)

    def _topological_order(self) -> list["Tensor"]:
        """Iterative post-order DFS (recursion-free: deep nets overflow
        CPython's stack otherwise)."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    # ------------------------------------------------------------------
    # operator sugar (delegates to functional, imported lazily to avoid
    # a circular import at module load)
    # ------------------------------------------------------------------
    def _f(self):
        from repro.tensor import functional as F

        return F

    def __add__(self, other):
        return self._f().add(self, _coerce(other))

    def __radd__(self, other):
        return self._f().add(_coerce(other), self)

    def __sub__(self, other):
        return self._f().sub(self, _coerce(other))

    def __rsub__(self, other):
        return self._f().sub(_coerce(other), self)

    def __mul__(self, other):
        return self._f().mul(self, _coerce(other))

    def __rmul__(self, other):
        return self._f().mul(_coerce(other), self)

    def __truediv__(self, other):
        return self._f().div(self, _coerce(other))

    def __neg__(self):
        return self._f().mul(self, Tensor(-1.0))

    def __matmul__(self, other):
        return self._f().matmul(self, _coerce(other))

    def sum(self, axis=None, keepdims=False):
        return self._f().sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        return self._f().mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        return self._f().reshape(self, shape)

    def transpose(self, axes=None):
        return self._f().transpose(self, axes)


def _coerce(value) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Sums over the leading added axes and any axis where the original
    dimension was 1 — the adjoint of broadcasting.
    """
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were expanded from 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)
