"""Differentiable operators.

Every function takes/returns :class:`~repro.tensor.tensor.Tensor` and records
a backward closure on the tape.  Implementations are vectorized numpy — conv
uses an ``as_strided`` im2col so the inner product runs in BLAS, pooling uses
window-view reductions, softmax/cross-entropy are fused and numerically
stable.  These are the "pure op execution" paths whose latency the profiler
models; their *numerics* are exact FP64 so that all low-precision effects come
from the explicit quantization ops at the end of this module.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.common.dtypes import Precision
from repro.quant.fixed_point import FixedPointQuantizer, Granularity
from repro.quant.floating_point import simulate_cast
from repro.tensor.tensor import Tensor, unbroadcast

# ---------------------------------------------------------------------------
# elementwise arithmetic
# ---------------------------------------------------------------------------


def add(a: Tensor, b: Tensor) -> Tensor:
    out = a.data + b.data
    return Tensor.from_op(
        out,
        (a, b),
        lambda g: (unbroadcast(g, a.shape), unbroadcast(g, b.shape)),
        "add",
    )


def sub(a: Tensor, b: Tensor) -> Tensor:
    out = a.data - b.data
    return Tensor.from_op(
        out,
        (a, b),
        lambda g: (unbroadcast(g, a.shape), unbroadcast(-g, b.shape)),
        "sub",
    )


def mul(a: Tensor, b: Tensor) -> Tensor:
    out = a.data * b.data
    return Tensor.from_op(
        out,
        (a, b),
        lambda g: (
            unbroadcast(g * b.data, a.shape),
            unbroadcast(g * a.data, b.shape),
        ),
        "mul",
    )


def div(a: Tensor, b: Tensor) -> Tensor:
    out = a.data / b.data
    return Tensor.from_op(
        out,
        (a, b),
        lambda g: (
            unbroadcast(g / b.data, a.shape),
            unbroadcast(-g * a.data / (b.data**2), b.shape),
        ),
        "div",
    )


def pow_(a: Tensor, exponent: float) -> Tensor:
    out = a.data**exponent
    return Tensor.from_op(
        out,
        (a,),
        lambda g: (g * exponent * a.data ** (exponent - 1),),
        "pow",
    )


def exp(a: Tensor) -> Tensor:
    out = np.exp(a.data)
    return Tensor.from_op(out, (a,), lambda g: (g * out,), "exp")


def log(a: Tensor) -> Tensor:
    out = np.log(a.data)
    return Tensor.from_op(out, (a,), lambda g: (g / a.data,), "log")


def sqrt(a: Tensor) -> Tensor:
    out = np.sqrt(a.data)
    return Tensor.from_op(out, (a,), lambda g: (g * 0.5 / out,), "sqrt")


# ---------------------------------------------------------------------------
# shape ops
# ---------------------------------------------------------------------------


def reshape(a: Tensor, shape) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    out = a.data.reshape(shape)
    return Tensor.from_op(
        out, (a,), lambda g: (g.reshape(a.shape),), "reshape"
    )


def transpose(a: Tensor, axes: Optional[Sequence[int]] = None) -> Tensor:
    out = np.transpose(a.data, axes)
    if axes is None:
        inv = None
    else:
        inv = tuple(np.argsort(axes))
    return Tensor.from_op(
        out, (a,), lambda g: (np.transpose(g, inv),), "transpose"
    )


def flatten(a: Tensor) -> Tensor:
    """Collapse all but the leading (batch) axis."""
    out = a.data.reshape(a.shape[0], -1)
    return Tensor.from_op(out, (a,), lambda g: (g.reshape(a.shape),), "flatten")


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g):
        return tuple(np.split(g, splits, axis=axis))

    return Tensor.from_op(out, tuple(tensors), backward, "concat")


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    out = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(g):
        if axis is None:
            return (np.broadcast_to(g, a.shape).copy(),)
        g2 = g
        if not keepdims:
            g2 = np.expand_dims(g, axis)
        return (np.broadcast_to(g2, a.shape).copy(),)

    return Tensor.from_op(np.asarray(out), (a,), backward, "sum")


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    if axis is None:
        count = a.size
    elif isinstance(axis, int):
        count = a.shape[axis]
    else:
        count = int(np.prod([a.shape[ax] for ax in axis]))
    out = a.data.mean(axis=axis, keepdims=keepdims)

    def backward(g):
        if axis is None:
            return (np.broadcast_to(g / count, a.shape).copy(),)
        g2 = g
        if not keepdims:
            g2 = np.expand_dims(g, axis)
        return (np.broadcast_to(g2 / count, a.shape).copy(),)

    return Tensor.from_op(np.asarray(out), (a,), backward, "mean")


# ---------------------------------------------------------------------------
# linear algebra
# ---------------------------------------------------------------------------


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Batched matrix product with broadcasting over leading axes."""
    out = a.data @ b.data

    def backward(g):
        ga = g @ np.swapaxes(b.data, -1, -2)
        gb = np.swapaxes(a.data, -1, -2) @ g
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

    return Tensor.from_op(out, (a, b), backward, "matmul")


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``y = x @ W.T + b`` with ``W`` of shape (out_features, in_features).

    ``x`` may have any number of leading axes (e.g. (batch, seq, d)).
    """
    out = x.data @ weight.data.T
    if bias is not None:
        out = out + bias.data

    def backward(g):
        gx = g @ weight.data
        g2d = g.reshape(-1, g.shape[-1])
        x2d = x.data.reshape(-1, x.shape[-1])
        gw = g2d.T @ x2d
        gb = g2d.sum(axis=0) if bias is not None else None
        if bias is not None:
            return gx, gw, gb
        return gx, gw

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor.from_op(out, parents, backward, "linear")


# ---------------------------------------------------------------------------
# convolution (NCHW, im2col)
# ---------------------------------------------------------------------------


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
    """View ``x`` (N,C,H,W) as columns (N, out_h, out_w, C, kh, kw).

    Zero-copies via ``as_strided`` after padding; the caller must not write
    through the returned view.
    """
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    cols = as_strided(
        x,
        shape=(n, out_h, out_w, c, kh, kw),
        strides=(sn, sh * stride, sw * stride, sc, sh, sw),
        writeable=False,
    )
    return cols, out_h, out_w


def _col2im(
    gcols: np.ndarray,
    x_shape: tuple[int, ...],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter-add columns back to image."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    out = np.zeros((n, c, hp, wp), dtype=gcols.dtype)
    out_h, out_w = gcols.shape[1], gcols.shape[2]
    # Loop over the (small) kernel footprint, vectorized over N/outH/outW/C:
    # kh*kw iterations instead of out_h*out_w — per the HPC guide, loops over
    # tiny dimensions are fine when each iteration is a large strided add.
    for i in range(kh):
        hi = i + stride * out_h
        for j in range(kw):
            wj = j + stride * out_w
            out[:, :, i:hi:stride, j:wj:stride] += np.transpose(
                gcols[:, :, :, :, i, j], (0, 3, 1, 2)
            )
    if pad:
        out = out[:, :, pad:-pad, pad:-pad]
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution, NCHW layout, weight (out_c, in_c, kh, kw)."""
    out_c, in_c, kh, kw = weight.shape
    if x.shape[1] != in_c:
        raise ValueError(
            f"conv2d channel mismatch: input has {x.shape[1]}, weight expects {in_c}"
        )
    cols, out_h, out_w = _im2col(x.data, kh, kw, stride, padding)
    n = x.shape[0]
    cols2d = cols.reshape(n * out_h * out_w, in_c * kh * kw)
    w2d = weight.data.reshape(out_c, in_c * kh * kw)
    out = (cols2d @ w2d.T).reshape(n, out_h, out_w, out_c)
    out = np.transpose(out, (0, 3, 1, 2))
    if bias is not None:
        out = out + bias.data.reshape(1, out_c, 1, 1)

    def backward(g):
        g_ = np.transpose(g, (0, 2, 3, 1)).reshape(n * out_h * out_w, out_c)
        gw = (g_.T @ cols2d).reshape(weight.shape)
        gcols = (g_ @ w2d).reshape(n, out_h, out_w, in_c, kh, kw)
        gx = _col2im(gcols, x.shape, kh, kw, stride, padding)
        if bias is not None:
            gb = g_.sum(axis=0)
            return gx, gw, gb
        return gx, gw

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor.from_op(out, parents, backward, "conv2d")


# ---------------------------------------------------------------------------
# pooling
# ---------------------------------------------------------------------------


def maxpool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling (NCHW); requires H, W divisible by the window for the
    fast reshaped path (all catalog models satisfy this)."""
    stride = stride or kernel
    if stride != kernel:
        raise NotImplementedError("maxpool2d supports stride == kernel")
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"maxpool2d: {h}x{w} not divisible by {kernel}")
    oh, ow = h // kernel, w // kernel
    win = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out = win.max(axis=(3, 5))

    def backward(g):
        mask = win == out[:, :, :, None, :, None]
        # Ties split the gradient evenly — keeps the op's adjoint exact.
        counts = mask.sum(axis=(3, 5), keepdims=True)
        gx = mask * (g[:, :, :, None, :, None] / counts)
        return (gx.reshape(x.shape),)

    return Tensor.from_op(out, (x,), backward, "maxpool2d")


def global_avgpool2d(x: Tensor) -> Tensor:
    """Mean over spatial dims: (N,C,H,W) -> (N,C)."""
    n, c, h, w = x.shape
    out = x.data.mean(axis=(2, 3))

    def backward(g):
        gx = np.broadcast_to(
            g[:, :, None, None] / (h * w), x.shape
        ).copy()
        return (gx,)

    return Tensor.from_op(out, (x,), backward, "global_avgpool2d")


# ---------------------------------------------------------------------------
# activations
# ---------------------------------------------------------------------------


def relu(x: Tensor) -> Tensor:
    out = np.maximum(x.data, 0.0)
    return Tensor.from_op(out, (x,), lambda g: (g * (x.data > 0),), "relu")


def gelu(x: Tensor) -> Tensor:
    """Tanh-approximation GELU (the BERT formulation)."""
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x.data + 0.044715 * x.data**3)
    t = np.tanh(inner)
    out = 0.5 * x.data * (1.0 + t)

    def backward(g):
        dt = (1.0 - t**2) * c * (1.0 + 3 * 0.044715 * x.data**2)
        return (g * (0.5 * (1.0 + t) + 0.5 * x.data * dt),)

    return Tensor.from_op(out, (x,), backward, "gelu")


def tanh(x: Tensor) -> Tensor:
    out = np.tanh(x.data)
    return Tensor.from_op(out, (x,), lambda g: (g * (1 - out**2),), "tanh")


def sigmoid(x: Tensor) -> Tensor:
    out = 1.0 / (1.0 + np.exp(-x.data))
    return Tensor.from_op(out, (x,), lambda g: (g * out * (1 - out),), "sigmoid")


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity at eval time."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep) / keep
    out = x.data * mask
    return Tensor.from_op(out, (x,), lambda g: (g * mask,), "dropout")


# ---------------------------------------------------------------------------
# normalization
# ---------------------------------------------------------------------------


def batchnorm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    batch_mean: np.ndarray,
    batch_var: np.ndarray,
    eps: float,
) -> Tensor:
    """Batch norm over (N,H,W) per channel with the supplied statistics.

    The module computes/updates running statistics; this op performs the
    normalization and differentiates through mean/var when they came from the
    batch (training).  ``batch_mean``/``batch_var`` must be the statistics of
    ``x`` itself for training mode — the backward assumes that.
    """
    n, c, h, w = x.shape
    m = n * h * w
    mu = batch_mean.reshape(1, c, 1, 1)
    var = batch_var.reshape(1, c, 1, 1)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mu) * inv_std
    out = gamma.data.reshape(1, c, 1, 1) * xhat + beta.data.reshape(1, c, 1, 1)

    def backward(g):
        gamma_ = gamma.data.reshape(1, c, 1, 1)
        gxhat = g * gamma_
        # Standard BN backward through batch statistics.
        sum_gxhat = gxhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_gxhat_xhat = (gxhat * xhat).sum(axis=(0, 2, 3), keepdims=True)
        gx = (inv_std / m) * (m * gxhat - sum_gxhat - xhat * sum_gxhat_xhat)
        ggamma = (g * xhat).sum(axis=(0, 2, 3))
        gbeta = g.sum(axis=(0, 2, 3))
        return gx, ggamma, gbeta

    return Tensor.from_op(out, (x, gamma, beta), backward, "batchnorm2d")


def batchnorm2d_eval(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    eps: float,
) -> Tensor:
    """BN with frozen statistics (inference): affine transform only."""
    c = x.shape[1]
    inv_std = 1.0 / np.sqrt(running_var.reshape(1, c, 1, 1) + eps)
    mu = running_mean.reshape(1, c, 1, 1)
    scale = gamma.data.reshape(1, c, 1, 1) * inv_std
    out = (x.data - mu) * scale + beta.data.reshape(1, c, 1, 1)

    def backward(g):
        gx = g * scale
        xhat = (x.data - mu) * inv_std
        ggamma = (g * xhat).sum(axis=(0, 2, 3))
        gbeta = g.sum(axis=(0, 2, 3))
        return gx, ggamma, gbeta

    return Tensor.from_op(out, (x, gamma, beta), backward, "batchnorm2d_eval")


def layernorm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer norm over the last axis (transformer convention)."""
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mu) * inv_std
    out = gamma.data * xhat + beta.data
    d = x.shape[-1]

    def backward(g):
        gxhat = g * gamma.data
        sum_g = gxhat.sum(axis=-1, keepdims=True)
        sum_gx = (gxhat * xhat).sum(axis=-1, keepdims=True)
        gx = (inv_std / d) * (d * gxhat - sum_g - xhat * sum_gx)
        reduce_axes = tuple(range(g.ndim - 1))
        ggamma = (g * xhat).sum(axis=reduce_axes)
        gbeta = g.sum(axis=reduce_axes)
        return gx, ggamma, gbeta

    return Tensor.from_op(out, (x, gamma, beta), backward, "layernorm")


# ---------------------------------------------------------------------------
# attention / embedding
# ---------------------------------------------------------------------------


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return Tensor.from_op(out, (x,), backward, "softmax")


def embedding(indices: np.ndarray, table: Tensor) -> Tensor:
    """Lookup rows of ``table`` (V, D) by integer ``indices`` (…,)."""
    idx = np.asarray(indices)
    out = table.data[idx]

    def backward(g):
        gt = np.zeros_like(table.data)
        np.add.at(gt, idx.reshape(-1), g.reshape(-1, table.shape[-1]))
        return (gt,)

    return Tensor.from_op(out, (table,), backward, "embedding")


# ---------------------------------------------------------------------------
# losses (precision-fixed per the paper: QSync never quantizes these)
# ---------------------------------------------------------------------------


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy, fused and stable.

    Gradient of the input is ``(p - y) / N`` — the ``gamma = 1/N`` case of
    the paper's loss-gradient form ``grad = gamma (v - y)``.
    """
    labels = np.asarray(labels)
    n = logits.shape[0]
    shifted = logits.data - logits.data.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    logp = shifted - logsumexp
    loss = -logp[np.arange(n), labels].mean()
    probs = np.exp(logp)

    def backward(g):
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        return (g * grad / n,)

    return Tensor.from_op(np.asarray(loss), (logits,), backward, "cross_entropy")


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error; input gradient ``2 (v - y) / N`` (gamma = 2/N)."""
    target = np.asarray(target, dtype=np.float64)
    diff = pred.data - target
    loss = np.mean(diff**2)

    def backward(g):
        return (g * 2.0 * diff / diff.size,)

    return Tensor.from_op(np.asarray(loss), (pred,), backward, "mse_loss")


# ---------------------------------------------------------------------------
# precision-injection ops (the LP-PyTorch kernel semantics)
# ---------------------------------------------------------------------------


def fake_quant_fixed(
    x: Tensor,
    bits: int,
    rng: np.random.Generator,
    granularity: Granularity = Granularity.LAYER,
    rounding: str = "stochastic",
) -> Tensor:
    """Fixed-point quantize-dequantize with a straight-through gradient.

    Models an INT-b kernel input: the forward value set is the INT-b grid;
    the backward treats the quantizer as identity (STE), matching how the
    paper's kernels backpropagate through quantized activations.
    """
    quantizer = FixedPointQuantizer(bits=bits, granularity=granularity, rounding=rounding)
    out = quantizer.fake_quantize(x.data, rng)
    return Tensor.from_op(out, (x,), lambda g: (g,), f"fake_quant_int{bits}")


def fake_quant_float(
    x: Tensor,
    precision: Precision,
    rng: np.random.Generator,
    rounding: str = "stochastic",
) -> Tensor:
    """Floating-point cast (FP16) with straight-through gradient."""
    if precision is Precision.FP32:
        return x
    out = simulate_cast(x.data, precision, rng, rounding=rounding)
    return Tensor.from_op(out, (x,), lambda g: (g,), f"fake_quant_{precision.value}")


def grad_quant(
    x: Tensor,
    precision: Precision,
    rng: np.random.Generator,
    rounding: str = "stochastic",
) -> Tensor:
    """Identity forward; quantizes the gradient flowing backward.

    This is how an operator's *backward* precision is modelled: the paper
    changes forward and backward precision together (Sec. IV), and for
    fixed-point kernels runs the backward in FP16 (footnote 2), so INT8 ops
    install an FP16 ``grad_quant`` while FP16 ops install an FP16 one too.
    """
    if precision is Precision.FP32:
        return x

    def backward(g):
        if precision.is_floating_point:
            return (simulate_cast(g, precision, rng, rounding=rounding),)
        quantizer = FixedPointQuantizer(bits=precision.bits, rounding=rounding)
        return (quantizer.fake_quantize(g, rng),)

    return Tensor.from_op(x.data, (x,), backward, f"grad_quant_{precision.value}")
