"""repro — a from-scratch reproduction of QSync (IPDPS 2024).

QSync enables synchronous data-parallel DNN training across *hybrid* devices
(training GPUs + inference GPUs) by selecting a quantization-minimized
precision per operator on the inference GPUs: quantize just enough to fit the
memory/throughput envelope, recover everything else to higher precision to
protect final accuracy.

Package map (bottom-up):

=====================  =====================================================
``repro.common``       precision dtypes, units, RNG discipline, stable hash
``repro.quant``        stochastic-rounding fixed/float quantizers + theory
``repro.tensor``       numpy tape autodiff with precision-aware modules
``repro.graph``        operator taxonomy and the Precision DAG
``repro.hardware``     device specs (V100/T4/A10/A100), cluster presets,
                       node topologies
``repro.profiling``    roofline cost model, casting-cost models, memory
``repro.backend``      "LP-PyTorch": kernel templates, autotuner, MinMax,
                       dequantization fusion, security wrapper
``repro.core``         the paper's contribution — Predictor (Indicator +
                       Replayer/Cost-Mapper/Simulator) and Allocator
``repro.engine``       discrete-event execution engine: schedule policies,
                       straggler perturbations, unified node-cost sources
``repro.session``      the front door: declarative ``PlanRequest``s,
                       profiling-reusing ``PlanSession``, pluggable planner
                       strategies (qsync/uniform/dpro/hessian/random)
``repro.service``      the serving tier: thread-safe coalescing
                       ``PlanService``, persistent on-disk profile store,
                       batched ``plan_many``
``repro.parallel``     synchronous hybrid mixed-precision data parallelism
``repro.train``        optimizers, schedulers, synthetic datasets, loops
``repro.baselines``    UP, DBS, Hessian/Random indicators, Dpro replayer
``repro.experiments``  one harness per paper table/figure + sweep engine
=====================  =====================================================

Quickstart — a session amortizes profiling across what-if queries::

    from repro import PlanRequest, PlanSession
    from repro.hardware import make_cluster_a

    session = PlanSession()
    request = PlanRequest(model="vgg16", model_kwargs={"batch_size": 128},
                          cluster=make_cluster_a())
    outcome = session.plan(request)          # profiles once
    print(outcome.report.summary())

    table = session.compare(request)         # all strategies, zero re-profiling
    for name, o in table.items():
        print(name, f"{o.simulation.iteration_time * 1e3:.1f} ms")

Serving — many concurrent callers, persistence across restarts::

    from repro import PlanService

    service = PlanService(root="~/.cache/repro")   # warm-starts from disk
    outcome = service.plan(request)                # thread-safe, coalescing

The legacy one-shot facade is still exported::

    from repro import qsync_plan
    plan, report = qsync_plan(vgg16_graph(batch_size=128), make_cluster_a())
"""

from repro.common import Precision

__version__ = "1.0.0"

__all__ = [
    "Precision",
    "Perturbation",
    "PlanOutcome",
    "PlanRequest",
    "PlanService",
    "PlanSession",
    "plan_many",
    "qsync_plan",
    "__version__",
]


def qsync_plan(*args, **kwargs):
    """Late-bound convenience wrapper around :func:`repro.core.qsync.qsync_plan`.

    Imported lazily so ``import repro`` stays cheap for users who only need
    the substrate layers.
    """
    from repro.core.qsync import qsync_plan as _impl

    return _impl(*args, **kwargs)


def __getattr__(name: str):
    """Lazy session API exports (PEP 562) — same cheap-import rationale."""
    if name in ("PlanSession", "PlanRequest", "PlanOutcome", "Perturbation"):
        import repro.session as _session

        return getattr(_session, name)
    if name in ("PlanService", "plan_many"):
        import repro.service as _service

        return getattr(_service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
