"""repro — a from-scratch reproduction of QSync (IPDPS 2024).

QSync enables synchronous data-parallel DNN training across *hybrid* devices
(training GPUs + inference GPUs) by selecting a quantization-minimized
precision per operator on the inference GPUs: quantize just enough to fit the
memory/throughput envelope, recover everything else to higher precision to
protect final accuracy.

Package map (bottom-up):

=====================  =====================================================
``repro.common``       precision dtypes, units, RNG discipline
``repro.quant``        stochastic-rounding fixed/float quantizers + theory
``repro.tensor``       numpy tape autodiff with precision-aware modules
``repro.graph``        operator taxonomy and the Precision DAG
``repro.hardware``     device specs (V100/T4/A10/A100) and cluster presets
``repro.profiling``    roofline cost model, casting-cost models, memory
``repro.backend``      "LP-PyTorch": kernel templates, autotuner, MinMax,
                       dequantization fusion, security wrapper
``repro.core``         the paper's contribution — Predictor (Indicator +
                       Replayer/Cost-Mapper/Simulator) and Allocator
``repro.parallel``     synchronous hybrid mixed-precision data parallelism
``repro.train``        optimizers, schedulers, synthetic datasets, loops
``repro.baselines``    UP, DBS, Hessian/Random indicators, Dpro replayer
``repro.experiments``  one harness per paper table/figure
=====================  =====================================================

Quickstart::

    from repro import qsync_plan
    from repro.hardware import make_cluster_a
    from repro.models import vgg16_graph

    plan, report = qsync_plan(vgg16_graph(batch_size=128), make_cluster_a())
    print(report.summary())
"""

from repro.common import Precision

__version__ = "1.0.0"

__all__ = ["Precision", "qsync_plan", "__version__"]


def qsync_plan(*args, **kwargs):
    """Late-bound convenience wrapper around :func:`repro.core.qsync.qsync_plan`.

    Imported lazily so ``import repro`` stays cheap for users who only need
    the substrate layers.
    """
    from repro.core.qsync import qsync_plan as _impl

    return _impl(*args, **kwargs)
