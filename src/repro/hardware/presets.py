"""Device presets.

Calibrated to the NVIDIA datasheets the paper cites ([13], [14]) and Table I:

========  ==========  ==========  =========  ======  ============
GPU       FP32 TFLOPS FP16 TFLOPS INT8 TOPS  Memory  Bandwidth
V100      15.7        125         —          32 GB   900 GB/s
T4        8.1         65          130        16 GB   320 GB/s
A10       31.2        125         250        24 GB   600 GB/s
A100      19.5        312         624        40 GB   1555 GB/s
========  ==========  ==========  =========  ======  ============

FP16/INT8 numbers are tensor-core peaks; the realized fraction is decided by
the LP-PyTorch autotuner (:mod:`repro.backend`), not here.
"""

from __future__ import annotations

from repro.common.dtypes import Precision
from repro.common.units import GB, GBPS, TFLOPS
from repro.hardware.device import DeviceSpec

V100 = DeviceSpec(
    name="V100",
    arch="sm70",
    peak_flops={
        Precision.FP32: 15.7 * TFLOPS,
        Precision.FP16: 125.0 * TFLOPS,
        # No INT8 tensor-op path (Table I marks it "/").
    },
    memory_bytes=32 * GB,
    mem_bandwidth=900 * GBPS,
    is_training_gpu=True,
)

T4 = DeviceSpec(
    name="T4",
    arch="sm75",
    peak_flops={
        Precision.FP32: 8.1 * TFLOPS,
        Precision.FP16: 65.0 * TFLOPS,
        Precision.INT8: 130.0 * TFLOPS,  # TOPS
    },
    memory_bytes=16 * GB,
    mem_bandwidth=320 * GBPS,
    is_training_gpu=False,
)

A10 = DeviceSpec(
    name="A10",
    arch="sm80",
    peak_flops={
        Precision.FP32: 31.2 * TFLOPS,
        Precision.FP16: 125.0 * TFLOPS,
        Precision.INT8: 250.0 * TFLOPS,
    },
    memory_bytes=24 * GB,
    mem_bandwidth=600 * GBPS,
    is_training_gpu=False,
)

A100 = DeviceSpec(
    name="A100",
    arch="sm80",
    peak_flops={
        Precision.FP32: 19.5 * TFLOPS,
        Precision.FP16: 312.0 * TFLOPS,
        Precision.INT8: 624.0 * TFLOPS,
    },
    memory_bytes=40 * GB,
    mem_bandwidth=1555 * GBPS,
    is_training_gpu=True,
)

DEVICE_REGISTRY: dict[str, DeviceSpec] = {
    "V100": V100,
    "T4": T4,
    "A10": A10,
    "A100": A100,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a preset by (case-insensitive) name."""
    key = name.upper()
    if key not in DEVICE_REGISTRY:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICE_REGISTRY)}"
        )
    return DEVICE_REGISTRY[key]
