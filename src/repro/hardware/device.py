"""Device model.

A :class:`DeviceSpec` is the analytical stand-in for a physical GPU: peak
throughput per precision, memory capacity/bandwidth, architecture tag (which
selects LP-PyTorch kernel templates) and the resource-sharing mode of Fig. 2.
Partial sharing (MPS) scales both memory and compute by the loaned fraction.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.common.dtypes import Precision
from repro.common.errors import UnsupportedPrecisionError


class SharingMode(enum.Enum):
    """Resource sharing plan for inference GPUs (Fig. 2)."""

    FULL = "full"  # whole GPU loaned to training
    PARTIAL = "partial"  # MPS isolation, fraction loaned


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Analytical model of one GPU.

    Attributes
    ----------
    name:
        Marketing name ("V100", "T4", ...).
    arch:
        CUDA architecture tag; selects kernel templates (sm70 = Volta,
        sm75 = Turing, sm80 = Ampere).
    peak_flops:
        Precision -> peak throughput in FLOP/s (TOPS for INT8).  Missing
        keys mean *no hardware support* (e.g. INT8 tensor ops on V100).
    memory_bytes:
        Device memory capacity.
    mem_bandwidth:
        HBM/GDDR bandwidth in bytes/s; the roofline's memory roof.
    kernel_launch_overhead:
        Fixed per-kernel host-side latency in seconds.
    is_training_gpu:
        True for training-cluster devices (kept at FP32 by QSync).
    sharing:
        :class:`SharingMode`; the loan fractions apply under PARTIAL.
    memory_fraction:
        Fraction of device memory available to the training job.  ClusterB
        caps this at 30 % on T4s while leaving compute whole (Sec. VII).
    compute_fraction:
        Fraction of SMs/threads loaned (MPS thread isolation, Fig. 2).
    """

    name: str
    arch: str
    peak_flops: dict[Precision, float]
    memory_bytes: int
    mem_bandwidth: float
    kernel_launch_overhead: float = 4e-6
    is_training_gpu: bool = False
    sharing: SharingMode = SharingMode.FULL
    memory_fraction: float = 1.0
    compute_fraction: float = 1.0

    def __post_init__(self) -> None:
        for frac, label in (
            (self.memory_fraction, "memory_fraction"),
            (self.compute_fraction, "compute_fraction"),
        ):
            if not 0.0 < frac <= 1.0:
                raise ValueError(f"{label} must be in (0, 1], got {frac}")
        if self.sharing is SharingMode.FULL and (
            self.memory_fraction != 1.0 or self.compute_fraction != 1.0
        ):
            raise ValueError("FULL sharing implies loan fractions of 1.0")

    # ------------------------------------------------------------------
    # capability queries
    # ------------------------------------------------------------------
    def supports(self, precision: Precision) -> bool:
        return precision in self.peak_flops

    def supported_precisions(self) -> tuple[Precision, ...]:
        return tuple(sorted(self.peak_flops, key=lambda p: p.bits))

    def flops_at(self, precision: Precision) -> float:
        """Peak throughput at a precision, scaled by the loaned compute."""
        if precision not in self.peak_flops:
            raise UnsupportedPrecisionError(
                f"{self.name} has no {precision.value} compute capability"
            )
        return self.peak_flops[precision] * self.compute_fraction

    @property
    def available_memory(self) -> int:
        """``M_i^max``: memory the training job may use."""
        return int(self.memory_bytes * self.memory_fraction)

    @property
    def effective_bandwidth(self) -> float:
        return self.mem_bandwidth * self.compute_fraction

    def lowest_precision(self) -> Precision:
        """Fastest available format ("lowest precision the inference GPUs
        support", problem (1)'s T_min definition)."""
        return min(self.peak_flops, key=lambda p: p.bits)

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_sharing(
        self, memory_fraction: float, compute_fraction: float = 1.0
    ) -> "DeviceSpec":
        """A partially-loaned copy of this device (ClusterB construction)."""
        return dataclasses.replace(
            self,
            sharing=SharingMode.PARTIAL,
            memory_fraction=memory_fraction,
            compute_fraction=compute_fraction,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        share = (
            ""
            if self.sharing is SharingMode.FULL
            else f" (mem {self.memory_fraction:.0%})"
        )
        return f"{self.name}{share}"
