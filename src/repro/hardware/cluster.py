"""Cluster topology.

A :class:`Cluster` is a set of :class:`Worker` s (device + rank) grouped into
nodes by a :class:`~repro.hardware.topology.Topology`, plus the interconnect
model used to cost all-reduce.  Clusters built without an explicit topology
derive a *flat* one (each worker its own node behind its NIC) — under the
default flat-ring collective model that reproduces the legacy behaviour
exactly: the bottleneck bandwidth of a synchronous ring spanning both
sub-clusters is the *minimum* link bandwidth along the ring (for ClusterA
that is the inference servers' 32 GB/s).

Topology-aware collective models (:mod:`repro.parallel.comm_model`) read the
node grouping instead, so multi-node presets
(:func:`make_cluster_a_multinode`, :func:`make_cluster_b_multinode`,
:func:`make_cloud_edge_cluster`) can exploit fast intra-node fabrics the
flat ring cannot see.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

from repro.common.units import GBPS
from repro.hardware.device import DeviceSpec
from repro.hardware.presets import A100, T4, V100
from repro.hardware.topology import (
    ETH100G,
    NVLINK2,
    NVLINK3,
    PCIE3,
    PCIE4,
    WAN10G,
    LinkSpec,
    NodeSpec,
    Topology,
)


@dataclasses.dataclass(frozen=True)
class Worker:
    """One training process bound to one (possibly shared) GPU."""

    rank: int
    device: DeviceSpec
    #: Bandwidth of this worker's NIC/switch path in bytes/s.  For workers
    #: grouped into multi-rank nodes this is the *node uplink* — the path a
    #: flat (topology-blind) ring crosses between nodes.
    link_bandwidth: float

    @property
    def is_inference(self) -> bool:
        return not self.device.is_training_gpu


@dataclasses.dataclass(frozen=True)
class Cluster:
    """An ordered set of workers participating in one data-parallel job."""

    name: str
    workers: tuple[Worker, ...]
    #: Per-message latency of a collective step (launch + network RTT).
    collective_latency: float = 30e-6
    #: Node grouping + link assignments.  ``None`` derives the flat topology
    #: (one single-worker node per rank), preserving legacy behaviour.
    topology: Topology | None = None

    def __post_init__(self) -> None:
        # Ranks are identities, not list positions: gaps are legal (e.g. a
        # sub-cluster view after a rank is decommissioned — the straggler
        # scenarios' habitat), but duplicates and disorder are not.
        ranks = [w.rank for w in self.workers]
        if (
            len(set(ranks)) != len(ranks)
            or any(r < 0 for r in ranks)
            or ranks != sorted(ranks)
        ):
            raise ValueError(
                f"worker ranks must be unique, non-negative, and ascending "
                f"(gaps allowed), got {ranks}"
            )
        if self.collective_latency <= 0:
            raise ValueError(
                f"collective_latency must be > 0 seconds, got "
                f"{self.collective_latency} (pass a small positive value to "
                f"model an ideal network)"
            )
        for w in self.workers:
            if w.link_bandwidth <= 0:
                raise ValueError(
                    f"worker {w.rank} ({w.device.name}): link_bandwidth must "
                    f"be > 0 bytes/s, got {w.link_bandwidth}"
                )
        if self.topology is None:
            object.__setattr__(
                self, "topology", Topology.flat(self.workers, self.collective_latency)
            )
        elif self.topology.rank_set() != {w.rank for w in self.workers}:
            raise ValueError(
                f"topology covers ranks {sorted(self.topology.rank_set())} "
                f"but the cluster has ranks {sorted(w.rank for w in self.workers)}"
            )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.workers)

    @property
    def nodes(self) -> tuple[NodeSpec, ...]:
        return self.topology.nodes

    @property
    def n_nodes(self) -> int:
        return self.topology.n_nodes

    @property
    def training_workers(self) -> tuple[Worker, ...]:
        return tuple(w for w in self.workers if not w.is_inference)

    @property
    def inference_workers(self) -> tuple[Worker, ...]:
        return tuple(w for w in self.workers if w.is_inference)

    @property
    def bottleneck_bandwidth(self) -> float:
        """Slowest link along the (flat) all-reduce ring."""
        return min(w.link_bandwidth for w in self.workers)

    def allreduce_time(self, nbytes: float) -> float:
        """Flat ring all-reduce latency for one buffer of ``nbytes``.

        Standard model: ``2 (K-1)/K * nbytes / bottleneck_bw`` plus per-step
        latency ``2 (K-1) * alpha``.  This is the default
        :class:`~repro.parallel.comm_model.FlatRingModel`; topology-aware
        alternatives live in :mod:`repro.parallel.comm_model`.
        """
        k = self.size
        if k <= 1:
            return 0.0
        bw_term = 2.0 * (k - 1) / k * nbytes / self.bottleneck_bandwidth
        lat_term = 2.0 * (k - 1) * self.collective_latency
        return bw_term + lat_term

    def homogeneous_subsets(self) -> dict[str, list[Worker]]:
        """Workers grouped by device name (the paper traces communication on
        small homogeneous sub-sets first, Sec. IV-B)."""
        groups: dict[str, list[Worker]] = {}
        for w in self.workers:
            groups.setdefault(w.device.name, []).append(w)
        return groups

    def describe(self) -> str:
        parts = []
        for name, ws in self.homogeneous_subsets().items():
            parts.append(f"{len(ws)}x{name}")
        return f"{self.name}[{' + '.join(parts)}]"


# ---------------------------------------------------------------------------
# presets
# ---------------------------------------------------------------------------


def _build(
    name: str,
    training: Iterable[tuple[DeviceSpec, float]],
    inference: Iterable[tuple[DeviceSpec, float]],
) -> Cluster:
    workers = []
    rank = 0
    for dev, bw in training:
        workers.append(Worker(rank=rank, device=dev, link_bandwidth=bw))
        rank += 1
    for dev, bw in inference:
        workers.append(Worker(rank=rank, device=dev, link_bandwidth=bw))
        rank += 1
    return Cluster(name=name, workers=tuple(workers))


def make_cluster_a(
    n_training: int = 4, n_inference: int = 4
) -> Cluster:
    """ClusterA: V100 training servers (300 GB/s) + T4 inference (32 GB/s).

    Defaults to a 4+4 slice; the paper's full testbed is 16+16 — see
    :func:`make_cluster_a_multinode` for the node-grouped version.
    """
    return _build(
        "ClusterA",
        [(V100, 300 * GBPS)] * n_training,
        [(T4, 32 * GBPS)] * n_inference,
    )


def make_cluster_b(
    n_training: int = 4,
    n_inference: int = 4,
    memory_ratio: float = 0.3,
) -> Cluster:
    """ClusterB: ClusterA with T4s partially loaned (30 % by default)."""
    _check_memory_ratio(memory_ratio)
    shared_t4 = T4.with_sharing(memory_ratio)
    return _build(
        "ClusterB",
        [(V100, 300 * GBPS)] * n_training,
        [(shared_t4, 32 * GBPS)] * n_inference,
    )


def _check_memory_ratio(memory_ratio: float) -> None:
    if not 0.0 < memory_ratio <= 1.0:
        raise ValueError(
            f"memory_ratio must be in (0, 1] (the fraction of inference-GPU "
            f"memory loaned to training), got {memory_ratio}"
        )


# ---------------------------------------------------------------------------
# multi-node presets (node-grouped; the hierarchical collective's habitat)
# ---------------------------------------------------------------------------


def _grouped_cluster(
    name: str,
    node_plans: list[tuple[str, DeviceSpec, int, LinkSpec, LinkSpec]],
    collective_latency: float = 30e-6,
) -> Cluster:
    """Build a node-grouped cluster from ``(node name, device, n_gpus,
    intra link, uplink)`` plans.  Worker ``link_bandwidth`` is the node's
    uplink — the path a flat ring crosses — so the topology-blind model
    prices these clusters by their inter-node network, as it would a real
    multi-node ring."""
    workers: list[Worker] = []
    nodes: list[NodeSpec] = []
    rank = 0
    for node_name, device, n_gpus, intra, uplink in node_plans:
        ranks = []
        for _ in range(n_gpus):
            workers.append(
                Worker(rank=rank, device=device, link_bandwidth=uplink.bandwidth)
            )
            ranks.append(rank)
            rank += 1
        nodes.append(
            NodeSpec(name=node_name, ranks=tuple(ranks), intra_link=intra, uplink=uplink)
        )
    return Cluster(
        name=name,
        workers=tuple(workers),
        collective_latency=collective_latency,
        topology=Topology(nodes=tuple(nodes)),
    )


def make_cluster_a_multinode(
    n_training_nodes: int = 2,
    n_inference_nodes: int = 2,
    gpus_per_node: int = 8,
) -> Cluster:
    """The paper's full ClusterA testbed, node-grouped: 2 training servers x
    8 NVLinked V100 + 2 inference servers x 8 PCIe T4 (16+16 across 4
    nodes), joined by 100 Gb Ethernet."""
    plans = [
        (f"train{i}", V100, gpus_per_node, NVLINK2, ETH100G)
        for i in range(n_training_nodes)
    ] + [
        (f"infer{i}", T4, gpus_per_node, PCIE4, ETH100G)
        for i in range(n_inference_nodes)
    ]
    return _grouped_cluster("ClusterA-MN", plans)


def make_cluster_b_multinode(
    n_training_nodes: int = 2,
    n_inference_nodes: int = 2,
    gpus_per_node: int = 8,
    memory_ratio: float = 0.3,
) -> Cluster:
    """ClusterA-MN with the T4s partially loaned (ClusterB's sharing mode)."""
    _check_memory_ratio(memory_ratio)
    shared_t4 = T4.with_sharing(memory_ratio)
    plans = [
        (f"train{i}", V100, gpus_per_node, NVLINK2, ETH100G)
        for i in range(n_training_nodes)
    ] + [
        (f"infer{i}", shared_t4, gpus_per_node, PCIE4, ETH100G)
        for i in range(n_inference_nodes)
    ]
    return _grouped_cluster("ClusterB-MN", plans)


def make_cloud_edge_cluster(
    n_cloud_gpus: int = 4,
    n_edge_nodes: int = 2,
    gpus_per_edge_node: int = 2,
) -> Cluster:
    """ACE-Sync-style two-tier scenario: one NVSwitched A100 cloud node plus
    PCIe T4 edge nodes, all behind a high-latency 10 Gb WAN."""
    plans = [("cloud0", A100, n_cloud_gpus, NVLINK3, WAN10G)] + [
        (f"edge{i}", T4, gpus_per_edge_node, PCIE3, WAN10G)
        for i in range(n_edge_nodes)
    ]
    return _grouped_cluster("CloudEdge", plans, collective_latency=WAN10G.latency)


#: Named cluster presets, the sweep/bench axes vocabulary.  Keys are stable
#: identifiers (they participate in sweep-cell fingerprints via experiment
#: kwargs) — renaming one invalidates cached artifacts that reference it.
CLUSTER_PRESETS: dict[str, Callable[[], Cluster]] = {
    "cluster_a_4+4": lambda: make_cluster_a(4, 4),
    "cluster_a_2x8+2x8": make_cluster_a_multinode,
    "cluster_b_2x8+2x8": make_cluster_b_multinode,
    "cloud_edge_4+2x2": make_cloud_edge_cluster,
}


def get_cluster_preset(name: str) -> Cluster:
    """Instantiate a registered cluster preset by name."""
    if name not in CLUSTER_PRESETS:
        raise KeyError(
            f"unknown cluster preset {name!r}; available: {sorted(CLUSTER_PRESETS)}"
        )
    return CLUSTER_PRESETS[name]()
