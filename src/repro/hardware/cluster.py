"""Cluster topology.

A :class:`Cluster` is a set of :class:`Worker` s (device + rank) plus the
interconnect model used to cost all-reduce.  The bottleneck bandwidth of a
synchronous ring spanning both sub-clusters is the *minimum* link bandwidth
along the ring — for ClusterA that is the inference servers' 32 GB/s.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.common.units import GBPS
from repro.hardware.device import DeviceSpec
from repro.hardware.presets import T4, V100


@dataclasses.dataclass(frozen=True)
class Worker:
    """One training process bound to one (possibly shared) GPU."""

    rank: int
    device: DeviceSpec
    #: Bandwidth of this worker's NIC/switch path in bytes/s.
    link_bandwidth: float

    @property
    def is_inference(self) -> bool:
        return not self.device.is_training_gpu


@dataclasses.dataclass(frozen=True)
class Cluster:
    """An ordered set of workers participating in one data-parallel job."""

    name: str
    workers: tuple[Worker, ...]
    #: Per-message latency of a collective step (launch + network RTT).
    collective_latency: float = 30e-6

    def __post_init__(self) -> None:
        ranks = [w.rank for w in self.workers]
        if ranks != list(range(len(ranks))):
            raise ValueError(f"worker ranks must be 0..n-1, got {ranks}")

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.workers)

    @property
    def training_workers(self) -> tuple[Worker, ...]:
        return tuple(w for w in self.workers if not w.is_inference)

    @property
    def inference_workers(self) -> tuple[Worker, ...]:
        return tuple(w for w in self.workers if w.is_inference)

    @property
    def bottleneck_bandwidth(self) -> float:
        """Slowest link along the all-reduce ring."""
        return min(w.link_bandwidth for w in self.workers)

    def allreduce_time(self, nbytes: float) -> float:
        """Ring all-reduce latency for one buffer of ``nbytes``.

        Standard model: ``2 (K-1)/K * nbytes / bottleneck_bw`` plus per-step
        latency ``2 (K-1) * alpha``.
        """
        k = self.size
        if k <= 1:
            return 0.0
        bw_term = 2.0 * (k - 1) / k * nbytes / self.bottleneck_bandwidth
        lat_term = 2.0 * (k - 1) * self.collective_latency
        return bw_term + lat_term

    def homogeneous_subsets(self) -> dict[str, list[Worker]]:
        """Workers grouped by device name (the paper traces communication on
        small homogeneous sub-sets first, Sec. IV-B)."""
        groups: dict[str, list[Worker]] = {}
        for w in self.workers:
            groups.setdefault(w.device.name, []).append(w)
        return groups

    def describe(self) -> str:
        parts = []
        for name, ws in self.homogeneous_subsets().items():
            parts.append(f"{len(ws)}x{name}")
        return f"{self.name}[{' + '.join(parts)}]"


# ---------------------------------------------------------------------------
# presets
# ---------------------------------------------------------------------------


def _build(
    name: str,
    training: Iterable[tuple[DeviceSpec, float]],
    inference: Iterable[tuple[DeviceSpec, float]],
) -> Cluster:
    workers = []
    rank = 0
    for dev, bw in training:
        workers.append(Worker(rank=rank, device=dev, link_bandwidth=bw))
        rank += 1
    for dev, bw in inference:
        workers.append(Worker(rank=rank, device=dev, link_bandwidth=bw))
        rank += 1
    return Cluster(name=name, workers=tuple(workers))


def make_cluster_a(
    n_training: int = 4, n_inference: int = 4
) -> Cluster:
    """ClusterA: V100 training servers (300 GB/s) + T4 inference (32 GB/s).

    Defaults to a 4+4 slice; the paper's full testbed is 16+16 — pass larger
    counts to reproduce it (the simulation cost is O(workers)).
    """
    return _build(
        "ClusterA",
        [(V100, 300 * GBPS)] * n_training,
        [(T4, 32 * GBPS)] * n_inference,
    )


def make_cluster_b(
    n_training: int = 4,
    n_inference: int = 4,
    memory_ratio: float = 0.3,
) -> Cluster:
    """ClusterB: ClusterA with T4s partially loaned (30 % by default)."""
    shared_t4 = T4.with_sharing(memory_ratio)
    return _build(
        "ClusterB",
        [(V100, 300 * GBPS)] * n_training,
        [(shared_t4, 32 * GBPS)] * n_inference,
    )
