"""Elastic cluster membership: churn events and membership deltas.

QSync's planner assumes a fixed hybrid cluster, but the cloud-edge
deployments it targets (ACE-Sync's habitat, PAPERS.md) lose and regain
workers mid-run.  This module supplies the vocabulary for that churn:

* :class:`ClusterEvent` — one timestamped membership change: a ``join``
  (a new rank appears with its device and NIC), a ``leave`` (a rank is
  decommissioned; its rank number is *retired*, leaving a gap — ranks are
  identities, never re-packed), or a ``degrade`` (a surviving rank slows
  down by a multiplicative factor, composing with
  :class:`~repro.engine.perturbation.Perturbation`'s input-transform
  semantics);
* :class:`MembershipDelta` — the net effect of an event batch relative to a
  starting cluster: which ranks joined, left, or degraded, and which were
  untouched.  Re-planning reads this to know the O(changed ranks) work set;
* :func:`validate_events` — before-any-work validation (the
  :class:`~repro.session.request.PlanRequest` discipline): each
  ``ValueError`` names the offending field;
* :func:`apply_events` — fold a batch into a new :class:`Cluster` (with its
  topology rebuilt node-by-node, so node grouping survives partial-node
  departures) plus the delta.  A ``leave`` that drops membership below the
  caller's quorum raises :class:`~repro.common.errors.QuorumLostError`;
  anything above it is survivable.  A batch with no net membership change
  returns the *original cluster object*, so downstream re-planning is a
  guaranteed bit-identical no-op.

Event *traces* are seed-derived via :func:`repro.common.rng.derive_seed`
(see :mod:`repro.experiments.churn`), never wall-clock or shared-RNG
driven, so every churn scenario is exactly reproducible across processes.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Sequence

from repro.common.errors import QuorumLostError
from repro.hardware.cluster import Cluster, Worker
from repro.hardware.device import DeviceSpec
from repro.hardware.topology import INTER, LinkSpec, NodeSpec, Topology

#: The event vocabulary.  Append-only: kinds participate in sweep-cell
#: fingerprints via experiment kwargs.
EVENT_KINDS = ("join", "leave", "degrade")


@dataclasses.dataclass(frozen=True)
class ClusterEvent:
    """One timestamped cluster membership change.

    Parameters
    ----------
    time:
        Simulated seconds since run start at which the event lands.  The
        segmented engine applies it at the first iteration boundary at or
        after this instant.
    kind:
        ``"join"``, ``"leave"`` or ``"degrade"``.
    rank:
        The affected rank.  Joins introduce a rank not currently a member
        (including a previously retired one rejoining); leaves and degrades
        target current members.
    device:
        Required for ``join``: the device spec of the arriving worker.
    link_bandwidth:
        Required for ``join``: the arriving worker's NIC bandwidth in
        bytes/s.
    factor:
        For ``degrade``: multiplicative compute slowdown (``2.0`` = half
        speed), composing with any prior degradation of the same rank.
        Ignored for joins/leaves.
    """

    time: float
    kind: str
    rank: int
    device: DeviceSpec | None = None
    link_bandwidth: float | None = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"kind must be one of {EVENT_KINDS}, got {self.kind!r}"
            )
        if not math.isfinite(self.time) or self.time < 0:
            raise ValueError(
                f"time must be finite and >= 0 seconds, got {self.time}"
            )
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if not math.isfinite(self.factor) or self.factor <= 0:
            raise ValueError(
                f"factor must be finite and > 0, got {self.factor}"
            )
        if self.kind == "join":
            if self.device is None:
                raise ValueError(
                    f"device is required for a join event (rank {self.rank})"
                )
            if self.link_bandwidth is None or not math.isfinite(
                self.link_bandwidth
            ) or self.link_bandwidth <= 0:
                raise ValueError(
                    f"link_bandwidth must be finite and > 0 bytes/s for a "
                    f"join event (rank {self.rank}), got {self.link_bandwidth}"
                )

    def describe(self) -> str:
        if self.kind == "join":
            return f"t={self.time:g}s join rank {self.rank} ({self.device.name})"
        if self.kind == "degrade":
            return f"t={self.time:g}s degrade rank {self.rank} x{self.factor:g}"
        return f"t={self.time:g}s leave rank {self.rank}"


@dataclasses.dataclass(frozen=True)
class MembershipDelta:
    """Net effect of an event batch relative to a starting cluster.

    ``degraded`` lists each *surviving* rank's composed slowdown factor
    (multiplicative over its degrade events; a rank's degradation dies with
    it if it leaves, and a rejoining rank starts fresh).  ``unchanged``
    lists surviving original ranks whose worker (device + NIC) is
    untouched — the set re-planning may serve entirely from caches.
    """

    joined: tuple[int, ...] = ()
    left: tuple[int, ...] = ()
    #: Ranks that left and rejoined within the batch with a *different*
    #: worker (device or NIC): members at both ends, but not reusable.
    replaced: tuple[int, ...] = ()
    degraded: tuple[tuple[int, float], ...] = ()
    unchanged: tuple[int, ...] = ()

    @property
    def is_noop(self) -> bool:
        """True when the batch changed nothing (not even degradations)."""
        return (
            not self.joined
            and not self.left
            and not self.replaced
            and not self.degraded
        )

    @property
    def changed_ranks(self) -> tuple[int, ...]:
        """Ranks whose DFGs must be (re)derived or dropped: joins, leaves
        and replacements.

        Degraded ranks are *not* listed — degradation is an input transform
        (a :class:`~repro.engine.perturbation.Perturbation` straggler
        factor), so their DFGs are reused as-is.
        """
        return tuple(
            sorted(set(self.joined) | set(self.left) | set(self.replaced))
        )

    def describe(self) -> str:
        parts = []
        if self.joined:
            parts.append(f"+{list(self.joined)}")
        if self.left:
            parts.append(f"-{list(self.left)}")
        if self.replaced:
            parts.append(f"~{list(self.replaced)}")
        for rank, factor in self.degraded:
            parts.append(f"rank{rank}x{factor:g}")
        return f"MembershipDelta({', '.join(parts) or 'noop'})"


def validate_events(
    events: Sequence[ClusterEvent], cluster: Cluster
) -> None:
    """Reject an inconsistent event batch before any work is done.

    Checks (each failure is a ``ValueError`` naming the offending field):

    * ``time`` is non-decreasing across the batch;
    * ``rank`` of every leave/degrade is a member at that point in the
      replayed membership; ``rank`` of every join is not.
    """
    members = {w.rank for w in cluster.workers}
    prev_time = -math.inf
    for i, ev in enumerate(events):
        if not isinstance(ev, ClusterEvent):
            raise ValueError(
                f"events[{i}] must be a ClusterEvent, got {type(ev).__name__}"
            )
        if ev.time < prev_time:
            raise ValueError(
                f"events[{i}] time must be non-decreasing: {ev.time} after "
                f"{prev_time} ({ev.describe()})"
            )
        prev_time = ev.time
        if ev.kind == "join":
            if ev.rank in members:
                raise ValueError(
                    f"events[{i}] rank {ev.rank} is already a member; a join "
                    f"must introduce a new (or retired) rank"
                )
            members.add(ev.rank)
        else:
            if ev.rank not in members:
                raise ValueError(
                    f"events[{i}] rank {ev.rank} is unknown at t={ev.time:g}s "
                    f"(members: {sorted(members)}); a {ev.kind} must target a "
                    f"current member"
                )
            if ev.kind == "leave":
                members.discard(ev.rank)


def apply_events(
    cluster: Cluster,
    events: Iterable[ClusterEvent],
    quorum: int = 1,
) -> tuple[Cluster, MembershipDelta]:
    """Fold an event batch into a new cluster plus its membership delta.

    The topology is rebuilt node-by-node: a leaving rank is removed from
    its hosting node (the node itself is dropped once empty, so a
    partial-node departure keeps its siblings on the fast intra-node
    fabric); a joining rank gets its own single-rank node behind a NIC of
    its declared bandwidth — the same shape :meth:`Topology.flat` gives
    every worker.

    Raises
    ------
    QuorumLostError
        The moment a ``leave`` drops membership below ``quorum``.
    ValueError
        From :func:`validate_events`, before anything is applied.
    """
    if quorum < 1:
        raise ValueError(f"quorum must be >= 1, got {quorum}")
    events = tuple(events)
    validate_events(events, cluster)

    workers: dict[int, Worker] = {w.rank: w for w in cluster.workers}
    original = dict(workers)
    factors: dict[int, float] = {}
    # Mutable node plans: surviving original nodes in original order, then
    # joined single-rank nodes in join order.
    node_plans: list[list] = [
        [n.name, list(n.ranks), n.intra_link, n.uplink]
        for n in cluster.topology.nodes
    ]

    for ev in events:
        if ev.kind == "leave":
            del workers[ev.rank]
            factors.pop(ev.rank, None)
            for plan in node_plans:
                if ev.rank in plan[1]:
                    plan[1].remove(ev.rank)
                    break
            if len(workers) < quorum:
                raise QuorumLostError(
                    f"leave of rank {ev.rank} at t={ev.time:g}s leaves "
                    f"{len(workers)} worker(s), below the quorum of {quorum} "
                    f"(survivors: {sorted(workers)})"
                )
        elif ev.kind == "join":
            workers[ev.rank] = Worker(
                rank=ev.rank,
                device=ev.device,
                link_bandwidth=ev.link_bandwidth,
            )
            factors.pop(ev.rank, None)
            nic = LinkSpec(
                f"nic{ev.rank}",
                ev.link_bandwidth,
                cluster.collective_latency,
                INTER,
            )
            node_plans.append([f"n{ev.rank}", [ev.rank], nic, nic])
        else:  # degrade
            factors[ev.rank] = factors.get(ev.rank, 1.0) * ev.factor

    joined = tuple(sorted(r for r in workers if r not in original))
    left = tuple(sorted(r for r in original if r not in workers))
    replaced = {
        r
        for r in workers
        if r in original and workers[r] != original[r]
    }
    unchanged = tuple(
        sorted(r for r in workers if r in original and r not in replaced)
    )
    delta = MembershipDelta(
        joined=joined,
        left=left,
        replaced=tuple(sorted(replaced)),
        degraded=tuple(sorted((r, f) for r, f in factors.items() if f != 1.0)),
        unchanged=unchanged,
    )

    if tuple(workers[r] for r in sorted(workers)) == cluster.workers:
        # No net membership change: hand back the *same* object so warm
        # re-planning on it is bit-identical by construction.
        return cluster, delta

    topology = Topology(
        nodes=tuple(
            NodeSpec(name=name, ranks=tuple(ranks), intra_link=intra, uplink=up)
            for name, ranks, intra, up in node_plans
            if ranks
        )
    )
    new_cluster = Cluster(
        name=cluster.name,
        workers=tuple(workers[r] for r in sorted(workers)),
        collective_latency=cluster.collective_latency,
        topology=topology,
    )
    return new_cluster, delta
