"""Interconnect topology: per-link alpha-beta costs and node grouping.

The paper's testbeds are *hierarchical*: training servers with 8 NVLinked
V100s each, inference servers with 8 PCIe T4s each, joined by a datacenter
network (Sec. VII).  A flat worker list cannot express that — every
collective gets priced by the single slowest NIC.  This module supplies the
missing vocabulary:

* :class:`LinkSpec` — one link class under the alpha-beta model
  (``time(n) = latency + n / bandwidth``), tagged with its tier
  (``intra`` = NVLink/PCIe inside a node, ``inter`` = Ethernet/RDMA/WAN
  between nodes);
* :class:`NodeSpec` — one physical server: the ranks it hosts, its intra-node
  link, and its uplink into the inter-node network;
* :class:`Topology` — a partition of the cluster's ranks into nodes, with
  the derived link-assignment queries the collective models
  (:mod:`repro.parallel.comm_model`) read.

A :class:`~repro.hardware.cluster.Cluster` built without an explicit
topology derives a *flat* one (every worker its own node, uplink = its NIC),
which reproduces the legacy single-bottleneck model exactly.
"""

from __future__ import annotations

import dataclasses
import functools

from repro.common.units import GBPS

#: Link tiers (where the link sits in the hierarchy).
INTRA = "intra"
INTER = "inter"


@dataclasses.dataclass(frozen=True)
class LinkSpec:
    """One interconnect class under the alpha-beta cost model.

    Attributes
    ----------
    name:
        Human-readable class ("nvlink", "pcie4", "eth100g", ...).
    bandwidth:
        Sustained point-to-point bandwidth in bytes/s (1/beta).
    latency:
        Per-message latency in seconds (alpha): launch + serialization +
        network RTT share of one collective step over this link.
    tier:
        ``"intra"`` (inside a node) or ``"inter"`` (between nodes).
    """

    name: str
    bandwidth: float
    latency: float
    tier: str = INTRA

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(
                f"link {self.name!r}: bandwidth must be > 0, got {self.bandwidth}"
            )
        if self.latency < 0:
            raise ValueError(
                f"link {self.name!r}: latency must be >= 0, got {self.latency}"
            )
        if self.tier not in (INTRA, INTER):
            raise ValueError(
                f"link {self.name!r}: tier must be 'intra' or 'inter', got {self.tier!r}"
            )

    def transfer_time(self, nbytes: float) -> float:
        """alpha-beta cost of moving ``nbytes`` across this link once."""
        return self.latency + nbytes / self.bandwidth


# ---------------------------------------------------------------------------
# link presets (datasheet-order-of-magnitude; the models only need ratios)
# ---------------------------------------------------------------------------

#: V100 NVLink2 fabric (per-GPU aggregate).
NVLINK2 = LinkSpec("nvlink2", 300 * GBPS, 2e-6, INTRA)
#: A100 NVLink3/NVSwitch fabric.
NVLINK3 = LinkSpec("nvlink3", 600 * GBPS, 2e-6, INTRA)
#: PCIe gen3 x16 (T4 inference servers without NVLink).
PCIE3 = LinkSpec("pcie3", 16 * GBPS, 5e-6, INTRA)
#: PCIe gen4 x16 / the paper's 32 GB/s inference-server interconnect.
PCIE4 = LinkSpec("pcie4", 32 * GBPS, 5e-6, INTRA)
#: 100 Gb Ethernet NIC per node.
ETH100G = LinkSpec("eth100g", 12.5 * GBPS, 30e-6, INTER)
#: 200 Gb RDMA (RoCE/IB) NIC per node.
RDMA200G = LinkSpec("rdma200g", 25 * GBPS, 10e-6, INTER)
#: Cloud-edge WAN path (10 Gb with millisecond RTT).
WAN10G = LinkSpec("wan10g", 1.25 * GBPS, 2e-3, INTER)


@dataclasses.dataclass(frozen=True)
class NodeSpec:
    """One physical server: hosted ranks plus its link assignments."""

    name: str
    ranks: tuple[int, ...]
    intra_link: LinkSpec
    uplink: LinkSpec

    def __post_init__(self) -> None:
        if not self.ranks:
            raise ValueError(f"node {self.name!r} hosts no ranks")
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError(f"node {self.name!r} lists duplicate ranks")

    @property
    def size(self) -> int:
        return len(self.ranks)


@dataclasses.dataclass(frozen=True)
class Topology:
    """Node-grouped view of a cluster's ranks with derived link assignments."""

    nodes: tuple[NodeSpec, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("topology needs at least one node")
        all_ranks = [r for node in self.nodes for r in node.ranks]
        # Nodes must partition a *set* of ranks — each rank hosted exactly
        # once.  Which ranks exist is the cluster's business (ranks may be
        # non-contiguous); the cluster constructor checks the sets match.
        if len(set(all_ranks)) != len(all_ranks) or any(r < 0 for r in all_ranks):
            raise ValueError(
                "topology nodes must partition the rank set (each rank "
                f"hosted exactly once, non-negative), got {sorted(all_ranks)}"
            )

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_ranks(self) -> int:
        return sum(node.size for node in self.nodes)

    def rank_set(self) -> frozenset:
        """All ranks hosted by this topology's nodes."""
        return frozenset(r for node in self.nodes for r in node.ranks)

    @functools.cached_property
    def _node_by_rank(self) -> dict[int, NodeSpec]:
        return {r: node for node in self.nodes for r in node.ranks}

    def node_of(self, rank: int) -> NodeSpec:
        """The node hosting ``rank``."""
        try:
            return self._node_by_rank[rank]
        except KeyError:
            raise KeyError(f"no node hosts rank {rank}") from None

    # ------------------------------------------------------------------
    # derived link queries (what the collective models read)
    # ------------------------------------------------------------------
    def min_uplink_bandwidth(self) -> float:
        """Slowest inter-node path (the inter-phase ring bottleneck)."""
        return min(node.uplink.bandwidth for node in self.nodes)

    def max_uplink_latency(self) -> float:
        return max(node.uplink.latency for node in self.nodes)

    def bottleneck_bandwidth(self) -> float:
        """Slowest link any rank-spanning collective must cross: uplinks when
        the topology has multiple nodes, plus the intra links of every
        multi-rank node."""
        bws = [node.intra_link.bandwidth for node in self.nodes if node.size > 1]
        if self.n_nodes > 1:
            bws.extend(node.uplink.bandwidth for node in self.nodes)
        if not bws:  # single node hosting a single rank: no link is crossed
            return self.nodes[0].uplink.bandwidth
        return min(bws)

    def max_latency(self) -> float:
        """Largest per-step latency along the same link set."""
        lats = [node.intra_link.latency for node in self.nodes if node.size > 1]
        if self.n_nodes > 1:
            lats.extend(node.uplink.latency for node in self.nodes)
        if not lats:
            return self.nodes[0].uplink.latency
        return max(lats)

    def describe(self) -> str:
        parts = [
            f"{node.name}({node.size}r,{node.intra_link.name}/{node.uplink.name})"
            for node in self.nodes
        ]
        return " + ".join(parts)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def flat(cls, workers, collective_latency: float) -> "Topology":
        """The legacy degenerate topology: every worker is its own node and
        its NIC (``Worker.link_bandwidth``) is both links.  Collective models
        over this topology see exactly the pre-topology cluster: bottleneck =
        slowest NIC, per-step latency = ``collective_latency``."""
        nodes = []
        for w in workers:
            nic = LinkSpec(
                f"nic{w.rank}", w.link_bandwidth, collective_latency, INTER
            )
            nodes.append(
                NodeSpec(name=f"n{w.rank}", ranks=(w.rank,), intra_link=nic, uplink=nic)
            )
        return cls(nodes=tuple(nodes))

    @classmethod
    def grouped(
        cls,
        groups: list[tuple[str, tuple[int, ...], LinkSpec, LinkSpec]],
    ) -> "Topology":
        """Build from ``(name, ranks, intra_link, uplink)`` tuples."""
        return cls(
            nodes=tuple(NodeSpec(n, r, intra, up) for n, r, intra, up in groups)
        )
