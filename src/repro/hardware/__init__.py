"""Hardware models: devices and clusters.

The paper's testbeds (Sec. VII):

* **ClusterA** — 2 training servers × 8 V100-32GB (300 GB/s interconnect)
  + 2 inference servers × 8 T4-16GB (32 GB/s interconnect).
* **ClusterB** — ClusterA with T4 memory capped at 30 % (partial sharing via
  MPS, Fig. 2).

:func:`make_cluster_a` / :func:`make_cluster_b` reproduce those topologies
as flat worker lists; :func:`make_cluster_a_multinode` /
:func:`make_cluster_b_multinode` / :func:`make_cloud_edge_cluster` are the
node-grouped versions whose intra/inter link tiers
(:mod:`repro.hardware.topology`) the hierarchical collective models exploit.
Device specs come from the same NVIDIA datasheets the paper cites.
"""

from repro.hardware.cluster import (
    CLUSTER_PRESETS,
    Cluster,
    Worker,
    get_cluster_preset,
    make_cloud_edge_cluster,
    make_cluster_a,
    make_cluster_a_multinode,
    make_cluster_b,
    make_cluster_b_multinode,
)
from repro.hardware.device import DeviceSpec, SharingMode
from repro.hardware.events import (
    EVENT_KINDS,
    ClusterEvent,
    MembershipDelta,
    apply_events,
    validate_events,
)
from repro.hardware.presets import (
    A10,
    A100,
    DEVICE_REGISTRY,
    T4,
    V100,
    get_device,
)
from repro.hardware.topology import LinkSpec, NodeSpec, Topology

__all__ = [
    "DeviceSpec",
    "SharingMode",
    "V100",
    "T4",
    "A10",
    "A100",
    "DEVICE_REGISTRY",
    "get_device",
    "LinkSpec",
    "NodeSpec",
    "Topology",
    "EVENT_KINDS",
    "ClusterEvent",
    "MembershipDelta",
    "apply_events",
    "validate_events",
    "CLUSTER_PRESETS",
    "Cluster",
    "Worker",
    "get_cluster_preset",
    "make_cloud_edge_cluster",
    "make_cluster_a",
    "make_cluster_a_multinode",
    "make_cluster_b",
    "make_cluster_b_multinode",
]
