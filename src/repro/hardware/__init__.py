"""Hardware models: devices and clusters.

The paper's testbeds (Sec. VII):

* **ClusterA** — 2 training servers × 8 V100-32GB (300 GB/s interconnect)
  + 2 inference servers × 8 T4-16GB (32 GB/s interconnect).
* **ClusterB** — ClusterA with T4 memory capped at 30 % (partial sharing via
  MPS, Fig. 2).

:func:`make_cluster_a` / :func:`make_cluster_b` reproduce those topologies;
device specs come from the same NVIDIA datasheets the paper cites.
"""

from repro.hardware.device import DeviceSpec, SharingMode
from repro.hardware.presets import (
    V100,
    T4,
    A10,
    A100,
    DEVICE_REGISTRY,
    get_device,
)
from repro.hardware.cluster import Cluster, Worker, make_cluster_a, make_cluster_b

__all__ = [
    "DeviceSpec",
    "SharingMode",
    "V100",
    "T4",
    "A10",
    "A100",
    "DEVICE_REGISTRY",
    "get_device",
    "Cluster",
    "Worker",
    "make_cluster_a",
    "make_cluster_b",
]
