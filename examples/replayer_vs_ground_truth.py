"""Predictor fidelity: the Replayer against the ground-truth simulator.

Reproduces Table III's protocol on a BERT-style graph: apply three
mixed-precision configurations, predict each iteration's latency with the
cast-aware Replayer and with a Dpro-style casting-blind replay, and compare
against the fine-grained ground-truth event engine.

Run:  python examples/replayer_vs_ground_truth.py
"""

from repro.baselines import DproReplayer
from repro.common import Precision
from repro.common.units import GBPS
from repro.core.qsync import build_replayer
from repro.core.simulator import GroundTruthSimulator
from repro.hardware import T4
from repro.hardware.cluster import Cluster, Worker
from repro.models import mini_model_graph


def main() -> None:
    cluster = Cluster(
        name="2xT4",
        workers=tuple(
            Worker(rank=r, device=T4, link_bandwidth=32 * GBPS) for r in range(2)
        ),
    )

    def builder():
        return mini_model_graph(
            "mini_bert6", batch_size=12, width_scale=24, spatial_scale=8
        )

    replayer, backends = build_replayer(builder, cluster, profile_repeats=3)
    # replayer.dags is keyed by rank identity; ranks may be non-contiguous
    # on churned clusters, so pick the lowest rank rather than literal 0.
    dag = replayer.dags[min(replayer.dags)]
    linears = [op for op in dag.adjustable_ops() if dag.spec(op).has_weight]

    configs = {
        "all linears -> FP16": {op: Precision.FP16 for op in linears},
        "all linears -> INT8": {op: Precision.INT8 for op in linears},
        "layers 0,2,4 -> FP16": {
            op: Precision.FP16
            for op in linears
            if op.startswith(("blocks.0.", "blocks.2.", "blocks.4."))
        },
    }

    print(f"{'configuration':<24s} {'truth':>9s} {'replayer':>9s} "
          f"{'err':>6s} {'dpro':>9s} {'err':>6s}")
    for label, plan in configs.items():
        for rank in (0, 1):
            replayer.apply_plan(rank, {op: Precision.FP32 for op in linears})
            replayer.apply_plan(rank, plan)
        truth = GroundTruthSimulator(cluster, replayer.dags, backends, seed=0)
        t_true = truth.run(iterations=5).iteration_time
        t_replay = replayer.simulate().iteration_time
        dpro = DproReplayer(
            cluster, replayer.dags,
            {r: replayer.mappers[r].catalog for r in replayer.mappers},
        )
        t_dpro = dpro.simulate().iteration_time
        print(
            f"{label:<24s} {t_true * 1e3:8.2f}ms {t_replay * 1e3:8.2f}ms "
            f"{abs(t_replay - t_true) / t_true * 100:5.1f}% "
            f"{t_dpro * 1e3:8.2f}ms {abs(t_dpro - t_true) / t_true * 100:5.1f}%"
        )
    print("\nThe Replayer stays under the paper's 5% error bound; the "
          "casting-blind replay underestimates quantized configurations.")


if __name__ == "__main__":
    main()
