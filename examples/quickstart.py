"""Quickstart: plan hybrid mixed-precision training for VGG16 on ClusterA.

Runs the full QSync workflow (profile -> indicator -> replay -> allocate)
through the session API: a declarative ``PlanRequest`` names the model,
cluster, and strategy; a ``PlanSession`` owns the profiled artifacts and
reuses them across what-if queries — the uniform-precision baseline below
re-profiles nothing.

Run:  python examples/quickstart.py

Before sending changes, run the invariant linter — it mechanically
enforces the repo's DESIGN contracts (stable keys, rank identity,
import layering, append-only registries; see CONTRIBUTING.md):

    PYTHONPATH=src python -m repro.analysis.lint src
"""

import dataclasses

from repro import PlanRequest, PlanService, PlanSession
from repro.hardware import make_cluster_a


def main() -> None:
    # The paper's training configuration: local batch 128, ImageNet shapes.
    # (Smaller batch here keeps the example snappy; bump to 128 for the
    # full-scale numbers.)  1 training server slice (V100) + 1 inference
    # GPU (T4); use make_cluster_a(16, 16) for the paper's full testbed.
    cluster = make_cluster_a(n_training=1, n_inference=1)
    request = PlanRequest(
        model="vgg16",
        model_kwargs={"batch_size": 32},
        cluster=cluster,
        loss="ce",
    )

    session = PlanSession()
    print(f"Planning on {cluster.describe()} ...")
    outcome = session.plan(request)  # strategy "qsync" — profiles once

    print()
    print(outcome.report.summary())
    print()
    plan = outcome.plan
    print("Precision plan for the T4 workers:")
    print(f"  {plan.summary()}")
    print()
    quantized = plan.quantized_ops("T4")
    print(f"{len(quantized)} operators kept below FP32:")
    for op in quantized[:10]:
        print(f"  {op}: {plan.for_device('T4')[op].value}")
    if len(quantized) > 10:
        print(f"  ... and {len(quantized) - 10} more")

    # What-if on the warm session: the uniform-precision baseline reuses
    # the catalogs and cast models profiled above (zero re-profiling).
    events_before = session.stats.profile_events
    up = session.plan(dataclasses.replace(request, strategy="uniform"))
    assert session.stats.profile_events == events_before
    print()
    print(
        f"Uniform-precision baseline (same session, 0 new profilings): "
        f"{up.simulation.iteration_time * 1e3:.1f} ms/iter vs QSync's "
        f"{outcome.simulation.iteration_time * 1e3:.1f} ms/iter"
    )

    # Joint axis: "qsync+qsgd" runs the same precision allocation, then
    # QSGD-compresses the gradient buckets wherever the all-reduce time
    # saved is worth the (budgeted) added sync variance.  Level 0 — no
    # bucket compressed — is bit-identical to plain "qsync".
    cp = session.plan(dataclasses.replace(request, strategy="qsync+qsgd"))
    print()
    print(f"With gradient compression: {cp.compression.summary()}")

    # Serving: wrap the warm session in a PlanService for thread-safe,
    # coalescing access — identical concurrent requests share one
    # computation, and batches dedupe + group by template/catalog.
    # (PlanService(root=...) instead persists profiles to disk, so a fresh
    # process warm-starts with zero profiling events.)
    service = PlanService(session=session)
    batch = service.plan_many([request, request, request])
    assert batch[0] is batch[1] is batch[2]  # one plan, shared outcome
    print()
    print(
        f"Served a 3-request batch as 1 plan "
        f"({service.stats.coalesced_requests} coalesced): "
        f"{service.describe()}"
    )


if __name__ == "__main__":
    main()
