"""Quickstart: plan hybrid mixed-precision training for VGG16 on ClusterA.

Runs the full QSync workflow (profile -> indicator -> replay -> allocate)
for the paper's VGG16/ImageNet configuration on a V100+T4 hybrid cluster
and prints the resulting precision plan and predicted training timeline.

Run:  python examples/quickstart.py
"""

from repro import qsync_plan
from repro.hardware import make_cluster_a
from repro.models import vgg16_graph


def main() -> None:
    # The paper's training configuration: local batch 128, ImageNet shapes.
    # (Smaller batch here keeps the example snappy; bump to 128 for the
    # full-scale numbers.)
    graph_builder = lambda: vgg16_graph(batch_size=32)

    # 1 training server slice (V100) + 1 inference GPU (T4).  Use
    # make_cluster_a(16, 16) for the paper's full testbed.
    cluster = make_cluster_a(n_training=1, n_inference=1)

    print(f"Planning on {cluster.describe()} ...")
    plan, report = qsync_plan(graph_builder, cluster, loss="ce")

    print()
    print(report.summary())
    print()
    print("Precision plan for the T4 workers:")
    print(f"  {plan.summary()}")
    print()
    quantized = plan.quantized_ops("T4")
    print(f"{len(quantized)} operators kept below FP32:")
    for op in quantized[:10]:
        print(f"  {op}: {plan.for_device('T4')[op].value}")
    if len(quantized) > 10:
        print(f"  ... and {len(quantized) - 10} more")


if __name__ == "__main__":
    main()
