"""Fig. 6 live: render the CUDA/COMM waterfall of UP vs QSync.

Shows how uniform low precision leaves the inference GPU idling before each
collective (the V100 still computes at FP32), and how QSync's recovered plan
converts that waiting time into higher-precision compute.

Run:  python examples/timeline_waterfall.py
"""

from repro.experiments import run_experiment


def main() -> None:
    result = run_experiment("fig6", quick=True)
    print(result.formatted())
    print()
    print(result.extras["waterfall"])


if __name__ == "__main__":
    main()
