"""Hybrid mixed-precision training: accuracy of UP vs QSync plans.

Trains the executable MiniVGG-BN under three precision policies on a
simulated 2xV100 + 2xT4 cluster and reports final test accuracy:

* ORACLE — every worker FP32;
* UP     — inference workers uniformly INT8 (the memory-pressure policy);
* QSync  — inference workers carry the indicator-recovered plan.

This is the laptop-scale version of Table V's accuracy column: real
stochastic-rounding arithmetic runs on the T4 replicas, so the differences
you see are genuine quantization-noise effects, not simulation artifacts.

Run:  python examples/hybrid_training_accuracy.py
"""

from repro.common import Precision
from repro.core.allocator import AllocatorConfig
from repro.experiments.protocol import find_pressure_batch, prepare_methods
from repro.experiments.protocol import run_method_training
from repro.experiments.table456 import CLUSTER_B_RATIO
from repro.hardware import T4, make_cluster_b
from repro.train.data import make_image_classification


def main() -> None:
    model_name = "mini_vggbn"
    cluster = make_cluster_b(2, 2, memory_ratio=CLUSTER_B_RATIO)
    print(f"Cluster: {cluster.describe()} (T4 memory capped)")

    batch = find_pressure_batch(model_name, T4.memory_bytes)
    print(f"Production-scale graph batch: {batch}")
    methods = prepare_methods(
        model_name, cluster, batch, exec_batch_per_worker=16,
        allocator_config=AllocatorConfig(max_recovery_steps=300),
    )

    t4_rank = cluster.inference_workers[0].rank
    up_int8 = sum(
        1 for p in methods["UP"].plans[t4_rank].values() if p is Precision.INT8
    )
    qs_int8 = sum(
        1 for p in methods["QSync"].plans[t4_rank].values() if p is Precision.INT8
    )
    print(f"UP plan: {up_int8} INT8 ops; QSync plan: {qs_int8} INT8 ops "
          f"(recovered {up_int8 - qs_int8})")

    dataset = make_image_classification(n_train=2048, n_test=512, seed=3)
    print("\nTraining (4 replicas x batch 16, 5 epochs):")
    for name in ("ORACLE", "UP", "QSync"):
        acc = run_method_training(
            model_name, methods[name], cluster, dataset,
            epochs=5, seed=0, optimizer="sgd", lr=0.05,
        )
        tp = methods[name].throughput
        tp_txt = f"{tp:.3f} it/s" if tp else "—"
        print(f"  {name:<8s} accuracy={acc * 100:.2f}%  predicted throughput={tp_txt}")


if __name__ == "__main__":
    main()
