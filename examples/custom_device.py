"""Bring your own GPU: define a device, autotune kernels, plan a job.

Demonstrates the extension surface a downstream user needs most often:
adding an inference accelerator that is not in the preset registry, watching
the LP-PyTorch autotuner pick kernel templates for it, and planning a hybrid
job that mixes it with V100 trainers.

Run:  python examples/custom_device.py
"""

from repro import qsync_plan
from repro.backend import AutoTuner
from repro.common import Precision
from repro.common.units import GB, GBPS, TFLOPS
from repro.graph.ops import OpKind
from repro.hardware import V100, DeviceSpec
from repro.hardware.cluster import Cluster, Worker
from repro.models import mini_model_graph


def main() -> None:
    # A hypothetical low-cost inference card: strong INT8, modest memory.
    l4ish = DeviceSpec(
        name="L4ish",
        arch="sm80",
        peak_flops={
            Precision.FP32: 30.0 * TFLOPS,
            Precision.FP16: 120.0 * TFLOPS,
            Precision.INT8: 240.0 * TFLOPS,
        },
        memory_bytes=24 * GB,
        mem_bandwidth=300 * GBPS,
        is_training_gpu=False,
    )

    print("Autotuning a 4096x4096x1024 INT8 GEMM on the new device:")
    tuner = AutoTuner(l4ish.arch)
    for prec in (Precision.FP16, Precision.INT8):
        tuned = tuner.tune(OpKind.LINEAR, prec, (4096, 4096, 1024))
        print(
            f"  {prec.value}: template {tuned.template.label}, "
            f"efficiency {tuned.efficiency:.2f} "
            f"({tuned.candidates_tried} candidates tried)"
        )

    cluster = Cluster(
        name="custom",
        workers=(
            Worker(rank=0, device=V100, link_bandwidth=300 * GBPS),
            Worker(rank=1, device=l4ish, link_bandwidth=64 * GBPS),
        ),
    )

    def builder():
        return mini_model_graph(
            "mini_resnet", batch_size=128, width_scale=24, spatial_scale=4
        )

    plan, report = qsync_plan(builder, cluster, loss="ce")
    print()
    print(report.summary())
    print(f"plan: {plan.summary()}")


if __name__ == "__main__":
    main()
