"""§VIII extension: QSync under Automated Mixed Precision.

Under AMP every GPU — training ones included — runs FP16 by default.  The
paper asserts QSync still applies "with the precision recovery target
shifting from the inference GPU to the training GPU": start everything at
the AMP precision for maximum throughput, then recover the most sensitive
operators to FP32 wherever the throughput envelope has slack.

This example plans the same BERT-style job twice on a pure V100 cluster —
pinned-FP32 (classic) vs AMP-mode QSync — and shows the throughput gain and
which operators the indicator chose to protect.

Run:  python examples/amp_recovery.py
"""

from repro import qsync_plan
from repro.common import Precision
from repro.common.units import GBPS
from repro.core import AllocatorConfig
from repro.hardware import V100
from repro.hardware.cluster import Cluster, Worker
from repro.models import mini_model_graph


def main() -> None:
    cluster = Cluster(
        name="train-only",
        workers=tuple(
            Worker(rank=r, device=V100, link_bandwidth=300 * GBPS)
            for r in range(2)
        ),
    )

    def builder():
        return mini_model_graph(
            "mini_bert", batch_size=8, width_scale=24, spatial_scale=8
        )

    _, fp32_report = qsync_plan(builder, cluster, loss="ce")
    plan, amp_report = qsync_plan(
        builder, cluster, loss="ce", config=AllocatorConfig(amp_mode=True)
    )

    fp32_tp = fp32_report.final_simulation.throughput
    amp_tp = amp_report.final_simulation.throughput
    print(f"pinned FP32:  {fp32_tp:.2f} it/s")
    print(f"AMP + QSync:  {amp_tp:.2f} it/s  ({amp_tp / fp32_tp:.2f}x)")
    print()
    print(f"V100 plan: {plan.summary()}")
    protected = [
        op for op, p in plan.for_device("V100").items() if p is Precision.FP32
    ]
    print(f"operators the indicator protected at FP32: {len(protected)}")
    for op in protected[:8]:
        print(f"  {op}")


if __name__ == "__main__":
    main()
