"""Tier-1 smoke invocation of the compiled-kernel benchmark.

Runs ``benchmarks.bench_kernel`` in its scaled-down mode so kernel-tier
regressions (parity drift, the compiled fast path silently falling back to
the object path, the batched sweep losing its edge) fail loudly in the
normal test run.  The full-size benchmark (``python -m
benchmarks.bench_kernel``) is the one that reports the headline speedups
to ``BENCH_kernel.json``; its acceptance floors (>= 10x single-eval) only
hold at full scale, so the smoke gates parity strictly and speed loosely.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

pytest.importorskip("numpy")

from benchmarks.bench_kernel import run_bench


def test_bench_smoke(tmp_path):
    out = tmp_path / "BENCH_kernel.json"
    payload = run_bench(small=True, path=out)

    # Parity is scale-independent and non-negotiable: the kernel tier and
    # the batched sweep must be bit-identical to the object path.
    assert payload["parity_single"]
    assert payload["parity_batched"]

    # Speed floors stay modest at smoke scale (timer noise); the full run
    # is the one gated at >= 10x.
    assert payload["single_eval"]["speedup"] > 1.5
    assert payload["batched_whatif"]["speedup"] > 1.2
    assert payload["batched_whatif"]["candidates"] > 0

    # The artifact is valid JSON on disk with the headline fields.
    written = json.loads(out.read_text())
    assert written["parity_single"] is True
    assert written["parity_batched"] is True
    assert "checksums" in written
