"""Unit + property tests for repro.quant.

The key theoretical claims under test:

* stochastic rounding is unbiased (Proposition 1's prerequisite);
* the Monte-Carlo variance of fixed/floating-point SR quantization matches
  the closed forms of Proposition 2 within sampling error.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import Precision, new_rng
from repro.quant import (
    FixedPointQuantizer,
    FloatingPointQuantizer,
    Granularity,
    effective_exponent,
    fixed_point_variance,
    floating_point_variance,
    quantization_mse,
    simulate_cast,
    stochastic_round,
)
from repro.quant.fixed_point import dequant_granularity
from repro.quant.stochastic import floor_round, nearest_round
from repro.quant.variance import theoretical_variance_for


class TestStochasticRound:
    def test_integers_are_fixed_points(self):
        rng = new_rng(0)
        x = np.array([-3.0, 0.0, 1.0, 7.0])
        np.testing.assert_array_equal(stochastic_round(x, rng), x)

    def test_rounds_to_adjacent_integers(self):
        rng = new_rng(1)
        x = np.full(1000, 2.3)
        r = stochastic_round(x, rng)
        assert set(np.unique(r)) <= {2.0, 3.0}

    def test_unbiasedness(self):
        rng = new_rng(2)
        x = np.full(200_000, 0.37)
        r = stochastic_round(x, rng)
        assert np.mean(r) == pytest.approx(0.37, abs=5e-3)

    def test_negative_values(self):
        rng = new_rng(3)
        x = np.full(100_000, -1.25)
        r = stochastic_round(x, rng)
        assert set(np.unique(r)) <= {-2.0, -1.0}
        assert np.mean(r) == pytest.approx(-1.25, abs=5e-3)

    @given(st.floats(min_value=-50, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_always_adjacent(self, value):
        rng = new_rng(4)
        r = stochastic_round(np.full(64, value), rng)
        assert np.all((r == np.floor(value)) | (r == np.ceil(value)))

    def test_floor_and_nearest_deterministic(self):
        x = np.array([1.4, 1.5, 2.5, -1.5])
        np.testing.assert_array_equal(floor_round(x), [1.0, 1.0, 2.0, -2.0])
        # round-half-even
        np.testing.assert_array_equal(nearest_round(x), [1.0, 2.0, 2.0, -2.0])


class TestFixedPointQuantizer:
    def test_roundtrip_error_bounded_by_scale(self):
        rng = new_rng(0)
        q = FixedPointQuantizer(bits=8)
        x = rng.normal(size=(64, 32))
        qt = q.quantize(x, rng)
        err = np.abs(qt.dequantize() - x)
        assert np.all(err <= qt.scale + 1e-12)

    def test_grid_values_in_range(self):
        rng = new_rng(1)
        q = FixedPointQuantizer(bits=8)
        qt = q.quantize(rng.normal(size=100), rng)
        assert qt.values.min() >= 0
        assert qt.values.max() <= 255

    def test_constant_tensor_is_exact(self):
        rng = new_rng(2)
        q = FixedPointQuantizer(bits=8)
        x = np.full((10, 10), 3.7)
        np.testing.assert_allclose(q.fake_quantize(x, rng), x)

    def test_channelwise_scales_per_channel(self):
        rng = new_rng(3)
        q = FixedPointQuantizer(bits=8, granularity=Granularity.CHANNEL)
        x = np.stack([np.linspace(0, 1, 16), np.linspace(0, 100, 16)])
        qt = q.quantize(x, rng)
        assert qt.scale.shape == (2, 1)
        assert qt.scale[1, 0] > qt.scale[0, 0]

    def test_channelwise_more_accurate_for_heterogeneous_channels(self):
        rng = new_rng(4)
        x = np.stack([np.linspace(0, 1, 256), np.linspace(0, 1000, 256)])
        lw = FixedPointQuantizer(bits=8, granularity=Granularity.LAYER)
        cw = FixedPointQuantizer(bits=8, granularity=Granularity.CHANNEL)
        err_lw = quantization_mse(x, lw.fake_quantize(x, new_rng(5)))
        err_cw = quantization_mse(x, cw.fake_quantize(x, new_rng(5)))
        assert err_cw < err_lw

    def test_unbiasedness_of_fake_quantize(self):
        rng = new_rng(6)
        q = FixedPointQuantizer(bits=4)
        x = rng.normal(size=512)
        acc = np.zeros_like(x)
        trials = 400
        for t in range(trials):
            acc += q.fake_quantize(x, new_rng(100 + t))
        mean = acc / trials
        scale = q.compute_qparams(x)[0].item()
        # The mean must converge to x much tighter than one grid step.
        assert np.max(np.abs(mean - x)) < 0.15 * scale

    def test_nbytes(self):
        rng = new_rng(7)
        qt = FixedPointQuantizer(bits=8).quantize(np.zeros(1000), rng)
        assert qt.nbytes == 1000

    @pytest.mark.parametrize("bits", [1, 0, 25, 32])
    def test_rejects_bad_bits(self, bits):
        with pytest.raises(ValueError):
            FixedPointQuantizer(bits=bits)

    def test_rejects_bad_rounding(self):
        with pytest.raises(ValueError):
            FixedPointQuantizer(rounding="banker")

    def test_floor_rounding_biased_low(self):
        rng = new_rng(8)
        q = FixedPointQuantizer(bits=8, rounding="floor")
        x = rng.normal(size=10_000)
        out = q.fake_quantize(x, rng)
        # Flooring pulls values toward the zero point (min), biasing the mean.
        assert np.mean(out) < np.mean(x)

    def test_dequant_granularity_pairing(self):
        L, C = Granularity.LAYER, Granularity.CHANNEL
        assert dequant_granularity(L, L) is L
        assert dequant_granularity(L, C) is C
        assert dequant_granularity(C, L) is C
        assert dequant_granularity(C, C) is C


class TestFloatingPointQuantizer:
    def test_identity_on_representable_values(self):
        rng = new_rng(0)
        q = FloatingPointQuantizer(mantissa_bits=9)
        x = np.array([1.0, 0.5, 2.0, -4.0, 0.0])
        np.testing.assert_allclose(q.quantize(x, rng), x)

    def test_relative_error_bounded(self):
        rng = new_rng(1)
        q = FloatingPointQuantizer(mantissa_bits=9)
        x = new_rng(2).normal(size=4096) * 10
        out = q.quantize(x, rng)
        rel = np.abs(out - x) / np.maximum(np.abs(x), 1e-30)
        # One ulp at k=9 on (1+m) in [1,2) means rel err < 2**-9.
        assert np.max(rel) <= 2.0**-9 + 1e-12

    def test_overflow_saturates(self):
        rng = new_rng(3)
        q = FloatingPointQuantizer(mantissa_bits=9, max_exponent=15)
        out = q.quantize(np.array([1e9, -1e9]), rng)
        assert out[0] == pytest.approx(65408.0, rel=1e-3)  # ~max fp16-ish
        assert out[1] == -out[0]

    def test_underflow_flushes_to_zero(self):
        rng = new_rng(4)
        q = FloatingPointQuantizer(mantissa_bits=9, min_exponent=-14)
        out = q.quantize(np.array([1e-9, -1e-9]), rng)
        np.testing.assert_array_equal(out, [0.0, 0.0])

    def test_unbiasedness(self):
        x = np.full(50_000, 1.0 + 1.0 / 3.0)  # mantissa not on the k=3 grid
        q = FloatingPointQuantizer(mantissa_bits=3)
        out = q.quantize(x, new_rng(5))
        assert np.mean(out) == pytest.approx(x[0], rel=1e-3)

    def test_for_precision_fp16(self):
        q = FloatingPointQuantizer.for_precision(Precision.FP16)
        assert q.mantissa_bits == 9
        assert q.max_exponent == 15

    def test_for_precision_rejects_int(self):
        with pytest.raises(ValueError):
            FloatingPointQuantizer.for_precision(Precision.INT8)

    def test_simulate_cast_fp32_identity(self):
        x = np.array([1.2345678901234])
        np.testing.assert_array_equal(simulate_cast(x, Precision.FP32, new_rng(0)), x)

    def test_simulate_cast_rejects_int8(self):
        with pytest.raises(ValueError):
            simulate_cast(np.ones(3), Precision.INT8, new_rng(0))


class TestVarianceTheory:
    """Monte-Carlo validation of Proposition 2."""

    def test_fixed_point_variance_formula(self):
        # x fixed, repeated SR quantization: total variance across elements
        # should match q**2 * D / 6 when residuals are ~Uniform.
        rng_data = new_rng(0)
        x = rng_data.uniform(-1, 1, size=2048)
        q = FixedPointQuantizer(bits=6)
        scale = q.compute_qparams(x)[0].item()
        trials = 300
        samples = np.stack(
            [q.fake_quantize(x, new_rng(1000 + t)) for t in range(trials)]
        )
        emp_total_var = float(np.sum(np.var(samples, axis=0)))
        theory = fixed_point_variance(scale, x.size)
        assert emp_total_var == pytest.approx(theory, rel=0.15)

    def test_floating_point_variance_formula_order(self):
        # Keep every element in the same binade so 2**(2e) is exact.
        x = new_rng(1).uniform(1.0, 2.0, size=2048)
        k = 5
        q = FloatingPointQuantizer(mantissa_bits=k)
        trials = 300
        samples = np.stack(
            [q.quantize(x, new_rng(2000 + t)) for t in range(trials)]
        )
        emp_total_var = float(np.sum(np.var(samples, axis=0)))
        theory = floating_point_variance(0.0, k, x.size)  # e=0 for [1,2)
        assert emp_total_var == pytest.approx(theory, rel=0.2)

    def test_effective_exponent(self):
        assert effective_exponent(np.array([1.5])) == 0.0
        assert effective_exponent(np.array([4.0])) == 2.0
        assert effective_exponent(np.array([0.3])) == -2.0
        assert effective_exponent(np.zeros(5)) == -126.0

    def test_theoretical_variance_dispatch(self):
        x = np.ones(100)
        assert theoretical_variance_for(x, Precision.FP32) == 0.0
        assert theoretical_variance_for(x, Precision.FP16) > 0.0
        assert theoretical_variance_for(x, Precision.INT8, scale=0.1) > 0.0
        with pytest.raises(ValueError):
            theoretical_variance_for(x, Precision.INT8)

    def test_variance_decreases_with_bits(self):
        v16 = floating_point_variance(0.0, 9, 100)
        v32 = floating_point_variance(0.0, 23, 100)
        assert v32 < v16

    def test_channelwise_variance_sums_channels(self):
        scales = np.array([0.1, 0.2])
        v = fixed_point_variance(scales, dims=200)
        expected = (0.1**2 + 0.2**2) * 100 / 6.0
        assert v == pytest.approx(expected)


class TestPropertyBased:
    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_fixed_roundtrip_bounded_any_bits(self, bits, seed):
        rng = new_rng(seed)
        x = rng.normal(size=256) * rng.uniform(0.1, 100)
        q = FixedPointQuantizer(bits=bits)
        qt = q.quantize(x, rng)
        assert np.all(np.abs(qt.dequantize() - x) <= qt.scale + 1e-9)

    @given(st.integers(min_value=1, max_value=15))
    @settings(max_examples=15, deadline=None)
    def test_float_quantize_idempotent(self, k):
        # Quantizing an already-quantized tensor must be exact (fixed point
        # of the operator) because all values sit on the representable grid.
        rng = new_rng(k)
        q = FloatingPointQuantizer(mantissa_bits=k)
        x = rng.normal(size=128)
        once = q.quantize(x, rng)
        twice = q.quantize(once, new_rng(k + 1))
        np.testing.assert_allclose(twice, once)
