"""Tier-1 smoke invocation of the sweep benchmark.

Runs ``benchmarks.bench_sweep`` in its scaled-down mode so regressions in
the sweep engine's load-bearing invariants — cached re-runs recomputing
cells, parallel workers producing divergent artifacts — fail loudly in the
normal test run.  The full-size benchmark (``python -m
benchmarks.bench_sweep``) is the one that reports the headline cached
speedup to ``BENCH_sweep.json``.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_sweep import run_bench


def test_bench_smoke(tmp_path):
    out = tmp_path / "BENCH_sweep.json"
    payload = run_bench(small=True, path=out, jobs=2)

    # The cache invariant: a repeated sweep is served entirely from the
    # artifact store — zero recomputed cells, zero failures.
    assert payload["recomputed_cells_on_rerun"] == 0
    assert payload["cached_rerun"]["cached"] == payload["cached_rerun"]["cells"]
    assert payload["cached_rerun"]["failed"] == 0

    # The determinism invariant: jobs=2 writes byte-identical artifacts to
    # the serial run (fingerprints and results are process-independent).
    assert payload["artifacts_identical"]
    assert payload["parallel_cold"]["computed"] == payload["parallel_cold"]["cells"]
    assert payload["serial_cold"]["failed"] == 0
    assert payload["parallel_cold"]["failed"] == 0

    # Wall-clock is too noisy at smoke scale to gate on a ratio (the
    # counters above pin the cache path deterministically); just require
    # the replay was faster than the cold sweep and was measured.
    assert payload["wall_seconds_cached"] < payload["wall_seconds_serial_cold"]
    assert payload["speedup_cached_vs_cold"] > 1.0

    # The artifact is valid JSON on disk with the headline fields.
    written = json.loads(out.read_text())
    assert written["artifacts_identical"] is True
    assert written["recomputed_cells_on_rerun"] == 0
    assert "speedup_cached_vs_cold" in written
