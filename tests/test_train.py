"""Tests for the training substrate: optimizers, schedulers, data, loops."""

import numpy as np
import pytest

from repro.common import new_rng
from repro.models import make_mini_model
from repro.tensor import Tensor, functional as F
from repro.tensor.modules import Linear, Sequential
from repro.train import (
    SGD,
    Adam,
    CosineSchedule,
    StepSchedule,
    WarmupSchedule,
    evaluate,
    f1_macro,
    make_image_classification,
    make_token_classification,
    top1_accuracy,
    train_single,
)


class TestOptimizers:
    def _quadratic_model(self):
        m = Linear(2, 1, bias=False, seed=0)
        m.weight.data = np.array([[5.0, -3.0]])
        return m

    def test_sgd_reduces_loss(self):
        model = self._quadratic_model()
        opt = SGD(model, lr=0.05, momentum=0.9)
        x = Tensor(np.eye(2))
        target = np.zeros((2, 1))
        losses = []
        for _ in range(50):
            opt.zero_grad()
            loss = F.mse_loss(model(x), target)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < 1e-3 * losses[0]

    def test_adam_reduces_loss(self):
        model = self._quadratic_model()
        opt = Adam(model, lr=0.2)
        x = Tensor(np.eye(2))
        target = np.zeros((2, 1))
        for _ in range(100):
            opt.zero_grad()
            loss = F.mse_loss(model(x), target)
            loss.backward()
            opt.step()
        assert loss.item() < 1e-2

    def test_weight_decay_shrinks_weights(self):
        m1, m2 = self._quadratic_model(), self._quadratic_model()
        for model, wd in ((m1, 0.0), (m2, 0.5)):
            opt = SGD(model, lr=0.1, momentum=0.0, weight_decay=wd)
            opt.zero_grad()
            loss = F.mse_loss(model(Tensor(np.zeros((1, 2)))), np.zeros((1, 1)))
            loss.backward()
            opt.step()
        assert np.linalg.norm(m2.weight.data) < np.linalg.norm(m1.weight.data)

    def test_momentum_accumulates(self):
        model = self._quadratic_model()
        opt = SGD(model, lr=0.01, momentum=0.9)
        x = Tensor(np.eye(2))
        w0 = model.weight.data.copy()
        for _ in range(2):
            opt.zero_grad()
            F.mse_loss(model(x), np.zeros((2, 1))).backward()
            opt.step()
        # Second step moves further than a fresh first step would.
        assert np.linalg.norm(opt._velocity[0]) > 0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(self._quadratic_model(), lr=0.0)


class TestSchedulers:
    def _opt(self):
        return SGD(Linear(2, 2), lr=1.0)

    def test_cosine_decays_to_min(self):
        opt = self._opt()
        sch = CosineSchedule(opt, total_steps=10, min_lr=0.1)
        for _ in range(10):
            sch.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_monotone_decreasing(self):
        opt = self._opt()
        sch = CosineSchedule(opt, total_steps=20)
        lrs = []
        for _ in range(20):
            sch.step()
            lrs.append(opt.lr)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_step_schedule(self):
        opt = self._opt()
        sch = StepSchedule(opt, period=5, gamma=0.1)
        for _ in range(5):
            sch.step()
        assert opt.lr == pytest.approx(0.1)
        for _ in range(5):
            sch.step()
        assert opt.lr == pytest.approx(0.01)

    def test_warmup_ramps_linearly(self):
        opt = self._opt()
        sch = WarmupSchedule(opt, warmup_steps=4)
        sch.step()
        assert opt.lr == pytest.approx(0.25)
        for _ in range(3):
            sch.step()
        assert opt.lr == pytest.approx(1.0)

    def test_warmup_then_cosine(self):
        opt = self._opt()
        inner = CosineSchedule(opt, total_steps=10, min_lr=0.0)
        sch = WarmupSchedule(opt, warmup_steps=2, after=inner)
        for _ in range(12):
            sch.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-9)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CosineSchedule(self._opt(), total_steps=0)
        with pytest.raises(ValueError):
            StepSchedule(self._opt(), period=0)
        with pytest.raises(ValueError):
            WarmupSchedule(self._opt(), warmup_steps=0)


class TestData:
    def test_image_dataset_shapes(self):
        ds = make_image_classification(n_train=128, n_test=32, image_size=16)
        assert ds.train_x.shape == (128, 3, 16, 16)
        assert ds.test_y.shape == (32,)
        assert ds.num_classes == 10

    def test_token_dataset_in_vocab(self):
        ds = make_token_classification(n_train=64, n_test=16, vocab_size=64)
        assert ds.train_x.max() < 64
        assert ds.train_x.min() >= 0

    def test_datasets_deterministic(self):
        a = make_image_classification(n_train=32, n_test=8, seed=5)
        b = make_image_classification(n_train=32, n_test=8, seed=5)
        np.testing.assert_array_equal(a.train_x, b.train_x)

    def test_batches_cover_epoch(self):
        ds = make_image_classification(n_train=64, n_test=8)
        batches = list(ds.batches(16, new_rng(0), epochs=1))
        assert len(batches) == 4
        assert all(x.shape[0] == 16 for x, _ in batches)

    def test_shard_batches_heterogeneous(self):
        ds = make_image_classification(n_train=120, n_test=8)
        shards_list = list(ds.shard_batches([16, 8, 4], new_rng(0), epochs=1))
        assert len(shards_list) == 120 // 28
        for shards in shards_list:
            assert [x.shape[0] for x, _ in shards] == [16, 8, 4]

    def test_image_task_learnable_but_not_trivial(self):
        """A linear probe beats chance but stays below ~90 %: the task has
        headroom for accuracy deltas."""
        ds = make_image_classification(n_train=1024, n_test=256, seed=0)
        model = Sequential(
            # flatten + linear probe
        )
        flat_dim = 3 * 16 * 16
        probe = Linear(flat_dim, 10, seed=0)
        opt = SGD(probe, lr=0.05, momentum=0.9)
        rng = new_rng(1)
        for xb, yb in ds.batches(64, rng, epochs=5):
            opt.zero_grad()
            logits = probe(Tensor(xb.reshape(len(yb), -1)))
            F.cross_entropy(logits, yb).backward()
            opt.step()
        logits = probe(Tensor(ds.test_x.reshape(len(ds.test_y), -1))).numpy()
        acc = top1_accuracy(logits, ds.test_y)
        assert 0.3 < acc < 0.95


class TestMetrics:
    def test_top1_perfect(self):
        logits = np.array([[2.0, 0.0], [0.0, 3.0]])
        assert top1_accuracy(logits, np.array([0, 1])) == 1.0

    def test_top1_half(self):
        logits = np.array([[2.0, 0.0], [2.0, 0.0]])
        assert top1_accuracy(logits, np.array([0, 1])) == 0.5

    def test_f1_perfect(self):
        logits = np.array([[2.0, 0.0], [0.0, 3.0]])
        assert f1_macro(logits, np.array([0, 1])) == 1.0

    def test_f1_penalizes_collapse(self):
        # Predicting one class everywhere: F1 < accuracy.
        logits = np.tile(np.array([[5.0, 0.0]]), (10, 1))
        labels = np.array([0] * 9 + [1])
        assert f1_macro(logits, labels) < top1_accuracy(logits, labels)


class TestTrainLoop:
    def test_mini_model_learns(self):
        ds = make_image_classification(n_train=512, n_test=128, seed=0)
        model = make_mini_model("mini_vggbn", seed=0)
        opt = SGD(model, lr=0.05, momentum=0.9)
        result = train_single(model, ds, opt, epochs=2, batch_size=32, seed=0)
        assert result.final_accuracy > 0.18  # chance = 0.10
        assert len(result.history) == 2
        assert result.losses[0] > result.losses[-1]

    def test_evaluate_runs_in_eval_mode(self):
        ds = make_image_classification(n_train=64, n_test=32, seed=0)
        model = make_mini_model("mini_vggbn", seed=0)
        evaluate(model, ds)
        assert model.training  # restored after evaluation

    def test_transformer_learns_token_task(self):
        ds = make_token_classification(n_train=512, n_test=128, seed=0)
        model = make_mini_model("mini_bert", seed=0)
        opt = Adam(model, lr=3e-3)
        result = train_single(model, ds, opt, epochs=3, batch_size=32, seed=0, metric="f1")
        assert result.final_accuracy > 0.4
