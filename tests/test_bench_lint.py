"""Tier-1 smoke invocation of the lint benchmark.

Runs ``benchmarks.bench_lint`` in its scaled-down mode so a rule that
regresses to pathological wall time, a nondeterministic report, or a
contract violation in the hot packages fails loudly in the normal test
run.  The full-size benchmark (``python -m benchmarks.bench_lint``) is the
one that reports the headline numbers to ``BENCH_lint.json``.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_lint import run_bench


def test_bench_smoke(tmp_path):
    out = tmp_path / "BENCH_lint.json"
    payload = run_bench(small=True, path=out)

    assert payload["violations"] == 0, payload["violation_lines"]
    assert payload["within_budget"], (
        f"lint took {payload['wall_seconds']:.2f}s over the "
        f"{payload['budget_seconds']}s budget"
    )
    assert payload["report_deterministic"]
    assert payload["files"] > 10
    assert list(payload["rules"]) == [
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006", "RPR007",
    ]

    written = json.loads(out.read_text())
    assert written["violations"] == 0
    assert written["within_budget"] is True
