"""The invariant linter: rules, suppressions, registry, CLI, determinism.

Fixture-driven: every rule has at least one *detection* fixture (expected
findings annotated inline with ``# expect: RPR0NN``) and one
*suppression-with-reason* fixture under ``tests/lint_fixtures/``; clean
fixtures pin the sanctioned idiom each rule points people toward.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import RULES, Rule, lint_paths, register_rule
from repro.analysis.framework import ModuleInfo, collect_files
from repro.analysis.lint import main as lint_main

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src"
_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9 ]+)$")

RULE_IDS = (
    "RPR001",
    "RPR002",
    "RPR003",
    "RPR004",
    "RPR005",
    "RPR006",
    "RPR007",
)


def expected_findings(path: Path) -> list[tuple[int, str]]:
    """Parse ``# expect: RPR0NN [RPR0MM ...]`` annotations -> (line, rule)."""
    out = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            for rule in match.group(1).split():
                out.append((lineno, rule))
    return sorted(out)


def findings(path: Path) -> list[tuple[int, str]]:
    report = lint_paths([path])
    return sorted((v.line, v.rule) for v in report.violations)


# ---------------------------------------------------------------------------
# detection + clean + suppression, per rule
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_detects_violation_fixture(rule_id):
    fixture = FIXTURES / f"{rule_id.lower()}_violation.py"
    expected = expected_findings(fixture)
    assert expected, f"fixture {fixture.name} declares no expectations"
    assert findings(fixture) == expected


def test_rpr004_ladder_fixture():
    fixture = FIXTURES / "rpr004_ladder_violation.py"
    assert findings(fixture) == expected_findings(fixture)


def test_rpr004_service_fixture():
    # session → service is banned at ANY runtime scope (the PR 9 mirror of
    # the engine → session ban), including function-local deferred imports.
    fixture = FIXTURES / "rpr004_service_violation.py"
    expected = expected_findings(fixture)
    assert len(expected) == 2  # module scope AND function-local
    assert findings(fixture) == expected


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_passes_clean_fixture(rule_id):
    fixture = FIXTURES / f"{rule_id.lower()}_clean.py"
    assert findings(fixture) == []


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_suppression_with_reason_is_honored(rule_id):
    fixture = FIXTURES / f"{rule_id.lower()}_suppressed.py"
    assert findings(fixture) == []


def test_reasonless_suppression_is_a_violation_and_does_not_suppress():
    fixture = FIXTURES / "rpr000_missing_reason.py"
    source = fixture.read_text().splitlines()
    allow_line = next(
        i for i, l in enumerate(source, 1) if "# repro: allow RPR003" in l
    )
    typo_line = next(
        i for i, l in enumerate(source, 1) if "# repro: typo-verb" in l
    )
    assert findings(fixture) == sorted(
        [(allow_line, "RPR000"), (allow_line, "RPR003"), (typo_line, "RPR000")]
    )


# ---------------------------------------------------------------------------
# the framework itself
# ---------------------------------------------------------------------------


def test_rule_registry_order_is_canonical_and_append_only():
    # Same discipline as test_registration_order_is_canonical for planners:
    # ids are permanent and new rules append — never reorder or rename.
    assert tuple(rule.id for rule in RULES) == RULE_IDS
    with pytest.raises(ValueError, match="already registered"):
        register_rule(type("Dup", (Rule,), {"id": "RPR001"})())
    # The failed registration must not have left a partial entry behind.
    assert tuple(rule.id for rule in RULES) == RULE_IDS


def test_every_rule_names_its_contract():
    for rule in RULES:
        assert rule.title, rule.id
        assert rule.contract, f"{rule.id} must name the PR-era contract"


def test_module_name_resolution_and_override(tmp_path):
    pkg = tmp_path / "mypkg"
    (pkg / "sub").mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "sub" / "__init__.py").write_text("")
    (pkg / "sub" / "mod.py").write_text("x = 1\n")
    mod = ModuleInfo(pkg / "sub" / "mod.py", "mod.py", "x = 1\n")
    assert mod.module == "mypkg.sub.mod"
    override = ModuleInfo(
        tmp_path / "loose.py",
        "loose.py",
        "# repro: module repro.core.pretend\nx = 1\n",
    )
    assert override.module == "repro.core.pretend"


def test_collect_files_is_sorted_and_deduplicated(tmp_path):
    (tmp_path / "b.py").write_text("")
    (tmp_path / "a.py").write_text("")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "c.py").write_text("")
    got = collect_files([tmp_path, tmp_path / "a.py"])
    assert got == [tmp_path / "a.py", tmp_path / "b.py"]


def test_file_scoped_vs_line_scoped_suppression(tmp_path):
    line_scoped = tmp_path / "line.py"
    line_scoped.write_text(
        "def f(c):\n"
        "    a = c.workers[0]  # repro: allow RPR003 demo reason\n"
        "    return c.workers[1]\n"
    )
    report = lint_paths([line_scoped])
    assert [(v.line, v.rule) for v in report.violations] == [(3, "RPR003")]

    file_scoped = tmp_path / "file.py"
    file_scoped.write_text(
        "# repro: allow RPR003 whole-file demo reason\n"
        "def f(c):\n"
        "    a = c.workers[0]\n"
        "    return c.workers[1]\n"
    )
    assert lint_paths([file_scoped]).clean


def test_unscoped_modules_skip_scoped_rules(tmp_path):
    # Without a module override the fixture resolves to its bare stem,
    # which is outside RPR001's exemptions — but tensor/quant-style
    # modules are exempt from RPR001 by dotted name.
    exempt = tmp_path / "exempt.py"
    exempt.write_text(
        "# repro: module repro.tensor.autograd_fixture\n"
        "def key(obj):\n"
        "    return id(obj)\n"
    )
    assert lint_paths([exempt]).clean


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_exit_codes_and_rule_filter(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(c):\n    return c.workers[0]\n")
    assert lint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RPR003" in out and "bad.py:2:" in out

    assert lint_main([str(bad), "--rules", "RPR001"]) == 0
    assert lint_main([str(bad), "--rules", "NOPE"]) == 2
    assert lint_main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in listing


def test_cli_json_report_is_deterministic_across_hash_seeds(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(c):\n"
        "    for x in set(c.names):\n"
        "        pass\n"
        "    return c.workers[0], hash(c), id(c)\n"
        "# repro: module repro.core.fixture\n"
    )

    def run(seed):
        env = {"PYTHONPATH": str(SRC), "PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", str(bad), "--format", "json"],
            capture_output=True,
            text=True,
            env=env,
        )

    first, second = run("1"), run("12345")
    assert first.returncode == 1 and second.returncode == 1
    assert first.stdout == second.stdout
    payload = json.loads(first.stdout)
    assert payload["clean"] is False
    rules_found = {v["rule"] for v in payload["violations"]}
    assert {"RPR001", "RPR003"} <= rules_found
    # Deterministic ordering: sorted by (path, line, col, rule).
    keys = [(v["path"], v["line"], v["col"], v["rule"]) for v in payload["violations"]]
    assert keys == sorted(keys)
