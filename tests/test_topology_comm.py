"""Tests for the topology layer and the pluggable collective cost models."""

import pytest

from repro.common.units import GBPS
from repro.hardware import (
    CLUSTER_PRESETS,
    T4,
    V100,
    Cluster,
    LinkSpec,
    NodeSpec,
    Topology,
    Worker,
    get_cluster_preset,
    make_cloud_edge_cluster,
    make_cluster_a,
    make_cluster_a_multinode,
    make_cluster_b_multinode,
)
from repro.parallel.comm_model import (
    COLLECTIVE_MODELS,
    FlatRingModel,
    HierarchicalModel,
    TreeModel,
    resolve_collective_model,
)

N = 25 * 1024**2  # one DDP-default bucket


class TestLinkSpec:
    def test_transfer_time_is_alpha_beta(self):
        link = LinkSpec("l", 1e9, 1e-3, "inter")
        assert link.transfer_time(1e9) == pytest.approx(1.001)

    def test_invalid_links_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec("l", 0.0, 1e-3)
        with pytest.raises(ValueError):
            LinkSpec("l", 1e9, -1e-3)
        with pytest.raises(ValueError):
            LinkSpec("l", 1e9, 1e-3, tier="diagonal")


class TestTopology:
    def _two_nodes(self):
        intra = LinkSpec("nv", 300 * GBPS, 2e-6, "intra")
        up = LinkSpec("eth", 12.5 * GBPS, 30e-6, "inter")
        return Topology(nodes=(
            NodeSpec("a", (0, 1), intra, up),
            NodeSpec("b", (2, 3), intra, up),
        ))

    def test_node_lookup(self):
        topo = self._two_nodes()
        assert topo.n_nodes == 2 and topo.n_ranks == 4
        assert topo.node_of(2).name == "b"
        with pytest.raises(KeyError):
            topo.node_of(9)

    def test_must_partition_ranks(self):
        intra = LinkSpec("nv", 1e9, 0.0, "intra")
        # Non-contiguous rank sets are legal (the cluster constructor checks
        # the topology's set matches its workers')…
        gappy = Topology(nodes=(NodeSpec("a", (0, 2), intra, intra),))
        assert gappy.rank_set() == {0, 2}
        # …but a rank hosted twice is not a partition.
        with pytest.raises(ValueError):
            Topology(nodes=(
                NodeSpec("a", (0, 1), intra, intra),
                NodeSpec("b", (1, 2), intra, intra),
            ))
        with pytest.raises(ValueError):
            NodeSpec("empty", (), intra, intra)

    def test_flat_topology_mirrors_workers(self):
        c = make_cluster_a(2, 2)
        topo = c.topology
        assert topo.n_nodes == c.size
        assert all(node.size == 1 for node in topo.nodes)
        assert topo.min_uplink_bandwidth() == c.bottleneck_bandwidth
        assert topo.max_uplink_latency() == c.collective_latency

    def test_bottleneck_includes_intra_of_multirank_nodes(self):
        topo = self._two_nodes()
        assert topo.bottleneck_bandwidth() == 12.5 * GBPS
        assert topo.max_latency() == 30e-6

    def test_cluster_rejects_mismatched_topology(self):
        intra = LinkSpec("nv", 1e9, 1e-6, "intra")
        topo = Topology(nodes=(NodeSpec("a", (0, 1, 2), intra, intra),))
        with pytest.raises(ValueError):
            Cluster(
                name="bad",
                workers=(
                    Worker(rank=0, device=V100, link_bandwidth=1e9),
                    Worker(rank=1, device=T4, link_bandwidth=1e9),
                ),
                topology=topo,
            )


class TestCollectiveModels:
    def test_flat_model_delegates_to_cluster(self):
        c = make_cluster_a(2, 2)
        assert FlatRingModel().allreduce_time(c, N) == c.allreduce_time(N)

    def test_single_worker_free_for_all_models(self):
        c = Cluster(
            name="solo",
            workers=(Worker(rank=0, device=V100, link_bandwidth=1e9),),
        )
        for model_cls in COLLECTIVE_MODELS.values():
            assert model_cls().allreduce_time(c, N) == 0.0

    def test_hierarchical_degenerates_to_flat_on_flat_topology(self):
        """All-single-rank nodes: phase 2's inter-node ring over full
        buffers *is* the flat ring, so the two models agree exactly."""
        c = make_cluster_a(2, 2)
        assert HierarchicalModel().allreduce_time(c, N) == pytest.approx(
            c.allreduce_time(N)
        )

    def test_hierarchical_single_node_is_intra_ring(self):
        intra = LinkSpec("nv", 4e8, 1e-3, "intra")
        up = LinkSpec("eth", 1e8, 1e-2, "inter")
        topo = Topology(nodes=(NodeSpec("a", (0, 1, 2, 3), intra, up),))
        c = Cluster(
            name="one-node",
            workers=tuple(
                Worker(rank=r, device=V100, link_bandwidth=1e8) for r in range(4)
            ),
            topology=topo,
        )
        # Pure intra ring: 2 * (3/4 * N / 4e8 + 3 * 1e-3), uplink untouched.
        expected = 2 * (0.75 * N / 4e8 + 3e-3)
        assert HierarchicalModel().allreduce_time(c, N) == pytest.approx(expected)

    def test_hierarchical_beats_flat_on_multinode_presets(self):
        for make in (
            make_cluster_a_multinode,
            make_cluster_b_multinode,
            make_cloud_edge_cluster,
        ):
            c = make()
            flat = FlatRingModel().allreduce_time(c, N)
            hier = HierarchicalModel().allreduce_time(c, N)
            assert hier < flat, c.name

    def test_tree_scales_logarithmically(self):
        c = make_cluster_a_multinode()  # 32 ranks -> 2*5 rounds
        topo = c.topology
        expected = 10 * (topo.max_latency() + N / topo.bottleneck_bandwidth())
        assert TreeModel().allreduce_time(c, N) == pytest.approx(expected)

    def test_tree_wins_at_tiny_buffers_on_wan(self):
        """log2(K) latency steps beat 2(K-1) ring steps when alpha
        dominates — the classic small-message regime."""
        c = make_cloud_edge_cluster()
        tiny = 1024
        assert TreeModel().allreduce_time(c, tiny) < FlatRingModel().allreduce_time(
            c, tiny
        )

    def test_resolver(self):
        assert isinstance(resolve_collective_model(None), FlatRingModel)
        assert isinstance(resolve_collective_model("tree"), TreeModel)
        model = HierarchicalModel()
        assert resolve_collective_model(model) is model
        with pytest.raises(ValueError, match="CollectiveModel instance"):
            resolve_collective_model("butterfly")
        with pytest.raises(TypeError):
            resolve_collective_model(42)


class TestMultinodePresets:
    def test_cluster_a_multinode_shape(self):
        c = make_cluster_a_multinode()
        assert c.size == 32 and c.n_nodes == 4
        assert len(c.training_workers) == 16
        assert len(c.inference_workers) == 16
        sizes = {node.size for node in c.nodes}
        assert sizes == {8}
        # Flat ring prices the uplink, never the NVLink.
        assert c.bottleneck_bandwidth == c.nodes[0].uplink.bandwidth

    def test_cluster_b_multinode_caps_memory(self):
        c = make_cluster_b_multinode(memory_ratio=0.3)
        t4 = c.inference_workers[0].device
        assert t4.available_memory == int(t4.memory_bytes * 0.3)
        with pytest.raises(ValueError):
            make_cluster_b_multinode(memory_ratio=0.0)

    def test_cloud_edge_tiers(self):
        c = make_cloud_edge_cluster()
        assert c.n_nodes == 3
        assert c.nodes[0].intra_link.bandwidth > c.nodes[1].intra_link.bandwidth
        assert all(node.uplink.tier == "inter" for node in c.nodes)
        assert len(c.training_workers) == 4  # A100s hold FP32

    def test_preset_registry(self):
        for name in CLUSTER_PRESETS:
            c = get_cluster_preset(name)
            assert c.size >= 2
        with pytest.raises(KeyError):
            get_cluster_preset("cluster_z")


class TestReplayerIntegration:
    def _replayer(self, cluster, **kwargs):
        from repro.core.qsync import build_replayer
        from repro.models import mini_model_graph

        rep, _ = build_replayer(
            lambda: mini_model_graph(
                "mini_vgg", batch_size=8, width_scale=4, spatial_scale=2
            ),
            cluster,
            profile_repeats=1,
            **kwargs,
        )
        return rep

    def test_default_replayer_matches_explicit_flat(self):
        """PR 3 parity: a Replayer without a model and one with the explicit
        flat ring produce bit-identical simulations."""
        c = make_cluster_a(1, 1)
        default = self._replayer(c).simulate()
        flat = self._replayer(c, collective_model="flat").simulate()
        assert default.iteration_time == flat.iteration_time
        assert default.comm_wait_time == flat.comm_wait_time

    def test_hierarchical_lowers_iteration_on_multinode(self):
        c = make_cluster_a_multinode(gpus_per_node=2)
        rep = self._replayer(c)
        flat_sim = rep.simulate()
        rep.collective_model = HierarchicalModel()
        hier_sim = rep.simulate()
        assert hier_sim.iteration_time < flat_sim.iteration_time
