"""Tier-1 smoke invocation of the allocator speed benchmark.

Runs ``benchmarks.bench_allocator_speed`` in its scaled-down mode so
regressions in the incremental fast path (full rebuilds sneaking back into
the recovery loop, mode divergence) fail loudly in the normal test run.
The full-size benchmark (``python -m benchmarks.bench_allocator_speed``)
is the one that reports the headline speedup to ``BENCH_allocator.json``.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_allocator_speed import run_bench


def test_bench_smoke(tmp_path):
    out = tmp_path / "BENCH_allocator.json"
    payload = run_bench(small=True, path=out)

    # Both modes must agree exactly — the speedup is free of behaviour drift.
    assert payload["plans_identical"]
    inc = payload["incremental_mode"]
    full = payload["full_rebuild_mode"]
    assert inc["final_throughput"] == full["final_throughput"]
    assert inc["recovery_attempts"] == full["recovery_attempts"]
    assert inc["recovery_accepted"] == full["recovery_accepted"]

    # The engine's acceptance invariant: no full LocalDFG rebuilds inside
    # the recovery loop, deltas instead; the reference mode rebuilds away.
    assert inc["recovery_full_rebuilds"] == 0
    assert inc["recovery_incremental_updates"] > 0
    assert full["recovery_full_rebuilds"] > 0
    assert inc["full_rebuilds"] < full["full_rebuilds"]

    # Wall-clock is too noisy at smoke scale to gate on (the counters above
    # pin the fast path deterministically); just require it was measured.
    assert payload["speedup"] > 0.0

    # The artifact is valid JSON on disk with the headline fields.
    written = json.loads(out.read_text())
    assert written["plans_identical"] is True
    assert "speedup" in written
