"""Tests for repro.graph: operator taxonomy, Precision DAG, subgraphs."""

import pytest

from repro.common import Precision
from repro.common.errors import GraphConsistencyError
from repro.graph import (
    OpCategory,
    OperatorSpec,
    OpKind,
    PrecisionDAG,
    group_blocks,
    structural_signature,
)
from repro.graph.ops import conv2d_flops, linear_flops
from repro.graph.subgraph import isomorphism_classes


def chain_dag() -> PrecisionDAG:
    """input -> conv -> relu -> linear -> loss."""
    dag = PrecisionDAG()
    dag.add_op(OperatorSpec("input", OpKind.INPUT, (4, 3, 8, 8)))
    dag.add_op(
        OperatorSpec(
            "conv", OpKind.CONV2D, (4, 8, 8, 8), weight_shape=(8, 3, 3, 3),
            flops=conv2d_flops(4, 3, 8, 8, 8, 3, 3),
        ),
        inputs=["input"],
    )
    dag.add_op(OperatorSpec("relu", OpKind.RELU, (4, 8, 8, 8)), inputs=["conv"])
    dag.add_op(
        OperatorSpec(
            "fc", OpKind.LINEAR, (4, 10), weight_shape=(10, 512),
            flops=linear_flops(4, 512, 10),
        ),
        inputs=["relu"],
    )
    dag.add_op(OperatorSpec("loss", OpKind.LOSS, (1,)), inputs=["fc"])
    return dag


class TestOperatorSpec:
    def test_categories(self):
        assert OperatorSpec("c", OpKind.CONV2D, (1,)).category is OpCategory.ADJUSTABLE
        assert OperatorSpec("l", OpKind.LINEAR, (1,)).category is OpCategory.ADJUSTABLE
        assert OperatorSpec("r", OpKind.RELU, (1,)).category is OpCategory.DEPENDENT
        assert OperatorSpec("a", OpKind.ADD, (1,)).category is OpCategory.DEPENDENT
        assert OperatorSpec("m", OpKind.MATMUL, (1,)).category is OpCategory.FIXED
        assert OperatorSpec("x", OpKind.LOSS, (1,)).category is OpCategory.FIXED

    def test_weighted_ops_support_int8(self):
        spec = OperatorSpec("c", OpKind.CONV2D, (1, 8, 4, 4), weight_shape=(8, 3, 3, 3))
        assert Precision.INT8 in spec.supported_precisions()

    def test_softmax_pinned_fp32(self):
        spec = OperatorSpec("s", OpKind.SOFTMAX, (4, 16))
        assert spec.supported_precisions() == (Precision.FP32,)

    def test_dependent_ops_no_int8(self):
        spec = OperatorSpec("r", OpKind.RELU, (4, 16))
        assert Precision.INT8 not in spec.supported_precisions()
        assert Precision.FP16 in spec.supported_precisions()

    def test_backward_flops(self):
        conv = OperatorSpec("c", OpKind.CONV2D, (1,), weight_shape=(1, 1, 1, 1), flops=100)
        relu = OperatorSpec("r", OpKind.RELU, (1,), flops=100)
        assert conv.backward_flops() == 200
        assert relu.backward_flops() == 100

    def test_elem_counts(self):
        spec = OperatorSpec("c", OpKind.CONV2D, (2, 8, 4, 4), weight_shape=(8, 3, 3, 3))
        assert spec.output_elems == 2 * 8 * 4 * 4
        assert spec.weight_elems == 8 * 3 * 3 * 3
        assert spec.activation_bytes(Precision.FP16) == spec.output_elems * 2
        assert spec.weight_bytes(Precision.FP32) == spec.weight_elems * 4


class TestPrecisionDAG:
    def test_topo_order_respects_edges(self):
        dag = chain_dag()
        order = dag.topo_order()
        assert order.index("input") < order.index("conv") < order.index("fc")

    def test_duplicate_name_rejected(self):
        dag = chain_dag()
        with pytest.raises(GraphConsistencyError):
            dag.add_op(OperatorSpec("conv", OpKind.CONV2D, (1,)))

    def test_unknown_input_rejected(self):
        dag = PrecisionDAG()
        dag.add_op(OperatorSpec("input", OpKind.INPUT, (1,)))
        with pytest.raises(GraphConsistencyError):
            dag.add_op(OperatorSpec("x", OpKind.RELU, (1,)), inputs=["ghost"])

    def test_depth_longest_path(self):
        # Diamond: input -> a -> b -> add, input -> add (skip edge).
        dag = PrecisionDAG()
        dag.add_op(OperatorSpec("input", OpKind.INPUT, (1,)))
        dag.add_op(OperatorSpec("a", OpKind.RELU, (1,)), inputs=["input"])
        dag.add_op(OperatorSpec("b", OpKind.RELU, (1,)), inputs=["a"])
        dag.add_op(OperatorSpec("add", OpKind.ADD, (1,)), inputs=["b", "input"])
        assert dag.depth("add") == 3  # longest path, not shortest

    def test_precision_roundtrip(self):
        dag = chain_dag()
        dag.set_precision("conv", Precision.INT8)
        assert dag.precision("conv") is Precision.INT8
        dag.set_precision("conv", "fp16")
        assert dag.precision("conv") is Precision.FP16

    def test_plan_apply_snapshot(self):
        dag = chain_dag()
        plan = dag.precision_plan()
        assert all(p is Precision.FP32 for p in plan.values())
        dag.apply_plan({"conv": Precision.INT8, "fc": Precision.FP16})
        assert dag.precision("conv") is Precision.INT8
        assert dag.precision("relu") is Precision.FP32

    def test_adjustable_ops(self):
        dag = chain_dag()
        assert dag.adjustable_ops() == ["conv", "fc"]

    def test_copy_is_independent(self):
        dag = chain_dag()
        dup = dag.copy()
        dup.set_precision("conv", Precision.INT8)
        assert dag.precision("conv") is Precision.FP32

    def test_validate_detects_multiple_roots(self):
        dag = PrecisionDAG()
        dag.add_op(OperatorSpec("a", OpKind.INPUT, (1,)))
        dag.add_op(OperatorSpec("b", OpKind.INPUT, (1,)))
        dag.add_op(OperatorSpec("c", OpKind.ADD, (1,)), inputs=["a", "b"])
        with pytest.raises(GraphConsistencyError):
            dag.validate()

    def test_summary_contains_counts(self):
        text = chain_dag().summary()
        assert "2 adjustable" in text


class TestSubgraph:
    def test_group_blocks_singleton_for_unlabelled(self):
        dag = chain_dag()
        groups = group_blocks(dag)
        assert all(len(ops) == 1 for ops in groups.values())

    def test_isomorphic_blocks_share_signature(self):
        dag = PrecisionDAG()
        dag.add_op(OperatorSpec("input", OpKind.INPUT, (1, 4)))
        prev = "input"
        for i in range(3):
            blk = f"block{i}"
            dag.add_op(
                OperatorSpec(f"{blk}.fc", OpKind.LINEAR, (1, 4),
                             weight_shape=(4, 4), block=blk),
                inputs=[prev],
            )
            dag.add_op(
                OperatorSpec(f"{blk}.relu", OpKind.RELU, (1, 4), block=blk),
                inputs=[f"{blk}.fc"],
            )
            prev = f"{blk}.relu"
        groups = group_blocks(dag)
        sigs = {structural_signature(dag, ops) for lbl, ops in groups.items()
                if lbl.startswith("block")}
        assert len(sigs) == 1

    def test_different_shapes_different_signature(self):
        dag = PrecisionDAG()
        dag.add_op(OperatorSpec("input", OpKind.INPUT, (1, 4)))
        dag.add_op(
            OperatorSpec("b0.fc", OpKind.LINEAR, (1, 4), weight_shape=(4, 4), block="b0"),
            inputs=["input"],
        )
        dag.add_op(
            OperatorSpec("b1.fc", OpKind.LINEAR, (1, 8), weight_shape=(8, 4), block="b1"),
            inputs=["b0.fc"],
        )
        groups = group_blocks(dag)
        s0 = structural_signature(dag, groups["b0"])
        s1 = structural_signature(dag, groups["b1"])
        assert s0 != s1

    def test_isomorphism_classes_collapse(self):
        from repro.models import bert_graph

        dag = bert_graph(batch_size=2, seq_len=16)
        classes = isomorphism_classes(dag)
        labels = [lbls for lbls in classes.values() if len(lbls) > 1]
        # All 12 encoder blocks should land in one class.
        assert any(len(lbls) == 12 for lbls in labels)
