"""Tests for the model catalog and trainable mini-models."""

import numpy as np
import pytest

from repro.common import new_rng
from repro.graph.ops import OpKind
from repro.models import (
    MiniConvNet,
    MiniResNet,
    MiniTransformer,
    bert_graph,
    make_mini_model,
    mini_model_graph,
    resnet50_graph,
    roberta_graph,
    vgg16_graph,
)
from repro.models.catalog import vgg16bn_graph
from repro.tensor import Tensor, functional as F
from repro.tensor.qmodules import QuantizedOp


class TestCatalogGraphs:
    def test_resnet50_conv_count(self):
        dag = resnet50_graph(batch_size=2)
        convs = [n for n in dag.adjustable_ops() if dag.spec(n).kind is OpKind.CONV2D]
        # 53 convs total = stem + 48 bottleneck convs + 4 downsample.
        assert len(convs) == 53

    def test_bert_linear_count_matches_paper(self):
        dag = bert_graph(batch_size=2, seq_len=16)
        linears = [n for n in dag.adjustable_ops() if dag.spec(n).kind is OpKind.LINEAR]
        assert len(linears) == 73  # 12 * 6 + 1 head, cited in Sec. II-B

    def test_vgg16_conv_count(self):
        dag = vgg16_graph(batch_size=2, image_size=32)
        convs = [n for n in dag.adjustable_ops() if dag.spec(n).kind is OpKind.CONV2D]
        assert len(convs) == 13

    def test_vgg16bn_has_batchnorm(self):
        dag = vgg16bn_graph(batch_size=2, image_size=32)
        bns = [n for n in dag.nodes() if dag.spec(n).kind is OpKind.BATCHNORM]
        assert len(bns) == 13

    def test_resnet50_flops_magnitude(self):
        # ~4.1 GFLOPs MACs*2 ≈ 8.2 GFLOP per image at 224².
        dag = resnet50_graph(batch_size=1)
        total = dag.total_flops()
        assert 6e9 < total < 12e9

    def test_vgg16_flops_magnitude(self):
        # ~15.5 GMACs -> ~31 GFLOP per image.
        dag = vgg16_graph(batch_size=1)
        assert 25e9 < dag.total_flops() < 40e9

    def test_resnet50_param_count(self):
        dag = resnet50_graph(batch_size=1)
        params = dag.total_weight_elems()
        assert 23e6 < params < 28e6  # ~25.6 M

    def test_bert_param_magnitude(self):
        dag = bert_graph(batch_size=1, seq_len=16)
        params = dag.total_weight_elems()
        assert 80e6 < params < 130e6  # ~110 M with embeddings

    def test_roberta_graph_valid(self):
        dag = roberta_graph(batch_size=2, seq_len=16)
        dag.validate()
        assert dag.max_depth() > 20

    def test_graphs_scale_with_batch(self):
        small = resnet50_graph(batch_size=1).total_flops()
        big = resnet50_graph(batch_size=4).total_flops()
        assert big == pytest.approx(4 * small, rel=1e-6)

    def test_residual_add_has_two_inputs(self):
        dag = resnet50_graph(batch_size=1)
        adds = [n for n in dag.nodes() if dag.spec(n).kind is OpKind.ADD]
        assert all(len(dag.predecessors(a)) == 2 for a in adds)


class TestMiniModels:
    def test_factory_names(self):
        for name in ("mini_vgg", "mini_vggbn", "mini_resnet", "mini_bert", "mini_roberta"):
            model = make_mini_model(name)
            assert model.num_parameters() > 0

    def test_factory_rejects_unknown(self):
        with pytest.raises(KeyError):
            make_mini_model("mini_gpt")

    def test_convnet_forward_shape(self):
        model = MiniConvNet(batch_norm=True)
        x = Tensor(new_rng(0).normal(size=(4, 3, 16, 16)))
        assert model(x).shape == (4, 10)

    def test_resnet_forward_shape(self):
        model = MiniResNet()
        x = Tensor(new_rng(0).normal(size=(4, 3, 16, 16)))
        assert model(x).shape == (4, 10)

    def test_transformer_forward_shape(self):
        model = MiniTransformer()
        tokens = new_rng(0).integers(0, 64, size=(4, 16))
        assert model(tokens).shape == (4, 4)

    def test_models_trainable_end_to_end(self):
        model = MiniConvNet(batch_norm=True, widths=(8, 8), seed=0)
        rng = new_rng(1)
        x = Tensor(rng.normal(size=(8, 3, 16, 16)))
        labels = rng.integers(0, 10, size=8)
        loss = F.cross_entropy(model(x), labels)
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert all(np.all(np.isfinite(g)) for g in grads)


class TestGraphModelMirror:
    """The graph mirror's adjustable node names must equal module paths."""

    @pytest.mark.parametrize(
        "name", ["mini_vgg", "mini_vggbn", "mini_resnet", "mini_bert", "mini_roberta"]
    )
    def test_adjustable_names_match_module_paths(self, name):
        model = make_mini_model(name)
        dag = mini_model_graph(name, batch_size=8)
        graph_adjustable = {
            n for n in dag.adjustable_ops() if dag.spec(n).has_weight
        }
        model_paths = set(QuantizedOp.adjustable_modules(model))
        assert graph_adjustable == model_paths

    def test_graph_plan_installs_on_model(self):
        from repro.common import Precision

        name = "mini_resnet"
        model = make_mini_model(name)
        dag = mini_model_graph(name, batch_size=8)
        plan = {
            op: Precision.FP16
            for op in dag.adjustable_ops()
            if dag.spec(op).has_weight
        }
        QuantizedOp.install_plan(model, plan)  # must not raise

    def test_mirror_depth_ordering(self):
        dag = mini_model_graph("mini_vggbn", batch_size=4)
        adjustable = [n for n in dag.adjustable_ops() if dag.spec(n).has_weight]
        depths = [dag.depth(n) for n in adjustable]
        assert depths == sorted(depths)  # plain chain: monotone depth
