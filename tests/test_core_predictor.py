"""Tests for the Predictor: indicator, DFGs, cost mapper, replayer, simulator."""

import pytest

from repro.backend import LPBackend
from repro.common import Precision, new_rng
from repro.core import (
    CostMapper,
    GlobalDFG,
    GroundTruthSimulator,
    LocalDFG,
    VarianceIndicator,
    effective_precisions,
    grad_precision,
    output_precision,
)
from repro.core.dfg import CommBucket, DFGNode, NodeKind, assign_buckets
from repro.core.indicator import gamma_for_loss
from repro.core.qsync import build_replayer
from repro.graph.dag import PrecisionDAG
from repro.hardware import T4, make_cluster_a
from repro.models import mini_model_graph
from repro.profiling import CastCostCalculator, profile_operator_costs, synthesize_stats


@pytest.fixture(scope="module")
def bert_dag():
    # Production-scale shapes (dim 768, seq 128) on the mini topology.
    return mini_model_graph("mini_bert", batch_size=8, width_scale=24, spatial_scale=8)


@pytest.fixture(scope="module")
def t4_backend():
    return LPBackend(T4)


@pytest.fixture(scope="module")
def t4_catalog(bert_dag, t4_backend):
    return profile_operator_costs(bert_dag, t4_backend, repeats=2)


@pytest.fixture(scope="module")
def t4_casts(t4_backend):
    return CastCostCalculator(t4_backend)


class TestPrecisionRules:
    def test_int8_outputs_fp32(self):
        assert output_precision(Precision.INT8) is Precision.FP32

    def test_fp16_outputs_fp16(self):
        assert output_precision(Precision.FP16) is Precision.FP16

    def test_int8_backward_fp16(self):
        assert grad_precision(Precision.INT8) is Precision.FP16
        assert grad_precision(Precision.FP16) is Precision.FP16
        assert grad_precision(Precision.FP32) is Precision.FP32

    def test_dependent_precision_follows_widest_input(self, bert_dag):
        dag = bert_dag.copy()
        # blocks.0.add1 has inputs attn.out_proj (linear) and embed path.
        dag.set_precision("blocks.0.attn.out_proj", Precision.FP16)
        eff = effective_precisions(dag)
        # out_proj emits FP16 but the residual input is FP32 -> widest wins.
        assert eff["blocks.0.add1"] is Precision.FP32

    def test_cascade_through_dependent_chain(self):
        from repro.graph.ops import OperatorSpec, OpKind

        dag = PrecisionDAG()
        dag.add_op(OperatorSpec("input", OpKind.INPUT, (4, 8)))
        dag.add_op(
            OperatorSpec("fc", OpKind.LINEAR, (4, 8), weight_shape=(8, 8), flops=512),
            inputs=["input"],
        )
        dag.add_op(OperatorSpec("relu", OpKind.RELU, (4, 8), flops=32), inputs=["fc"])
        dag.add_op(OperatorSpec("drop", OpKind.DROPOUT, (4, 8), flops=32), inputs=["relu"])
        dag.add_op(OperatorSpec("loss", OpKind.LOSS, (1,)), inputs=["drop"])
        dag.set_precision("fc", Precision.FP16)
        eff = effective_precisions(dag)
        assert eff["relu"] is Precision.FP16
        assert eff["drop"] is Precision.FP16
        # INT8 output is FP32 -> cascade stops.
        dag.set_precision("fc", Precision.INT8)
        eff = effective_precisions(dag)
        assert eff["relu"] is Precision.FP32


class TestIndicator:
    @pytest.fixture(scope="class")
    def indicator(self, bert_dag):
        stats = synthesize_stats(bert_dag, seed=0)
        return VarianceIndicator(bert_dag, stats, gamma=gamma_for_loss("ce", 8))

    def test_fp32_is_zero(self, indicator):
        assert indicator.omega("blocks.0.fc1", Precision.FP32) == 0.0

    def test_int8_more_sensitive_than_fp16(self, indicator, bert_dag):
        for op in ("blocks.0.fc1", "blocks.1.attn.q_proj", "head"):
            assert indicator.omega(op, Precision.INT8) > indicator.omega(
                op, Precision.FP16
            ) > 0.0

    def test_unknown_op_raises(self, indicator):
        with pytest.raises(KeyError):
            indicator.omega("ghost", Precision.FP16)

    def test_ranking_sorted_descending(self, indicator):
        ranking = indicator.ranking(Precision.INT8)
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)

    def test_relative_ranks_complete(self, indicator, bert_dag):
        ranks = indicator.relative_ranks(Precision.FP16)
        weighted = [n for n in bert_dag.adjustable_ops() if bert_dag.spec(n).has_weight]
        assert set(ranks) == set(weighted)
        assert sorted(ranks.values()) == list(range(len(weighted)))

    def test_gamma_for_loss(self):
        assert gamma_for_loss("ce", 100) == pytest.approx(0.01)
        assert gamma_for_loss("mse", 100) == pytest.approx(0.02)
        with pytest.raises(ValueError):
            gamma_for_loss("hinge", 4)

    def test_real_stats_indicator(self):
        """Indicator built from real instrumented statistics works too."""
        from repro.models import make_mini_model
        from repro.profiling import collect_model_stats
        from repro.tensor import Tensor, functional as F

        model = make_mini_model("mini_vggbn")
        dag = mini_model_graph("mini_vggbn", batch_size=8)
        rng = new_rng(0)

        def data():
            while True:
                yield Tensor(rng.normal(size=(8, 3, 16, 16))), rng.integers(0, 10, 8)

        stats = collect_model_stats(
            model, data(), lambda m, x, y: F.cross_entropy(m(x), y), iterations=2
        )
        ind = VarianceIndicator(dag, stats, gamma_for_loss("ce", 8))
        for op in stats:
            assert ind.omega(op, Precision.INT8) > 0


class TestDFG:
    def test_bucket_assignment_caps(self):
        ops = [(f"op{i}", 10 * 1024**2) for i in range(6)]
        buckets = assign_buckets(ops, bucket_cap_bytes=25 * 1024**2)
        assert len(buckets) == 2
        assert buckets[0].nbytes == 30 * 1024**2

    def test_bucket_assignment_remainder(self):
        buckets = assign_buckets([("a", 1000)], bucket_cap_bytes=25 * 1024**2)
        assert len(buckets) == 1
        assert buckets[0].ops == ("a",)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            DFGNode("x", NodeKind.FORWARD, -1.0)

    def test_bucket_ready_times_ordering(self):
        dfg = LocalDFG("T4", 0)
        dfg.add_forward(DFGNode("f", NodeKind.FORWARD, 1.0))
        for i in range(4):
            dfg.add_backward(DFGNode(f"b{i}", NodeKind.BACKWARD, 0.5, op=f"op{i}"))
        buckets = [CommBucket(0, 100, ("op1",)), CommBucket(1, 100, ("op3",))]
        dfg.set_buckets(buckets, {0: 1, 1: 3})
        ready = dfg.bucket_ready_times()
        assert ready[0] == pytest.approx(2.0)  # fwd 1.0 + two bwd
        assert ready[1] == pytest.approx(3.0)

    def test_global_dfg_requires_matching_buckets(self):
        a, b = LocalDFG("T4", 0), LocalDFG("V100", 1)
        a.set_buckets([CommBucket(0, 10, ("x",))], {0: 0})
        with pytest.raises(ValueError):
            GlobalDFG([a, b])


class TestCostMapper:
    def test_fp32_plan_has_no_casts(self, bert_dag, t4_catalog, t4_casts):
        mapper = CostMapper(bert_dag.copy(), t4_catalog, t4_casts, device=T4)
        dfg = mapper.build_local_dfg("T4", 0)
        assert dfg.cast_time() == 0.0
        assert dfg.forward_time > 0
        assert dfg.backward_time > dfg.forward_time

    def test_quantized_plan_adds_casts(self, bert_dag, t4_catalog, t4_casts):
        dag = bert_dag.copy()
        for op in dag.adjustable_ops():
            if dag.spec(op).has_weight:
                dag.set_precision(op, Precision.INT8)
        mapper = CostMapper(dag, t4_catalog, t4_casts, device=T4)
        dfg = mapper.build_local_dfg("T4", 0)
        assert dfg.cast_time() > 0.0

    def test_fp16_reduces_compute_time(self, bert_dag, t4_catalog, t4_casts):
        base = CostMapper(bert_dag.copy(), t4_catalog, t4_casts, device=T4)
        t_fp32 = base.build_local_dfg("T4", 0).compute_time
        dag = bert_dag.copy()
        for op in dag.adjustable_ops():
            if dag.spec(op).has_weight:
                dag.set_precision(op, Precision.FP16)
        quant = CostMapper(dag, t4_catalog, t4_casts, device=T4)
        t_fp16 = quant.build_local_dfg("T4", 0).compute_time
        assert t_fp16 < t_fp32

    def test_apply_change_equals_full_rebuild(self, bert_dag, t4_catalog, t4_casts):
        """Algorithm 1 incremental == full recompute."""
        dag_a = bert_dag.copy()
        mapper_a = CostMapper(dag_a, t4_catalog, t4_casts, device=T4)
        dfg_inc = mapper_a.apply_change("blocks.0.fc1", Precision.FP16, "T4", 0)

        dag_b = bert_dag.copy()
        dag_b.set_precision("blocks.0.fc1", Precision.FP16)
        mapper_b = CostMapper(dag_b, t4_catalog, t4_casts, device=T4)
        dfg_full = mapper_b.build_local_dfg("T4", 0)

        assert dfg_inc.compute_time == pytest.approx(dfg_full.compute_time)
        assert dfg_inc.cast_time() == pytest.approx(dfg_full.cast_time())

    def test_apply_change_rejects_dependent_op(self, bert_dag, t4_catalog, t4_casts):
        mapper = CostMapper(bert_dag.copy(), t4_catalog, t4_casts, device=T4)
        with pytest.raises(ValueError):
            mapper.apply_change("blocks.0.gelu", Precision.FP16)

    def test_apply_change_rejects_unsupported_precision(
        self, bert_dag, t4_catalog, t4_casts
    ):
        mapper = CostMapper(bert_dag.copy(), t4_catalog, t4_casts, device=T4)
        with pytest.raises(ValueError):
            mapper.apply_change("blocks.0.attn.softmax", Precision.INT8)

    def test_buckets_cover_all_weighted_ops(self, bert_dag, t4_catalog, t4_casts):
        mapper = CostMapper(bert_dag.copy(), t4_catalog, t4_casts, device=T4)
        dfg = mapper.build_local_dfg("T4", 0)
        bucketed = {op for b in dfg.buckets for op in b.ops}
        weighted = set(bert_dag.weighted_ops())
        assert bucketed == weighted


class TestReplayer:
    @pytest.fixture(scope="class")
    def replayer(self):
        cluster = make_cluster_a(2, 2)
        rep, _ = build_replayer(
            lambda: mini_model_graph(
                "mini_bert", batch_size=8, width_scale=24, spatial_scale=8
            ),
            cluster,
            profile_repeats=2,
        )
        return rep

    def test_fp32_simulation_baseline(self, replayer):
        sim = replayer.simulate()
        assert sim.iteration_time > 0
        assert sim.throughput > 0
        assert len(sim.per_device_compute) == 4

    def test_t4_is_slower_at_fp32(self, replayer):
        sim = replayer.simulate()
        v100_time = sim.per_device_compute[0]
        t4_time = sim.per_device_compute[2]
        assert t4_time > v100_time

    def test_quantizing_t4_reduces_iteration_time(self, replayer):
        base = replayer.simulate().iteration_time
        dag = replayer.dags[2]
        plan = {
            op: Precision.FP16
            for op in dag.adjustable_ops()
            if dag.spec(op).has_weight
        }
        replayer.apply_plan(2, plan)
        replayer.apply_plan(3, plan)
        quant = replayer.simulate().iteration_time
        # Restore.
        fp32 = {op: Precision.FP32 for op in plan}
        replayer.apply_plan(2, fp32)
        replayer.apply_plan(3, fp32)
        assert quant < base

    def test_timeline_collection(self, replayer):
        sim = replayer.simulate(collect_timeline=True)
        assert len(sim.timeline) > 0
        streams = {e.stream for e in sim.timeline}
        assert streams == {"cuda", "comm"}
        for e in sim.timeline:
            assert e.end >= e.start

    def test_memory_reported_per_rank(self, replayer):
        sim = replayer.simulate()
        assert set(sim.memory) == {0, 1, 2, 3}
        assert all(m.total > 0 for m in sim.memory.values())

    def test_comm_waits_nonnegative(self, replayer):
        sim = replayer.simulate()
        assert all(w >= 0 for w in sim.comm_wait_time.values())


class TestGroundTruthSimulator:
    def test_replayer_error_under_5_percent(self):
        """The headline predictor claim: < 5% average throughput error."""
        cluster = make_cluster_a(1, 1)
        builder = lambda: mini_model_graph(
            "mini_bert", batch_size=8, width_scale=24, spatial_scale=8
        )
        replayer, backends = build_replayer(builder, cluster, profile_repeats=3)
        # Half-linears configuration (Table III flavor).
        dag_t4 = replayer.dags[1]
        plan = {
            op: Precision.FP16
            for op in dag_t4.adjustable_ops()
            if dag_t4.spec(op).has_weight
        }
        replayer.apply_plan(1, plan)
        predicted = replayer.simulate().iteration_time

        gt = GroundTruthSimulator(cluster, replayer.dags, backends, seed=0)
        actual = gt.run(iterations=5).iteration_time
        err = abs(predicted - actual) / actual
        assert err < 0.05

    def test_ground_truth_deterministic_per_seed(self):
        cluster = make_cluster_a(1, 1)
        builder = lambda: mini_model_graph(
            "mini_vgg", batch_size=8, width_scale=8, spatial_scale=4
        )
        replayer, backends = build_replayer(builder, cluster, profile_repeats=1)
        gt1 = GroundTruthSimulator(cluster, replayer.dags, backends, seed=3)
        gt2 = GroundTruthSimulator(cluster, replayer.dags, backends, seed=3)
        assert gt1.run(2).iteration_time == gt2.run(2).iteration_time

    def test_contention_slows_ground_truth(self):
        cluster = make_cluster_a(1, 1)
        builder = lambda: mini_model_graph(
            "mini_vgg", batch_size=8, width_scale=8, spatial_scale=4
        )
        replayer, backends = build_replayer(builder, cluster, profile_repeats=1)
        lo = GroundTruthSimulator(
            cluster, replayer.dags, backends, comm_contention=0.0, seed=0
        ).run(2)
        hi = GroundTruthSimulator(
            cluster, replayer.dags, backends, comm_contention=0.30, seed=0
        ).run(2)
        assert hi.iteration_time > lo.iteration_time
