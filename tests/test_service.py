"""Plan-serving subsystem tests (PR 9).

Pins the service-layer contracts:

* **parity oracle** — a service-mediated plan is bit-identical to a direct
  ``PlanSession.plan()`` of the same request, in memory and through the
  persistent store, warm and cold-process;
* **coalescing** — identical in-flight requests share one computation and
  one outcome object (white-box deterministic test + threaded stress);
  exactly one profiling pass happens per distinct catalog key no matter
  how many threads race;
* **misses, never errors** — corrupted / truncated / stale-format /
  wrong-key disk artifacts degrade to recomputation with correct results;
* **cross-process keys** — on-disk filenames and request fingerprints are
  invariant under ``PYTHONHASHSEED`` (subprocess probe).
"""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.hardware import make_cluster_a
from repro.service import (
    PROFILE_FORMAT,
    PersistentProfileStore,
    PlanService,
    plan_many,
    request_fingerprint,
)
from repro.service.service import _InFlight
from repro.session import PlanRequest, PlanSession

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Small, fast request shared by most tests: 1 V100 + 1 T4 (two distinct
#: device types), mini graph, single profiling repeat.
CLUSTER = make_cluster_a(1, 1)


def small_request(**overrides) -> PlanRequest:
    kwargs = dict(
        model="mini_vgg",
        model_kwargs={"batch_size": 4},
        cluster=CLUSTER,
        profile_repeats=1,
    )
    kwargs.update(overrides)
    return PlanRequest(**kwargs)


def canon(outcome) -> tuple[str, str]:
    """Bit-exact identity of one outcome: the plan dict (deterministic
    serialization) and the simulated iteration time, bit-for-bit."""
    return (
        json.dumps(outcome.plan.to_dict(), sort_keys=True),
        outcome.simulation.iteration_time.hex(),
    )


# ---------------------------------------------------------------------------
# parity
# ---------------------------------------------------------------------------


def test_service_plan_matches_direct_session():
    request = small_request()
    direct = PlanSession().plan(request)
    served = PlanService().plan(request)
    assert canon(served) == canon(direct)


def test_persistent_roundtrip_is_bit_identical(tmp_path):
    request = small_request()
    direct = PlanSession().plan(request)

    first = PlanService(root=tmp_path)
    warm = first.plan(request)
    assert canon(warm) == canon(direct)
    assert first.stats.catalog_profiles == 2  # V100 + T4, once each
    assert first.stats.disk_misses > 0  # cold disk

    # Fresh service, same root: everything comes from disk, nothing is
    # re-profiled, and the results are bit-identical.
    second = PlanService(root=tmp_path)
    cold_process = second.plan(request)
    stats = second.stats
    assert stats.catalog_profiles == 0
    assert stats.cast_fits == 0
    assert stats.stats_syntheses == 0
    assert stats.disk_hits > 0
    assert stats.disk_misses == 0
    assert canon(cold_process) == canon(direct)


def test_replan_rides_through_the_service(tmp_path):
    from repro.common.units import GBPS
    from repro.hardware import T4, ClusterEvent

    request = small_request(cluster=make_cluster_a(1, 1))
    service = PlanService(root=tmp_path)
    service.plan(request)
    replan = service.replan(
        service.session.last_context,
        [ClusterEvent(0.0, "join", 9, device=T4, link_bandwidth=GBPS)],
    )
    assert replan.new_profile_events == 0  # T4 catalog already warm
    assert replan.outcome.plan is not None


# ---------------------------------------------------------------------------
# coalescing
# ---------------------------------------------------------------------------


def test_identical_requests_have_equal_fingerprints():
    a = small_request()
    b = small_request()  # independently built, same content
    assert a is not b
    fp = request_fingerprint(a)
    assert fp is not None
    assert fp == request_fingerprint(b)
    assert request_fingerprint(small_request(seed=1)) != fp
    assert request_fingerprint(small_request(strategy="uniform")) != fp


def test_opaque_requests_do_not_coalesce():
    from repro.models import mini_model_graph

    opaque = small_request(
        model=lambda: mini_model_graph("mini_vgg", batch_size=4)
    )
    assert request_fingerprint(opaque) is None
    # ... but they are still served correctly.
    outcome = PlanService().plan(opaque)
    assert canon(outcome) == canon(PlanSession().plan(small_request()))


def test_coalesced_followers_share_the_leader_outcome():
    """White-box determinism: with an in-flight entry pre-registered, every
    arriving identical request coalesces onto it — no timing window."""
    service = PlanService()
    request = small_request()
    fp = request_fingerprint(request)
    entry = _InFlight()
    service._inflight[fp] = entry

    results = [None] * 4
    threads = [
        threading.Thread(
            target=lambda i=i: results.__setitem__(i, service.plan(request))
        )
        for i in range(4)
    ]
    for t in threads:
        t.start()
    while service.stats.coalesced_requests < 4:  # all four joined
        threading.Event().wait(0.001)
    sentinel = PlanSession().plan(request)
    entry.outcome = sentinel
    del service._inflight[fp]
    entry.event.set()
    for t in threads:
        t.join()
    assert all(r is sentinel for r in results)  # the SAME object
    assert service.stats.plan_calls == 0  # nobody planned


def test_coalesced_followers_get_the_leader_error():
    service = PlanService()
    request = small_request()
    fp = request_fingerprint(request)
    entry = _InFlight()
    service._inflight[fp] = entry

    seen = []
    thread = threading.Thread(
        target=lambda: seen.append(pytest.raises(RuntimeError, service.plan, request))
    )
    thread.start()
    while service.stats.coalesced_requests < 1:
        threading.Event().wait(0.001)
    entry.error = RuntimeError("leader failed")
    del service._inflight[fp]
    entry.event.set()
    thread.join()
    assert len(seen) == 1


def test_concurrent_stress_profiles_each_catalog_key_once():
    """N threads racing identical + distinct requests: exactly one
    profiling pass per distinct (DAG, device-type) catalog key, and every
    outcome bit-identical to its serial reference."""
    shared = small_request()
    distinct = small_request(model="mini_vggbn")
    serial = {
        "shared": canon(PlanSession().plan(shared)),
        "distinct": canon(PlanSession().plan(distinct)),
    }

    service = PlanService()
    results: list = [None] * 12
    def worker(i):
        request = shared if i % 2 == 0 else distinct
        results[i] = (("shared" if i % 2 == 0 else "distinct"),
                      service.plan(request))
    threads = [threading.Thread(target=worker, args=(i,)) for i in range(12)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    for label, outcome in results:
        assert canon(outcome) == serial[label]
    # 2 models x 2 device types = 4 catalog keys; 2 backends' cast fits.
    stats = service.stats
    assert stats.catalog_profiles == 4
    assert stats.cast_fits == 2
    assert stats.plan_calls + stats.coalesced_requests == 12


# ---------------------------------------------------------------------------
# plan_many
# ---------------------------------------------------------------------------


def test_plan_many_dedupes_and_preserves_order():
    a = small_request()
    b = small_request(strategy="uniform")
    service = PlanService()
    outcomes = service.plan_many([a, b, small_request(), a])
    assert outcomes[0] is outcomes[2] is outcomes[3]  # identical content
    assert outcomes[1] is not outcomes[0]
    assert service.stats.plan_calls == 2  # two distinct requests
    assert service.stats.coalesced_requests == 2
    assert canon(outcomes[1]) == canon(PlanSession().plan(b))


def test_plan_many_groups_amortize_profiling():
    # Interleaved models: grouping must still profile each catalog key once.
    a, b = small_request(), small_request(model="mini_vggbn")
    service = PlanService()
    outcomes = service.plan_many(
        [a, b, small_request(seed=1), small_request(model="mini_vggbn", seed=1)]
    )
    assert service.stats.catalog_profiles == 4  # 2 models x 2 device types
    assert len(outcomes) == 4 and all(o is not None for o in outcomes)


def test_module_level_plan_many(tmp_path):
    outcomes = plan_many([small_request()], root=tmp_path)
    assert canon(outcomes[0]) == canon(PlanSession().plan(small_request()))
    assert len(PersistentProfileStore(tmp_path).entries()) > 0


def test_root_and_session_are_mutually_exclusive(tmp_path):
    with pytest.raises(ValueError):
        PlanService(root=tmp_path, session=PlanSession())


# ---------------------------------------------------------------------------
# disk defects degrade to misses
# ---------------------------------------------------------------------------


def _poison(path: Path, how: str) -> None:
    if how == "truncated":
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
    elif how == "garbage":
        path.write_bytes(b"\x00\xff not json \xfe")
    elif how == "stale_format":
        doc = json.loads(path.read_text())
        doc["format"] = PROFILE_FORMAT + 1
        path.write_text(json.dumps(doc))
    elif how == "wrong_key":
        doc = json.loads(path.read_text())
        doc["key"] = ["catalog", "somebody", "else", 1]
        path.write_text(json.dumps(doc))
    elif how == "payload_shape":
        doc = json.loads(path.read_text())
        doc["payload"] = {"costs": "not-a-list"}
        path.write_text(json.dumps(doc))


@pytest.mark.parametrize(
    "how", ["truncated", "garbage", "stale_format", "wrong_key", "payload_shape"]
)
def test_defective_artifacts_are_misses_not_errors(tmp_path, how):
    request = small_request()
    reference = canon(PlanSession().plan(request))
    warm = PlanService(root=tmp_path)
    warm.plan(request)
    store = warm.session.profiles
    assert len(store.entries()) > 0
    for path in store.entries():
        _poison(path, how)

    service = PlanService(root=tmp_path)
    outcome = service.plan(request)
    assert canon(outcome) == reference  # recomputed, still exact
    stats = service.stats
    assert stats.disk_hits == 0
    assert stats.disk_misses > 0
    assert stats.catalog_profiles == 2  # paid the re-profile, no more


def test_unwritable_root_still_plans(tmp_path, monkeypatch):
    # A failing write is a silent no-op (cache, not a database).
    service = PlanService(root=tmp_path)
    monkeypatch.setattr(os, "replace", lambda *a: (_ for _ in ()).throw(OSError()))
    outcome = service.plan(small_request())
    assert outcome.plan is not None
    assert len(service.session.profiles.entries()) == 0


def test_clear_removes_artifacts(tmp_path):
    service = PlanService(root=tmp_path)
    service.plan(small_request())
    store = service.session.profiles
    n = len(store)
    assert n > 0
    assert store.clear() == n
    assert len(store) == 0


# ---------------------------------------------------------------------------
# cross-process key stability
# ---------------------------------------------------------------------------

_PROBE = r"""
import json, sys, tempfile
from repro.hardware import make_cluster_a
from repro.service import PlanService, cluster_fingerprint, request_fingerprint
from repro.session import PlanRequest

cluster = make_cluster_a(1, 1)
request = PlanRequest(
    model="mini_vgg", model_kwargs={"batch_size": 4},
    cluster=cluster, profile_repeats=1, seed=7,
)
with tempfile.TemporaryDirectory() as root:
    service = PlanService(root=root)
    service.plan(request)
    names = [p.name for p in service.session.profiles.entries()]
print(json.dumps({
    "request_fingerprint": request_fingerprint(request),
    "cluster_fingerprint": cluster_fingerprint(cluster),
    "artifact_names": names,
}))
"""


def _probe(hashseed: int) -> dict:
    env = os.environ.copy()
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_disk_keys_and_fingerprints_survive_hash_seed():
    a = _probe(0)
    b = _probe(4242)
    assert a["request_fingerprint"] == b["request_fingerprint"]
    assert a["cluster_fingerprint"] == b["cluster_fingerprint"]
    assert a["artifact_names"] == b["artifact_names"]
    assert len(a["artifact_names"]) >= 5  # 2 catalogs + 2 casts + stats
