"""Property tests for the quantization primitives under the planner.

Pins the two contracts everything upstream leans on: **unbiasedness** of
stochastic rounding (Proposition 1's requirement, checked Monte-Carlo
against the exact Bernoulli mean) and the **edge-case totality** of the
Proposition-2 variance formulas (empty tensors, zero dims, degenerate
scales must yield finite zeros, never NaN), plus the same properties for
the QSGD gradient codec built on top of them.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.quant.qsgd import (
    COMPRESSION_LEVELS,
    LEVEL_BITS,
    CompressionConfig,
    codec_seconds,
    compressed_nbytes,
    level_bits,
    qsgd_dequantize,
    qsgd_quantize,
    qsgd_variance_factor,
)
from repro.quant.stochastic import stochastic_round
from repro.quant.variance import (
    effective_exponent,
    fixed_point_variance,
    quantization_mse,
)


class TestStochasticRound:
    def test_unbiased_mean(self):
        # E[SR(x)] = x exactly; the Monte-Carlo mean of n draws has std
        # sqrt(p(1-p)/n) <= 0.5/sqrt(n), so 5 sigma at n=40000 is < 0.013.
        rng = np.random.default_rng(7)
        for x in (0.25, 1.5, 3.9, -0.3, -2.75):
            draws = stochastic_round(np.full(40_000, x), rng)
            assert abs(float(draws.mean()) - x) < 0.013, x

    def test_integers_are_fixed_points(self):
        rng = np.random.default_rng(0)
        grid = np.array([-3.0, -1.0, 0.0, 2.0, 17.0])
        assert np.array_equal(stochastic_round(grid, rng), grid)

    def test_rounds_to_adjacent_integers_only(self):
        rng = np.random.default_rng(1)
        x = np.linspace(-5.0, 5.0, 10_001)
        out = stochastic_round(x, rng)
        assert np.all((out == np.floor(x)) | (out == np.floor(x) + 1))

    def test_empty_input(self):
        rng = np.random.default_rng(2)
        assert stochastic_round(np.array([]), rng).shape == (0,)


class TestVarianceEdgeCases:
    def test_fixed_point_variance_scalar(self):
        assert fixed_point_variance(0.5, 12) == pytest.approx(0.25 * 12 / 6)

    def test_fixed_point_variance_channelwise(self):
        # dims spread evenly: 8 elements over 2 channels -> 4 per channel.
        scales = np.array([0.5, 1.0])
        expected = (0.25 + 1.0) * 4 / 6
        assert fixed_point_variance(scales, 8) == pytest.approx(expected)

    def test_fixed_point_variance_zero_dims(self):
        assert fixed_point_variance(0.5, 0) == 0.0

    def test_fixed_point_variance_empty_scale(self):
        # No quantizer channels: finite zero, not a NaN from 0-size mean.
        assert fixed_point_variance(np.array([]), 16) == 0.0

    def test_quantization_mse_known_value(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 2.5, 2.5])
        assert quantization_mse(a, b) == pytest.approx(0.5 / 3)

    def test_quantization_mse_empty(self):
        assert quantization_mse(np.array([]), np.array([])) == 0.0

    def test_quantization_mse_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            quantization_mse(np.zeros(3), np.zeros(4))

    def test_effective_exponent_empty_and_zero(self):
        assert effective_exponent(np.array([])) == -126.0
        assert effective_exponent(np.zeros(5)) == -126.0


class TestQsgdCodec:
    def test_quantize_unbiased(self):
        # E[dequantize(quantize(g))] = g: average many independent casts.
        rng = np.random.default_rng(3)
        g = rng.normal(size=64)
        acc = np.zeros_like(g)
        n = 400
        for seed in range(n):
            levels, signs, norm = qsgd_quantize(g, 4, seed, "t")
            acc += qsgd_dequantize(levels, signs, norm, 4)
        # Per-element MC std is <= norm/(s*2*sqrt(n)); 5 sigma bound.
        tol = 5 * float(np.max(np.abs(g))) / (15 * 2 * np.sqrt(n))
        assert np.all(np.abs(acc / n - g) < tol)

    def test_quantize_deterministic_per_seed(self):
        g = np.linspace(-1.0, 1.0, 33)
        a = qsgd_quantize(g, 8, 7, "bucket", 0)
        b = qsgd_quantize(g, 8, 7, "bucket", 0)
        c = qsgd_quantize(g, 8, 7, "bucket", 1)
        assert np.array_equal(a[0], b[0]) and a[2] == b[2]
        assert not np.array_equal(a[0], c[0])

    def test_zero_tensor(self):
        levels, signs, norm = qsgd_quantize(np.zeros(5), 2, 0)
        assert norm == 0.0 and not levels.any()
        assert not qsgd_dequantize(levels, signs, norm, 2).any()

    def test_bits_validated(self):
        with pytest.raises(ValueError):
            qsgd_quantize(np.ones(2), 32, 0)
        with pytest.raises(ValueError):
            qsgd_dequantize(np.ones(2), np.ones(2), 1.0, 0)


class TestPlanningSideModels:
    def test_level_bits_ladder(self):
        assert [level_bits(lvl) for lvl in COMPRESSION_LEVELS] == [32, 8, 4, 2]
        with pytest.raises(ValueError, match="unknown compression level"):
            level_bits(9)

    def test_compressed_nbytes_parity_and_packing(self):
        assert compressed_nbytes(1000, None) == 1000
        assert compressed_nbytes(1000, 32) == 1000
        # 250 elements at 8 bits = 250 payload bytes + 8 header.
        assert compressed_nbytes(1000, 8) == 258
        # 4x fewer payload bits at 2 bits, integer-ceiling packed.
        assert compressed_nbytes(1000, 2) == (250 * 2 + 7) // 8 + 8
        with pytest.raises(ValueError):
            compressed_nbytes(1000, 0)

    def test_codec_and_variance_vanish_uncompressed(self):
        assert codec_seconds(10**9, None) == 0.0
        assert codec_seconds(10**9, 32) == 0.0
        assert codec_seconds(10**9, 8) > 0.0
        assert qsgd_variance_factor(None) == 0.0
        assert qsgd_variance_factor(32) == 0.0
        # 64/(6 s^2): monotone decreasing in bits.
        assert qsgd_variance_factor(2) > qsgd_variance_factor(4) > (
            qsgd_variance_factor(8)
        ) > 0.0
        s = float(2**8 - 1)
        assert qsgd_variance_factor(8) == pytest.approx(64.0 / (6.0 * s * s))

    def test_compression_config_validation(self):
        assert CompressionConfig().levels == COMPRESSION_LEVELS
        CompressionConfig(levels=(0,))  # the parity pin is always legal
        with pytest.raises(ValueError, match="non-empty"):
            CompressionConfig(levels=())
        with pytest.raises(ValueError, match="start at level 0"):
            CompressionConfig(levels=(1, 2))
        with pytest.raises(ValueError, match="ascending"):
            CompressionConfig(levels=(0, 2, 1))
        with pytest.raises(ValueError, match="unknown compression level"):
            CompressionConfig(levels=(0, 9))
        with pytest.raises(ValueError, match="loss_budget"):
            CompressionConfig(loss_budget=-0.5)

    def test_ladder_registry_shape(self):
        # Append-only vocabulary: every ladder rung has a bit width and the
        # rungs strictly shrink on the wire.
        widths = [LEVEL_BITS[lvl] for lvl in COMPRESSION_LEVELS]
        assert widths == sorted(widths, reverse=True)
