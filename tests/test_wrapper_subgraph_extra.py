"""Additional coverage: security-wrapper edge cases, subgraph classes on
catalog models, casting-model family completeness, stats probes."""

import numpy as np

from repro.backend import LPBackend, SecurityWrapper
from repro.common import Precision, new_rng
from repro.graph.ops import OpKind
from repro.graph.subgraph import group_blocks, isomorphism_classes
from repro.hardware import T4, V100
from repro.models import resnet50_graph, roberta_graph, vgg16_graph
from repro.profiling.casting import CAST_PAIRS, CastCostCalculator


class TestSecurityWrapperEdges:
    def test_already_aligned_is_untouched(self):
        w = SecurityWrapper("sm80")
        call = w.wrap(OpKind.MATMUL, Precision.INT8, (64, 512, 1024))
        assert call.use_tensor_cores
        assert call.padded_problem == (64, 512, 1024)
        assert call.padding_waste == 0.0

    def test_m_may_be_ragged(self):
        # Only N/K carry alignment requirements; M (rows) may be anything.
        w = SecurityWrapper("sm75")
        call = w.wrap(OpKind.LINEAR, Precision.FP16, (1337, 768, 768))
        assert call.use_tensor_cores
        assert call.padding_waste == 0.0

    def test_unsupported_arch_falls_to_simt(self):
        w = SecurityWrapper("simt")
        call = w.wrap(OpKind.LINEAR, Precision.FP16, (128, 128, 128))
        assert not call.use_tensor_cores


class TestSubgraphOnCatalogModels:
    def test_resnet50_stage_blocks_share_classes(self):
        dag = resnet50_graph(batch_size=2)
        classes = isomorphism_classes(dag)
        multi = [lbls for lbls in classes.values() if len(lbls) > 1]
        # Non-downsample bottlenecks within a stage are isomorphic:
        # layer1 has 2 such, layer2 3, layer3 5, layer4 2.
        sizes = sorted(len(l) for l in multi)
        assert sizes.count(2) >= 2
        assert 5 in sizes

    def test_roberta_encoder_blocks_collapse(self):
        dag = roberta_graph(batch_size=2, seq_len=16)
        classes = isomorphism_classes(dag)
        assert any(len(lbls) == 12 for lbls in classes.values())

    def test_vgg_stages_grouped(self):
        dag = vgg16_graph(batch_size=2, image_size=32)
        blocks = group_blocks(dag)
        assert "stage0" in blocks and "classifier" in blocks
        # stage0 holds its convs/relus.
        kinds = {dag.spec(op).kind for op in blocks["stage0"]}
        assert OpKind.CONV2D in kinds


class TestCastingFamilyCompleteness:
    def test_every_pair_has_distinct_behaviour(self):
        calc = CastCostCalculator(LPBackend(T4))
        elems = 2_000_000
        preds = {pair: calc.predict(*pair, elems) for pair in CAST_PAIRS}
        # Quantization (needs MinMax) dominates float copies.
        assert preds[(Precision.FP32, Precision.INT8)] > preds[
            (Precision.FP32, Precision.FP16)
        ]
        # FP16 source quantization moves fewer bytes than FP32 source.
        assert preds[(Precision.FP16, Precision.INT8)] < preds[
            (Precision.FP32, Precision.INT8)
        ]

    def test_v100_calculator_skips_nothing(self):
        # V100 lacks INT8 *compute* but the cast family still fits (casts
        # are memory ops); the calculator must not crash on any pair.
        calc = CastCostCalculator(LPBackend(V100))
        for pair in CAST_PAIRS:
            assert calc.predict(*pair, 10**5) >= 0.0


class TestStatsProbeIsolation:
    def test_install_recorder_does_not_change_outputs(self):
        from repro.models import make_mini_model
        from repro.profiling.stats import StatsRecorder, install_recorder
        from repro.tensor import Tensor

        rng = new_rng(0)
        x = Tensor(rng.normal(size=(4, 3, 16, 16)))
        clean = make_mini_model("mini_vggbn", seed=0)
        ref = clean(x).numpy()

        probed = make_mini_model("mini_vggbn", seed=0)
        install_recorder(probed, StatsRecorder())
        np.testing.assert_array_equal(probed(x).numpy(), ref)

    def test_recorder_counts_match_instrumented_paths(self):
        from repro.models import make_mini_model
        from repro.profiling.stats import StatsRecorder, install_recorder
        from repro.tensor import Tensor

        model = make_mini_model("mini_resnet", seed=0)
        recorder = StatsRecorder()
        paths = install_recorder(model, recorder)
        model(Tensor(new_rng(1).normal(size=(2, 3, 16, 16))))
        assert set(recorder.snapshot()) == set(paths)
