"""Fixture: an RPR001 suppression with a written reason is honored."""
# repro: module repro.core.lint_fixture_rpr001_sup


def legacy_memo_key(graph):
    return hash(graph.name)  # repro: allow RPR001 in-process memo only; key never leaves this interpreter
