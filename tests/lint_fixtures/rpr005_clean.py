"""Fixture: the append-only registration idiom passes RPR005."""

SCHEDULE_POLICIES = {"ddp_overlap": object}


def register_policy(name, policy):
    if name in SCHEDULE_POLICIES:
        raise ValueError(f"policy {name!r} is already registered")
    SCHEDULE_POLICIES[name] = policy


register_policy("blocking_sync", object)
