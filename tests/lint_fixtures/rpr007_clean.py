# repro: module repro.core.kernel_consumer_fixture
"""Fixture: the sanctioned idiom — read compiled buffers, derive fresh arrays."""

import numpy as np

from repro.kernel import candidate_row, compile_local, evaluate


def read_only(ldfg, layout, cg):
    cl = compile_local(ldfg, layout)
    iteration, comm_end = evaluate(cg)
    # Reads are fine; so are fresh derived arrays.
    shifted = cl.ready + comm_end
    scratch = np.empty_like(shifted)
    np.maximum(shifted, iteration, out=scratch)  # out= on *our* array
    return scratch


def splice(cl, change):
    # candidate_row allocates its result; callers may mutate their own copy.
    row, compute_end = candidate_row(cl, change)
    mine = row.copy()
    mine[0] = compute_end
    return mine
