"""Fixture: RPR004 catches runtime engine→session imports, any scope."""
# repro: module repro.engine.lint_fixture_rpr004
from repro.session.request import PlanRequest  # expect: RPR004


def build_session():
    from repro.session import PlanSession  # expect: RPR004

    return PlanSession()


def describe(request: PlanRequest) -> str:
    return request.model
