"""Fixture: RPR004 catches runtime session→service imports, any scope."""
# repro: module repro.session.lint_fixture_rpr004_service
from repro.service.store import PersistentProfileStore  # expect: RPR004


def build_service():
    from repro.service import PlanService  # expect: RPR004

    return PlanService()


def describe(store: PersistentProfileStore) -> str:
    return str(store.root)
