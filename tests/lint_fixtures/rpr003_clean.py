"""Fixture: rank-identity lookups pass RPR003."""


def worker_for(cluster, rank):
    by_rank = {w.rank: w for w in cluster.workers}
    return by_rank[rank]


def slowest_rank(cluster):
    return max(w.rank for w in cluster.workers)


def training_workers(cluster):
    return [w for w in cluster.workers if w.is_training]
