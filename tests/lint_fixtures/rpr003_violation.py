"""Fixture: RPR003 catches positional indexing into worker tuples."""


def worker_for(cluster, rank):
    return cluster.workers[rank]  # expect: RPR003


def last_worker(ctx):
    return ctx.cluster.workers[-1]  # expect: RPR003


def first_slice(cluster):
    return cluster.workers[:2]  # expect: RPR003
