"""Fixture: a reasoned RPR005 suppression (e.g. test teardown) is honored."""

SCHEDULE_POLICIES = {"ddp_overlap": object}


def remove_fixture_policy(name):
    SCHEDULE_POLICIES.pop(name)  # repro: allow RPR005 test-harness teardown restores the pristine registry between cases
