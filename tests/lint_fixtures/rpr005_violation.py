"""Fixture: RPR005 catches every non-append registry mutation."""

SCHEDULE_POLICIES = {"ddp_overlap": object}

SCHEDULE_POLICIES = {"blocking_sync": object}  # expect: RPR005


def prune():
    SCHEDULE_POLICIES.pop("ddp_overlap")  # expect: RPR005


def drop():
    del SCHEDULE_POLICIES["ddp_overlap"]  # expect: RPR005


def rebuild():
    global EVENT_KINDS
    EVENT_KINDS = ()  # expect: RPR005


def reorder(registry_module):
    registry_module.CLUSTER_PRESETS.clear()  # expect: RPR005
