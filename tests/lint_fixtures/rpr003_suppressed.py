"""Fixture: a line-scoped RPR003 suppression with a reason is honored."""


def demo_of_old_idiom(cluster):
    return cluster.workers[0]  # repro: allow RPR003 docs demo of the pre-PR5 idiom; never runs on churned clusters
