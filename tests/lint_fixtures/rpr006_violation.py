"""Fixture: RPR006 catches in-place mutation of published DFGs/templates."""


def slow_down(node, factor):
    node.duration = node.duration * factor  # expect: RPR006


def scale(node, factor):
    node.duration *= factor  # expect: RPR006


def retune(ctx):
    ctx.template.batch_size = 64  # expect: RPR006


def deep_poke(ctx):
    ctx.template.nodes[0].kind = "other"  # expect: RPR006
