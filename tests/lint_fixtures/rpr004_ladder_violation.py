"""Fixture: RPR004 catches module-scope imports that point up the ladder."""
# repro: module repro.hardware.lint_fixture_rpr004_ladder
from repro.core.plan import PrecisionPlan  # expect: RPR004


def describe(plan: PrecisionPlan) -> str:
    return str(plan)
