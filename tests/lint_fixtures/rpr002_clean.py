"""Fixture: seed-derived generators pass RPR002."""
# repro: module repro.engine.lint_fixture_rpr002_clean
import numpy as np

from repro.common.rng import derive_seed, new_rng


def make_generator(seed):
    return np.random.default_rng(derive_seed(seed, "fixture"))


def helper_generator(seed):
    return new_rng(derive_seed(seed, "fixture", "helper"))
