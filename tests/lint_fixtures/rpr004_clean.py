"""Fixture: TYPE_CHECKING-guarded upward imports pass RPR004 (the PR 6 idiom)."""
# repro: module repro.engine.lint_fixture_rpr004_clean
from typing import TYPE_CHECKING

from repro.common.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.request import PlanRequest


def fixture_seed(request: "PlanRequest") -> int:
    return derive_seed(0, request.model)
