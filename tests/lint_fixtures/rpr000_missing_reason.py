"""Fixture: reason-less / malformed suppressions are themselves violations.

A suppression without a written reason does NOT silence the underlying
rule — both RPR000 and the original finding are reported.  Expected
findings (asserted explicitly in tests/test_analysis.py, not via inline
annotations, which would read as the suppression reason):

* the reason-less allow line: RPR000 AND RPR003 (still unsuppressed)
* the typo-verb directive line: RPR000 (unknown directive verb)
"""


def f(cluster):
    return cluster.workers[0]  # repro: allow RPR003


# repro: typo-verb RPR003 this directive verb does not exist
