"""Fixture: RPR001 catches salt-dependent keys on the key-feeding layers."""
# repro: module repro.core.lint_fixture_rpr001


def cache_key(graph):
    return hash(graph.name)  # expect: RPR001


def bucket_index(obj, n):
    return id(obj) % n  # expect: RPR001


def visit(ops):
    for op in {o.lower() for o in ops}:  # expect: RPR001
        yield op


def freeze_order(ops):
    return list(set(ops))  # expect: RPR001
