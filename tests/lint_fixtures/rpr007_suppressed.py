# repro: module repro.core.kernel_consumer_fixture
"""Fixture: a reasoned RPR007 suppression is honored."""

from repro.kernel import compile_local


def scrub(ldfg):
    cl = compile_local(ldfg)
    cl.ready[0] = 0.0  # repro: allow RPR007 test harness resets a throwaway compilation it owns exclusively
    return cl
