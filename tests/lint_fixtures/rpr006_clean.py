"""Fixture: copy-then-mutate and constructor stores pass RPR006."""

import dataclasses


class NodeBuilder:
    def __init__(self, duration):
        # Constructor stores on self are the object's own initialization.
        self.duration = duration


def slowed_copy(node, factor):
    return dataclasses.replace(node, duration=node.duration * factor)


def what_if(ctx, op, precision):
    dag = ctx.template.copy()
    dag.set_precision(op, precision)
    return dag
