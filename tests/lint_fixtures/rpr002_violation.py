"""Fixture: RPR002 catches wall clocks and unstable RNG on deterministic paths."""
# repro: module repro.engine.lint_fixture_rpr002
import random
import time
from datetime import datetime

import numpy as np


def stamp():
    return time.time()  # expect: RPR002


def tick():
    return time.perf_counter()  # expect: RPR002


def today():
    return datetime.now()  # expect: RPR002


def jitter():
    return random.random()  # expect: RPR002


def draw():
    return np.random.normal()  # expect: RPR002


def make_generator():
    return np.random.default_rng()  # expect: RPR002
