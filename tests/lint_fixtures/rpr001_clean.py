"""Fixture: the sanctioned stable-key idioms pass RPR001."""
# repro: module repro.core.lint_fixture_rpr001_clean
from repro.common.stable_hash import stable_hash, stable_mod


def cache_key(graph):
    return stable_hash(graph.name)


def bucket_index(obj, n):
    return stable_mod(obj.name, n)


def visit(ops):
    for op in sorted({o.lower() for o in ops}):
        yield op


def freeze_order(ops):
    return sorted(set(ops))
