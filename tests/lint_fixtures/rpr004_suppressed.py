"""Fixture: a sanctioned layering exception carries a written reason."""
# repro: module repro.profiling.lint_fixture_rpr004_sup
from repro.core.plan import PrecisionPlan  # repro: allow RPR004 call-time delegation upward is sanctioned for plan serialization


def round_trip(plan: PrecisionPlan) -> PrecisionPlan:
    return PrecisionPlan.from_dict(plan.to_dict())
