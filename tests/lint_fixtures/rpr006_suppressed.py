"""Fixture: a reasoned RPR006 suppression is honored."""


def scrub(node):
    node.duration = 0.0  # repro: allow RPR006 node is builder-owned here and unpublished until assembly returns
