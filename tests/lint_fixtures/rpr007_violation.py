# repro: module repro.core.kernel_consumer_fixture
"""Fixture: RPR007 catches in-place mutation of compiled kernel buffers."""

import numpy as np

from repro.kernel import candidate_row, compile_global, compile_local


def poke_local(ldfg, layout):
    cl = compile_local(ldfg, layout)
    cl.ready[0] = 0.0  # expect: RPR007
    cl.bwd_durs[1:] = 1.0  # expect: RPR007
    return cl


def unfreeze(ldfg):
    cl = compile_local(ldfg)
    cl.ready.flags.writeable = True  # expect: RPR007
    cl.bwd_durs.setflags(write=True)  # expect: RPR007
    return cl


def clobber_global(rank_locals, durs, change):
    cg = compile_global(rank_locals, durs)
    cg.durations += 1.0  # expect: RPR007
    row, end = candidate_row(cg, change)
    row[0] = end  # expect: RPR007
    np.maximum(row, 0.0, out=row)  # expect: RPR007
    return cg
