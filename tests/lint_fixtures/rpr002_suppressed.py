"""Fixture: a file-scoped RPR002 suppression (own-line comment) is honored."""
# repro: module repro.experiments.lint_fixture_rpr002_sup
# repro: allow RPR002 wall-clock feeds progress reporting only; timings never enter artifacts or fingerprints
import time


def elapsed(t0):
    return time.perf_counter() - t0


def now():
    return time.time()
