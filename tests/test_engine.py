"""Discrete-event engine: analytic parity, policies, perturbations, and the
unified cost-source assembly path.

The contract under test (the PR 3/PR 4 discipline): the analytic Eq. (6)
closed form is the *oracle* — under ``DDPOverlapPolicy`` with no
perturbation the engine must reproduce it bit-for-bit on arbitrary global
DFGs, timeline included.  Everything the engine adds (blocking schedules,
deterministic stragglers, bandwidth drift) is then validated against
orderings and against the oracle replayed on transformed inputs.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.backend import LPBackend
from repro.baselines import DproReplayer
from repro.common import Precision
from repro.common.rng import derive_seed, new_rng
from repro.core import CostMapper, GroundTruthSimulator
from repro.core.dfg import (
    CommBucket,
    DFGNode,
    GlobalDFG,
    LocalDFG,
    NodeKind,
    bucket_readiness_from_stream,
)
from repro.core.replayer import Replayer, simulate_global_dfg
from repro.engine import (
    SCHEDULE_POLICIES,
    BlockingSyncPolicy,
    CatalogCostSource,
    DDPOverlapPolicy,
    Perturbation,
    assemble_local_dfg,
    resolve_schedule_policy,
    run_engine,
)
from repro.engine.core import execute_global_dfg
from repro.graph.dag import PrecisionDAG
from repro.graph.ops import OperatorSpec, OpKind
from repro.hardware import T4, V100, Cluster, Worker
from repro.models import mini_model_graph
from repro.profiling import CastCostCalculator, profile_operator_costs
from repro.session import PlanRequest, PlanSession

GBPS = 1024**3


# ---------------------------------------------------------------------------
# random global DFGs (richer than the hand pins: uneven streams, shared
# readiness anchors, forward-end-ready buckets, zero-cost optimizers)
# ---------------------------------------------------------------------------


def _random_gdfg(rng, n_ranks, n_buckets):
    locals_ = []
    for rank in range(n_ranks):
        dfg = LocalDFG(f"dev{rank % 2}", rank)
        for i in range(int(rng.integers(1, 6))):
            dfg.add_forward(
                DFGNode(f"f{i}", NodeKind.FORWARD, float(rng.uniform(1e-4, 1e-2)))
            )
        n_bwd = int(rng.integers(max(1, n_buckets), 8))
        for i in range(n_bwd):
            dfg.add_backward(
                DFGNode(f"b{i}", NodeKind.BACKWARD,
                        float(rng.uniform(1e-4, 1e-2)), op=f"op{i}")
            )
        buckets = [
            CommBucket(j, int(rng.integers(10**5, 10**7)), (f"op{j}",))
            for j in range(n_buckets)
        ]
        # Anchors anywhere in the stream, including -1 (= forward end).
        ready = {
            j: int(rng.integers(-1, n_bwd)) for j in range(n_buckets)
        }
        dfg.set_buckets(buckets, ready)
        if rng.uniform() < 0.8:
            dfg.set_optimizer(float(rng.uniform(1e-4, 1e-3)))
        locals_.append(dfg)
    return GlobalDFG(locals_)


def _cluster(n_ranks):
    return Cluster(
        name="x",
        workers=tuple(
            Worker(rank=r, device=T4 if r % 2 else V100, link_bandwidth=8 * GBPS)
            for r in range(n_ranks)
        ),
    )


class TestEngineAnalyticParity:
    @given(st.integers(0, 10_000), st.integers(1, 4), st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_bit_parity_on_random_dfgs(self, seed, n_ranks, n_buckets):
        """Engine(DDPOverlapPolicy) == analytic Eq. (6), field for field,
        timeline included — exact float equality, no tolerance."""
        rng = new_rng(seed)
        gdfg = _random_gdfg(rng, n_ranks, n_buckets)
        cluster = _cluster(n_ranks)
        analytic = simulate_global_dfg(gdfg, cluster, collect_timeline=True)
        engine = run_engine(gdfg, cluster, collect_timeline=True)
        assert engine == analytic

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_bit_parity_under_hierarchical_collectives(self, seed):
        rng = new_rng(seed)
        gdfg = _random_gdfg(rng, 4, 2)
        cluster = _cluster(4)
        analytic = simulate_global_dfg(
            gdfg, cluster, collect_timeline=True, collective_model="hierarchical"
        )
        engine = run_engine(
            gdfg, cluster, collect_timeline=True, collective_model="hierarchical"
        )
        assert engine == analytic

    def test_replayer_timeline_route_matches_analytic(self):
        """Replayer.simulate(collect_timeline=True) rides the engine; the
        result must equal the analytic oracle on the same global DFG."""
        ctx = PlanSession().prepare(
            PlanRequest(model="mini_bert", model_kwargs={"batch_size": 4},
                        cluster="cluster_a_4+4", profile_repeats=1)
        )
        replayer = ctx.replayer
        gdfg = replayer.build_global_dfg()
        analytic = simulate_global_dfg(
            gdfg, replayer.cluster, collect_timeline=True,
            memory={w.rank: replayer.memory_estimate(w.rank)
                    for w in replayer.cluster.workers},
            collective_model=replayer.collective_model,
        )
        assert replayer.simulate(collect_timeline=True) == analytic

    def test_dispatcher_uses_analytic_fast_path_semantics(self):
        """execute_global_dfg with defaults == simulate_global_dfg, and the
        engine route (timeline) == the analytic timeline."""
        rng = new_rng(7)
        gdfg = _random_gdfg(rng, 3, 2)
        cluster = _cluster(3)
        assert execute_global_dfg(gdfg, cluster) == simulate_global_dfg(gdfg, cluster)
        assert execute_global_dfg(
            gdfg, cluster, collect_timeline=True
        ) == simulate_global_dfg(gdfg, cluster, collect_timeline=True)


# ---------------------------------------------------------------------------
# schedule policies
# ---------------------------------------------------------------------------


class TestSchedulePolicies:
    def test_registry_and_resolution(self):
        assert set(SCHEDULE_POLICIES) == {"ddp_overlap", "blocking_sync"}
        assert isinstance(resolve_schedule_policy(None), DDPOverlapPolicy)
        assert isinstance(
            resolve_schedule_policy("blocking_sync"), BlockingSyncPolicy
        )
        policy = BlockingSyncPolicy()
        assert resolve_schedule_policy(policy) is policy
        with pytest.raises(KeyError, match="unknown schedule policy"):
            resolve_schedule_policy("eager")
        with pytest.raises(TypeError):
            resolve_schedule_policy(3.14)

    @given(st.integers(0, 10_000))
    # Regression: at this seed a totals-based blocking anchor landed 1 ulp
    # below an overlap prefix-sum readiness, letting blocking "win".
    @example(1042)
    @settings(max_examples=30, deadline=None)
    def test_blocking_never_beats_overlap(self, seed):
        rng = new_rng(seed)
        gdfg = _random_gdfg(rng, 3, 2)
        cluster = _cluster(3)
        overlap = run_engine(gdfg, cluster)
        blocking = run_engine(gdfg, cluster, schedule_policy="blocking_sync")
        assert blocking.iteration_time >= overlap.iteration_time

    def test_blocking_comm_starts_after_every_backward(self):
        rng = new_rng(11)
        gdfg = _random_gdfg(rng, 3, 2)
        cluster = _cluster(3)
        sim = run_engine(
            gdfg, cluster, schedule_policy="blocking_sync", collect_timeline=True
        )
        compute_end = max(
            l.forward_time + l.backward_time for l in gdfg.locals
        )
        comm_starts = [e.start for e in sim.timeline if e.stream == "comm"]
        assert comm_starts and all(s >= compute_end for s in comm_starts)


# ---------------------------------------------------------------------------
# perturbations
# ---------------------------------------------------------------------------


class TestPerturbation:
    def test_validation(self):
        with pytest.raises(ValueError, match="compute_jitter"):
            Perturbation(compute_jitter=-0.1)
        with pytest.raises(ValueError, match="bandwidth_drift"):
            Perturbation(bandwidth_drift=-0.1)
        with pytest.raises(ValueError, match="straggler factor"):
            Perturbation(stragglers={0: 0.0})
        with pytest.raises(ValueError, match="more than once"):
            Perturbation(stragglers=((3, 2.0), (3, 4.0)))

    def test_stragglers_normalize_and_compare_equal(self):
        a = Perturbation(stragglers={2: 1.5, 0: 2.0})
        b = Perturbation(stragglers=((0, 2.0), (2, 1.5)))
        assert a == b
        assert a.straggler_factor(2) == 1.5
        assert a.straggler_factor(1) == 1.0

    def test_factors_are_seed_derived_and_stable(self):
        pert = Perturbation(seed=9, compute_jitter=0.5, bandwidth_drift=0.25)
        expected = 1.0 + 0.5 * float(
            new_rng(derive_seed(9, "compute", 3)).uniform()
        )
        assert pert.compute_scale(3) == expected
        assert pert.comm_scale(0) != pert.comm_scale(1)
        assert Perturbation(seed=9, compute_jitter=0.5).compute_scale(3) == \
            Perturbation(seed=9, compute_jitter=0.5).compute_scale(3)
        assert Perturbation(seed=10, compute_jitter=0.5).compute_scale(3) != expected

    def test_perturb_local_scales_and_preserves_structure(self):
        rng = new_rng(3)
        gdfg = _random_gdfg(rng, 1, 2)
        ldfg = gdfg.locals[0]
        pert = Perturbation(stragglers={0: 2.0})
        scaled = pert.perturb_local(ldfg)
        assert scaled is not ldfg
        assert scaled.forward_time == pytest.approx(2.0 * ldfg.forward_time)
        assert scaled.backward_time == pytest.approx(2.0 * ldfg.backward_time)
        assert scaled.buckets == ldfg.buckets
        assert scaled.bucket_ready_after == ldfg.bucket_ready_after
        assert scaled.optimizer.duration == pytest.approx(
            2.0 * ldfg.optimizer.duration
        )
        # A no-op perturbation hands back the very same object.
        assert Perturbation().perturb_local(ldfg) is ldfg
        assert Perturbation().is_noop

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_straggler_engine_matches_oracle_on_perturbed_inputs(self, seed):
        """With no bandwidth drift, engine + perturbation must equal the
        analytic recurrence replayed on the perturbed DFGs, bit for bit."""
        rng = new_rng(seed)
        gdfg = _random_gdfg(rng, 3, 2)
        cluster = _cluster(3)
        pert = Perturbation(seed=5, compute_jitter=0.3, stragglers={1: 3.0})
        engine = run_engine(gdfg, cluster, perturbation=pert,
                            collect_timeline=True)
        oracle = simulate_global_dfg(
            GlobalDFG([pert.perturb_local(l) for l in gdfg.locals]),
            cluster, collect_timeline=True,
        )
        assert engine == oracle

    def test_iteration_tracks_the_slowest_rank(self):
        """Straggler ordering: iteration time grows monotonically with the
        straggler factor and never drops below the perturbed slowest rank's
        compute time."""
        rng = new_rng(21)
        gdfg = _random_gdfg(rng, 4, 2)
        cluster = _cluster(4)
        previous = 0.0
        for factor in (1.0, 2.0, 4.0, 16.0):
            pert = Perturbation(seed=1, stragglers={2: factor})
            sim = run_engine(gdfg, cluster, perturbation=pert)
            bound = max(
                pert.perturb_local(l).compute_time for l in gdfg.locals
            )
            assert sim.iteration_time >= bound
            assert sim.iteration_time >= previous
            previous = sim.iteration_time

    def test_bandwidth_drift_slows_only_comm(self):
        rng = new_rng(2)
        gdfg = _random_gdfg(rng, 3, 2)
        cluster = _cluster(3)
        clean = run_engine(gdfg, cluster)
        drifted = run_engine(
            gdfg, cluster, perturbation=Perturbation(bandwidth_drift=1.0)
        )
        assert drifted.iteration_time >= clean.iteration_time
        assert drifted.per_device_compute == clean.per_device_compute


_PERTURBATION_PROBE = r"""
import json
from repro.common.rng import new_rng
from repro.engine import Perturbation
from repro.engine.core import run_engine
from tests.test_engine import _cluster, _random_gdfg

pert = Perturbation(seed=13, compute_jitter=0.2, bandwidth_drift=0.4,
                    stragglers={1: 2.5})
gdfg = _random_gdfg(new_rng(99), 3, 2)
sim = run_engine(gdfg, _cluster(3), perturbation=pert)
print(json.dumps({
    "scales": [pert.compute_scale(r).hex() for r in range(3)],
    "drift": [pert.comm_scale(n).hex() for n in range(2)],
    "iteration": sim.iteration_time.hex(),
}))
"""


def test_perturbation_survives_hash_seed():
    """Straggler factors and drifted timelines must be bit-equal across
    PYTHONHASHSEED values (derive_seed discipline, never builtin hash)."""
    root = Path(__file__).resolve().parent.parent

    def probe(hashseed):
        env = os.environ.copy()
        env["PYTHONHASHSEED"] = str(hashseed)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(root / "src"), str(root), env.get("PYTHONPATH", "")]
        )
        proc = subprocess.run(
            [sys.executable, "-c", _PERTURBATION_PROBE],
            capture_output=True, text=True, env=env, check=True,
        )
        return json.loads(proc.stdout.strip().splitlines()[-1])

    assert probe(0) == probe(4242)


# ---------------------------------------------------------------------------
# unified cost sources / shared assembly
# ---------------------------------------------------------------------------


def _chain_dag() -> PrecisionDAG:
    dag = PrecisionDAG()
    dag.add_op(OperatorSpec("input", OpKind.INPUT, (32, 256)))
    dag.add_op(
        OperatorSpec("fc1", OpKind.LINEAR, (32, 512), weight_shape=(512, 256),
                     flops=2.0 * 32 * 256 * 512),
        inputs=["input"],
    )
    dag.add_op(
        OperatorSpec("relu", OpKind.RELU, (32, 512), flops=32.0 * 512),
        inputs=["fc1"],
    )
    dag.add_op(
        OperatorSpec("fc2", OpKind.LINEAR, (32, 128), weight_shape=(128, 512),
                     flops=2.0 * 32 * 512 * 128),
        inputs=["relu"],
    )
    dag.add_op(OperatorSpec("loss", OpKind.LOSS, (1,)), inputs=["fc2"])
    return dag


class TestUnifiedCostSources:
    def test_catalog_source_matches_cost_mapper_node_for_node(self):
        dag = _chain_dag()
        dag.set_precision("fc1", Precision.FP16)
        backend = LPBackend(T4)
        catalog = profile_operator_costs(dag, backend, repeats=1)
        casts = CastCostCalculator(backend)

        mapper_dfg = CostMapper(dag, catalog, casts, device=T4).build_local_dfg(
            "T4", 0
        )
        source_dfg = assemble_local_dfg(
            CatalogCostSource(dag, catalog, casts, T4), "T4", 0
        )
        assert source_dfg.forward == mapper_dfg.forward
        assert source_dfg.backward == mapper_dfg.backward
        assert source_dfg.buckets == mapper_dfg.buckets
        assert source_dfg.bucket_ready_after == mapper_dfg.bucket_ready_after
        assert source_dfg.optimizer == mapper_dfg.optimizer
        assert source_dfg.forward_time == pytest.approx(mapper_dfg.forward_time)
        assert source_dfg.backward_time == pytest.approx(mapper_dfg.backward_time)

    def test_zero_backward_weighted_op_anchors_to_preceding_node(self):
        """The PR 1 anchoring rule now holds for *every* builder: a weighted
        op contributing no backward nodes anchors its bucket to the nearest
        preceding backward-stream node, not the end of the stream."""
        dag = _chain_dag()

        class StubSource:
            def __init__(self):
                self.dag = dag

            def forward_segment(self, name):
                return [DFGNode(name, NodeKind.FORWARD, 1e-3, op=name)]

            def backward_segment(self, name):
                spec = dag.spec(name)
                if spec.kind is OpKind.INPUT or name == "fc1":
                    return []  # fc1's backward rounds to zero
                return [DFGNode(f"bwd:{name}", NodeKind.BACKWARD, 1e-3, op=name)]

            def optimizer_duration(self):
                return 1e-4

        dfg = assemble_local_dfg(StubSource(), "T4", 0)
        # Backward stream (reverse topo): loss, fc2, relu — fc1 contributes
        # nothing.  fc2's bucket anchors at its own node; fc1's bucket must
        # anchor to relu's node (index 2), NOT to the stream end.
        names = [n.name for n in dfg.backward]
        assert names == ["bwd:loss", "bwd:fc2", "bwd:relu"]
        by_ops = {b.ops: b.index for b in dfg.buckets}
        ready = dfg.bucket_ready_after
        fc1_bucket = next(i for ops, i in by_ops.items() if "fc1" in ops)
        assert ready[fc1_bucket] == 2  # nearest preceding node (bwd:relu)

    def test_readiness_helper_defaults_missing_ops_to_stream_end(self):
        backward = [DFGNode(f"b{i}", NodeKind.BACKWARD, 1e-3) for i in range(3)]
        buckets = [CommBucket(0, 100, ("known",)), CommBucket(1, 100, ("lost",))]
        ready = bucket_readiness_from_stream(backward, buckets, {"known": 0})
        assert ready == {0: 0, 1: 2}


# ---------------------------------------------------------------------------
# rank identity (non-contiguous ranks) across GT / Dpro / Replayer
# ---------------------------------------------------------------------------


class TestNonContiguousRanks:
    def _setup(self):
        # Ranks 0, 2, 5: a sub-cluster view after decommissioning ranks.
        workers = (
            Worker(rank=0, device=V100, link_bandwidth=32 * GBPS),
            Worker(rank=2, device=V100, link_bandwidth=32 * GBPS),
            Worker(rank=5, device=T4, link_bandwidth=8 * GBPS),
        )
        cluster = Cluster(name="gappy", workers=workers)
        builder = lambda: mini_model_graph("mini_bert", batch_size=2)
        dags = {w.rank: builder() for w in cluster.workers}
        backends = {w.rank: LPBackend(w.device, seed=0) for w in cluster.workers}
        catalogs = {
            w.rank: profile_operator_costs(dags[w.rank], backends[w.rank], repeats=1)
            for w in cluster.workers
        }
        casts = {w.rank: CastCostCalculator(backends[w.rank]) for w in cluster.workers}
        return cluster, dags, backends, catalogs, casts

    def test_ground_truth_uses_rank_identity_not_position(self):
        cluster, dags, backends, _, _ = self._setup()
        gt = GroundTruthSimulator(cluster, dags, backends, seed=1)
        # Rank 5 is a T4; positional indexing would crash (or worse,
        # silently price a V100).
        dfg = gt._build_local(5, 0)
        assert dfg.device_name == "T4" and dfg.rank == 5
        sim = gt.run(iterations=2)
        assert set(sim.per_device_compute) == {0, 2, 5}
        assert sim.iteration_time > 0

    def test_dpro_uses_rank_identity_not_position(self):
        cluster, dags, _, catalogs, _ = self._setup()
        dpro = DproReplayer(cluster, dags, catalogs)
        dfg = dpro._build_local(5)
        assert dfg.device_name == "T4" and dfg.rank == 5
        sim = dpro.simulate()
        assert set(sim.comm_wait_time) == {0, 2, 5}

    def test_replayer_simulates_gappy_ranks(self):
        cluster, dags, _, catalogs, casts = self._setup()
        replayer = Replayer(cluster, dags, catalogs, casts)
        sim = replayer.simulate(collect_timeline=True)
        assert set(sim.per_device_compute) == {0, 2, 5}
        assert {e.rank for e in sim.timeline} == {0, 2, 5}


# ---------------------------------------------------------------------------
# session threading + the straggler experiment
# ---------------------------------------------------------------------------


class TestSessionThreading:
    def test_request_validates_schedule_policy_and_perturbation(self):
        with pytest.raises(ValueError, match="blocking_sync"):
            PlanRequest(model="mini_bert", schedule_policy="nope")
        with pytest.raises(ValueError, match="schedule_policy"):
            PlanRequest(model="mini_bert", schedule_policy=1.0)
        with pytest.raises(ValueError, match="perturbation"):
            PlanRequest(model="mini_bert", perturbation="straggle please")
        # Valid specs construct without profiling anything.
        PlanRequest(model="mini_bert", schedule_policy="blocking_sync",
                    perturbation=Perturbation(stragglers={0: 2.0}))

    def test_session_threads_policy_and_perturbation_to_replayer(self):
        session = PlanSession()
        base = PlanRequest(
            model="mini_bert", model_kwargs={"batch_size": 2},
            cluster="cluster_a_4+4", strategy="uniform", profile_repeats=1,
        )
        clean = session.plan(base)
        pert = Perturbation(stragglers={7: 4.0})
        slowed = session.plan(
            PlanRequest(
                model="mini_bert", model_kwargs={"batch_size": 2},
                cluster="cluster_a_4+4", strategy="uniform", profile_repeats=1,
                schedule_policy="blocking_sync", perturbation=pert,
            )
        )
        # Same uniform plan, worse schedule + a straggler: strictly slower.
        assert slowed.plan == clean.plan
        assert slowed.simulation.iteration_time > clean.simulation.iteration_time

    def test_straggler_experiment_shapes(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("straggler", quick=True, seed=3)
        assert result.column("Tracks slowest") == ["yes"] * len(result.rows)
        overlap_ms = [
            float(row[2]) for row in result.rows if row[0] == "ddp_overlap"
        ]
        assert overlap_ms == sorted(overlap_ms)  # grows with the factor
        for row_o, row_b in zip(result.rows[::2], result.rows[1::2]):
            assert row_o[0] == "ddp_overlap" and row_b[0] == "blocking_sync"
            assert float(row_b[2]) >= float(row_o[2]) - 1e-9

    def test_straggler_experiment_is_seed_deterministic(self):
        from repro.experiments.registry import run_experiment

        a = run_experiment("straggler", quick=True, seed=3)
        b = run_experiment("straggler", quick=True, seed=3)
        c = run_experiment("straggler", quick=True, seed=4)
        assert a.rows == b.rows
        assert a.rows != c.rows
