"""Tier-1 smoke invocation of the elastic re-planning benchmark.

Runs ``benchmarks.bench_churn`` in its scaled-down mode so incrementality
regressions — a replan silently re-profiling known device types, losing
its speed edge over a cold plan, or a zero-event replan diverging from the
original plan — fail loudly in the normal test run.  The full-size
benchmark (``python -m benchmarks.bench_churn``) reports the headline
numbers to ``BENCH_churn.json``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_churn import run_bench


def test_bench_smoke(tmp_path):
    out = tmp_path / "BENCH_churn.json"
    payload = run_bench(small=True, path=out)
    assert out.exists()

    # A zero-event replan is the original plan, bit for bit, and costs no
    # profiling — the parity oracle.
    assert payload["zero_event_parity"]
    assert payload["zero_event_profile_events"] == 0

    # The deterministic core of the incrementality claim: re-planning
    # after a single-rank leave re-profiles nothing (every surviving
    # device type is already in the session's ProfileStore) and adopts
    # the pre-churn replayer's per-device-type DFG cache.
    assert payload["profile_events_cold"] > 0
    assert payload["replan_profile_events"] == 0
    assert payload["adopted_dfg_types"] >= 1

    # Reuse must not change results: the incremental replan matches a cold
    # plan of the same surviving cluster exactly.
    assert payload["replan_matches_cold_survivor"]

    # The headline: replan beats a cold plan on the survivors by >= 3x
    # (measured ~10-16x; 3x leaves room for CI noise, and the counters
    # above pin the mechanism).
    assert payload["speedup_replan"] >= 3.0
