"""Additional coverage: PrecisionPlan, timeline rendering, DFG accounting,
LinearCostModel edge behaviour, cluster describe/subsets."""

import pytest

from repro.common import Precision
from repro.core.dfg import CommBucket, DFGNode, LocalDFG, NodeKind
from repro.core.plan import PrecisionPlan
from repro.core.replayer import TimelineEvent
from repro.parallel.timeline import render_timeline


class TestPrecisionPlan:
    def _plan(self):
        return PrecisionPlan(
            assignments={
                "T4": {
                    "conv1": Precision.INT8,
                    "conv2": Precision.FP16,
                    "fc": Precision.FP32,
                },
            }
        )

    def test_for_device_copies(self):
        plan = self._plan()
        got = plan.for_device("T4")
        got["conv1"] = Precision.FP32
        assert plan.for_device("T4")["conv1"] is Precision.INT8

    def test_for_unknown_device_empty(self):
        assert self._plan().for_device("A100") == {}

    def test_precision_counts(self):
        counts = self._plan().precision_counts("T4")
        assert counts["int8"] == 1 and counts["fp16"] == 1 and counts["fp32"] == 1

    def test_quantized_ops(self):
        assert set(self._plan().quantized_ops("T4")) == {"conv1", "conv2"}

    def test_dict_roundtrip_preserves_everything(self):
        plan = self._plan()
        restored = PrecisionPlan.from_dict(plan.to_dict())
        assert restored.assignments == plan.assignments

    def test_summary_mentions_counts(self):
        text = self._plan().summary()
        assert "1xint8" in text and "1xfp16" in text

    def test_empty_plan_summary(self):
        assert PrecisionPlan(assignments={}).summary() == "empty plan"


class TestTimelineRendering:
    def _events(self):
        return [
            TimelineEvent(0, "V100", "cuda", 0.0, 0.5, "fwd"),
            TimelineEvent(0, "V100", "comm", 0.5, 1.0, "allreduce"),
            TimelineEvent(1, "T4", "cuda", 0.0, 0.25, "fwd"),
        ]

    def test_rows_per_device_stream(self):
        text = render_timeline(self._events())
        lines = [l for l in text.splitlines() if "|" in l]
        assert len(lines) == 3  # V100/cuda, V100/comm, T4/cuda

    def test_busy_fraction_reflects_durations(self):
        text = render_timeline(self._events(), width=40)
        t4_line = next(l for l in text.splitlines() if "T4" in l)
        v100_cuda = next(
            l for l in text.splitlines() if "V100" in l and "cuda" in l
        )
        assert t4_line.count("#") < v100_cuda.count("#")

    def test_unmerged_ranks(self):
        events = self._events() + [
            TimelineEvent(2, "T4", "cuda", 0.0, 0.25, "fwd")
        ]
        text = render_timeline(events, merge_ranks=False)
        assert "T4#1" in text and "T4#2" in text

    def test_zero_length(self):
        events = [TimelineEvent(0, "X", "cuda", 0.0, 0.0, "noop")]
        assert "zero-length" in render_timeline(events)

    def test_every_event_gets_a_cell_at_tiny_width(self):
        """A nonzero-duration event must paint >= 1 cell however narrow the
        rendering — a 1%-long event at width 8 used to be at the mercy of
        rounding."""
        events = [
            TimelineEvent(0, "T4", "cuda", 0.0, 0.01, "tiny"),
            TimelineEvent(0, "T4", "comm", 0.99, 1.0, "tail"),
        ]
        text = render_timeline(events, width=8)
        rows = [l for l in text.splitlines() if "|" in l]
        assert all("#" in r for r in rows)

    def test_events_do_not_bleed_into_successor_cells(self):
        """Half-open cell ranges: back-to-back events tile the row without
        the first stealing a full extra cell from the second."""
        events = [
            TimelineEvent(0, "T4", "cuda", 0.0, 0.5, "a"),
            TimelineEvent(0, "T4", "cuda", 0.5, 1.0, "b"),
        ]
        text = render_timeline(events, width=10)
        row = next(l for l in text.splitlines() if "|" in l)
        assert row.count("#") == 10  # exactly tiled, no '.' holes

    def test_unmerged_ranks_sort_numerically(self):
        """Rank 10 must sort after rank 2 (not lexically between #1 and #2),
        and each worker's streams must stay adjacent."""
        events = []
        for rank in (10, 2, 1):
            events.append(TimelineEvent(rank, "T4", "cuda", 0.0, 1.0, "f"))
            events.append(TimelineEvent(rank, "T4", "comm", 0.0, 1.0, "c"))
        text = render_timeline(events, merge_ranks=False)
        labels = [l.split("|")[0].strip() for l in text.splitlines() if "|" in l]
        assert labels == [
            "T4#1/comm", "T4#1/cuda", "T4#2/comm", "T4#2/cuda",
            "T4#10/comm", "T4#10/cuda",
        ]


class TestLocalDFGAccounting:
    def test_cast_time_counts_only_casts(self):
        dfg = LocalDFG("T4", 0)
        dfg.add_forward(DFGNode("op", NodeKind.FORWARD, 1.0))
        dfg.add_forward(DFGNode("c1", NodeKind.CAST, 0.25))
        dfg.add_backward(DFGNode("c2", NodeKind.CAST, 0.25))
        dfg.add_backward(DFGNode("b", NodeKind.BACKWARD, 2.0))
        assert dfg.cast_time() == pytest.approx(0.5)
        assert dfg.forward_time == pytest.approx(1.25)
        assert dfg.backward_time == pytest.approx(2.25)

    def test_compute_time_includes_optimizer(self):
        dfg = LocalDFG("T4", 0)
        dfg.add_forward(DFGNode("op", NodeKind.FORWARD, 1.0))
        dfg.set_optimizer(0.5)
        assert dfg.compute_time == pytest.approx(1.5)

    def test_bucket_ready_defaults_to_end(self):
        dfg = LocalDFG("T4", 0)
        dfg.add_forward(DFGNode("f", NodeKind.FORWARD, 1.0))
        dfg.add_backward(DFGNode("b", NodeKind.BACKWARD, 1.0, op="w"))
        dfg.set_buckets([CommBucket(0, 8, ("w",))], {0: 5})  # past the end
        ready = dfg.bucket_ready_times()
        assert ready[0] == pytest.approx(2.0)


class TestClusterCosmetics:
    def test_describe_orders_types(self):
        from repro.hardware import make_cluster_b

        text = make_cluster_b(3, 5).describe()
        assert "3xV100" in text and "5xT4" in text

    def test_collective_latency_additive(self):
        from repro.hardware import make_cluster_a

        c = make_cluster_a(1, 1)
        base = c.allreduce_time(0)
        assert base == pytest.approx(2 * (c.size - 1) * c.collective_latency)
